"""Property-based invariants of the observability layer.

Seeded randomized small topologies and workloads are replayed with a
recorder attached; at every sampled window (and at the end) the suite
asserts the accounting laws the obs layer promises:

* conservation — packets/bytes injected == delivered + in-flight at
  every window edge, in-flight never negative, zero at the end;
* credits never go negative (and never exceed the VC buffer capacity),
  checked *live* at each window edge through the recorder's probe hook;
* per-link busy time and saturation time within any window never
  exceed the window span;
* per-window byte counters telescope exactly to the run aggregates.

Run against both routings and every placement policy (the grid the
paper sweeps), plus randomized dragonfly geometries.
"""

from __future__ import annotations

import random
import zlib

import numpy as np
import pytest

import repro
from repro.config import DragonflyParams, NetworkParams, SimulationConfig
from repro.core.runner import build_topology
from repro.network.fabric import MAX_VCS
from repro.obs import ObsConfig, ObsRecorder
from repro.placement.policies import PLACEMENT_NAMES
from repro.routing import ROUTING_NAMES

#: Slack for float accumulation when comparing times.
EPS_NS = 1e-6


def random_config(rng: random.Random) -> SimulationConfig:
    """A randomized small dragonfly with paper-shaped parameters."""
    topo = DragonflyParams(
        groups=rng.choice((2, 3, 4)),
        rows=rng.choice((1, 2)),
        cols=rng.choice((2, 3)),
        nodes_per_router=rng.choice((1, 2)),
        chassis_per_cabinet=1,
        global_links_per_pair=rng.choice((1, 2)),
    )
    net = NetworkParams(
        packet_size=rng.choice((512, 1024, 2048)),
        switching=rng.choice(("vct", "store_forward")),
    )
    return SimulationConfig(topology=topo, network=net)


def random_trace(rng: random.Random, max_nodes: int):
    builder = rng.choice(
        (repro.crystal_router_trace, repro.fill_boundary_trace, repro.amg_trace)
    )
    ranks = rng.randint(4, min(10, max_nodes))
    scale = rng.choice((0.02, 0.05, 0.1))
    return builder(num_ranks=ranks, seed=rng.randint(0, 999)).scaled(scale)


class CreditProbe:
    """Live window-edge assertions on raw fabric flow-control state."""

    def __init__(self):
        self.samples = 0

    def __call__(self, t: float, fabric) -> None:
        self.samples += 1
        buf = fabric.buf
        for key, used in enumerate(fabric._buf_used):
            link = key // MAX_VCS
            assert used >= 0, (
                f"negative credit at t={t}: link {link} vc {key % MAX_VCS}"
            )
            assert used <= buf[link], (
                f"VC buffer over capacity at t={t}: link {link}"
            )
        assert all(c >= 0 for c in fabric._wait_count)
        assert all(q >= 0 for q in fabric.queued_bytes)


def check_invariants(result, probe: CreditProbe) -> None:
    ts = result.obs
    assert ts is not None
    assert probe.samples == ts.num_windows

    # Conservation at every window edge.
    in_flight = ts.in_flight_packets()
    assert (in_flight >= 0).all()
    assert (ts.injected_packets == ts.delivered_packets + in_flight).all()
    assert (ts.injected_bytes >= ts.delivered_bytes).all()
    assert (np.diff(ts.injected_packets) >= 0).all()
    assert (np.diff(ts.delivered_packets) >= 0).all()
    # The target job finished and nothing else was running: drained.
    assert in_flight[-1] == 0
    assert ts.injected_bytes[-1] == ts.delivered_bytes[-1]

    # Per-window time accounting bounded by the window span.
    spans = ts.window_spans()
    assert (spans > 0).all()
    assert (ts.busy_ns >= -EPS_NS).all()
    assert (ts.stall_ns >= -EPS_NS).all()
    assert (ts.busy_ns <= spans[:, None] + EPS_NS).all()
    assert (ts.stall_ns <= spans[:, None] + EPS_NS).all()
    assert (ts.bytes_fwd >= 0).all()
    assert (ts.queue_bytes >= 0).all()

    # Windowed counters telescope to the run aggregates: bytes exactly,
    # times to float precision.
    routers = np.unique(
        [build_topology_for(result).router_of(n) for n in result.nodes]
    )
    m = result.metrics
    from repro.topology.links import LinkKind

    local = ts.link_mask(
        kinds=(LinkKind.LOCAL_ROW, LinkKind.LOCAL_COL), routers=routers
    )
    glob = ts.link_mask(kinds=(LinkKind.GLOBAL,), routers=routers)
    assert int(ts.bytes_fwd[:, local].sum()) == m.total_local_traffic
    assert int(ts.bytes_fwd[:, glob].sum()) == m.total_global_traffic
    assert np.isclose(
        ts.stall_ns[:, local].sum(), m.total_local_sat_ns, rtol=1e-9, atol=1e-3
    )
    assert np.isclose(
        ts.stall_ns[:, glob].sum(), m.total_global_sat_ns, rtol=1e-9, atol=1e-3
    )


def build_topology_for(result):
    return build_topology(result.extra["config"].topology)


@pytest.mark.parametrize("placement", PLACEMENT_NAMES)
@pytest.mark.parametrize("routing", ROUTING_NAMES)
def test_invariants_full_grid(placement, routing):
    """Every placement x routing cell upholds the obs invariants."""
    # PYTHONHASHSEED-independent seed derivation.
    rng = random.Random(zlib.crc32(f"{placement}-{routing}".encode()))
    cfg = repro.tiny()
    trace = random_trace(rng, cfg.topology.num_nodes)
    probe = CreditProbe()
    result = run_probed(cfg, trace, placement, routing, probe, seed=rng.randint(0, 99))
    check_invariants(result, probe)


@pytest.mark.parametrize("seed", range(4))
def test_invariants_random_topologies(seed):
    """Randomized geometries/switching modes uphold the obs invariants."""
    rng = random.Random(1000 + seed)
    cfg = random_config(rng)
    trace = random_trace(rng, cfg.topology.num_nodes)
    placement = rng.choice(PLACEMENT_NAMES)
    routing = rng.choice(ROUTING_NAMES)
    probe = CreditProbe()
    result = run_probed(cfg, trace, placement, routing, probe, seed=seed)
    check_invariants(result, probe)


def run_probed(cfg, trace, placement, routing, probe, seed):
    """run_single, but with the invariant probe wired into the recorder.

    Mirrors :func:`repro.core.runner.run_single` closely enough to stay
    honest: same construction order, same stop condition.
    """
    from repro.core.runner import TARGET_JOB
    from repro.engine.simulator import Simulator
    from repro.metrics.collector import RunMetrics
    from repro.mpi.replay import ReplayEngine
    from repro.network.fabric import Fabric
    from repro.placement.machine import Machine
    from repro.routing import make_routing

    topo = build_topology(cfg.topology)
    machine = Machine(cfg.topology)
    nodes = machine.allocate(placement, trace.num_ranks, seed=seed)
    sim = Simulator()
    fabric = Fabric(sim, topo, cfg.network, make_routing(routing, seed=seed))
    engine = ReplayEngine(sim, fabric)
    engine.add_job(TARGET_JOB, trace, nodes)
    recorder = ObsRecorder(
        sim, fabric, ObsConfig(window_ns=25_000.0), probe=probe
    ).install()
    engine.run(target_job=TARGET_JOB, max_events=50_000_000)
    job = engine.job_result(TARGET_JOB)
    metrics = RunMetrics.from_run(fabric, topo, job, nodes)
    from repro.core.runner import RunResult

    return RunResult(
        app=trace.name,
        placement=placement,
        routing=routing,
        seed=seed,
        job=job,
        metrics=metrics,
        nodes=nodes,
        sim_time_ns=sim.now,
        events=sim.events_run,
        extra={"config": cfg},
        obs=recorder.finalize(sim.now),
    )
