"""Parallel-vs-serial determinism and warm-cache guarantees.

The executor's core contract: a grid run with ``max_workers=4`` is
bit-identical to the serial run, and a second invocation against a warm
cache performs zero simulations.
"""

import os

import numpy as np
import pytest

import repro
from repro.core.interference import BackgroundSpec, interference_study
from repro.core.sensitivity import sensitivity_sweep

WORKERS = int(os.environ.get("REPRO_TEST_WORKERS", "4"))


@pytest.fixture(scope="module")
def three_app_traces():
    return {
        "CR": repro.crystal_router_trace(num_ranks=8, seed=1).scaled(0.05),
        "FB": repro.fill_boundary_trace(num_ranks=8, seed=1).scaled(0.05),
        "AMG": repro.amg_trace(num_ranks=8, seed=1).scaled(0.05),
    }


@pytest.fixture(scope="module")
def config():
    return repro.tiny().with_seed(1)


def assert_identical_runs(a, b):
    assert set(a.runs) == set(b.runs)
    for key in a.runs:
        ra, rb = a.runs[key], b.runs[key]
        for field in (
            "comm_time_ns",
            "avg_hops",
            "local_traffic_bytes",
            "global_traffic_bytes",
            "local_sat_ns",
            "global_sat_ns",
        ):
            assert np.array_equal(
                getattr(ra.metrics, field), getattr(rb.metrics, field)
            ), (key, field)
        assert ra.sim_time_ns == rb.sim_time_ns, key
        assert ra.events == rb.events, key
        assert ra.nodes == rb.nodes, key
        assert ra.nonminimal_fraction == rb.nonminimal_fraction, key


class TestThreeAppGrid:
    def test_parallel_matches_serial(self, config, three_app_traces):
        study = repro.TradeoffStudy(config, three_app_traces, seed=1)
        serial = study.run()
        parallel = study.run(max_workers=WORKERS)
        assert list(serial.runs) == list(parallel.runs)  # same cell order
        assert_identical_runs(serial, parallel)

    def test_warm_cache_performs_zero_simulations(
        self, config, three_app_traces, tmp_path
    ):
        study = repro.TradeoffStudy(config, three_app_traces, seed=1)
        cold = study.run(max_workers=WORKERS, cache_dir=tmp_path)
        grid_size = len(three_app_traces) * 5 * 2
        assert cold.report.done == grid_size and cold.report.cached == 0

        warm = study.run(max_workers=WORKERS, cache_dir=tmp_path)
        assert warm.report.cached == grid_size
        assert warm.report.done == 0 and warm.report.failed == 0
        assert_identical_runs(cold, warm)

    def test_cache_shared_between_serial_and_parallel(
        self, config, three_app_traces, tmp_path
    ):
        study = repro.TradeoffStudy(config, three_app_traces, seed=1)
        study.run(cache_dir=tmp_path)  # serial fill
        warm = study.run(max_workers=WORKERS, cache_dir=tmp_path)
        assert warm.report.cached == len(three_app_traces) * 5 * 2


class TestSweepDrivers:
    def test_sensitivity_parallel_matches_serial(self, config):
        trace = repro.amg_trace(num_ranks=8, seed=1)
        kw = dict(
            scales=(0.5, 1.0),
            configs=(("cont", "min"), ("rand", "adp")),
            seed=1,
        )
        serial = sensitivity_sweep(config, trace, **kw)
        parallel = sensitivity_sweep(config, trace, max_workers=WORKERS, **kw)
        assert serial.labels() == parallel.labels()
        for label in serial.labels():
            assert np.array_equal(
                serial.max_comm_ns[label], parallel.max_comm_ns[label]
            )

    def test_interference_parallel_matches_serial(self, config):
        trace = repro.amg_trace(num_ranks=8, seed=1).scaled(0.05)
        bg = BackgroundSpec("uniform", 1024, 10_000.0)
        kw = dict(placements=("cont", "rand"), routings=("min", "adp"), seed=1)
        serial = interference_study(config, trace, bg, **kw)
        parallel = interference_study(
            config, trace, bg, max_workers=WORKERS, **kw
        )
        assert_identical_runs(serial, parallel)
