"""End-to-end conservation and consistency invariants."""

import pytest

import repro
from repro.core.runner import build_topology
from repro.engine.simulator import Simulator
from repro.mpi.replay import ReplayEngine
from repro.network.fabric import Fabric
from repro.routing import make_routing


@pytest.mark.parametrize("routing", ["min", "adp"])
@pytest.mark.parametrize(
    "builder,scale",
    [
        (repro.crystal_router_trace, 0.1),
        (repro.fill_boundary_trace, 0.01),
        (repro.amg_trace, 0.5),
    ],
)
def test_bytes_conserved_across_apps(builder, scale, routing):
    """Every byte injected into the fabric is delivered, for every app
    and routing policy."""
    cfg = repro.tiny()
    trace = builder(num_ranks=12, seed=3).scaled(scale)
    topo = build_topology(cfg.topology)
    sim = Simulator()
    fabric = Fabric(sim, topo, cfg.network, make_routing(routing, seed=3))
    engine = ReplayEngine(sim, fabric)
    engine.add_job(0, trace, list(range(12)))
    engine.run(target_job=0)
    assert fabric.bytes_injected == fabric.bytes_delivered
    assert fabric.bytes_injected > 0

    result = engine.job_result(0)
    # Trace-level and replay-level byte accounting agree.
    assert result.bytes_sent.sum() == trace.total_bytes()
    assert result.bytes_recv.sum() == trace.total_bytes()


def test_sent_equals_received_per_pair():
    """Per-rank bytes received match the trace's communication matrix."""
    cfg = repro.tiny()
    trace = repro.crystal_router_trace(num_ranks=12, seed=3).scaled(0.1)
    result = repro.run_single(cfg, trace, "rand", "adp", seed=3)
    mat = trace.communication_matrix()
    expected_recv = mat.sum(axis=0)
    assert (result.job.bytes_recv == expected_recv).all()


def test_traffic_bounded_by_hops():
    """Fabric byte-hops equal sum over messages of size x path length."""
    cfg = repro.tiny()
    trace = repro.amg_trace(num_ranks=8, seed=3).scaled(0.3)
    result = repro.run_single(cfg, trace, "cont", "min", seed=3)
    # Total bytes through all links >= total payload (each message
    # crosses at least the two terminal links).
    # (RunMetrics only covers job routers; recompute from the trace.)
    assert result.metrics.total_local_traffic >= 0
    assert result.job.bytes_sent.sum() == trace.total_bytes()
