"""Cross-backend agreement for the DL training family (ISSUE 10).

Three load-bearing guarantees:

* every synthetic generator's tiny instance is *bit-identical* across
  event schedulers and across serial/parallel execution (the family
  inherits the executor's determinism contract);
* the flow backend agrees with the packet engine on the *top-1*
  placement per routing on the full tiny 5×2 grid for the DP-ring and
  MoE all-to-all jobs (the paper's conclusion survives the fluid
  approximation on ML traffic);
* an imported param-style fixture trace replays bit-identically across
  serial and parallel execution (the CI ``mlcomms-smoke`` gate).
"""

from pathlib import Path

import numpy as np
import pytest

import repro
from repro.engine.queues import SCHEDULER_NAMES
from repro.flow import fidelity_report
from repro.mlcomms import load_comms_trace, training_tradeoff
from repro.mlcomms.study import default_training_traces

FIXTURE = Path(__file__).parent.parent / "data" / "comms_trace_dp8.json"


@pytest.fixture(scope="module")
def config():
    return repro.tiny().with_seed(1)


@pytest.fixture(scope="module")
def family_traces():
    return default_training_traces(8, msg_scale=0.02, seed=1)


def assert_identical_runs(a, b):
    assert set(a.runs) == set(b.runs)
    for key in a.runs:
        ra, rb = a.runs[key], b.runs[key]
        assert ra.metrics.summary() == rb.metrics.summary(), key
        assert ra.sim_time_ns == rb.sim_time_ns, key
        assert np.array_equal(
            ra.job.finish_time_ns, rb.job.finish_time_ns
        ), key


class TestSchedulerDeterminism:
    @pytest.mark.parametrize("app", ("DP", "PP", "TP", "MOE"))
    def test_bit_identical_across_schedulers(self, config, family_traces, app):
        trace = family_traces[app]
        baseline = None
        for name in SCHEDULER_NAMES:
            res = repro.run_single(
                config, trace, "rotr", "adp", seed=7, scheduler=name
            )
            fp = (
                res.metrics.summary(),
                res.sim_time_ns,
                res.job.finish_time_ns.tolist(),
                res.job.blocked_time_ns.tolist(),
            )
            if baseline is None:
                baseline = fp
            else:
                assert fp == baseline, name


class TestParallelDeterminism:
    def test_family_grid_parallel_matches_serial(self, config, family_traces):
        study = repro.TradeoffStudy(
            config,
            family_traces,
            placements=("cont", "rand"),
            routings=("min", "adp"),
            seed=1,
        )
        serial = study.run()
        parallel = study.run(max_workers=2)
        assert list(serial.runs) == list(parallel.runs)
        assert_identical_runs(serial, parallel)

    def test_fixture_import_replays_identically(self, config):
        trace = load_comms_trace(FIXTURE).scaled(0.05)
        study = repro.TradeoffStudy(
            config,
            {trace.name: trace},
            placements=("cont", "rotr", "rand"),
            routings=("min", "adp"),
            seed=3,
        )
        serial = study.run()
        parallel = study.run(max_workers=2)
        assert_identical_runs(serial, parallel)


@pytest.mark.slow
class TestFlowPacketAgreement:
    def test_top1_placement_agrees_on_full_grid(self, config, family_traces):
        traces = {app: family_traces[app] for app in ("DP", "MOE")}
        fid = fidelity_report(config, traces, seed=1)
        for app in traces:
            for routing in ("min", "adp"):
                rec = fid.rank[app][routing]
                assert rec["top1_agree"], (app, routing, rec)


class TestTrainingTradeoff:
    def test_report_has_winner_per_routing(self, config, family_traces):
        report = training_tradeoff(
            config,
            {app: family_traces[app] for app in ("DP", "MOE")},
            seed=1,
            backend="flow",
        )
        doc = report.to_json()
        assert doc["schema"] == "repro-mlcomms/v1"
        for app in ("DP", "MOE"):
            for routing in ("min", "adp"):
                rec = doc["winners"][app][routing]
                assert rec["placement"] in report.placements
                assert rec["median_ms"] > 0
            assert doc["leaning"][app] in ("localize", "balance", "split")
        assert len(doc["cells"]) == 2 * 5 * 2

    def test_save_and_format(self, config, family_traces, tmp_path):
        import json

        report = training_tradeoff(
            config,
            {"DP": family_traces["DP"]},
            placements=("cont", "rand"),
            seed=1,
            backend="flow",
        )
        out = tmp_path / "report.json"
        report.save_json(out)
        doc = json.loads(out.read_text())
        assert doc["schema"] == "repro-mlcomms/v1"
        table = report.format_table()
        assert "DP" in table and "leaning" in table
