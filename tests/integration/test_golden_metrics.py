"""Golden-metrics regression fixtures over the full 5x2 study grid.

``RunMetrics.summary()`` for every placement x routing cell of a tiny
preset is checked against a committed JSON fixture, so a perf refactor
that silently changes the *physics* (routing, flow control, replay
semantics, metric extraction) fails loudly here even if every unit
test still passes.

Approved-update flow::

    PYTHONPATH=src python -m pytest tests/integration/test_golden_metrics.py \
        --update-goldens

then review the fixture diff like any other code change.
"""

from __future__ import annotations

import json
import math
from pathlib import Path

import pytest

import repro
from repro.core.study import TradeoffStudy
from repro.placement.policies import PLACEMENT_NAMES
from repro.routing import ROUTING_NAMES

GOLDEN_PATH = Path(__file__).parent.parent / "data" / "golden_metrics.json"

#: Fixture identity: bump when the *intended* scenario changes (not
#: when physics drifts — that is exactly what this test must catch).
SCENARIO = {
    "preset": "tiny",
    "app": "FB",
    "ranks": 8,
    "trace_seed": 3,
    "msg_scale": 0.05,
    "study_seed": 7,
}

REL_TOL = 1e-9


@pytest.fixture(scope="module")
def grid_summaries() -> dict[str, dict[str, float]]:
    cfg = repro.tiny()
    trace = repro.fill_boundary_trace(
        num_ranks=SCENARIO["ranks"], seed=SCENARIO["trace_seed"]
    ).scaled(SCENARIO["msg_scale"])
    result = TradeoffStudy(
        cfg, {SCENARIO["app"]: trace}, seed=SCENARIO["study_seed"]
    ).run()
    return {
        f"{placement}-{routing}": result.runs[
            (SCENARIO["app"], placement, routing)
        ].metrics.summary()
        for placement in PLACEMENT_NAMES
        for routing in ROUTING_NAMES
    }


def test_grid_covers_full_nomenclature(grid_summaries):
    assert len(grid_summaries) == len(PLACEMENT_NAMES) * len(ROUTING_NAMES) == 10


def test_golden_summaries(grid_summaries, update_goldens):
    if update_goldens:
        GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN_PATH.write_text(
            json.dumps(
                {"scenario": SCENARIO, "summaries": grid_summaries},
                indent=2,
                sort_keys=True,
            )
            + "\n"
        )
    golden = json.loads(GOLDEN_PATH.read_text())
    assert golden["scenario"] == SCENARIO, (
        "golden fixture was generated for a different scenario; "
        "regenerate with --update-goldens"
    )
    expected = golden["summaries"]
    assert set(expected) == set(grid_summaries)
    for label, summary in grid_summaries.items():
        assert set(summary) == set(expected[label]), label
        for key, value in summary.items():
            want = expected[label][key]
            assert math.isclose(value, want, rel_tol=REL_TOL, abs_tol=1e-12), (
                f"{label}.{key}: got {value!r}, golden {want!r} "
                "(physics changed? regenerate with --update-goldens only "
                "if the change is intended)"
            )
