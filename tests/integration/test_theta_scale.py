"""Full Theta-scale smoke tests (3,456 nodes, the paper's machine)."""

import numpy as np
import pytest

pytestmark = pytest.mark.slow

import repro
from repro.core.runner import build_topology
from repro.topology.links import LinkKind


@pytest.fixture(scope="module")
def theta_topo():
    return build_topology(repro.theta().topology)


class TestThetaTopology:
    def test_scale_matches_paper(self, theta_topo):
        p = theta_topo.params
        assert p.groups == 9
        assert p.routers_per_group == 96
        assert p.num_nodes == 3456
        # Chassis = row of 16 routers; cabinet = 3 chassis (paper §II).
        assert p.cols == 16 and p.chassis_per_cabinet == 3

    def test_link_inventory(self, theta_topo):
        kind = theta_topo.links.kind
        # 2 terminal links per node.
        assert int(((kind == LinkKind.TERMINAL_IN).sum())) == 3456
        # Row links: 9 groups x 6 rows x 16x15 directed pairs.
        assert int((kind == LinkKind.LOCAL_ROW).sum()) == 9 * 6 * 16 * 15
        # Column links: 9 groups x 16 cols x 6x5 directed pairs.
        assert int((kind == LinkKind.LOCAL_COL).sum()) == 9 * 16 * 6 * 5
        # Global: 36 group pairs x 24 links x 2 directions.
        assert int((kind == LinkKind.GLOBAL).sum()) == 36 * 24 * 2

    def test_every_group_pair_connected(self, theta_topo):
        for g1 in range(9):
            for g2 in range(9):
                if g1 != g2:
                    assert len(theta_topo.global_links(g1, g2)) == 24

    def test_minimal_routes_bounded_at_scale(self, theta_topo):
        from repro.routing.tables import route_tables

        tables = route_tables(theta_topo)
        rng = np.random.default_rng(0)
        for _ in range(50):
            r1 = int(rng.integers(theta_topo.num_routers))
            r2 = int(rng.integers(theta_topo.num_routers))
            for route in tables.minimal(r1, r2):
                assert len(route) <= 5


class TestThetaReplay:
    def test_amg_full_scale_replay(self, theta_topo):
        """The paper's 1728-rank AMG replays end to end at full scale."""
        cfg = repro.theta()
        trace = repro.amg_trace(num_ranks=1728, seed=1)
        result = repro.run_single(cfg, trace, "cont", "min", seed=1)
        assert result.job.num_ranks == 1728
        assert result.job.bytes_recv.sum() == trace.total_bytes()
        # Contiguous AMG at 50% occupancy spans ~4.5 groups; hops stay
        # low (most halo exchanges are intra-group on 96-router groups).
        assert result.metrics.mean_hops < 2.0
