"""Cross-scheduler determinism: the event queue is a pure perf knob.

The full tiny 5×2 placement×routing grid must produce *bit-identical*
results — every ``RunMetrics.summary()`` float, the per-message stats,
and the exported obs telemetry bytes — under the ``heap`` and
``calendar`` schedulers. This is what licenses two structural choices:

* golden fixtures never need ``--update-goldens`` when the scheduler
  changes, and
* ``RunSpec.key`` deliberately excludes the scheduler, so cells cached
  under one scheduler are valid hits for any other.
"""

import pytest

import repro
from repro.engine.queues import SCHEDULER_NAMES
from repro.exec.plan import plan_grid
from repro.obs import ObsConfig
from repro.obs.export import write_jsonl


def _grid_fingerprint(scheduler):
    """Every per-cell summary of the tiny 5×2 FB grid, exactly."""
    cfg = repro.tiny()
    trace = repro.fill_boundary_trace(num_ranks=8, seed=3).scaled(0.05)
    study = repro.TradeoffStudy(
        cfg, {"FB": trace}, seed=7, scheduler=scheduler
    ).run()
    out = {}
    for key, result in study.runs.items():
        summary = result.metrics.summary()
        out[key] = (
            summary,
            result.sim_time_ns,
            result.nonminimal_fraction,
            result.job.finish_time_ns.tolist(),
            result.job.blocked_time_ns.tolist(),
        )
    return out


@pytest.mark.slow
def test_full_grid_bit_identical_across_schedulers():
    baseline = _grid_fingerprint("heap")
    assert len(baseline) == 10  # 5 placements x 2 routings
    for name in SCHEDULER_NAMES:
        if name == "heap":
            continue
        other = _grid_fingerprint(name)
        # Exact float equality, cell by cell: the schedulers must not
        # merely agree statistically, they must execute the same events
        # in the same order.
        assert other == baseline


def test_obs_export_bytes_identical_across_schedulers(tmp_path):
    cfg = repro.tiny()
    trace = repro.fill_boundary_trace(num_ranks=8, seed=3).scaled(0.05)
    exports = {}
    for name in SCHEDULER_NAMES:
        res = repro.run_single(
            cfg,
            trace,
            "rand",
            "adp",
            seed=7,
            obs=ObsConfig(window_ns=25_000.0),
            scheduler=name,
        )
        path = tmp_path / f"{name}.jsonl"
        write_jsonl(res.obs, path)
        exports[name] = path.read_bytes()
    baseline = exports["heap"]
    assert baseline  # the export actually contains windows
    for name, blob in exports.items():
        assert blob == baseline, f"obs export under {name!r} diverged"


def test_runspec_key_ignores_scheduler():
    cfg = repro.tiny()
    trace = repro.fill_boundary_trace(num_ranks=8, seed=3).scaled(0.05)
    keys = {}
    for name in SCHEDULER_NAMES:
        plan = plan_grid(
            cfg, {"FB": trace}, ("cont",), ("min",), seed=7, scheduler=name
        )
        (spec,) = plan.specs
        assert spec.scheduler == name
        keys[name] = spec.key
    assert len(set(keys.values())) == 1, (
        "scheduler leaked into the cache identity hash: " f"{keys}"
    )
