"""Differential equivalence of the flow backend's performance knobs
through the real drivers.

The unit harnesses (``tests/unit/test_flow_vectorized.py``,
``tests/unit/test_fabric_array.py``) prove the max-min solvers and the
two fabric implementations agree on synthetic instances; this module
proves the promises the exec layer builds on top of them:

* the full tiny 5x2 placement x routing grid produces the same physics
  (every summary metric, the saturation clocks, per-rank finish and
  blocked times, ``sim_time_ns``) under either solver — and under
  either *fabric* (frozen object reference vs array production path) —
  to relative error below ``1e-9``;
* solver choice, fabric choice, and ``flow_batch`` are invisible to
  the cache — the planned ``RunSpec`` keys are identical under all,
  and a warm cache written under one fabric serves byte-identical
  results under the other;
* running cells through :class:`repro.flow.BatchedFlowRunner` (any
  batch size, serial or pooled) is *bit-identical* to the unbatched
  path — batching is pure scheduling;
* within one fabric, the ``(time, seq)`` event order is bit-identical
  across schedulers and worker counts (the packet backend's
  determinism contract, carried over);
* a seeded fuzz sweep over traces and message scales keeps both
  agreements honest away from the committed golden scenarios (full
  sweep is ``slow``; one slice always runs in CI).

Fabric fingerprints compare *raw* (full-precision) metric values, not
the rounded ``summary()`` view: the summary quantises to 1e-6, which
amplifies a one-byte ``rint`` flip on an 11 MB counter (raw rel err
~1e-13, honestly inside the 1e-9 contract) into an apparent 1e-7 gap.
"""

from __future__ import annotations

import math

import pytest

import repro
from repro.exec.plan import plan_grid
from repro.flow.solver import SAT_RTOL
from repro.routing import ROUTING_NAMES

REL_ERR = 1e-9

# The fuzz grid: (trace builder, num_ranks, trace seed, message scale).
_FUZZ_CASES = [
    ("fill_boundary_trace", 8, 3, 0.05),
    ("fill_boundary_trace", 8, 11, 0.2),
    ("fill_boundary_trace", 16, 4, 0.1),
    ("crystal_router_trace", 8, 5, 0.05),
    ("crystal_router_trace", 16, 9, 0.02),
    ("amg_trace", 8, 2, 0.05),
    ("amg_trace", 16, 7, 0.1),
]
# The non-slow CI slice: one case per distinct trace family.
_FAST_SLICE = {0, 3, 5}


def _trace(builder: str, num_ranks: int, seed: int, scale: float):
    make = getattr(repro, builder)
    return make(num_ranks=num_ranks, seed=seed).scaled(scale)


def _run_grid(
    monkeypatch,
    *,
    solver=None,
    fabric="object",
    trace=None,
    scheduler="heap",
    **run_kw,
):
    """Run the tiny FB grid under one (solver, fabric) setting.

    The solver comparisons pin ``fabric="object"`` by default: the
    solver knob only selects the object fabric's solve implementation
    (the array fabric's incremental solve is built in), so comparing
    solvers at the array default would be vacuous.
    """
    if solver is None:
        monkeypatch.delenv("REPRO_FLOW_SOLVER", raising=False)
    else:
        monkeypatch.setenv("REPRO_FLOW_SOLVER", solver)
    if fabric is None:
        monkeypatch.delenv("REPRO_FLOW_FABRIC", raising=False)
    else:
        monkeypatch.setenv("REPRO_FLOW_FABRIC", fabric)
    if trace is None:
        trace = _trace("fill_boundary_trace", 8, 3, 0.05)
    return repro.TradeoffStudy(
        repro.tiny(), {"FB": trace}, seed=7, backend="flow",
        scheduler=scheduler,
    ).run(**run_kw)


def _fingerprint(solver: str | None, monkeypatch, *, trace=None, **run_kw):
    """Per-cell physics of the tiny FB grid under one solver setting."""
    study = _run_grid(monkeypatch, solver=solver, trace=trace, **run_kw)
    out = {}
    for key, result in study.runs.items():
        out[key] = (
            result.metrics.summary(),
            result.sim_time_ns,
            result.nonminimal_fraction,
            result.job.finish_time_ns.tolist(),
            result.job.blocked_time_ns.tolist(),
        )
    return out


def _raw_fingerprint(fabric: str | None, monkeypatch, *, trace=None, **run_kw):
    """Full-precision per-cell physics under one fabric setting."""
    study = _run_grid(monkeypatch, fabric=fabric, trace=trace, **run_kw)
    out = {}
    for key, result in study.runs.items():
        m = result.metrics
        out[key] = (
            {
                "max_comm_time_ns": m.max_comm_time_ns,
                "median_comm_time_ns": m.median_comm_time_ns,
                "avg_hops": float(m.avg_hops.mean()),
                "local_traffic_bytes": m.local_traffic_bytes.tolist(),
                "global_traffic_bytes": m.global_traffic_bytes.tolist(),
                "local_sat_ns": float(m.local_sat_ns.sum()),
                "global_sat_ns": float(m.global_sat_ns.sum()),
            },
            result.sim_time_ns,
            result.nonminimal_fraction,
            result.job.finish_time_ns.tolist(),
            result.job.blocked_time_ns.tolist(),
        )
    return out


#: Per-field absolute tolerance floors, applied per element. The
#: ``bytes_tx`` counters are ``rint``-quantized int64 values of a float
#: transfer ledger, so a sub-ulp accumulation-order difference between
#: fabrics can flip one boundary byte per link; one byte is each
#: counter's honest resolution — rel 1e-9 of a <1 GB counter is *below*
#: one byte, so without this floor the contract would demand
#: sub-quantum agreement (the fingerprints keep these per-link so the
#: quantum never has to scale with link count).
_FIELD_ABS = {"local_traffic_bytes": 1.0, "global_traffic_bytes": 1.0}


def _assert_cells_close(a, b, rel=REL_ERR):
    """Every metric of every cell agrees to relative error < ``rel``."""
    assert a.keys() == b.keys()
    for key in a:
        sa, ta, nma, fa, ba = a[key]
        sb, tb, nmb, fb, bb = b[key]
        assert sa.keys() == sb.keys(), key
        for name in sa:
            abs_tol = _FIELD_ABS.get(name, 0.0)
            va, vb = sa[name], sb[name]
            pairs = (
                zip(va, vb, strict=True)
                if isinstance(va, list)
                else ((va, vb),)
            )
            for xa, xb in pairs:
                assert math.isclose(
                    xa, xb, rel_tol=rel, abs_tol=abs_tol
                ), (key, name, xa, xb)
        assert math.isclose(ta, tb, rel_tol=rel, abs_tol=0.0), key
        assert math.isclose(nma, nmb, rel_tol=rel, abs_tol=0.0), key
        for xa, xb in zip(fa, fb, strict=True):
            assert math.isclose(xa, xb, rel_tol=rel, abs_tol=0.0), key
        for xa, xb in zip(ba, bb, strict=True):
            assert math.isclose(xa, xb, rel_tol=rel, abs_tol=0.0), key


class TestSolverEquivalence:
    def test_full_grid_scalar_vs_vector(self, monkeypatch):
        """Every metric of every tiny 5x2 cell agrees to < 1e-9."""
        scalar = _fingerprint("scalar", monkeypatch)
        vector = _fingerprint("vector", monkeypatch)
        assert len(scalar) == 10
        _assert_cells_close(scalar, vector)

    def test_default_is_vector(self, monkeypatch):
        """With the env unset the fabric runs the vectorized default."""
        default = _fingerprint(None, monkeypatch)
        vector = _fingerprint("vector", monkeypatch)
        assert default == vector

    def test_solver_tolerance_is_tighter_than_saturation_band(self):
        """The equivalence bar must out-resolve the physics it guards:
        if solvers drifted apart by more than the saturation detection
        tolerance, saturated-link sets could legitimately differ."""
        assert REL_ERR <= SAT_RTOL

    def test_cache_keys_identical_under_both_solvers(self, monkeypatch):
        """Solver choice is a pure performance knob: the planned
        ``RunSpec`` keys — the exec cache identity — never see it."""
        keys = {}
        for solver in ("scalar", "vector"):
            monkeypatch.setenv("REPRO_FLOW_SOLVER", solver)
            plan = plan_grid(
                repro.tiny(),
                {"FB": _trace("fill_boundary_trace", 8, 3, 0.05)},
                repro.PLACEMENT_NAMES,
                ROUTING_NAMES,
                seed=7,
                backend="flow",
            )
            keys[solver] = plan.keys()
        assert keys["scalar"] == keys["vector"]


class TestBatchedEquivalence:
    def test_batched_matches_serial_bit_for_bit(self, monkeypatch):
        """``flow_batch`` never changes results — partial chunks, one
        giant chunk, or off; batching is pure task scheduling."""
        baseline = _fingerprint("vector", monkeypatch, flow_batch=0)
        for batch in (3, 100):
            batched = _fingerprint("vector", monkeypatch, flow_batch=batch)
            assert batched == baseline, f"flow_batch={batch}"

    def test_batched_pool_matches_serial(self, monkeypatch):
        """The worker-pool chunk path returns the same bits too."""
        baseline = _fingerprint("vector", monkeypatch, flow_batch=0)
        pooled = _fingerprint(
            "vector", monkeypatch, flow_batch=4, max_workers=2
        )
        assert pooled == baseline

    def test_batched_scalar_solver_composes(self, monkeypatch):
        """The batch runner honours the solver env like everything
        else: batched-scalar equals serial-scalar exactly."""
        serial = _fingerprint("scalar", monkeypatch, flow_batch=0)
        batched = _fingerprint("scalar", monkeypatch, flow_batch=5)
        assert batched == serial


class TestFabricEquivalence:
    def test_full_grid_object_vs_array(self, monkeypatch):
        """The array fabric reproduces the frozen object reference on
        every cell of the full tiny 5x2 grid to raw rel err < 1e-9."""
        obj = _raw_fingerprint("object", monkeypatch)
        arr = _raw_fingerprint("array", monkeypatch)
        assert len(obj) == 10
        _assert_cells_close(obj, arr)

    def test_default_is_array(self, monkeypatch):
        """With the env unset the runner builds the array fabric — and
        the explicit name is the same code path, bit for bit."""
        default = _raw_fingerprint(None, monkeypatch)
        array = _raw_fingerprint("array", monkeypatch)
        assert default == array

    def test_fabric_tolerance_is_tighter_than_saturation_band(self):
        """Same bar as the solver contract: if fabrics drifted apart
        past the saturation tolerance, saturated-link sets could
        legitimately diverge and the comparison would be meaningless."""
        assert REL_ERR <= SAT_RTOL

    def test_cache_keys_identical_under_both_fabrics(self, monkeypatch):
        """Fabric choice is a pure performance knob: the planned
        ``RunSpec`` keys — the exec cache identity — never see it."""
        keys = {}
        for fabric in ("object", "array"):
            monkeypatch.setenv("REPRO_FLOW_FABRIC", fabric)
            plan = plan_grid(
                repro.tiny(),
                {"FB": _trace("fill_boundary_trace", 8, 3, 0.05)},
                repro.PLACEMENT_NAMES,
                ROUTING_NAMES,
                seed=7,
                backend="flow",
            )
            keys[fabric] = plan.keys()
        assert keys["object"] == keys["array"]

    def test_array_bit_identical_across_schedulers(self, monkeypatch):
        """The array fabric preserves the engine's determinism
        contract: heap and calendar event queues replay the identical
        ``(time, seq)`` order, so physics match bit for bit."""
        heap = _raw_fingerprint("array", monkeypatch, scheduler="heap")
        calendar = _raw_fingerprint("array", monkeypatch, scheduler="calendar")
        assert heap == calendar

    def test_array_bit_identical_across_workers(self, monkeypatch):
        """Sharding cells over a process pool never perturbs the array
        fabric's results — each cell is a self-contained simulation."""
        serial = _raw_fingerprint("array", monkeypatch)
        pooled = _raw_fingerprint("array", monkeypatch, max_workers=2)
        assert serial == pooled

    def test_array_batched_bit_identical(self, monkeypatch):
        """``flow_batch`` chunking composes with the array fabric the
        same way it does with the object one: pure scheduling."""
        plain = _raw_fingerprint("array", monkeypatch, flow_batch=0)
        batched = _raw_fingerprint("array", monkeypatch, flow_batch=4)
        assert plain == batched

    def test_warm_cache_serves_across_fabrics(self, monkeypatch, tmp_path):
        """A cache written under the object fabric serves the array
        run entirely from disk (and vice versa would too): the knob is
        invisible to the cache identity, so the second study simulates
        nothing and returns the first run's bytes."""
        cold = _run_grid(monkeypatch, fabric="object", cache_dir=tmp_path)
        assert cold.report.cached == 0 and cold.report.done == 10
        warm = _run_grid(monkeypatch, fabric="array", cache_dir=tmp_path)
        assert warm.report.cached == 10 and warm.report.done == 0
        for key in cold.runs:
            assert (
                warm.runs[key].metrics.summary()
                == cold.runs[key].metrics.summary()
            ), key


def _fuzz_params():
    for i, case in enumerate(_FUZZ_CASES):
        marks = [] if i in _FAST_SLICE else [pytest.mark.slow]
        yield pytest.param(*case, id=f"{case[0]}-r{case[1]}-s{case[2]}", marks=marks)


class TestDifferentialFuzz:
    @pytest.mark.parametrize(
        ("builder", "ranks", "seed", "scale"), list(_fuzz_params())
    )
    def test_random_cells_agree(self, builder, ranks, seed, scale, monkeypatch):
        """Seeded random workloads through the full driver: scalar and
        vector physics agree to < 1e-9 on every cell of every grid."""
        trace = _trace(builder, ranks, seed, scale)
        scalar = _fingerprint("scalar", monkeypatch, trace=trace)
        vector = _fingerprint("vector", monkeypatch, trace=trace)
        _assert_cells_close(scalar, vector)

    @pytest.mark.parametrize(
        ("builder", "ranks", "seed", "scale"), list(_fuzz_params())
    )
    def test_random_cells_fabrics_agree(
        self, builder, ranks, seed, scale, monkeypatch
    ):
        """The same seeded sweep for the fabric pair: object and array
        physics agree to < 1e-9 (raw values) on every cell."""
        trace = _trace(builder, ranks, seed, scale)
        obj = _raw_fingerprint("object", monkeypatch, trace=trace)
        arr = _raw_fingerprint("array", monkeypatch, trace=trace)
        _assert_cells_close(obj, arr)
