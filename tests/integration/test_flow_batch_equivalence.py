"""Scalar-vs-vector and batched-vs-serial equivalence through the
real drivers.

The unit harness (``tests/unit/test_flow_vectorized.py``) proves the
two max-min solvers agree on synthetic instances; this module proves
the promises the exec layer builds on top of them:

* the full tiny 5x2 placement x routing grid produces the same physics
  (every summary metric, the saturation clocks, per-rank finish and
  blocked times, ``sim_time_ns``) under either solver to relative
  error below ``1e-9``;
* solver choice and ``flow_batch`` are invisible to the cache — the
  planned ``RunSpec`` keys are identical under both;
* running cells through :class:`repro.flow.BatchedFlowRunner` (any
  batch size, serial or pooled) is *bit-identical* to the unbatched
  path — batching is pure scheduling;
* a seeded fuzz sweep over traces and message scales keeps the
  scalar/vector agreement honest away from the committed golden
  scenarios (full sweep is ``slow``; one slice always runs in CI).
"""

from __future__ import annotations

import math

import pytest

import repro
from repro.exec.plan import plan_grid
from repro.flow.solver import SAT_RTOL
from repro.routing import ROUTING_NAMES

REL_ERR = 1e-9

# The fuzz grid: (trace builder, num_ranks, trace seed, message scale).
_FUZZ_CASES = [
    ("fill_boundary_trace", 8, 3, 0.05),
    ("fill_boundary_trace", 8, 11, 0.2),
    ("fill_boundary_trace", 16, 4, 0.1),
    ("crystal_router_trace", 8, 5, 0.05),
    ("crystal_router_trace", 16, 9, 0.02),
    ("amg_trace", 8, 2, 0.05),
    ("amg_trace", 16, 7, 0.1),
]
# The non-slow CI slice: one case per distinct trace family.
_FAST_SLICE = {0, 3, 5}


def _trace(builder: str, num_ranks: int, seed: int, scale: float):
    make = getattr(repro, builder)
    return make(num_ranks=num_ranks, seed=seed).scaled(scale)


def _fingerprint(solver: str | None, monkeypatch, *, trace=None, **run_kw):
    """Per-cell physics of the tiny FB grid under one solver setting."""
    if solver is None:
        monkeypatch.delenv("REPRO_FLOW_SOLVER", raising=False)
    else:
        monkeypatch.setenv("REPRO_FLOW_SOLVER", solver)
    if trace is None:
        trace = _trace("fill_boundary_trace", 8, 3, 0.05)
    study = repro.TradeoffStudy(
        repro.tiny(), {"FB": trace}, seed=7, backend="flow"
    ).run(**run_kw)
    out = {}
    for key, result in study.runs.items():
        out[key] = (
            result.metrics.summary(),
            result.sim_time_ns,
            result.nonminimal_fraction,
            result.job.finish_time_ns.tolist(),
            result.job.blocked_time_ns.tolist(),
        )
    return out


def _assert_cells_close(a, b, rel=REL_ERR):
    """Every metric of every cell agrees to relative error < ``rel``."""
    assert a.keys() == b.keys()
    for key in a:
        sa, ta, nma, fa, ba = a[key]
        sb, tb, nmb, fb, bb = b[key]
        assert sa.keys() == sb.keys(), key
        for name in sa:
            assert math.isclose(sa[name], sb[name], rel_tol=rel, abs_tol=0.0), (
                key,
                name,
                sa[name],
                sb[name],
            )
        assert math.isclose(ta, tb, rel_tol=rel, abs_tol=0.0), key
        assert math.isclose(nma, nmb, rel_tol=rel, abs_tol=0.0), key
        for xa, xb in zip(fa, fb, strict=True):
            assert math.isclose(xa, xb, rel_tol=rel, abs_tol=0.0), key
        for xa, xb in zip(ba, bb, strict=True):
            assert math.isclose(xa, xb, rel_tol=rel, abs_tol=0.0), key


class TestSolverEquivalence:
    def test_full_grid_scalar_vs_vector(self, monkeypatch):
        """Every metric of every tiny 5x2 cell agrees to < 1e-9."""
        scalar = _fingerprint("scalar", monkeypatch)
        vector = _fingerprint("vector", monkeypatch)
        assert len(scalar) == 10
        _assert_cells_close(scalar, vector)

    def test_default_is_vector(self, monkeypatch):
        """With the env unset the fabric runs the vectorized default."""
        default = _fingerprint(None, monkeypatch)
        vector = _fingerprint("vector", monkeypatch)
        assert default == vector

    def test_solver_tolerance_is_tighter_than_saturation_band(self):
        """The equivalence bar must out-resolve the physics it guards:
        if solvers drifted apart by more than the saturation detection
        tolerance, saturated-link sets could legitimately differ."""
        assert REL_ERR <= SAT_RTOL

    def test_cache_keys_identical_under_both_solvers(self, monkeypatch):
        """Solver choice is a pure performance knob: the planned
        ``RunSpec`` keys — the exec cache identity — never see it."""
        keys = {}
        for solver in ("scalar", "vector"):
            monkeypatch.setenv("REPRO_FLOW_SOLVER", solver)
            plan = plan_grid(
                repro.tiny(),
                {"FB": _trace("fill_boundary_trace", 8, 3, 0.05)},
                repro.PLACEMENT_NAMES,
                ROUTING_NAMES,
                seed=7,
                backend="flow",
            )
            keys[solver] = plan.keys()
        assert keys["scalar"] == keys["vector"]


class TestBatchedEquivalence:
    def test_batched_matches_serial_bit_for_bit(self, monkeypatch):
        """``flow_batch`` never changes results — partial chunks, one
        giant chunk, or off; batching is pure task scheduling."""
        baseline = _fingerprint("vector", monkeypatch, flow_batch=0)
        for batch in (3, 100):
            batched = _fingerprint("vector", monkeypatch, flow_batch=batch)
            assert batched == baseline, f"flow_batch={batch}"

    def test_batched_pool_matches_serial(self, monkeypatch):
        """The worker-pool chunk path returns the same bits too."""
        baseline = _fingerprint("vector", monkeypatch, flow_batch=0)
        pooled = _fingerprint(
            "vector", monkeypatch, flow_batch=4, max_workers=2
        )
        assert pooled == baseline

    def test_batched_scalar_solver_composes(self, monkeypatch):
        """The batch runner honours the solver env like everything
        else: batched-scalar equals serial-scalar exactly."""
        serial = _fingerprint("scalar", monkeypatch, flow_batch=0)
        batched = _fingerprint("scalar", monkeypatch, flow_batch=5)
        assert batched == serial


def _fuzz_params():
    for i, case in enumerate(_FUZZ_CASES):
        marks = [] if i in _FAST_SLICE else [pytest.mark.slow]
        yield pytest.param(*case, id=f"{case[0]}-r{case[1]}-s{case[2]}", marks=marks)


class TestDifferentialFuzz:
    @pytest.mark.parametrize(
        ("builder", "ranks", "seed", "scale"), list(_fuzz_params())
    )
    def test_random_cells_agree(self, builder, ranks, seed, scale, monkeypatch):
        """Seeded random workloads through the full driver: scalar and
        vector physics agree to < 1e-9 on every cell of every grid."""
        trace = _trace(builder, ranks, seed, scale)
        scalar = _fingerprint("scalar", monkeypatch, trace=trace)
        vector = _fingerprint("vector", monkeypatch, trace=trace)
        _assert_cells_close(scalar, vector)
