"""Integration tests: the paper's qualitative findings hold in the sim.

These run the actual experiment machinery on the `small` preset at
reduced message scales, asserting the *shape* of the Section IV results:
hops ordering across placements, localized-vs-balanced saturation
behaviour, and adaptive routing's congestion avoidance.
"""

import pytest

import repro


@pytest.fixture(scope="module")
def cr_runs():
    """CR at a load high enough to congest the contiguous block."""
    cfg = repro.small()
    trace = repro.crystal_router_trace(num_ranks=32, seed=2)
    return {
        (p, r): repro.run_single(cfg, trace, p, r, seed=2)
        for p in ("cont", "rotr", "rand")
        for r in ("min", "adp")
    }


class TestHopLocality:
    def test_placement_hop_ordering(self, cr_runs):
        """Finding §IV-A: localized placement reduces average hops."""
        cont = cr_runs[("cont", "min")].metrics.mean_hops
        rotr = cr_runs[("rotr", "min")].metrics.mean_hops
        rand = cr_runs[("rand", "min")].metrics.mean_hops
        assert cont < rand
        assert cont <= rotr <= rand

    def test_adaptive_adds_hops(self, cr_runs):
        """Adaptive routing pays extra hops for congestion avoidance."""
        for p in ("cont", "rand"):
            assert (
                cr_runs[(p, "adp")].metrics.mean_hops
                >= cr_runs[(p, "min")].metrics.mean_hops
            )

    def test_minimal_intra_group_hops_bounded(self, cr_runs):
        """Under contiguous+minimal a small job stays few-hop."""
        hops = cr_runs[("cont", "min")].metrics.avg_hops
        assert hops.max() <= 5.0


class TestLocalizedCongestion:
    def test_contiguous_suffers_more_local_saturation(self, cr_runs):
        """Paper §IV-A: 'contiguous placement suffers large local link
        saturation time because the majority of traffic is confined
        within a small group of routers'; random-node placement
        'reduces the saturation time on the links'."""
        cont = cr_runs[("cont", "min")].metrics.total_local_sat_ns
        rand = cr_runs[("rand", "min")].metrics.total_local_sat_ns
        assert cont > rand

    def test_random_spreads_over_more_channels(self, cr_runs):
        cont = cr_runs[("cont", "min")].metrics
        rand = cr_runs[("rand", "min")].metrics
        cont_used = (cont.local_traffic_bytes > 0).sum() + (
            cont.global_traffic_bytes > 0
        ).sum()
        rand_used = (rand.local_traffic_bytes > 0).sum() + (
            rand.global_traffic_bytes > 0
        ).sum()
        assert rand_used > cont_used

    def test_adaptive_reduces_local_saturation_under_contiguous(self, cr_runs):
        """Finding §IV-A (CR): adaptive 'helps reduce saturation
        noticeably on local links' for localized placement."""
        min_sat = cr_runs[("cont", "min")].metrics.total_local_sat_ns
        adp_sat = cr_runs[("cont", "adp")].metrics.total_local_sat_ns
        assert min_sat > 0
        assert adp_sat < min_sat


class TestTrafficBalance:
    def test_random_raises_global_traffic(self, cr_runs):
        """Spreading ranks over groups moves traffic onto global links."""
        cont = cr_runs[("cont", "min")].metrics.total_global_traffic
        rand = cr_runs[("rand", "min")].metrics.total_global_traffic
        assert rand > cont

    def test_total_traffic_scales_with_hops(self, cr_runs):
        """More hops => more total bytes carried by the fabric."""
        cont = cr_runs[("cont", "min")].metrics
        rand = cr_runs[("rand", "min")].metrics
        cont_total = cont.total_local_traffic + cont.total_global_traffic
        rand_total = rand.total_local_traffic + rand.total_global_traffic
        assert rand_total > cont_total


class TestAppPreferences:
    """Each app's winning configuration (paper Figure 3)."""

    def test_amg_prefers_contiguous(self):
        """AMG: contiguous beats random-node (paper: ~2.3%)."""
        cfg = repro.small()
        trace = repro.amg_trace(num_ranks=32, seed=2)
        cont = repro.run_single(cfg, trace, "cont", "adp", seed=2)
        rand = repro.run_single(cfg, trace, "rand", "adp", seed=2)
        assert (
            cont.metrics.median_comm_time_ns < rand.metrics.median_comm_time_ns
        )

    def test_fb_prefers_adaptive(self):
        """FB: adaptive routing beats minimal under either placement."""
        cfg = repro.small()
        trace = repro.fill_boundary_trace(num_ranks=32, seed=2).scaled(0.05)
        for p in ("cont", "rand"):
            adp = repro.run_single(cfg, trace, p, "adp", seed=2)
            mn = repro.run_single(cfg, trace, p, "min", seed=2)
            assert (
                adp.metrics.median_comm_time_ns <= mn.metrics.median_comm_time_ns
            )

    def test_cr_low_intensity_prefers_contiguous(self):
        """Fig 7a: at very small message loads contiguous-minimal wins
        (fewer hops, no congestion to avoid)."""
        cfg = repro.small()
        trace = repro.crystal_router_trace(num_ranks=32, seed=2).scaled(0.02)
        cont = repro.run_single(cfg, trace, "cont", "min", seed=2)
        rand = repro.run_single(cfg, trace, "rand", "min", seed=2)
        assert (
            cont.metrics.median_comm_time_ns < rand.metrics.median_comm_time_ns
        )
