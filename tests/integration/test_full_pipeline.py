"""Full-pipeline integration: generators -> disk -> replay -> analysis."""

import numpy as np
import pytest

import repro
from repro.core.advisor import recommend
from repro.core.report import format_box_table, key_findings
from repro.core.study import TradeoffStudy
from repro.metrics.analysis import box_stats, cdf
from repro.mpi.dumpi import load_trace, save_trace


class TestTraceFileWorkflow:
    @pytest.mark.parametrize(
        "builder,scale",
        [
            (repro.crystal_router_trace, 0.05),
            (repro.fill_boundary_trace, 0.01),
            (repro.amg_trace, 0.5),
        ],
    )
    def test_disk_round_trip_preserves_simulation(self, tmp_path, builder, scale):
        """Replaying a trace loaded from disk gives the identical result
        as replaying the in-memory original."""
        cfg = repro.tiny()
        trace = builder(num_ranks=12, seed=7).scaled(scale)
        path = tmp_path / "app.dumpi"
        save_trace(trace, path)
        loaded = load_trace(path)

        a = repro.run_single(cfg, trace, "rotr", "adp", seed=7)
        b = repro.run_single(cfg, loaded, "rotr", "adp", seed=7)
        assert a.sim_time_ns == b.sim_time_ns
        assert np.array_equal(a.job.comm_time_ns, b.job.comm_time_ns)


class TestStudyToReportPipeline:
    def test_study_renders_and_finds(self):
        cfg = repro.tiny()
        traces = {"CR": repro.crystal_router_trace(num_ranks=10, seed=2).scaled(0.1)}
        result = TradeoffStudy(
            cfg, traces, placements=("cont", "rand"), routings=("min",), seed=2
        ).run()
        text = format_box_table(result.comm_time_boxes("CR"), "CR", unit="ms")
        assert "cont-min" in text and "rand-min" in text
        findings = key_findings(result)
        assert findings["CR"]["best"] in ("cont-min", "rand-min")

    def test_metrics_cdfs_consistent_with_raw_arrays(self):
        cfg = repro.tiny()
        trace = repro.amg_trace(num_ranks=8, seed=2).scaled(0.5)
        r = repro.run_single(cfg, trace, "cont", "min", seed=2)
        x, pct = cdf(r.metrics.local_traffic_bytes)
        assert x.size == r.metrics.local_traffic_bytes.size
        b = box_stats(r.metrics.comm_time_ns)
        assert b.minimum == r.metrics.comm_time_ns.min()


class TestAdvisorAgainstSimulation:
    def test_advisor_pick_beats_opposite_placement_on_average(self):
        """For heavy CR the advisor picks balanced placement; averaged
        over placement seeds (individual random draws vary) it beats
        the opposite (contiguous) placement under the same routing —
        the §IV-A claim the rule encodes. Uses the medium machine,
        whose group geometry matches the regime the rules were derived
        in."""
        cfg = repro.medium()
        trace = repro.crystal_router_trace(num_ranks=128, seed=3)
        rec = recommend(trace, cfg)
        assert rec.placement == "rand"
        opposite = "cont"
        seeds = (1, 2, 3)
        pick = np.mean(
            [
                repro.run_single(
                    cfg, trace, rec.placement, rec.routing, seed=s
                ).metrics.median_comm_time_ns
                for s in seeds
            ]
        )
        other = np.mean(
            [
                repro.run_single(
                    cfg, trace, opposite, rec.routing, seed=s
                ).metrics.median_comm_time_ns
                for s in seeds
            ]
        )
        assert pick < other


class TestBackgroundPipeline:
    def test_interference_grid_and_report(self):
        from repro.core.interference import BackgroundSpec, interference_study

        cfg = repro.tiny()
        trace = repro.amg_trace(num_ranks=8, seed=4).scaled(0.5)
        spec = BackgroundSpec("bursty", 16_384, 200_000.0, fanout=4)
        grid = interference_study(
            cfg, trace, spec, placements=("cont", "rand"), routings=("min",)
        )
        boxes = grid.comm_time_boxes("AMG")
        assert set(boxes) == {"cont-min", "rand-min"}
        for b in boxes.values():
            assert b.maximum >= b.minimum > 0
