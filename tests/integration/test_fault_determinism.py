"""Fault determinism: plans are part of the physics, not of the engine.

Two contracts (ISSUE 4 acceptance):

* a fault-free :class:`FaultPlan` — ``None`` or empty — leaves every
  result *bit-identical* to a run with no plan at all, down to the
  exported obs telemetry bytes;
* a seeded plan yields identical results under every scheduler and
  under serial vs. parallel execution, because fault onsets are
  ordinary ``(time, seq)`` calendar events.
"""

from __future__ import annotations

import pytest

import repro
from repro.core.runner import build_topology
from repro.engine import Simulator
from repro.engine.queues import SCHEDULER_NAMES
from repro.exec.plan import plan_grid
from repro.faults import FaultPlan, LinkFault, random_fault_plan
from repro.mpi import ReplayEngine
from repro.network import Fabric
from repro.obs import ObsConfig
from repro.obs.export import write_jsonl
from repro.placement.machine import Machine
from repro.routing import make_routing


def _trace():
    return repro.fill_boundary_trace(num_ranks=8, seed=3).scaled(0.05)


def _fingerprint(result):
    return (
        result.metrics.summary(),
        result.sim_time_ns,
        result.events,
        result.nonminimal_fraction,
        result.extra.get("faults"),
        result.job.finish_time_ns.tolist(),
        result.job.blocked_time_ns.tolist(),
    )


def _busiest_channel(cfg, trace):
    """(forward, reverse, healthy_finish_ns) of the hottest channel.

    A healthy low-level replay under cont/min finds the non-terminal
    link carrying the most bytes — killing it mid-run is guaranteed to
    strand queued or upstream packets, which is what exercises reroute.
    """
    topo = build_topology(cfg.topology)
    machine = Machine(cfg.topology)
    nodes = machine.allocate("cont", trace.num_ranks, seed=7)
    sim = Simulator()
    fab = Fabric(sim, topo, cfg.network, make_routing("min", seed=7))
    engine = ReplayEngine(sim, fab)
    engine.add_job(0, trace, nodes)
    engine.run(target_job=0)
    links = topo.links
    busiest = max(
        (
            lid
            for lid in range(topo.num_links)
            if not links.kind_of(lid).is_terminal
        ),
        key=lambda lid: (fab.bytes_tx[lid], -lid),
    )
    assert fab.bytes_tx[busiest] > 0
    rev = next(
        other
        for other in range(topo.num_links)
        if links._src[other] == links._dst[busiest]
        and links._dst[other] == links._src[busiest]
        and not links.kind_of(other).is_terminal
    )
    return busiest, rev, sim.now


class TestFaultFreeBitIdentity:
    """No plan, ``None``, and the empty plan are the same physics."""

    def test_empty_plan_matches_no_plan_exactly(self):
        cfg = repro.tiny()
        trace = _trace()
        bare = repro.run_single(cfg, trace, "rand", "adp", seed=7)
        empty = repro.run_single(
            cfg, trace, "rand", "adp", seed=7, faults=FaultPlan()
        )
        assert _fingerprint(empty) == _fingerprint(bare)

    def test_empty_plan_obs_export_bytes_identical(self, tmp_path):
        cfg = repro.tiny()
        trace = _trace()
        obs = ObsConfig(window_ns=25_000.0)
        blobs = {}
        for tag, faults in (("none", None), ("empty", FaultPlan())):
            res = repro.run_single(
                cfg, trace, "rand", "adp", seed=7, obs=obs, faults=faults
            )
            path = tmp_path / f"{tag}.jsonl"
            write_jsonl(res.obs, path)
            blobs[tag] = path.read_bytes()
        assert blobs["none"]  # the export actually contains windows
        assert blobs["empty"] == blobs["none"]

    def test_empty_plan_shares_cache_identity_with_none(self):
        cfg = repro.tiny()
        trace = _trace()

        def key_for(faults):
            plan = plan_grid(
                cfg, {"FB": trace}, ("cont",), ("min",), seed=7, faults=faults
            )
            (spec,) = plan.specs
            return spec.key

        assert key_for(FaultPlan()) == key_for(None)
        seeded = random_fault_plan(build_topology(cfg.topology), 0.3, seed=1)
        assert key_for(seeded) != key_for(None)
        # Same plan content -> same key (value identity, not object).
        again = random_fault_plan(build_topology(cfg.topology), 0.3, seed=1)
        assert key_for(again) == key_for(seeded)


class TestSeededPlanDeterminism:
    @pytest.mark.parametrize("routing", ["min", "adp"])
    def test_midrun_kill_reroutes_identically_across_schedulers(self, routing):
        cfg = repro.tiny()
        trace = _trace()
        fwd, rev, finish_ns = _busiest_channel(cfg, trace)
        onset = 0.4 * finish_ns
        plan = FaultPlan(
            link_faults=(LinkFault(fwd, onset), LinkFault(rev, onset))
        )
        prints = {}
        for name in SCHEDULER_NAMES:
            res = repro.run_single(
                cfg,
                trace,
                "cont",
                routing,
                seed=7,
                faults=plan,
                scheduler=name,
            )
            assert res.extra["faults"]["packets_rerouted"] > 0
            assert res.extra["faults"]["links_failed"] == 2
            prints[name] = _fingerprint(res)
        baseline = prints["heap"]
        for name, print_ in prints.items():
            assert print_ == baseline, f"scheduler {name!r} diverged"

    def test_grid_identical_serial_vs_parallel(self):
        cfg = repro.tiny()
        trace = _trace()
        plan = random_fault_plan(
            build_topology(cfg.topology), 0.2, seed=11, degraded_fraction=0.3
        )
        assert not plan.is_empty()

        def grid(workers):
            study = repro.TradeoffStudy(
                cfg,
                {"FB": trace},
                placements=("cont", "rand"),
                routings=("min", "adp"),
                seed=7,
                faults=plan,
            ).run(max_workers=workers)
            return {
                key: _fingerprint(result)
                for key, result in study.runs.items()
            }

        serial = grid(1)
        assert len(serial) == 4
        assert grid(2) == serial

    def test_fault_events_land_in_obs_trace(self):
        cfg = repro.tiny()
        trace = _trace()
        fwd, rev, finish_ns = _busiest_channel(cfg, trace)
        onset = 0.4 * finish_ns
        plan = FaultPlan(
            link_faults=(LinkFault(fwd, onset), LinkFault(rev, onset))
        )
        res = repro.run_single(
            cfg,
            trace,
            "cont",
            "min",
            seed=7,
            faults=plan,
            obs=ObsConfig(window_ns=25_000.0),
        )
        faults = [e for e in res.obs.events if e.kind == "fault"]
        reroutes = [e for e in res.obs.events if e.kind == "reroute"]
        assert {e.link for e in faults} == {fwd, rev}
        assert all(e.t_ns == pytest.approx(onset) for e in faults)
        assert len(reroutes) == res.extra["faults"]["packets_rerouted"] > 0
        # Rerouted packets never enter the dead channel.
        assert all(e.link not in (fwd, rev) for e in reroutes)
