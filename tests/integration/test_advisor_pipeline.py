"""End-to-end advisor pipeline: warm cache -> train -> funnel -> stream.

Covers the load-bearing promises of DESIGN.md S20:

* a surrogate trained on an ordinary study cache ranks the real
  placement grid well enough that the funnel's final recommendation
  matches the *exhaustive* flow-backend optimum on the tiny 5x2 grid,
  for both minimal and adaptive routing (the PR's acceptance gate);
* the whole pipeline is deterministic: same cache, same seeds, same
  recommendation — and a warm funnel re-run simulates zero cells;
* the ``surrogate`` cluster-stream policy produces valid, reproducible
  streams whose allocations obey the machine invariants.
"""

from __future__ import annotations

import pytest

import repro
from repro.advisor import suggest_placement, train_surrogate
from repro.apps import APP_BUILDERS
from repro.cluster import run_stream
from repro.exec.cache import ResultCache
from repro.exec.plan import plan_grid
from repro.exec.pool import execute_plan
from repro.placement.policies import PLACEMENT_NAMES

RANKS = 8
SEED = 7
SCALE = 0.2


@pytest.fixture(scope="module")
def config():
    return repro.tiny()


@pytest.fixture(scope="module")
def traces():
    return {
        app: APP_BUILDERS[app](num_ranks=RANKS, seed=SEED).scaled(SCALE)
        for app in ("FB", "CR", "AMG")
    }


@pytest.fixture(scope="module")
def warm_cache(config, traces, tmp_path_factory):
    """A study-shaped training cache: full grid, both routings, flow."""
    cache = ResultCache(tmp_path_factory.mktemp("advisor-cache"))
    plan = plan_grid(
        config,
        traces,
        PLACEMENT_NAMES,
        ("min", "adp"),
        seed=SEED,
        backend="flow",
    )
    report = execute_plan(plan, cache=cache)
    report.raise_if_failed()
    return cache


@pytest.fixture(scope="module")
def model(config, traces, warm_cache):
    fitted, training = train_surrogate(config, traces, warm_cache)
    assert training.n_samples == 30  # 3 apps x 5 placements x 2 routings
    assert fitted.score(training.features, training.targets) > 0.9
    return fitted


class TestFunnelAgreement:
    @pytest.mark.parametrize("routing", ["min", "adp"])
    def test_funnel_matches_exhaustive_flow_optimum(
        self, config, traces, model, warm_cache, routing
    ):
        """The acceptance criterion: on the tiny 5x2 grid the funnel's
        recommendation equals the best placement found by exhaustively
        running the flow backend, for both routings."""
        res = suggest_placement(
            config,
            traces["FB"],
            routing,
            model,
            per_policy=1,
            screen_top=3,
            validate_top=2,
            seed=3,
            cache=warm_cache,
            exhaustive=True,
        )
        ex = res.exhaustive
        assert ex is not None
        assert ex["agree_placement"], (
            f"funnel chose {res.chosen.label}, exhaustive optimum is "
            f"{ex['best_placement']}#{ex['best_draw']}"
        )
        assert ex["agree_nodes"]
        # The funnel saw strictly fewer full-fidelity cells than the
        # exhaustive sweep at its widest tier.
        assert res.screened < res.ranked or res.ranked <= 3

    @pytest.mark.parametrize("routing", ["min", "adp"])
    def test_funnel_is_deterministic_and_cache_warm(
        self, config, traces, model, warm_cache, routing
    ):
        kwargs = dict(
            per_policy=1,
            screen_top=3,
            validate_top=2,
            seed=3,
            cache=warm_cache,
        )
        a = suggest_placement(
            config, traces["FB"], routing, model, **kwargs
        )
        b = suggest_placement(
            config, traces["FB"], routing, model, **kwargs
        )
        assert a.chosen.nodes == b.chosen.nodes
        assert a.chosen.flow_ns == b.chosen.flow_ns
        assert a.chosen.packet_ns == b.chosen.packet_ns
        assert [c.predicted for c in a.ranking] == [
            c.predicted for c in b.ranking
        ]
        for tier in b.tiers[1:]:
            assert tier.simulated == 0


class TestSurrogateStreamPolicy:
    def test_stream_runs_and_is_deterministic(self, config, model, tmp_path):
        kwargs = dict(
            mix="AMG=1,CR=1,FB=1",
            duration_s=900.0,
            load=0.5,
            policy="surrogate",
            routing="adp",
            backend="flow",
            seed=5,
            surrogate_model=model,
            cache=ResultCache(tmp_path / "stream-cache"),
        )
        a = run_stream(config, **kwargs)
        b = run_stream(config, **kwargs)
        assert len(a.completed) == len(b.completed)
        assert [j.id for j in a.jobs] == [j.id for j in b.jobs]
        assert [j.placement for j in a.jobs] == [
            j.placement for j in b.jobs
        ]
        assert [tuple(j.nodes) for j in a.jobs] == [
            tuple(j.nodes) for j in b.jobs
        ]
        # every allocation is a valid node set of the right size
        for job in a.jobs:
            assert len(set(job.nodes)) == len(job.nodes)

    def test_surrogate_policy_requires_model(self, config):
        with pytest.raises(ValueError, match="surrogate"):
            run_stream(config, policy="surrogate", duration_s=60.0)
