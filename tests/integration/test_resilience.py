"""Resilience study: degradation accounting over the faulted grid."""

from __future__ import annotations

import pytest

import repro
from repro.core.resilience import resilience_study


@pytest.fixture(scope="module")
def result():
    trace = repro.fill_boundary_trace(num_ranks=8, seed=3).scaled(0.05)
    return resilience_study(
        repro.tiny(),
        {"FB": trace},
        rates=[0.2],
        placements=("cont", "rand"),
        routings=("min", "adp"),
        seed=7,
        fault_seed=11,
    )


def test_rates_include_healthy_baseline(result):
    assert result.rates == (0.0, 0.2)
    assert result.plans[0.0] is None
    assert result.plans[0.2] is not None and not result.plans[0.2].is_empty()
    assert result.healthy is result.studies[0.0]


def test_degradation_is_relative_to_healthy(result):
    for label in result.labels():
        assert result.degradation_pct("FB", label, 0.0) == 0.0
        healthy = result.comm_time_ns("FB", label, 0.0)
        faulted = result.comm_time_ns("FB", label, 0.2)
        expected = 100.0 * (faulted - healthy) / healthy
        assert result.degradation_pct("FB", label, 0.2) == pytest.approx(
            expected
        )


def test_policy_degradation_averages_placements(result):
    policy = result.policy_degradation("FB", 0.2)
    assert set(policy) == {"min", "adp"}
    for routing in ("min", "adp"):
        per_placement = [
            result.degradation_pct("FB", f"{p}-{routing}", 0.2)
            for p in ("cont", "rand")
        ]
        assert policy[routing] == pytest.approx(
            sum(per_placement) / len(per_placement)
        )


def test_faulted_cells_report_fault_telemetry(result):
    digest = result.plans[0.2].digest
    for run in result.studies[0.2].runs.values():
        assert run.extra["faults"]["digest"] == digest
        assert run.extra["faults"]["links_failed"] > 0
    for run in result.studies[0.0].runs.values():
        assert "faults" not in run.extra


def test_json_export_shape(result, tmp_path):
    import json

    path = tmp_path / "res.json"
    result.save_json(path)
    data = json.loads(path.read_text())
    assert data["schema"] == "repro-resilience/v1"
    assert data["fault_seed"] == 11
    assert len(data["cells"]) == len(result.labels()) * 2  # 2 rates
    assert data["fault_plan_digests"] == {
        "0": None,
        "0.2": result.plans[0.2].digest,
    }


def test_rejects_out_of_range_rates():
    with pytest.raises(ValueError):
        resilience_study(repro.tiny(), {}, rates=[1.5])
