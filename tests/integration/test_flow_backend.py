"""Integration tests of the flow backend through the real drivers.

Covers the load-bearing promises of DESIGN.md S16:

* the fluid model is deterministic — bit-identical across event-queue
  schedulers and executor worker counts;
* predicted communication time is monotone in message size;
* on the tiny 5x2 grid it reproduces the packet backend's placement
  ranking (top-1 per routing, positive rank correlation) while being
  measurably faster;
* ``backend`` is part of the exec cache identity, while the default
  (``"packet"``) leaves existing keys and goldens untouched.
"""

from __future__ import annotations

import pytest

import repro
from repro.engine.queues import SCHEDULER_NAMES
from repro.exec.plan import plan_grid
from repro.flow.fidelity import fidelity_report


def _trace(scale=0.05):
    return repro.fill_boundary_trace(num_ranks=8, seed=3).scaled(scale)


def _grid_fingerprint(scheduler="heap", max_workers=1):
    """Every per-cell flow-backend summary of the tiny 5x2 FB grid.

    ``wall_s`` is deliberately absent: it is measurement, not physics.
    """
    study = repro.TradeoffStudy(
        repro.tiny(),
        {"FB": _trace()},
        seed=7,
        scheduler=scheduler,
        backend="flow",
    ).run(max_workers=max_workers)
    out = {}
    for key, result in study.runs.items():
        out[key] = (
            result.metrics.summary(),
            result.sim_time_ns,
            result.nonminimal_fraction,
            result.job.finish_time_ns.tolist(),
            result.job.blocked_time_ns.tolist(),
        )
    return out


class TestDeterminism:
    def test_bit_identical_across_schedulers(self):
        baseline = _grid_fingerprint("heap")
        assert len(baseline) == 10
        for name in SCHEDULER_NAMES:
            if name == "heap":
                continue
            assert _grid_fingerprint(name) == baseline

    def test_bit_identical_across_worker_counts(self):
        serial = _grid_fingerprint(max_workers=1)
        parallel = _grid_fingerprint(max_workers=2)
        assert parallel == serial

    def test_repeat_run_is_bit_identical(self):
        """Shared route-model memo warmth must never change results."""
        assert _grid_fingerprint() == _grid_fingerprint()


class TestMonotonicity:
    @pytest.mark.parametrize(
        ("placement", "routing"),
        [("cont", "min"), ("rand", "adp")],
    )
    def test_comm_time_grows_with_message_size(self, placement, routing):
        """Scaling every message up never speeds communication up."""
        cfg = repro.tiny()
        last_max = last_median = 0.0
        for scale in (0.05, 0.2, 0.5, 1.0):
            res = repro.run_single(
                cfg,
                _trace(scale),
                placement,
                routing,
                seed=7,
                backend="flow",
            )
            summary = res.metrics.summary()
            assert summary["max_comm_ms"] > last_max
            assert summary["median_comm_ms"] > last_median
            last_max = summary["max_comm_ms"]
            last_median = summary["median_comm_ms"]


class TestCrossFidelity:
    @pytest.fixture(scope="class")
    def fid(self):
        return fidelity_report(
            repro.tiny(), {"FB": _trace(scale=0.2)}, seed=7
        )

    def test_top1_placement_agrees_per_routing(self, fid):
        assert fid.top1_agreement(), fid.format_table()

    def test_rank_correlation_positive(self, fid):
        for routing in ("min", "adp"):
            tau = fid.rank["FB"][routing]["kendall_tau"]
            assert tau >= 0.2, (routing, tau, fid.format_table())

    def test_flow_is_faster_than_packet(self, fid):
        # The CI smoke gate demands 5x on the unscaled study; here a
        # lenient floor keeps the signal robust on noisy CI hosts.
        assert fid.speedup > 2.0, fid.format_table()

    def test_traffic_volume_tracks_packet_model(self, fid):
        errs = fid.metric_errors()
        assert errs["global_traffic_mb"]["mean_abs"] < 0.25
        assert errs["local_traffic_mb"]["mean_abs"] < 0.25


class TestCacheIdentity:
    def test_backend_splits_cache_keys(self):
        cfg = repro.tiny()
        keys = {}
        for backend in ("packet", "flow"):
            plan = plan_grid(
                cfg,
                {"FB": _trace()},
                ("cont",),
                ("min",),
                seed=7,
                backend=backend,
            )
            (spec,) = plan.specs
            assert spec.backend == backend
            keys[backend] = spec.key
        assert keys["packet"] != keys["flow"]

    def test_default_backend_is_packet(self):
        plan = plan_grid(
            repro.tiny(), {"FB": _trace()}, ("cont",), ("min",), seed=7
        )
        (spec,) = plan.specs
        assert spec.backend == "packet"

    def test_flow_result_is_tagged(self):
        res = repro.run_single(
            repro.tiny(), _trace(), "cont", "min", seed=7, backend="flow"
        )
        assert res.backend == "flow"
        assert res.wall_s > 0.0

    def test_flow_rejects_observability(self):
        from repro.obs import ObsConfig

        with pytest.raises(ValueError, match="obs"):
            repro.run_single(
                repro.tiny(),
                _trace(),
                "cont",
                "min",
                seed=7,
                backend="flow",
                obs=ObsConfig(window_ns=10_000.0),
            )

    def test_flow_rejects_fault_plans(self):
        cfg = repro.tiny()
        topo = repro.Dragonfly(cfg.topology)
        plan = repro.random_fault_plan(topo, rate=0.5, seed=3)
        assert not plan.is_empty()
        with pytest.raises(ValueError, match="fault"):
            repro.run_single(
                cfg,
                _trace(),
                "cont",
                "min",
                seed=7,
                backend="flow",
                faults=plan,
            )

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            repro.run_single(
                repro.tiny(), _trace(), "cont", "min", backend="fluid"
            )
