"""Reproducibility: identical seeds give bit-identical results."""

import numpy as np
import pytest

import repro
from repro.core.study import TradeoffStudy


@pytest.mark.parametrize("placement", ["cont", "rand"])
@pytest.mark.parametrize("routing", ["min", "adp"])
def test_run_single_deterministic(placement, routing):
    cfg = repro.tiny()
    trace = repro.fill_boundary_trace(num_ranks=10, seed=5).scaled(0.01)
    a = repro.run_single(cfg, trace, placement, routing, seed=11)
    b = repro.run_single(cfg, trace, placement, routing, seed=11)
    assert a.sim_time_ns == b.sim_time_ns
    assert a.events == b.events
    assert (a.job.comm_time_ns == b.job.comm_time_ns).all()
    assert (a.metrics.local_traffic_bytes == b.metrics.local_traffic_bytes).all()
    assert (a.metrics.local_sat_ns == b.metrics.local_sat_ns).all()


def test_generators_deterministic():
    for builder in (
        repro.crystal_router_trace,
        repro.fill_boundary_trace,
        repro.amg_trace,
    ):
        a = builder(num_ranks=16, seed=7)
        b = builder(num_ranks=16, seed=7)
        for ra, rb in zip(a.ranks, b.ranks):
            assert ra.ops == rb.ops


def test_background_run_deterministic():
    from repro.core.interference import BackgroundSpec

    cfg = repro.tiny()
    trace = repro.amg_trace(num_ranks=8, seed=5).scaled(0.3)
    spec = BackgroundSpec("bursty", message_bytes=4096, interval_ns=50_000.0, fanout=3)
    a = repro.run_single(cfg, trace, "cont", "adp", seed=4, background=spec)
    b = repro.run_single(cfg, trace, "cont", "adp", seed=4, background=spec)
    assert a.sim_time_ns == b.sim_time_ns
    assert a.background_messages == b.background_messages


def test_study_deterministic():
    cfg = repro.tiny()
    traces = {"AMG": repro.amg_trace(num_ranks=8, seed=5).scaled(0.3)}
    kw = dict(placements=("cont", "rand"), routings=("min",), seed=9)
    r1 = TradeoffStudy(cfg, traces, **kw).run()
    r2 = TradeoffStudy(cfg, traces, **kw).run()
    for key in r1.runs:
        assert np.array_equal(
            r1.runs[key].job.comm_time_ns, r2.runs[key].job.comm_time_ns
        )


def test_different_seeds_differ():
    cfg = repro.tiny()
    trace = repro.crystal_router_trace(num_ranks=10, seed=5).scaled(0.1)
    a = repro.run_single(cfg, trace, "rand", "adp", seed=1)
    b = repro.run_single(cfg, trace, "rand", "adp", seed=2)
    # Different placement shuffles -> different dynamics.
    assert a.nodes != b.nodes
