"""Picklable cell runners used by the repro.exec tests.

These live in an importable module (not inside a test function) because
the parallel executor ships runners to worker processes by reference.
Fault injection is parameterised through ``RunSpec.tags``
(``"name=value"`` pairs) and coordinated across processes/attempts via
marker files in a scratch directory the test supplies.
"""

from __future__ import annotations

import dataclasses
import os
import time

import numpy as np

import repro
from repro.core.runner import RunResult
from repro.exec.plan import ExperimentPlan, plan_grid
from repro.metrics.collector import RunMetrics
from repro.mpi.trace import JobTrace, RankTrace


def tiny_trace(name: str = "T") -> JobTrace:
    """A two-rank ping trace — enough to exercise the machinery."""
    t0 = RankTrace(0)
    t0.send(1, 64)
    t1 = RankTrace(1)
    t1.recv(0, 64)
    return JobTrace(name, [t0, t1])


def make_stub_result(spec) -> RunResult:
    """A minimal but structurally complete RunResult for a spec."""
    arr = np.zeros(2)
    metrics = RunMetrics(arr, arr, arr, arr, arr, arr)
    return RunResult(
        app=spec.app,
        placement=spec.placement,
        routing=spec.routing,
        seed=spec.seed,
        job=None,
        metrics=metrics,
        nodes=[0, 1],
        sim_time_ns=1.0,
        events=1,
    )


def stub_plan(n_seeds: int = 1, tags: tuple = (), **kw) -> ExperimentPlan:
    """A small 2-cell-per-seed plan whose cells carry ``tags``."""
    plans = [
        plan_grid(
            repro.tiny(),
            {"A": tiny_trace("A")},
            ("cont", "rand"),
            ("min",),
            seed=s,
            **kw,
        )
        for s in range(n_seeds)
    ]
    specs = tuple(
        dataclasses.replace(s, tags=tuple(tags))
        for p in plans
        for s in p.specs
    )
    return ExperimentPlan(
        config=plans[0].config, specs=specs, traces=plans[0].traces
    )


def _tag(spec, name: str) -> str | None:
    for tag in spec.tags:
        key, _, value = tag.partition("=")
        if key == name:
            return value
    return None


def stub_runner(config, spec, trace) -> RunResult:
    """Instant success — for scheduling/caching/progress tests."""
    return make_stub_result(spec)


def flaky_runner(config, spec, trace) -> RunResult:
    """Raises on the first ``fail_times`` attempts, then succeeds.

    Attempts are counted in ``<scratch>/attempts-<key>`` so the count
    survives retries in other worker processes.
    """
    scratch = _tag(spec, "scratch")
    fail_times = int(_tag(spec, "fail_times"))
    marker = os.path.join(scratch, f"attempts-{spec.key}")
    n = 0
    if os.path.exists(marker):
        with open(marker) as fh:
            n = int(fh.read())
    with open(marker, "w") as fh:
        fh.write(str(n + 1))
    if n < fail_times:
        raise RuntimeError(f"injected failure on attempt {n + 1}")
    return make_stub_result(spec)


def crashing_runner(config, spec, trace) -> RunResult:
    """Hard-kills the worker process once, then succeeds.

    ``os._exit`` bypasses all exception handling, so the executor sees
    a BrokenProcessPool — the real worker-crash path, not a pickled
    exception.
    """
    scratch = _tag(spec, "scratch")
    marker = os.path.join(scratch, f"crash-{spec.key}")
    if not os.path.exists(marker):
        with open(marker, "w") as fh:
            fh.write("x")
        os._exit(17)
    return make_stub_result(spec)


def sleepy_runner(config, spec, trace) -> RunResult:
    """Sleeps ``sleep`` seconds — for per-cell timeout tests."""
    time.sleep(float(_tag(spec, "sleep")))
    return make_stub_result(spec)


def picky_runner(config, spec, trace) -> RunResult:
    """Fails only cells tagged ``poison=1`` — for chunk-isolation tests."""
    if _tag(spec, "poison"):
        raise RuntimeError("poisoned cell")
    return make_stub_result(spec)
