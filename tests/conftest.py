"""Shared fixtures, marker wiring, and the golden-update flow."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.config import DragonflyParams, tiny, small
from repro.core.runner import build_topology


def pytest_addoption(parser):
    parser.addoption(
        "--update-goldens",
        action="store_true",
        default=False,
        help="rewrite golden-metrics fixtures from the current code "
        "instead of comparing against them (review the diff!)",
    )


def pytest_collection_modifyitems(config, items):
    """Auto-apply suite markers by directory.

    ``tests/unit`` -> ``unit``, ``tests/integration`` -> ``integration``,
    so ``-m unit`` / ``-m 'not slow'`` work without per-file boilerplate.
    ``slow`` stays a manual, per-test mark.
    """
    root = Path(str(config.rootpath))
    for item in items:
        try:
            rel = Path(str(item.fspath)).relative_to(root)
        except ValueError:
            continue
        parts = rel.parts
        if len(parts) >= 2 and parts[0] == "tests":
            if parts[1] == "unit":
                item.add_marker(pytest.mark.unit)
            elif parts[1] == "integration":
                item.add_marker(pytest.mark.integration)


@pytest.fixture(scope="session")
def update_goldens(request) -> bool:
    """True when the run should rewrite golden fixtures in place."""
    return bool(request.config.getoption("--update-goldens"))


@pytest.fixture(scope="session")
def tiny_config():
    """24-node machine: 3 groups x (2x2 routers) x 2 nodes."""
    return tiny()


@pytest.fixture(scope="session")
def small_config():
    """80-node machine: 5 groups x (2x4 routers) x 2 nodes."""
    return small()


@pytest.fixture(scope="session")
def tiny_topo(tiny_config):
    return build_topology(tiny_config.topology)


@pytest.fixture(scope="session")
def small_topo(small_config):
    return build_topology(small_config.topology)


@pytest.fixture(scope="session")
def medium_params():
    """Mid-size parameter set used for topology property tests."""
    return DragonflyParams(
        groups=4, rows=3, cols=4, nodes_per_router=2,
        chassis_per_cabinet=3, global_links_per_pair=3,
    )
