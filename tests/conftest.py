"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.config import DragonflyParams, tiny, small
from repro.core.runner import build_topology


@pytest.fixture(scope="session")
def tiny_config():
    """24-node machine: 3 groups x (2x2 routers) x 2 nodes."""
    return tiny()


@pytest.fixture(scope="session")
def small_config():
    """80-node machine: 5 groups x (2x4 routers) x 2 nodes."""
    return small()


@pytest.fixture(scope="session")
def tiny_topo(tiny_config):
    return build_topology(tiny_config.topology)


@pytest.fixture(scope="session")
def small_topo(small_config):
    return build_topology(small_config.topology)


@pytest.fixture(scope="session")
def medium_params():
    """Mid-size parameter set used for topology property tests."""
    return DragonflyParams(
        groups=4, rows=3, cols=4, nodes_per_router=2,
        chassis_per_cabinet=3, global_links_per_pair=3,
    )
