"""run_single end-to-end unit tests."""

import pytest

import repro
from repro.core.interference import BackgroundSpec
from repro.core.runner import build_topology, run_single


@pytest.fixture(scope="module")
def cr_trace():
    return repro.crystal_router_trace(num_ranks=12, seed=1).scaled(0.05)


class TestRunSingle:
    def test_basic_run(self, cr_trace):
        cfg = repro.tiny()
        result = run_single(cfg, cr_trace, "cont", "min", seed=1)
        assert result.app == "CR"
        assert result.label == "cont-min"
        assert result.job.num_ranks == 12
        assert result.sim_time_ns > 0
        assert result.events > 0
        assert (result.job.comm_time_ns >= 0).all()

    def test_seed_defaults_to_config(self, cr_trace):
        cfg = repro.tiny().with_seed(9)
        result = run_single(cfg, cr_trace, "rand", "min")
        assert result.seed == 9

    def test_deterministic(self, cr_trace):
        cfg = repro.tiny()
        a = run_single(cfg, cr_trace, "rand", "adp", seed=3)
        b = run_single(cfg, cr_trace, "rand", "adp", seed=3)
        assert a.sim_time_ns == b.sim_time_ns
        assert (a.job.comm_time_ns == b.job.comm_time_ns).all()
        assert a.nodes == b.nodes

    def test_seeds_differ(self, cr_trace):
        cfg = repro.tiny()
        a = run_single(cfg, cr_trace, "rand", "adp", seed=3)
        b = run_single(cfg, cr_trace, "rand", "adp", seed=4)
        assert a.nodes != b.nodes

    def test_nonminimal_fraction_only_for_adaptive(self, cr_trace):
        cfg = repro.tiny()
        r_min = run_single(cfg, cr_trace, "cont", "min", seed=1)
        assert r_min.nonminimal_fraction == 0.0

    def test_background_runs(self, cr_trace):
        cfg = repro.tiny()
        bg = BackgroundSpec("uniform", message_bytes=512, interval_ns=5_000.0)
        result = run_single(cfg, cr_trace, "cont", "min", seed=1, background=bg)
        assert result.background_messages > 0

    def test_record_sends(self, cr_trace):
        cfg = repro.tiny()
        result = run_single(cfg, cr_trace, "cont", "min", seed=1, record_sends=True)
        assert result.job.send_events
        times = [t for t, _, _ in result.job.send_events]
        assert times == sorted(times)

    def test_max_events_guard(self, cr_trace):
        cfg = repro.tiny()
        with pytest.raises(RuntimeError, match="exceeded"):
            run_single(cfg, cr_trace, "cont", "min", seed=1, max_events=10)


class TestBuildTopology:
    def test_memoised(self):
        cfg = repro.tiny()
        assert build_topology(cfg.topology) is build_topology(cfg.topology)

    def test_distinct_params_distinct_topologies(self):
        assert build_topology(repro.tiny().topology) is not build_topology(
            repro.small().topology
        )
