"""Multi-job cluster workload tests."""

import math

import pytest

import repro
from repro.core.cluster import JobSpec, run_cluster


@pytest.fixture(scope="module")
def two_job_result():
    cfg = repro.small()
    specs = [
        JobSpec(
            repro.crystal_router_trace(num_ranks=24, seed=1).scaled(0.3),
            placement="cont",
        ),
        JobSpec(
            repro.amg_trace(num_ranks=24, seed=2),
            placement="cont",
            arrival_ns=5_000.0,
        ),
    ]
    return run_cluster(cfg, specs, routing="adp", seed=3)


class TestRunCluster:
    def test_all_jobs_finish(self, two_job_result):
        assert len(two_job_result.jobs) == 2
        for j in two_job_result.jobs:
            assert (j.job.finish_time_ns >= j.start_ns).all()
        assert two_job_result.makespan_ns > 0

    def test_disjoint_allocations(self, two_job_result):
        a, b = two_job_result.jobs
        assert not set(a.nodes) & set(b.nodes)

    def test_arrival_delays_start(self, two_job_result):
        amg = two_job_result.by_name("AMG")
        assert amg.start_ns == 5_000.0
        assert (amg.job.finish_time_ns >= 5_000.0).all()

    def test_interference_slowdown_measured(self, two_job_result):
        for j in two_job_result.jobs:
            assert j.isolated_comm_ns is not None and j.isolated_comm_ns > 0
            assert not math.isnan(j.slowdown)
            # Sharing never speeds a job up (beyond numeric noise).
            assert j.slowdown >= 0.95

    def test_to_text(self, two_job_result):
        text = two_job_result.to_text()
        assert "CR" in text and "AMG" in text and "makespan" in text

    def test_by_name_unknown(self, two_job_result):
        with pytest.raises(KeyError):
            two_job_result.by_name("LINPACK")


class TestValidation:
    def test_empty_specs(self):
        with pytest.raises(ValueError):
            run_cluster(repro.tiny(), [])

    def test_negative_arrival(self):
        with pytest.raises(ValueError):
            JobSpec(repro.amg_trace(num_ranks=8, seed=1), arrival_ns=-1.0)

    def test_over_subscription(self):
        cfg = repro.tiny()  # 24 nodes
        specs = [
            JobSpec(repro.amg_trace(num_ranks=16, seed=1)),
            JobSpec(repro.amg_trace(num_ranks=16, seed=2)),
        ]
        with pytest.raises(ValueError, match="free"):
            run_cluster(cfg, specs)


class TestInterferencePhysics:
    def test_colocated_jobs_interfere_more_than_isolated(self):
        """Two heavy jobs interleaved node-by-node slow each other more
        than the same jobs placed contiguously apart (the bully effect
        from the authors' prior work)."""
        cfg = repro.small()

        def heavy(seed):
            return repro.fill_boundary_trace(num_ranks=24, seed=seed).scaled(0.03)

        spread = run_cluster(
            cfg,
            [JobSpec(heavy(1), "rand"), JobSpec(heavy(2), "rand")],
            routing="min",
            seed=5,
        )
        apart = run_cluster(
            cfg,
            [JobSpec(heavy(1), "cont"), JobSpec(heavy(2), "cont")],
            routing="min",
            seed=5,
        )
        mean_slow_spread = sum(j.slowdown for j in spread.jobs) / 2
        mean_slow_apart = sum(j.slowdown for j in apart.jobs) / 2
        assert mean_slow_apart <= mean_slow_spread + 0.05
