"""Unit tests for the flow backend's static route/weight model."""

from __future__ import annotations

import math

import pytest

import repro
from repro.flow.routes import (
    BACKEND_NAMES,
    FlowParams,
    FlowRouteModel,
    SPILL_QUANTA,
    flow_route_model,
)


@pytest.fixture(scope="module")
def topo():
    return repro.Dragonfly(repro.tiny().topology)


@pytest.fixture(scope="module")
def net():
    return repro.tiny().network


@pytest.fixture(scope="module")
def model(topo, net):
    return FlowRouteModel(topo, net, "min")


@pytest.fixture(scope="module")
def adp_model(topo, net):
    return FlowRouteModel(topo, net, "adp")


def _pairs(topo):
    """One representative (src, dst) node pair per locality class."""
    same_router = inter_group = intra_group = None
    for src in range(topo.num_nodes):
        for dst in range(topo.num_nodes):
            if src == dst:
                continue
            sr, dr = topo.router_of(src), topo.router_of(dst)
            if sr == dr and same_router is None:
                same_router = (src, dst)
            elif sr != dr:
                sg = topo.group_of_router(sr)
                dg = topo.group_of_router(dr)
                if sg == dg and intra_group is None:
                    intra_group = (src, dst)
                elif sg != dg and inter_group is None:
                    inter_group = (src, dst)
    assert same_router and intra_group and inter_group
    return same_router, intra_group, inter_group


class TestFlowParams:
    def test_defaults_valid(self):
        FlowParams()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"epoch_ns": -1.0},
            {"max_minimal": 0},
            {"max_valiant_groups": 0},
            {"minimal_bias_ns": -5.0},
            {"nonminimal_weight": 0.5},
        ],
    )
    def test_invalid_fields_raise(self, kwargs):
        with pytest.raises(ValueError):
            FlowParams(**kwargs)

    def test_backend_names(self):
        assert BACKEND_NAMES == ("packet", "flow")


class TestMinimalEntries:
    def test_unknown_routing_rejected(self, topo, net):
        with pytest.raises(ValueError, match="routing"):
            FlowRouteModel(topo, net, "valiant")

    def test_terminals_carry_every_byte(self, model, topo):
        for src, dst in _pairs(topo):
            entry = model.entry(src, dst)
            weights = dict(entry.links)
            assert weights[topo.terminal_in(src)] == 1.0
            assert weights[topo.terminal_out(dst)] == 1.0

    def test_rr_weights_sum_to_weighted_hops(self, model, topo):
        """Σ weight over router links == expected path length."""
        for src, dst in _pairs(topo):
            entry = model.entry(src, dst)
            t_in = topo.terminal_in(src)
            t_out = topo.terminal_out(dst)
            rr_weight = sum(
                w for lid, w in entry.links if lid not in (t_in, t_out)
            )
            assert math.isclose(rr_weight, entry.rr_hops, rel_tol=1e-12)

    def test_same_router_pair_is_terminals_only(self, model, topo):
        (src, dst), _, _ = _pairs(topo)
        entry = model.entry(src, dst)
        assert entry.rr_hops == 0.0
        assert len(entry.links) == 2
        assert entry.nonmin_fraction == 0.0

    def test_entries_are_memoised(self, model, topo):
        _, _, (src, dst) = _pairs(topo)
        assert model.entry(src, dst) is model.entry(src, dst)

    def test_minimal_entries_are_never_nonminimal(self, model, topo):
        for src, dst in _pairs(topo):
            assert model.entry(src, dst).nonmin_fraction == 0.0


class TestAdaptiveCandidates:
    def test_minimal_first_then_valiant(self, adp_model, topo):
        _, _, (src, dst) = _pairs(topo)
        cands = adp_model.candidates(src, dst)
        flags = [c.entry.nonmin_fraction for c in cands]
        # Minimal candidates (0.0) strictly precede Valiant ones (1.0).
        assert flags == sorted(flags)
        assert 0.0 in flags and 1.0 in flags

    def test_same_router_pair_has_no_detours(self, adp_model, topo):
        (src, dst), _, _ = _pairs(topo)
        cands = adp_model.candidates(src, dst)
        assert all(c.entry.nonmin_fraction == 0.0 for c in cands)
        assert all(c.rr_path == () for c in cands)

    def test_intra_group_detours_exist(self, adp_model, topo):
        _, (src, dst), _ = _pairs(topo)
        nonmin = [
            c for c in adp_model.candidates(src, dst)
            if c.entry.nonmin_fraction
        ]
        assert nonmin, "intra-group pairs must offer router detours"

    def test_valiant_paths_are_longer(self, adp_model, topo):
        _, _, (src, dst) = _pairs(topo)
        cands = adp_model.candidates(src, dst)
        min_len = min(
            len(c.rr_path) for c in cands if not c.entry.nonmin_fraction
        )
        for c in cands:
            if c.entry.nonmin_fraction:
                assert len(c.rr_path) > min_len

    def test_candidate_paths_are_distinct(self, adp_model, topo):
        for src, dst in _pairs(topo):
            paths = [c.rr_path for c in adp_model.candidates(src, dst)]
            assert len(paths) == len(set(paths))

    def test_candidates_are_memoised(self, adp_model, topo):
        _, (src, dst), _ = _pairs(topo)
        assert (
            adp_model.candidates(src, dst)
            is adp_model.candidates(src, dst)
        )


class TestSpill:
    def test_single_packet_stays_minimal(self, adp_model, net, topo):
        """One quantum never builds backlog, so no detour is taken."""
        for src, dst in _pairs(topo):
            entries = adp_model.spill(src, dst, net.packet_size, None)
            assert len(entries) == 1
            assert entries[0].nonmin_fraction == 0.0

    def test_long_message_spills_to_valiant(self, adp_model, net, topo):
        """A message far larger than a packet backs up its minimal
        first hops (the NIC feeds faster than one port drains) until
        the UGAL rule starts taking detours."""
        _, _, (src, dst) = _pairs(topo)
        size = net.packet_size * SPILL_QUANTA
        entries = adp_model.spill(src, dst, size, None)
        assert len(entries) > 1
        assert any(e.nonmin_fraction for e in entries)

    def test_idle_spill_is_memoised(self, adp_model, net, topo):
        _, _, (src, dst) = _pairs(topo)
        size = net.packet_size * 8
        assert adp_model.spill(src, dst, size, None) is adp_model.spill(
            src, dst, size, None
        )

    def test_zero_load_ledger_matches_idle_path(self, adp_model, net, topo):
        """An all-zeros ledger must give the idle (memoised) answer."""
        _, _, (src, dst) = _pairs(topo)
        size = net.packet_size * 8
        zeros = [0.0] * topo.num_links
        assert adp_model.spill(src, dst, size, zeros) == adp_model.spill(
            src, dst, size, None
        )

    def test_loaded_first_hop_diverts_earlier(self, adp_model, net, topo):
        """Pre-existing backlog on the minimal first hops lowers the
        detour threshold: the loaded spill takes at least as many
        non-minimal candidates as the idle one."""
        _, _, (src, dst) = _pairs(topo)
        size = net.packet_size * 4
        idle = adp_model.spill(src, dst, size, None)
        load = [0.0] * topo.num_links
        for cand in adp_model.candidates(src, dst):
            if cand.rr_path and not cand.entry.nonmin_fraction:
                load[cand.rr_path[0]] += 64 * net.packet_size
        loaded = adp_model.spill(src, dst, size, load)
        n_idle = sum(1 for e in idle if e.nonmin_fraction)
        n_loaded = sum(1 for e in loaded if e.nonmin_fraction)
        assert n_loaded >= max(n_idle, 1)


class TestSharedModel:
    def test_same_arguments_share_an_instance(self, topo, net):
        a = flow_route_model(topo, net, "min")
        b = flow_route_model(topo, net, "min")
        assert a is b

    def test_routing_splits_instances(self, topo, net):
        assert flow_route_model(topo, net, "min") is not flow_route_model(
            topo, net, "adp"
        )

    def test_params_split_instances(self, topo, net):
        assert flow_route_model(
            topo, net, "min", FlowParams(epoch_ns=100.0)
        ) is not flow_route_model(topo, net, "min")

    def test_default_params_normalise(self, topo, net):
        assert flow_route_model(topo, net, "min") is flow_route_model(
            topo, net, "min", FlowParams()
        )


class TestSpillEdgeCases:
    """Whitebox coverage of the spill loop's boundary behaviour."""

    def test_spill_quanta_cap_unifies_very_long_messages(
        self, adp_model, net, topo
    ):
        """Messages at and far beyond the emulation budget clamp to the
        same quanta count and therefore share one idle-memo entry —
        object identity proves the cap, not just equal answers."""
        _, _, (src, dst) = _pairs(topo)
        at_cap = net.packet_size * SPILL_QUANTA
        far_past_cap = 3 * at_cap
        assert adp_model.spill(src, dst, at_cap, None) is adp_model.spill(
            src, dst, far_past_cap, None
        )

    def test_below_cap_sizes_keep_distinct_memo_entries(
        self, adp_model, net, topo
    ):
        """One packet under the cap is a different quanta count, hence
        a different memo key (the cap must not swallow smaller sizes)."""
        _, _, (src, dst) = _pairs(topo)
        below = net.packet_size * (SPILL_QUANTA - 1)
        at_cap = net.packet_size * SPILL_QUANTA
        a = adp_model.spill(src, dst, below, None)
        b = adp_model.spill(src, dst, at_cap, None)
        assert a is not b

    def test_load_off_the_first_hops_still_hits_the_idle_memo(
        self, adp_model, net, topo
    ):
        """Only *first-hop* backlog can change a UGAL-L decision, so a
        ledger loaded anywhere else must be served from the idle memo
        (identity), keeping the common case cheap."""
        _, _, (src, dst) = _pairs(topo)
        size = net.packet_size * 8
        firsts = {
            cand.rr_path[0]
            for cand in adp_model.candidates(src, dst)
            if cand.rr_path
        }
        load = [0.0] * topo.num_links
        victim = next(
            lid for lid in range(topo.num_links) if lid not in firsts
        )
        load[victim] = 1e9
        assert adp_model.spill(src, dst, size, load) is adp_model.spill(
            src, dst, size, None
        )

    def test_first_hop_load_bypasses_but_never_poisons_the_memo(
        self, adp_model, net, topo
    ):
        """A loaded first hop forces a fresh emulation; the idle memo
        must keep serving the unloaded answer afterwards (a loaded
        result cached under the idle key would be stale the moment the
        backlog drains)."""
        _, _, (src, dst) = _pairs(topo)
        size = net.packet_size * 8
        idle = adp_model.spill(src, dst, size, None)
        load = [0.0] * topo.num_links
        for cand in adp_model.candidates(src, dst):
            if cand.rr_path and not cand.entry.nonmin_fraction:
                load[cand.rr_path[0]] += 64 * net.packet_size
        loaded = adp_model.spill(src, dst, size, load)
        assert loaded is not idle
        assert adp_model.spill(src, dst, size, None) is idle
        # And each loaded call re-emulates against the ledger it was
        # given — no memoisation keyed on a mutable list.
        assert adp_model.spill(src, dst, size, load) is not loaded

    def test_spill_set_is_monotone_in_message_size(
        self, adp_model, net, topo
    ):
        """More quanta only ever *add* candidates: the greedy loop's
        backlog is cumulative, so a candidate taken for a short message
        is taken for every longer one."""
        _, _, (src, dst) = _pairs(topo)
        prev: set = set()
        for quanta in (1, 2, 4, 8, 16, 32, SPILL_QUANTA):
            entries = adp_model.spill(
                src, dst, net.packet_size * quanta, None
            )
            got = {e.links for e in entries}
            assert prev <= got
            prev = got


class TestZeroLengthValiantLeg:
    """The empty intra-group leg (``intra(r, r) == ((),)``) composes
    into Valiant candidates whose accounting must stay exact."""

    def test_intra_same_router_is_one_empty_path(self, adp_model, topo):
        r = topo.router_of(0)
        assert adp_model.tables.intra(r, r) == ((),)

    def test_candidate_weight_accounting_is_exact(self, adp_model, topo):
        """For every adaptive candidate — including those whose Valiant
        head/tail legs are zero-length — the unit weights must satisfy:
        link weights sum to 2 (terminals) + path length, rr_hops equals
        the router-to-router path length, and latency is the exact sum
        of the traversed links' latencies."""
        lat = adp_model.lat
        for src, dst in _pairs(topo):
            t_in = topo.terminal_in(src)
            t_out = topo.terminal_out(dst)
            for cand in adp_model.candidates(src, dst):
                e = cand.entry
                weights = dict(e.links)
                assert weights[t_in] == 1.0
                assert weights[t_out] == 1.0
                assert sum(weights.values()) == 2.0 + len(cand.rr_path)
                assert e.rr_hops == float(len(cand.rr_path))
                want_lat = lat[t_in] + lat[t_out] + sum(
                    lat[lid] for lid in cand.rr_path
                )
                assert math.isclose(e.latency_ns, want_lat, rel_tol=1e-12)

    def test_valiant_paths_are_deduplicated(self, adp_model, topo):
        """Variant filling with empty legs can collide on the same
        router path; the candidate set must not repeat one."""
        _, _, (src, dst) = _pairs(topo)
        paths = [c.rr_path for c in adp_model.candidates(src, dst)]
        assert len(paths) == len(set(paths))
