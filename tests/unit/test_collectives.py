"""Collective-expansion correctness: traces balance and replay cleanly."""

from hypothesis import given, settings, strategies as st

from repro.config import tiny
from repro.core.runner import build_topology
from repro.engine.simulator import Simulator
from repro.mpi import collectives
from repro.mpi.replay import ReplayEngine
from repro.mpi.trace import JobTrace, RankTrace
from repro.network.fabric import Fabric
from repro.routing import MinimalRouting


def build_job(n, fill):
    ranks = []
    for i in range(n):
        t = RankTrace(i)
        fill(t, n)
        ranks.append(t)
    return JobTrace("coll", ranks)


def replay(job):
    cfg = tiny()
    topo = build_topology(cfg.topology)
    sim = Simulator()
    fabric = Fabric(sim, topo, cfg.network, MinimalRouting(seed=0))
    engine = ReplayEngine(sim, fabric)
    nodes = [i % topo.num_nodes for i in range(job.num_ranks)]
    engine.add_job(0, job, nodes)
    engine.run(target_job=0)
    return engine.job_result(0)


SIZES = st.integers(2, 9)


class TestAlltoall:
    @given(n=SIZES)
    @settings(max_examples=8, deadline=None)
    def test_balanced_and_replayable(self, n):
        job = build_job(n, lambda t, n: collectives.alltoall(t, n, 64, tag=0))
        job.validate()
        result = replay(job)
        assert (result.bytes_recv == 64 * (n - 1)).all()

    def test_every_pair_communicates(self):
        n = 8
        job = build_job(n, lambda t, n: collectives.alltoall(t, n, 10, tag=0))
        mat = job.communication_matrix()
        offdiag = mat + mat.T
        for i in range(n):
            for j in range(n):
                if i != j:
                    assert offdiag[i, j] > 0


class TestAllreduce:
    @given(n=SIZES)
    @settings(max_examples=8, deadline=None)
    def test_balanced_and_replayable(self, n):
        job = build_job(n, lambda t, n: collectives.allreduce(t, n, 32, tag=0))
        job.validate()
        replay(job)

    def test_power_of_two_rounds(self):
        n = 8
        job = build_job(n, lambda t, n: collectives.allreduce(t, n, 32, tag=0))
        # log2(8) = 3 rounds, each an irecv+isend pair per rank.
        assert job.ranks[0].num_sends() == 3


class TestAllgatherRing:
    @given(n=SIZES)
    @settings(max_examples=8, deadline=None)
    def test_balanced_and_replayable(self, n):
        job = build_job(
            n, lambda t, n: collectives.allgather_ring(t, n, 16, tag=0)
        )
        job.validate()
        replay(job)

    def test_ring_only_touches_neighbors(self):
        n = 6
        job = build_job(
            n, lambda t, n: collectives.allgather_ring(t, n, 16, tag=0)
        )
        mat = job.communication_matrix()
        for i in range(n):
            for j in range(n):
                if mat[i, j] > 0:
                    assert j == (i + 1) % n


class TestReduceScatterRing:
    @given(n=SIZES)
    @settings(max_examples=8, deadline=None)
    def test_balanced_and_replayable(self, n):
        job = build_job(
            n, lambda t, n: collectives.reduce_scatter_ring(t, n, 256, tag=0)
        )
        job.validate()
        replay(job)

    def test_round_structure(self):
        n, size = 8, 1024
        job = build_job(
            n, lambda t, n: collectives.reduce_scatter_ring(t, n, size, tag=0)
        )
        # N-1 rounds, one chunk of size/N bytes per round, per rank.
        chunk = size // n
        for rt in job.ranks:
            assert rt.num_sends() == n - 1
            assert rt.bytes_sent() == (n - 1) * chunk

    def test_ring_only_touches_right_neighbor(self):
        n = 6
        job = build_job(
            n, lambda t, n: collectives.reduce_scatter_ring(t, n, 600, tag=0)
        )
        mat = job.communication_matrix()
        for i in range(n):
            for j in range(n):
                if mat[i, j] > 0:
                    assert j == (i + 1) % n

    def test_chunk_rounds_up_to_a_byte(self):
        job = build_job(
            4, lambda t, n: collectives.reduce_scatter_ring(t, n, 2, tag=0)
        )
        job.validate()
        assert job.ranks[0].bytes_sent() == 3  # ceil(2/4) == 1 byte x 3 rounds

    def test_single_rank_is_noop(self):
        t = RankTrace(0)
        collectives.reduce_scatter_ring(t, 1, 64, tag=0)
        assert len(t) == 0


class TestAllreduceRing:
    @given(n=SIZES)
    @settings(max_examples=8, deadline=None)
    def test_balanced_and_replayable(self, n):
        job = build_job(
            n, lambda t, n: collectives.allreduce_ring(t, n, 512, tag=0)
        )
        job.validate()
        result = replay(job)
        chunk = -(-512 // n)
        assert (result.bytes_recv == 2 * (n - 1) * chunk).all()

    def test_bandwidth_optimal_round_structure(self):
        """2(N-1) one-chunk rounds vs recursive doubling's log2(N) full."""
        n, size = 8, 8192
        ring = build_job(
            n, lambda t, n: collectives.allreduce_ring(t, n, size, tag=0)
        )
        rd = build_job(
            n, lambda t, n: collectives.allreduce(t, n, size, tag=0)
        )
        chunk = size // n
        for rt in ring.ranks:
            assert rt.num_sends() == 2 * (n - 1)
            assert rt.bytes_sent() == 2 * (n - 1) * chunk
        # Recursive doubling sends the full buffer every round.
        assert rd.ranks[0].bytes_sent() == 3 * size  # log2(8) rounds
        assert ring.ranks[0].bytes_sent() < rd.ranks[0].bytes_sent()

    def test_only_ring_neighbors(self):
        n = 5
        job = build_job(
            n, lambda t, n: collectives.allreduce_ring(t, n, 500, tag=0)
        )
        mat = job.communication_matrix()
        for i in range(n):
            for j in range(n):
                if mat[i, j] > 0:
                    assert j == (i + 1) % n

    def test_phase_tags_do_not_collide(self):
        """Reduce-scatter and allgather rounds use disjoint tag ranges."""
        t = RankTrace(0)
        collectives.allreduce_ring(t, 4, 400, tag=100)
        tags = [op.tag for op in t.sends()]
        assert len(tags) == len(set(tags)) == 6  # 3 RS + 3 AG rounds


class TestBcast:
    @given(n=SIZES, root=st.integers(0, 3))
    @settings(max_examples=10, deadline=None)
    def test_balanced_and_replayable(self, n, root):
        root = root % n
        job = build_job(
            n, lambda t, n: collectives.bcast_binomial(t, n, 128, tag=0, root=root)
        )
        job.validate()
        result = replay(job)
        # Everyone except the root receives the payload exactly once.
        for i in range(n):
            expected = 0 if i == root else 128
            assert result.bytes_recv[i] == expected


class TestSendrecv:
    def test_pairwise(self):
        def fill(t, n):
            peer = t.rank ^ 1
            if peer < n:
                collectives.sendrecv(t, peer, 100, tag=0)

        job = build_job(4, fill)
        job.validate()
        replay(job)

    def test_self_peer_is_noop(self):
        t = RankTrace(0)
        collectives.sendrecv(t, 0, 100, tag=0)
        assert len(t) == 0
