"""Collective-expansion correctness: traces balance and replay cleanly."""

from hypothesis import given, settings, strategies as st

from repro.config import tiny
from repro.core.runner import build_topology
from repro.engine.simulator import Simulator
from repro.mpi import collectives
from repro.mpi.replay import ReplayEngine
from repro.mpi.trace import JobTrace, RankTrace
from repro.network.fabric import Fabric
from repro.routing import MinimalRouting


def build_job(n, fill):
    ranks = []
    for i in range(n):
        t = RankTrace(i)
        fill(t, n)
        ranks.append(t)
    return JobTrace("coll", ranks)


def replay(job):
    cfg = tiny()
    topo = build_topology(cfg.topology)
    sim = Simulator()
    fabric = Fabric(sim, topo, cfg.network, MinimalRouting(seed=0))
    engine = ReplayEngine(sim, fabric)
    nodes = [i % topo.num_nodes for i in range(job.num_ranks)]
    engine.add_job(0, job, nodes)
    engine.run(target_job=0)
    return engine.job_result(0)


SIZES = st.integers(2, 9)


class TestAlltoall:
    @given(n=SIZES)
    @settings(max_examples=8, deadline=None)
    def test_balanced_and_replayable(self, n):
        job = build_job(n, lambda t, n: collectives.alltoall(t, n, 64, tag=0))
        job.validate()
        result = replay(job)
        assert (result.bytes_recv == 64 * (n - 1)).all()

    def test_every_pair_communicates(self):
        n = 8
        job = build_job(n, lambda t, n: collectives.alltoall(t, n, 10, tag=0))
        mat = job.communication_matrix()
        offdiag = mat + mat.T
        for i in range(n):
            for j in range(n):
                if i != j:
                    assert offdiag[i, j] > 0


class TestAllreduce:
    @given(n=SIZES)
    @settings(max_examples=8, deadline=None)
    def test_balanced_and_replayable(self, n):
        job = build_job(n, lambda t, n: collectives.allreduce(t, n, 32, tag=0))
        job.validate()
        replay(job)

    def test_power_of_two_rounds(self):
        n = 8
        job = build_job(n, lambda t, n: collectives.allreduce(t, n, 32, tag=0))
        # log2(8) = 3 rounds, each an irecv+isend pair per rank.
        assert job.ranks[0].num_sends() == 3


class TestAllgatherRing:
    @given(n=SIZES)
    @settings(max_examples=8, deadline=None)
    def test_balanced_and_replayable(self, n):
        job = build_job(
            n, lambda t, n: collectives.allgather_ring(t, n, 16, tag=0)
        )
        job.validate()
        replay(job)

    def test_ring_only_touches_neighbors(self):
        n = 6
        job = build_job(
            n, lambda t, n: collectives.allgather_ring(t, n, 16, tag=0)
        )
        mat = job.communication_matrix()
        for i in range(n):
            for j in range(n):
                if mat[i, j] > 0:
                    assert j == (i + 1) % n


class TestBcast:
    @given(n=SIZES, root=st.integers(0, 3))
    @settings(max_examples=10, deadline=None)
    def test_balanced_and_replayable(self, n, root):
        root = root % n
        job = build_job(
            n, lambda t, n: collectives.bcast_binomial(t, n, 128, tag=0, root=root)
        )
        job.validate()
        result = replay(job)
        # Everyone except the root receives the payload exactly once.
        for i in range(n):
            expected = 0 if i == root else 128
            assert result.bytes_recv[i] == expected


class TestSendrecv:
    def test_pairwise(self):
        def fill(t, n):
            peer = t.rank ^ 1
            if peer < n:
                collectives.sendrecv(t, peer, 100, tag=0)

        job = build_job(4, fill)
        job.validate()
        replay(job)

    def test_self_peer_is_noop(self):
        t = RankTrace(0)
        collectives.sendrecv(t, 0, 100, tag=0)
        assert len(t) == 0
