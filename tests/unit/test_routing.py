"""Routing-policy behaviour tests (on a live fabric)."""

import pytest

from repro.config import tiny
from repro.core.runner import build_topology
from repro.engine.simulator import Simulator
from repro.network.fabric import Fabric
from repro.network.packet import Message
from repro.routing import AdaptiveRouting, MinimalRouting, make_routing
from repro.routing.tables import route_tables


def make_fabric(routing):
    cfg = tiny()
    topo = build_topology(cfg.topology)
    sim = Simulator()
    return sim, topo, Fabric(sim, topo, cfg.network, routing)


class TestFactory:
    @pytest.mark.parametrize(
        "name,cls",
        [
            ("min", MinimalRouting),
            ("minimal", MinimalRouting),
            ("adp", AdaptiveRouting),
            ("adaptive", AdaptiveRouting),
        ],
    )
    def test_make_routing(self, name, cls):
        assert isinstance(make_routing(name), cls)

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            make_routing("wormhole")


class TestMinimalRouting:
    def test_route_ends_with_terminal_out(self):
        policy = MinimalRouting(seed=0)
        sim, topo, fabric = make_fabric(policy)
        dst_node = topo.params.nodes_per_router  # router 1
        route = policy.route(fabric, 0, dst_node, 1000)
        assert route[-1] == topo.terminal_out(dst_node)

    def test_intra_group_is_direct(self):
        policy = MinimalRouting(seed=0)
        sim, topo, fabric = make_fabric(policy)
        dst_node = topo.params.nodes_per_router
        route = policy.route(fabric, 0, dst_node, 1000)
        assert len(route) == 2  # one local link + terminal out

    def test_same_router_route(self):
        policy = MinimalRouting(seed=0)
        sim, topo, fabric = make_fabric(policy)
        route = policy.route(fabric, 0, 1, 1000)  # node 1 is on router 0
        assert route == [topo.terminal_out(1)]

    def test_randomizes_among_candidates(self):
        policy = MinimalRouting(seed=0)
        sim, topo, fabric = make_fabric(policy)
        # Cross-group destination with several tied global links.
        dst_node = topo.params.routers_per_group * topo.params.nodes_per_router
        seen = {tuple(policy.route(fabric, 0, dst_node, 1000)) for _ in range(40)}
        tables = route_tables(topo)
        dst_router = topo.router_of(dst_node)
        assert len(seen) == len(tables.minimal(0, dst_router))


class TestAdaptiveRouting:
    def test_counters_advance(self):
        policy = AdaptiveRouting(seed=0)
        sim, topo, fabric = make_fabric(policy)
        dst_node = topo.params.routers_per_group * topo.params.nodes_per_router
        for _ in range(20):
            policy.route(fabric, 0, dst_node, 1000)
        assert policy.minimal_taken + policy.nonminimal_taken == 20

    def test_uncongested_prefers_minimal(self):
        policy = AdaptiveRouting(seed=0)
        sim, topo, fabric = make_fabric(policy)
        dst_node = topo.params.routers_per_group * topo.params.nodes_per_router
        for _ in range(50):
            policy.route(fabric, 0, dst_node, 1000)
        assert policy.nonminimal_taken == 0

    def test_congestion_triggers_detour(self):
        policy = AdaptiveRouting(seed=0)
        sim, topo, fabric = make_fabric(policy)
        dst_node = topo.params.routers_per_group * topo.params.nodes_per_router
        # Pile fake backlog onto every minimal first hop.
        tables = route_tables(topo)
        for path in tables.minimal(0, topo.router_of(dst_node)):
            fabric.queued_bytes[path[0]] += 10_000_000
        for _ in range(20):
            policy.route(fabric, 0, dst_node, 1000)
        assert policy.nonminimal_taken > 0

    def test_modes_validate(self):
        with pytest.raises(ValueError):
            AdaptiveRouting(mode="global")
        with pytest.raises(ValueError):
            AdaptiveRouting(minimal_candidates=0)
        with pytest.raises(ValueError):
            AdaptiveRouting(nonminimal_weight=0.5)

    def test_path_mode_senses_downstream_congestion(self):
        local = AdaptiveRouting(seed=0, mode="local")
        ideal = AdaptiveRouting(seed=0, mode="path")
        sim, topo, fabric = make_fabric(local)
        dst_node = topo.params.routers_per_group * topo.params.nodes_per_router
        dst_router = topo.router_of(dst_node)
        # Congest a *non-first* link of every minimal route: only "path"
        # mode can see it.
        tables = route_tables(topo)
        for path in tables.minimal(0, dst_router):
            if len(path) > 1:
                fabric.queued_bytes[path[-1]] += 10_000_000
        for _ in range(30):
            local.route(fabric, 0, dst_node, 1000)
            ideal.route(fabric, 0, dst_node, 1000)
        assert ideal.nonminimal_taken >= local.nonminimal_taken

    def test_end_to_end_delivery_under_adaptive(self):
        policy = AdaptiveRouting(seed=0)
        sim, topo, fabric = make_fabric(policy)
        p = topo.params
        msgs = []
        for i in range(30):
            src, dst = i % p.num_nodes, (i * 11 + 2) % p.num_nodes
            if src == dst:
                continue
            m = Message(i, src, dst, 5000)
            msgs.append(m)
            fabric.inject(m)
        sim.run()
        assert all(m.arrived_bytes == m.wire_size for m in msgs)
        assert fabric.bytes_injected == fabric.bytes_delivered
