"""Synthetic DL training generators: structure, determinism, registration."""

import pytest

from repro.apps import APP_BUILDERS
from repro.core.advisor import characterize
from repro.exec.plan import trace_fingerprint
from repro.mlcomms.generators import (
    dp_allreduce_trace,
    moe_alltoall_trace,
    pp_1f1b_trace,
    tp_layer_trace,
)
from repro.mlcomms.study import DEFAULT_APPS, default_training_traces

GENERATORS = {
    "DP": dp_allreduce_trace,
    "PP": pp_1f1b_trace,
    "TP": tp_layer_trace,
    "MOE": moe_alltoall_trace,
}


@pytest.mark.parametrize("app", sorted(GENERATORS))
class TestFamilyContract:
    def test_balanced_and_named(self, app):
        job = GENERATORS[app](num_ranks=8, seed=3)
        job.validate()
        assert job.name == app
        assert job.meta["family"] == "mlcomms"

    def test_deterministic_from_seed(self, app):
        a = GENERATORS[app](num_ranks=8, seed=3)
        b = GENERATORS[app](num_ranks=8, seed=3)
        c = GENERATORS[app](num_ranks=8, seed=4)
        assert trace_fingerprint(a) == trace_fingerprint(b)
        assert trace_fingerprint(a) != trace_fingerprint(c)

    def test_registered_as_app_builder(self, app):
        assert APP_BUILDERS[app] is GENERATORS[app]
        job = APP_BUILDERS[app](num_ranks=4, seed=0)
        job.validate()

    def test_periodic_phase_profile(self, app):
        job = GENERATORS[app](num_ranks=4, iterations=3, seed=0)
        labels = [label for label, _ in job.meta["phase_profile"]]
        assert len(labels) == 3
        assert all(lb.startswith(f"iter{i}") for i, lb in enumerate(labels))

    def test_characterize_and_scale(self, app):
        job = GENERATORS[app](num_ranks=8, seed=1)
        profile = characterize(job)
        assert profile.bytes_per_rank > 0
        assert profile.load_fluctuation >= 0
        scaled = job.scaled(0.01)
        scaled.validate()
        assert scaled.total_bytes() < job.total_bytes()

    def test_rejects_degenerate_parameters(self, app):
        with pytest.raises(ValueError):
            GENERATORS[app](num_ranks=1)
        with pytest.raises(ValueError):
            GENERATORS[app](num_ranks=4, iterations=0)


class TestDataParallel:
    def test_ring_traffic_is_neighbor_only(self):
        job = dp_allreduce_trace(num_ranks=6, seed=0)
        mat = job.communication_matrix()
        for i in range(6):
            for j in range(6):
                if mat[i, j] > 0:
                    assert j == (i + 1) % 6

    def test_rd_algo_moves_more_bytes(self):
        ring = dp_allreduce_trace(num_ranks=8, seed=0, algo="ring")
        rd = dp_allreduce_trace(num_ranks=8, seed=0, algo="rd")
        rd.validate()
        assert rd.total_bytes() > ring.total_bytes()

    def test_bucket_count_preserves_total_volume(self):
        few = dp_allreduce_trace(num_ranks=4, buckets=1, seed=0)
        many = dp_allreduce_trace(num_ranks=4, buckets=8, seed=0)
        # Same model size split differently: volumes within jitter range.
        assert many.total_bytes() == pytest.approx(
            few.total_bytes(), rel=0.25
        )
        assert many.num_messages() > few.num_messages()

    def test_unknown_algo_rejected(self):
        with pytest.raises(ValueError, match="algo"):
            dp_allreduce_trace(num_ranks=4, algo="tree")


class TestPipelineParallel:
    def test_chain_only_communication(self):
        n = 6
        job = pp_1f1b_trace(num_ranks=n, seed=0)
        mat = job.communication_matrix()
        for i in range(n):
            for j in range(n):
                if mat[i, j] > 0:
                    assert abs(i - j) == 1

    def test_every_stage_link_active_both_ways(self):
        n = 4
        job = pp_1f1b_trace(num_ranks=n, seed=0)
        mat = job.communication_matrix()
        for s in range(n - 1):
            assert mat[s, s + 1] > 0  # activations forward
            assert mat[s + 1, s] > 0  # gradients backward

    def test_microbatches_scale_volume(self):
        small = pp_1f1b_trace(num_ranks=4, microbatches=4, seed=0)
        big = pp_1f1b_trace(num_ranks=4, microbatches=16, seed=0)
        assert big.total_bytes() > 3 * small.total_bytes()

    def test_too_few_microbatches_rejected(self):
        with pytest.raises(ValueError, match="microbatch"):
            pp_1f1b_trace(num_ranks=8, microbatches=4)


class TestTensorParallel:
    def test_ring_neighbor_traffic(self):
        n = 5
        job = tp_layer_trace(num_ranks=n, seed=0)
        mat = job.communication_matrix()
        for i in range(n):
            for j in range(n):
                if mat[i, j] > 0:
                    assert j == (i + 1) % n

    def test_layers_scale_message_count(self):
        shallow = tp_layer_trace(num_ranks=4, layers=2, seed=0)
        deep = tp_layer_trace(num_ranks=4, layers=8, seed=0)
        assert deep.num_messages() == 4 * shallow.num_messages()


class TestMoE:
    def test_all_pairs_communicate(self):
        n = 6
        job = moe_alltoall_trace(num_ranks=n, seed=0)
        mat = job.communication_matrix()
        for i in range(n):
            for j in range(n):
                if i != j:
                    assert mat[i, j] > 0

    def test_dispatch_is_skewed(self):
        # Expert routing must not be symmetric: i->j != j->i somewhere.
        job = moe_alltoall_trace(num_ranks=6, seed=0)
        mat = job.communication_matrix()
        assert (mat != mat.T).any()


class TestStudyHelpers:
    def test_default_traces_cover_family(self):
        traces = default_training_traces(4, seed=0)
        assert set(traces) == set(DEFAULT_APPS)
        for job in traces.values():
            job.validate()

    def test_msg_scale_applied(self):
        full = default_training_traces(4, seed=0)
        tiny = default_training_traces(4, msg_scale=0.01, seed=0)
        for app in DEFAULT_APPS:
            assert tiny[app].total_bytes() < full[app].total_bytes()
            assert tiny[app].meta["message_scale"] == 0.01

    def test_unknown_app_rejected(self):
        with pytest.raises(ValueError, match="unknown training app"):
            default_training_traces(4, apps=("DP", "WAT"))
