"""Message/packet unit tests."""

import pytest
from hypothesis import given, strategies as st

from repro.network.packet import (
    CONTROL_PACKET_BYTES,
    Message,
    Packet,
    acquire_packet,
    packetize,
    pool_size,
    release_packet,
)


def make_msg(size, src=0, dst=1):
    return Message(1, src, dst, size)


class TestMessage:
    def test_rejects_negative_size(self):
        with pytest.raises(ValueError):
            make_msg(-1)

    def test_rejects_self_send(self):
        with pytest.raises(ValueError):
            Message(1, 3, 3, 100)

    def test_wire_size_zero_payload(self):
        assert make_msg(0).wire_size == CONTROL_PACKET_BYTES

    def test_wire_size_payload(self):
        assert make_msg(12345).wire_size == 12345

    def test_avg_hops_empty(self):
        assert make_msg(10).avg_hops == 0.0


class TestPacketize:
    def test_exact_multiple(self):
        msg = make_msg(4096)
        pkts = packetize(msg, 2048, first_link=7)
        assert [p.size for p in pkts] == [2048, 2048]
        assert msg.num_packets == 2

    def test_remainder(self):
        msg = make_msg(5000)
        pkts = packetize(msg, 2048, first_link=7)
        assert [p.size for p in pkts] == [2048, 2048, 904]

    def test_small_message_single_packet(self):
        msg = make_msg(100)
        pkts = packetize(msg, 2048, first_link=7)
        assert [p.size for p in pkts] == [100]

    def test_zero_size_costs_control_packet(self):
        msg = make_msg(0)
        pkts = packetize(msg, 2048, first_link=7)
        assert [p.size for p in pkts] == [CONTROL_PACKET_BYTES]

    def test_only_final_packet_flagged_last(self):
        msg = make_msg(10000)
        pkts = packetize(msg, 2048, first_link=7)
        assert [p.last for p in pkts] == [False] * (len(pkts) - 1) + [True]

    def test_route_starts_with_first_link(self):
        msg = make_msg(100)
        (pkt,) = packetize(msg, 2048, first_link=42)
        assert pkt.route == [42]
        assert pkt.hop == 0

    @given(st.integers(0, 10_000_000), st.sampled_from([512, 1024, 2048, 4096]))
    def test_sizes_sum_to_wire_size(self, size, packet_size):
        msg = make_msg(size)
        pkts = packetize(msg, packet_size, first_link=0)
        assert sum(p.size for p in pkts) == msg.wire_size
        assert all(0 < p.size <= packet_size for p in pkts)


class TestPacketPool:
    """Free-list recycling: warmth must never be observable."""

    def test_packet_is_slotted(self):
        (pkt,) = packetize(make_msg(100), 2048, first_link=0)
        assert not hasattr(pkt, "__dict__")
        with pytest.raises(AttributeError):
            pkt.surprise = 1

    def test_release_recycles_instance(self):
        (pkt,) = packetize(make_msg(100), 2048, first_link=0)
        before = pool_size()
        release_packet(pkt)
        assert pool_size() == before + 1
        assert pkt.msg is None  # the message is not pinned alive
        (again,) = packetize(make_msg(100), 2048, first_link=0)
        assert again is pkt  # LIFO free list hands the same object back
        release_packet(again)

    def test_acquire_resets_every_slot(self):
        msg_a = make_msg(300)
        (pkt,) = packetize(msg_a, 2048, first_link=3)
        pkt.hop = 5
        pkt.tail_time = 123.4
        pkt.route.extend([9, 10, 11])
        release_packet(pkt)

        msg_b = make_msg(4096)
        pkts = packetize(msg_b, 2048, first_link=8)
        recycled = pkts[0]
        assert recycled is pkt
        assert recycled.msg is msg_b
        assert recycled.size == 2048
        assert recycled.route == [8]
        assert recycled.hop == 0
        assert recycled.last is False
        assert recycled.tail_time == 0.0
        for p in pkts:
            release_packet(p)

    def test_acquire_matches_fresh_packet(self):
        """A recycled packet is indistinguishable from a fresh one."""
        (used,) = packetize(make_msg(64), 2048, first_link=2)
        release_packet(used)
        msg = make_msg(64)
        (recycled,) = packetize(msg, 2048, first_link=2)
        fresh = Packet(msg, 64, 2, True)
        for slot in Packet.__slots__:
            assert getattr(recycled, slot) == getattr(fresh, slot), slot
        release_packet(recycled)

    def test_pool_bounded(self):
        from repro.network import packet as packet_mod

        headroom = packet_mod._POOL_MAX - pool_size()
        pkts = [
            acquire_packet(make_msg(1), 1, 0, True) for _ in range(headroom + 5)
        ]
        for p in pkts:
            release_packet(p)
        assert pool_size() == packet_mod._POOL_MAX  # overflow fell to the GC
