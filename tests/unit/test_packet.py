"""Message/packet unit tests."""

import pytest
from hypothesis import given, strategies as st

from repro.network.packet import CONTROL_PACKET_BYTES, Message, packetize


def make_msg(size, src=0, dst=1):
    return Message(1, src, dst, size)


class TestMessage:
    def test_rejects_negative_size(self):
        with pytest.raises(ValueError):
            make_msg(-1)

    def test_rejects_self_send(self):
        with pytest.raises(ValueError):
            Message(1, 3, 3, 100)

    def test_wire_size_zero_payload(self):
        assert make_msg(0).wire_size == CONTROL_PACKET_BYTES

    def test_wire_size_payload(self):
        assert make_msg(12345).wire_size == 12345

    def test_avg_hops_empty(self):
        assert make_msg(10).avg_hops == 0.0


class TestPacketize:
    def test_exact_multiple(self):
        msg = make_msg(4096)
        pkts = packetize(msg, 2048, first_link=7)
        assert [p.size for p in pkts] == [2048, 2048]
        assert msg.num_packets == 2

    def test_remainder(self):
        msg = make_msg(5000)
        pkts = packetize(msg, 2048, first_link=7)
        assert [p.size for p in pkts] == [2048, 2048, 904]

    def test_small_message_single_packet(self):
        msg = make_msg(100)
        pkts = packetize(msg, 2048, first_link=7)
        assert [p.size for p in pkts] == [100]

    def test_zero_size_costs_control_packet(self):
        msg = make_msg(0)
        pkts = packetize(msg, 2048, first_link=7)
        assert [p.size for p in pkts] == [CONTROL_PACKET_BYTES]

    def test_only_final_packet_flagged_last(self):
        msg = make_msg(10000)
        pkts = packetize(msg, 2048, first_link=7)
        assert [p.last for p in pkts] == [False] * (len(pkts) - 1) + [True]

    def test_route_starts_with_first_link(self):
        msg = make_msg(100)
        (pkt,) = packetize(msg, 2048, first_link=42)
        assert pkt.route == [42]
        assert pkt.hop == 0

    @given(st.integers(0, 10_000_000), st.sampled_from([512, 1024, 2048, 4096]))
    def test_sizes_sum_to_wire_size(self, size, packet_size):
        msg = make_msg(size)
        pkts = packetize(msg, packet_size, first_link=0)
        assert sum(p.size for p in pkts) == msg.wire_size
        assert all(0 < p.size <= packet_size for p in pkts)
