"""RankTrace/JobTrace container tests."""

import numpy as np
import pytest

from repro.mpi.ops import Barrier, Compute, Irecv, Isend, Recv, Send, Wait, WaitAll
from repro.mpi.trace import JobTrace, RankTrace


def two_rank_job():
    r0 = RankTrace(0)
    r0.send(1, 100, tag=5)
    r0.recv(1, 200, tag=6)
    r1 = RankTrace(1)
    r1.recv(0, 100, tag=5)
    r1.send(0, 200, tag=6)
    return JobTrace("toy", [r0, r1])


class TestRankTraceBuilders:
    def test_builders_append_expected_ops(self):
        t = RankTrace(0)
        t.send(1, 10)
        t.isend(2, 20, tag=1, req=3)
        t.recv(1, 10)
        t.irecv(2, 20, tag=1, req=4)
        t.wait(3)
        t.waitall()
        t.barrier()
        t.compute(500.0)
        assert [type(op) for op in t.ops] == [
            Send, Isend, Recv, Irecv, Wait, WaitAll, Barrier, Compute,
        ]

    def test_bytes_sent_counts_both_send_kinds(self):
        t = RankTrace(0)
        t.send(1, 10)
        t.isend(1, 32, req=0)
        assert t.bytes_sent() == 42
        assert t.num_sends() == 2

    def test_scaled_preserves_op_count(self):
        t = RankTrace(0)
        t.send(1, 1000)
        t.recv(1, 1000)
        t.barrier()
        s = t.scaled(0.5)
        assert len(s) == 3
        assert s.ops[0].size == 500
        assert s.ops[1].size == 500

    def test_scaled_never_drops_messages(self):
        t = RankTrace(0)
        t.send(1, 10)
        s = t.scaled(0.001)
        assert s.ops[0].size == 1  # clamped, not zero

    def test_scaled_zero_stays_zero(self):
        t = RankTrace(0)
        t.send(1, 0)
        assert t.scaled(2.0).ops[0].size == 0

    def test_scaled_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            RankTrace(0).scaled(0)


class TestJobTrace:
    def test_requires_dense_rank_ids(self):
        with pytest.raises(ValueError):
            JobTrace("bad", [RankTrace(1)])

    def test_requires_ranks(self):
        with pytest.raises(ValueError):
            JobTrace("empty", [])

    def test_totals(self):
        job = two_rank_job()
        assert job.total_bytes() == 300
        assert job.num_messages() == 2
        assert job.avg_message_load_per_rank() == 150

    def test_communication_matrix(self):
        job = two_rank_job()
        mat = job.communication_matrix()
        assert mat.shape == (2, 2)
        assert mat[0, 1] == 100
        assert mat[1, 0] == 200
        assert mat[0, 0] == 0

    def test_scaled_updates_meta(self):
        job = two_rank_job()
        job.meta["phase_profile"] = [("p0", 100.0)]
        s = job.scaled(2.0)
        assert s.meta["message_scale"] == 2.0
        assert s.meta["phase_profile"] == [("p0", 200.0)]
        assert s.total_bytes() == 600

    def test_validate_accepts_balanced(self):
        two_rank_job().validate()

    def test_validate_rejects_out_of_range_dst(self):
        r0 = RankTrace(0)
        r0.send(5, 10)
        job = JobTrace("bad", [r0])
        with pytest.raises(ValueError, match="out-of-range"):
            job.validate()

    def test_validate_rejects_count_mismatch(self):
        r0 = RankTrace(0)
        r0.send(1, 10)
        r1 = RankTrace(1)  # never posts the matching recv
        with pytest.raises(ValueError, match="receives"):
            JobTrace("bad", [r0, r1]).validate()

    def test_validate_rejects_byte_mismatch(self):
        r0 = RankTrace(0)
        r0.send(1, 10)
        r1 = RankTrace(1)
        r1.recv(0, 999)
        with pytest.raises(ValueError, match="bytes"):
            JobTrace("bad", [r0, r1]).validate()

    def test_validate_allows_wildcard_bytes(self):
        from repro.mpi.ops import ANY_SOURCE

        r0 = RankTrace(0)
        r0.send(1, 10)
        r1 = RankTrace(1)
        r1.recv(ANY_SOURCE, 999)  # wildcard: byte accounting exempt
        JobTrace("ok", [r0, r1]).validate()
