"""CLI smoke tests (each command runs and prints plausible output)."""

import pytest

from repro.cli import main
from repro.mpi.dumpi import save_trace


def run_cli(capsys, *argv):
    rc = main(list(argv))
    out = capsys.readouterr().out
    return rc, out


COMMON = ["--preset", "tiny", "--ranks", "8", "--msg-scale", "0.05", "--seed", "1"]


class TestCommands:
    def test_nomenclature(self, capsys):
        rc, out = run_cli(capsys, "nomenclature")
        assert rc == 0
        assert "cont-min" in out and "rand-adp" in out

    def test_characterize(self, capsys):
        rc, out = run_cli(capsys, "characterize", "CR", *COMMON)
        assert rc == 0
        assert "avg load per rank" in out

    def test_study(self, capsys):
        rc, out = run_cli(capsys, "study", "AMG", *COMMON)
        assert rc == 0
        assert "communication time" in out
        assert "best configuration" in out

    def test_sensitivity(self, capsys):
        rc, out = run_cli(capsys, "sensitivity", "AMG", *COMMON)
        assert rc == 0
        assert "rand-adp" in out

    def test_interference(self, capsys):
        rc, out = run_cli(
            capsys,
            "interference",
            "AMG",
            "--pattern",
            "uniform",
            "--bg-bytes",
            "1024",
            "--bg-interval-us",
            "10",
            *COMMON,
        )
        assert rc == 0
        assert "background" in out

    def test_replay(self, capsys, tmp_path):
        import repro

        trace = repro.amg_trace(num_ranks=8, seed=1).scaled(0.1)
        path = tmp_path / "amg.dumpi"
        save_trace(trace, path)
        rc, out = run_cli(
            capsys, "replay", str(path), "--preset", "tiny", "--seed", "1"
        )
        assert rc == 0
        assert "max_comm_ms" in out

    def test_replay_with_fault_plan_file(self, capsys, tmp_path):
        import repro
        from repro.core.runner import build_topology
        from repro.faults import random_fault_plan, save_fault_plan

        trace = repro.amg_trace(num_ranks=8, seed=1).scaled(0.1)
        trace_path = tmp_path / "amg.dumpi"
        save_trace(trace, trace_path)
        topo = build_topology(repro.tiny().topology)
        plan = random_fault_plan(topo, 0.2, seed=11)
        assert not plan.is_empty()
        plan_path = save_fault_plan(plan, tmp_path / "plan.json")
        rc, out = run_cli(
            capsys,
            "replay",
            str(trace_path),
            "--preset",
            "tiny",
            "--seed",
            "1",
            "--faults",
            str(plan_path),
        )
        assert rc == 0
        assert "max_comm_ms" in out

    def test_replay_with_fault_rate(self, capsys, tmp_path):
        import repro

        trace = repro.amg_trace(num_ranks=8, seed=1).scaled(0.1)
        path = tmp_path / "amg.dumpi"
        save_trace(trace, path)
        rc, out = run_cli(
            capsys,
            "replay",
            str(path),
            "--preset",
            "tiny",
            "--seed",
            "1",
            "--fault-rate",
            "0.2",
            "--fault-seed",
            "11",
        )
        assert rc == 0
        assert "max_comm_ms" in out

    def test_resilience(self, capsys, tmp_path):
        import json

        out_path = tmp_path / "resilience.json"
        rc, out = run_cli(
            capsys,
            "resilience",
            "FB",
            "--rates",
            "0.2",
            "--fault-seed",
            "11",
            "--out",
            str(out_path),
            *COMMON,
        )
        assert rc == 0
        assert "degradation" in out and "placement-averaged" in out
        data = json.loads(out_path.read_text())
        assert data["schema"] == "repro-resilience/v1"
        assert len(data["cells"]) == 20  # 10 labels x (healthy + 0.2)
        assert data["fault_plan_digests"]["0.2"] is not None

    def test_resilience_rejects_bad_rates(self, capsys):
        with pytest.raises(SystemExit):
            main(["resilience", "FB", "--rates", "0.1,bogus", *COMMON])

    def test_advise(self, capsys):
        rc, out = run_cli(capsys, "advise", "AMG", *COMMON)
        assert rc == 0
        assert "use " in out and "offered rate" in out

    def test_advise_bursty(self, capsys):
        rc, out = run_cli(capsys, "advise", "FB", "--bursty", *COMMON)
        assert rc == 0
        assert "cont-min" in out

    def test_cluster_stream(self, capsys, tmp_path):
        import json

        out_path = tmp_path / "stream.json"
        rc, out = run_cli(
            capsys,
            "cluster-stream",
            "--preset",
            "tiny",
            "--duration",
            "0.5",
            "--load",
            "0.5",
            "--seed",
            "3",
            "--out",
            str(out_path),
        )
        assert rc == 0
        assert "stream: mix=" in out and "epochs" in out
        doc = json.loads(out_path.read_text())
        assert doc["schema"] == "repro-cluster-stream/v1"
        assert doc["invariants"]["conserved"]

    def test_cluster_stream_rejects_link_faults_on_flow(self, capsys, tmp_path):
        from repro.faults import FaultPlan, LinkFault, save_fault_plan
        from repro.core.runner import build_topology
        import repro

        topo = build_topology(repro.tiny().topology)
        link = next(
            i
            for i in range(topo.num_links)
            if not topo.links.kind_of(i).is_terminal
        )
        plan_path = tmp_path / "plan.json"
        save_fault_plan(
            FaultPlan(link_faults=(LinkFault(link),)), plan_path
        )
        with pytest.raises(SystemExit):
            main(
                [
                    "cluster-stream",
                    "--preset",
                    "tiny",
                    "--duration",
                    "0.2",
                    "--faults",
                    str(plan_path),
                ]
            )

    def test_replay_json_comms_trace(self, capsys, tmp_path):
        import json

        path = tmp_path / "dp.json"
        path.write_text(
            json.dumps(
                {
                    "num_ranks": 8,
                    "trace": [
                        {"comms": "all_reduce", "in_msg_size": 2048},
                        {"marker": "it0"},
                    ],
                }
            )
        )
        rc, out = run_cli(
            capsys, "replay", str(path), "--preset", "tiny", "--seed", "1"
        )
        assert rc == 0
        assert "max_comm_ms" in out

    def test_replay_json_malformed_is_cli_error(self, capsys, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('[{"comms": "mystery", "in_msg_size": 4}]')
        with pytest.raises(SystemExit):
            main(
                [
                    "replay",
                    str(path),
                    "--preset",
                    "tiny",
                    "--trace-ranks",
                    "4",
                ]
            )

    def test_training_tradeoff(self, capsys, tmp_path):
        import json

        out_path = tmp_path / "training.json"
        rc, out = run_cli(
            capsys,
            "training-tradeoff",
            "--apps",
            "DP,MOE",
            "--backend",
            "flow",
            "--msg-scale",
            "0.02",
            "--out",
            str(out_path),
            "--preset",
            "tiny",
            "--ranks",
            "8",
            "--seed",
            "1",
        )
        assert rc == 0
        assert "leaning" in out
        doc = json.loads(out_path.read_text())
        assert doc["schema"] == "repro-mlcomms/v1"
        for app in ("DP", "MOE"):
            for routing in ("min", "adp"):
                assert doc["winners"][app][routing]["placement"]

    def test_training_tradeoff_with_imported_trace(self, capsys, tmp_path):
        import json

        trace_path = tmp_path / "imported.json"
        trace_path.write_text(
            json.dumps(
                {
                    "name": "IMP",
                    "num_ranks": 8,
                    "trace": [
                        {"comms": "all_reduce", "in_msg_size": 4096},
                        {"marker": "it0"},
                    ],
                }
            )
        )
        rc, out = run_cli(
            capsys,
            "training-tradeoff",
            "--apps",
            "",
            "--trace",
            str(trace_path),
            "--backend",
            "flow",
            "--preset",
            "tiny",
            "--seed",
            "1",
        )
        assert rc == 0
        assert "IMP" in out

    def test_training_tradeoff_rejects_empty_study(self, capsys):
        with pytest.raises(SystemExit):
            main(["training-tradeoff", "--apps", "", "--preset", "tiny"])

    def test_unknown_app_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["study", "LINPACK", "--preset", "tiny"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])
