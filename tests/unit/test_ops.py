"""Operation record tests."""

from repro.mpi.ops import (
    ANY_SOURCE,
    ANY_TAG,
    Barrier,
    Compute,
    Irecv,
    Isend,
    Recv,
    Send,
    Wait,
    WaitAll,
)


class TestOpRecords:
    def test_defaults(self):
        assert Send(1, 100).tag == 0
        assert Isend(1, 100).req == 0
        assert Recv(1, 100).tag == 0

    def test_structural_equality(self):
        assert Send(1, 100, 2) == Send(1, 100, 2)
        assert Send(1, 100, 2) != Send(1, 100, 3)
        assert Barrier() == Barrier()
        assert WaitAll() == WaitAll()

    def test_wildcards_are_negative_sentinels(self):
        assert ANY_SOURCE == -1
        assert ANY_TAG == -1
        r = Recv(ANY_SOURCE, 10, ANY_TAG)
        assert r.src == ANY_SOURCE and r.tag == ANY_TAG

    def test_ops_are_hashable(self):
        ops = {Send(1, 2), Wait(0), Compute(5.0)}
        assert len(ops) == 3

    def test_namedtuple_equality_is_positional(self):
        """Known NamedTuple behaviour: ops of different types with the
        same field values compare equal as tuples. All engine dispatch
        is type-based, so this never affects replay; compare
        ``(type(op), op)`` where the distinction matters."""
        assert Send(1, 2) == Recv(1, 2)  # positionally identical
        assert (type(Send(1, 2)), Send(1, 2)) != (type(Recv(1, 2)), Recv(1, 2))

    def test_fields_accessible_by_name(self):
        op = Irecv(src=3, size=64, tag=9, req=2)
        assert (op.src, op.size, op.tag, op.req) == (3, 64, 9, 2)
