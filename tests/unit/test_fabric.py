"""Fabric flow-control unit tests: delivery, backpressure, conservation."""

import pytest

from repro.config import NetworkParams, tiny
from repro.core.runner import build_topology
from repro.engine.simulator import Simulator
from repro.network.fabric import Fabric
from repro.network.packet import Message
from repro.routing import MinimalRouting
from repro.topology.links import LinkKind


def make_fabric(net=None, seed=0):
    cfg = tiny()
    topo = build_topology(cfg.topology)
    net = net or cfg.network
    sim = Simulator()
    fabric = Fabric(sim, topo, net, MinimalRouting(seed=seed))
    return sim, topo, fabric


def nodes_same_router(topo):
    return 0, 1


def nodes_same_group_other_router(topo):
    p = topo.params
    return 0, p.nodes_per_router  # node 0 on router 0, first node of router 1


def nodes_other_group(topo):
    p = topo.params
    return 0, p.nodes_per_group * p.nodes_per_router * 0 + p.routers_per_group * p.nodes_per_router


class TestDelivery:
    def test_same_router_message_delivered(self):
        sim, topo, fabric = make_fabric()
        src, dst = nodes_same_router(topo)
        msg = Message(1, src, dst, 1000)
        done = []
        msg.on_delivered = lambda m, t: done.append(t)
        fabric.inject(msg)
        sim.run()
        assert done and msg.delivered_time == done[0]
        assert msg.arrived_bytes == 1000
        assert msg.avg_hops == 0.0  # no router-to-router hops

    def test_same_router_delivery_time_vct(self):
        """Cut-through: one serialisation + per-hop latencies."""
        sim, topo, fabric = make_fabric()
        net = fabric.net
        src, dst = nodes_same_router(topo)
        msg = Message(1, src, dst, 1000)
        fabric.inject(msg)
        sim.run()
        dur = 1000 / net.terminal_bw
        hop_lat = net.terminal_latency_ns + net.router_delay_ns
        expected = dur + 2 * hop_lat
        assert msg.delivered_time == pytest.approx(expected, rel=1e-9)

    def test_same_router_delivery_time_store_forward(self):
        """Store-and-forward: every hop pays the full serialisation."""
        import dataclasses

        cfg = tiny()
        net = dataclasses.replace(cfg.network, switching="store_forward")
        topo = build_topology(cfg.topology)
        sim = Simulator()
        fabric = Fabric(sim, topo, net, MinimalRouting(seed=0))
        src, dst = nodes_same_router(topo)
        msg = Message(1, src, dst, 1000)
        fabric.inject(msg)
        sim.run()
        dur = 1000 / net.terminal_bw
        hop_lat = net.terminal_latency_ns + net.router_delay_ns
        expected = 2 * (dur + hop_lat)
        assert msg.delivered_time == pytest.approx(expected, rel=1e-9)

    def test_vct_faster_than_store_forward_on_long_paths(self):
        import dataclasses

        cfg = tiny()
        topo = build_topology(cfg.topology)
        src = 0
        dst = topo.params.routers_per_group * topo.params.nodes_per_router
        times = {}
        for mode in ("vct", "store_forward"):
            net = dataclasses.replace(cfg.network, switching=mode)
            sim = Simulator()
            fabric = Fabric(sim, topo, net, MinimalRouting(seed=0))
            msg = Message(1, src, dst, 2000)
            fabric.inject(msg)
            sim.run()
            times[mode] = msg.delivered_time
        assert times["vct"] < times["store_forward"]

    def test_cross_group_message_uses_global_link(self):
        sim, topo, fabric = make_fabric()
        src = 0
        dst = topo.params.routers_per_group * topo.params.nodes_per_router
        msg = Message(1, src, dst, 500)
        fabric.inject(msg)
        sim.run()
        assert msg.delivered_time > 0
        global_ids = topo.links.global_ids()
        global_bytes = sum(fabric.bytes_tx[int(l)] for l in global_ids)
        assert global_bytes == 500
        assert msg.avg_hops >= 1

    def test_injected_callback_fires_before_delivery(self):
        sim, topo, fabric = make_fabric()
        order = []
        src, dst = nodes_same_group_other_router(topo)
        msg = Message(1, src, dst, 6000)
        msg.on_injected = lambda m, t: order.append(("inj", t))
        msg.on_delivered = lambda m, t: order.append(("del", t))
        fabric.inject(msg)
        sim.run()
        assert [kind for kind, _ in order] == ["inj", "del"]
        assert order[0][1] <= order[1][1]

    def test_multi_packet_reassembly(self):
        sim, topo, fabric = make_fabric()
        src, dst = nodes_same_group_other_router(topo)
        size = 10_000  # five 2 KiB packets
        msg = Message(1, src, dst, size)
        fabric.inject(msg)
        sim.run()
        assert msg.arrived_bytes == size
        assert msg.num_packets == 5


class TestConservation:
    def test_bytes_injected_equal_delivered(self):
        sim, topo, fabric = make_fabric()
        p = topo.params
        msgs = []
        for i in range(40):
            src = i % p.num_nodes
            dst = (i * 7 + 3) % p.num_nodes
            if src == dst:
                continue
            m = Message(i, src, dst, 1000 + 137 * i)
            msgs.append(m)
            fabric.inject(m)
        sim.run()
        assert fabric.bytes_injected == fabric.bytes_delivered
        assert fabric.messages_delivered == len(msgs)
        for m in msgs:
            assert m.arrived_bytes == m.wire_size

    def test_terminal_traffic_matches_wire_size(self):
        sim, topo, fabric = make_fabric()
        src, dst = nodes_other_group(topo)
        msg = Message(1, src, dst, 9999)
        fabric.inject(msg)
        sim.run()
        t_in = topo.terminal_in(src)
        t_out = topo.terminal_out(dst)
        assert fabric.bytes_tx[t_in] == 9999
        assert fabric.bytes_tx[t_out] == 9999


class TestBackpressure:
    def test_saturation_recorded_under_overload(self):
        """Many senders into one destination node saturate its links."""
        sim, topo, fabric = make_fabric()
        p = topo.params
        dst = 0
        for i, src in enumerate(range(1, p.num_nodes)):
            fabric.inject(Message(i, src, dst, 50_000))
        sim.run()
        assert fabric.bytes_injected == fabric.bytes_delivered
        assert sum(fabric.sat_ns) > 0.0

    def test_no_saturation_for_single_light_message(self):
        sim, topo, fabric = make_fabric()
        src, dst = nodes_same_group_other_router(topo)
        fabric.inject(Message(1, src, dst, 1000))
        sim.run()
        assert sum(fabric.sat_ns) == 0.0

    def test_buffer_occupancy_returns_to_zero(self):
        sim, topo, fabric = make_fabric()
        p = topo.params
        for i in range(20):
            fabric.inject(Message(i, i % p.num_nodes, (i + 5) % p.num_nodes, 4000))
        sim.run()
        assert all(v == 0 for v in fabric._buf_used)

    def test_drain_saturation_closes_open_intervals(self):
        sim, topo, fabric = make_fabric()
        p = topo.params
        dst = 0
        for i, src in enumerate(range(1, p.num_nodes)):
            fabric.inject(Message(i, src, dst, 60_000))
        # Stop mid-flight: some links are likely blocked right now.
        sim.run(until=2000.0)
        before = sum(fabric.sat_ns)
        fabric.drain_saturation()
        after = sum(fabric.sat_ns)
        assert after >= before


class TestVcBound:
    def test_route_exceeding_vcs_raises(self):
        cfg = tiny()
        net = NetworkParams(num_vcs=1)
        topo = build_topology(cfg.topology)
        sim = Simulator()
        fabric = Fabric(sim, topo, net, MinimalRouting(seed=0))
        src, dst = nodes_other_group(topo)
        fabric.inject(Message(1, src, dst, 100))
        with pytest.raises(RuntimeError, match="VCs"):
            sim.run()

    def test_too_many_vcs_rejected_by_fabric(self):
        cfg = tiny()
        net = NetworkParams(num_vcs=16 + 1)
        topo = build_topology(cfg.topology)
        with pytest.raises(ValueError, match="num_vcs"):
            Fabric(Simulator(), topo, net, MinimalRouting(seed=0))


class TestTrafficAccounting:
    def test_local_vs_global_split(self):
        sim, topo, fabric = make_fabric()
        src, dst = nodes_same_group_other_router(topo)
        fabric.inject(Message(1, src, dst, 2000))
        sim.run()
        local = sum(fabric.bytes_tx[int(l)] for l in topo.links.local_ids())
        glob = sum(fabric.bytes_tx[int(l)] for l in topo.links.global_ids())
        assert local == 2000
        assert glob == 0

    def test_kind_masks_cover_all_links(self, tiny_topo):
        kinds = {LinkKind(int(k)) for k in tiny_topo.links.kind}
        assert kinds == {
            LinkKind.TERMINAL_IN,
            LinkKind.TERMINAL_OUT,
            LinkKind.LOCAL_ROW,
            LinkKind.LOCAL_COL,
            LinkKind.GLOBAL,
        }
