"""Route-table cache consistency tests."""

from hypothesis import given, settings, strategies as st

from repro.config import DragonflyParams
from repro.routing.paths import enumerate_minimal_routes
from repro.routing.tables import RouteTables, route_tables
from repro.topology.dragonfly import Dragonfly

PARAMS = DragonflyParams(
    groups=3, rows=2, cols=3, nodes_per_router=1,
    chassis_per_cabinet=2, global_links_per_pair=2,
)
TOPO = Dragonfly(PARAMS)
routers = st.integers(0, PARAMS.num_routers - 1)


class TestRouteTables:
    @given(r1=routers, r2=routers)
    @settings(max_examples=60)
    def test_minimal_matches_direct_enumeration(self, r1, r2):
        """Tables agree with the direct enumeration on count, hop length,
        and the set of global links used (local 2-hop segments may pick
        either grid intermediate — both are minimal)."""
        from repro.topology.links import LinkKind

        table_routes = RouteTables(TOPO).minimal(r1, r2)
        direct_routes = enumerate_minimal_routes(TOPO, r1, r2)
        assert len(table_routes) == len(direct_routes)
        assert {len(r) for r in table_routes} == {len(r) for r in direct_routes}

        def globals_used(routes):
            return {
                lid
                for r in routes
                for lid in r
                if TOPO.links.kind_of(lid) == LinkKind.GLOBAL
            }

        assert globals_used(table_routes) == globals_used(direct_routes)

    @given(r1=routers, r2=routers)
    @settings(max_examples=30)
    def test_caching_is_stable(self, r1, r2):
        tables = RouteTables(TOPO)
        first = tables.minimal(r1, r2)
        second = tables.minimal(r1, r2)
        assert first is second  # same cached object

    def test_intra_rejects_cross_group(self):
        tables = RouteTables(TOPO)
        import pytest

        with pytest.raises(ValueError):
            tables.intra(0, PARAMS.routers_per_group)

    def test_to_group_entries_cover_all_links(self):
        tables = RouteTables(TOPO)
        entries = tables.to_group(0, 1)
        assert len(entries) == PARAMS.global_links_per_pair
        for path, entry in entries:
            assert TOPO.group_of_router(entry) == 1
            # Path ends with the global link landing on `entry`.
            _, dst = TOPO.links.endpoints(path[-1])
            assert dst == entry

    def test_to_group_same_group_rejected(self):
        tables = RouteTables(TOPO)
        import pytest

        with pytest.raises(ValueError):
            tables.to_group(0, 0)

    def test_shared_instance_per_topology(self):
        a = route_tables(TOPO)
        b = route_tables(TOPO)
        assert a is b

    def test_distinct_topologies_distinct_tables(self):
        other = Dragonfly(PARAMS)
        assert route_tables(other) is not route_tables(TOPO)
