"""Sensitivity-sweep unit tests (paper Section IV-B machinery)."""

import numpy as np
import pytest

import repro
from repro.core.sensitivity import (
    EXTREME_CONFIGS,
    PAPER_SCALES,
    SensitivityResult,
    sensitivity_sweep,
)


@pytest.fixture(scope="module")
def sweep():
    cfg = repro.tiny()
    trace = repro.crystal_router_trace(num_ranks=10, seed=1).scaled(0.05)
    return sensitivity_sweep(cfg, trace, scales=(0.5, 1.0, 2.0), seed=1)


class TestSweep:
    def test_all_configs_swept(self, sweep):
        assert set(sweep.labels()) == {f"{p}-{r}" for p, r in EXTREME_CONFIGS}

    def test_series_lengths(self, sweep):
        for series in sweep.max_comm_ns.values():
            assert len(series) == 3

    def test_comm_time_grows_with_message_size(self, sweep):
        for series in sweep.max_comm_ns.values():
            assert series[-1] > series[0]

    def test_relative_baseline_is_100(self, sweep):
        rel = sweep.relative()
        assert np.allclose(rel["rand-adp"], 100.0)

    def test_rows_shape(self, sweep):
        rows = sweep.to_rows()
        assert len(rows) == 3
        scale, by_label = rows[0]
        assert scale == 0.5
        assert set(by_label) == set(sweep.labels())

    def test_paper_scales_defined_per_app(self):
        assert set(PAPER_SCALES) == {"CR", "FB", "AMG"}
        assert max(PAPER_SCALES["AMG"]) == 20.0
        assert min(PAPER_SCALES["CR"]) == 0.01


class TestValidation:
    def test_empty_scales_rejected(self):
        cfg = repro.tiny()
        trace = repro.amg_trace(num_ranks=8, seed=0)
        with pytest.raises(ValueError):
            sensitivity_sweep(cfg, trace, scales=())

    def test_baseline_must_be_swept(self):
        cfg = repro.tiny()
        trace = repro.amg_trace(num_ranks=8, seed=0)
        with pytest.raises(ValueError, match="baseline"):
            sensitivity_sweep(
                cfg,
                trace,
                scales=(1.0,),
                configs=(("cont", "min"),),
                baseline=("rand", "adp"),
            )
