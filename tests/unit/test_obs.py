"""Unit tests for repro.obs: recorder, time series, export, overhead."""

from __future__ import annotations

import pickle

import numpy as np
import pytest

import repro
from repro.engine.simulator import Simulator
from repro.metrics.timeseries import SCHEMA_VERSION, CongestionEvent
from repro.obs import ObsConfig, ObsRecorder, read_jsonl, write_csv, write_jsonl
from repro.topology.links import LinkKind


@pytest.fixture(scope="module")
def observed_run():
    cfg = repro.tiny()
    trace = repro.fill_boundary_trace(num_ranks=10, seed=5).scaled(0.05)
    return repro.run_single(
        cfg, trace, "cont", "min", seed=11, obs=ObsConfig(window_ns=20_000.0)
    )


class TestHeartbeat:
    def test_fires_at_exact_multiples(self):
        sim = Simulator()
        beats = []
        sim.add_heartbeat(10.0, beats.append)
        for t in (5.0, 12.0, 47.0):
            sim.at(t, lambda: None)
        sim.run()
        assert beats == [10.0, 20.0, 30.0, 40.0]

    def test_fires_before_event_at_same_time(self):
        sim = Simulator()
        order = []
        sim.add_heartbeat(10.0, lambda t: order.append(("beat", t)))
        sim.at(10.0, lambda: order.append(("event", sim.now)))
        sim.run()
        assert order == [("beat", 10.0), ("event", 10.0)]

    def test_multiple_heartbeats_registration_order_on_ties(self):
        sim = Simulator()
        order = []
        sim.add_heartbeat(10.0, lambda t: order.append("a"))
        sim.add_heartbeat(5.0, lambda t: order.append("b"))
        sim.at(10.0, lambda: None)
        sim.run()
        assert order == ["b", "a", "b"]

    def test_does_not_count_as_events(self):
        sim = Simulator()
        sim.add_heartbeat(1.0, lambda t: None)
        sim.at(10.0, lambda: None)
        sim.run()
        assert sim.events_run == 1

    def test_until_bound_fires_due_beats(self):
        sim = Simulator()
        beats = []
        sim.add_heartbeat(10.0, beats.append)
        sim.at(100.0, lambda: None)
        sim.run(until=35.0)
        assert beats == [10.0, 20.0, 30.0]
        assert sim.now == 35.0

    def test_rejects_bad_interval(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.add_heartbeat(0.0, lambda t: None)

    def test_no_heartbeat_run_unchanged(self):
        a, b = Simulator(), Simulator()
        b_beats = []
        ran = []
        for sim in (a, b):
            for t in (1.0, 2.5, 7.0):
                sim.at(t, ran.append, t)
        a.run()
        b.add_heartbeat(2.0, b_beats.append)
        b.run()
        assert a.now == b.now and a.events_run == b.events_run


class TestObsConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ObsConfig(window_ns=0)
        with pytest.raises(ValueError):
            ObsConfig(max_trace_events=-1)
        with pytest.raises(ValueError):
            ObsConfig(buffer_full_interval_ns=-1.0)

    def test_frozen_and_hashable(self):
        c = ObsConfig(window_ns=123.0)
        assert hash(c)
        with pytest.raises(Exception):
            c.window_ns = 5.0


class TestRecorder:
    def test_observation_does_not_perturb_physics(self):
        cfg = repro.tiny()
        trace = repro.amg_trace(num_ranks=8, seed=5).scaled(0.3)
        off = repro.run_single(cfg, trace, "rand", "adp", seed=4)
        on = repro.run_single(
            cfg, trace, "rand", "adp", seed=4, obs=ObsConfig(window_ns=7_000.0)
        )
        assert on.sim_time_ns == off.sim_time_ns
        assert on.events == off.events
        assert (on.job.comm_time_ns == off.job.comm_time_ns).all()
        assert (
            on.metrics.local_traffic_bytes == off.metrics.local_traffic_bytes
        ).all()
        assert (on.metrics.local_sat_ns == off.metrics.local_sat_ns).all()
        assert (on.metrics.global_sat_ns == off.metrics.global_sat_ns).all()
        assert on.obs is not None and off.obs is None

    def test_windows_cover_run_and_bytes_telescope(self, observed_run):
        ts = observed_run.obs
        assert ts.num_windows >= 2
        assert ts.edges[-1] == observed_run.sim_time_ns
        assert (np.diff(ts.edges) > 0).all()
        # Exact integer telescoping of per-window byte counters.
        per_link = ts.link_traffic_bytes()
        assert per_link.dtype == np.int64
        assert per_link.sum() == ts.bytes_fwd.sum()

    def test_windowed_saturation_matches_aggregate(self, observed_run):
        ts = observed_run.obs
        m = observed_run.metrics
        total_windowed = ts.link_saturation_ns().sum()
        total_aggregate = m.total_local_sat_ns + m.total_global_sat_ns
        # The serving-router masks select a subset of all links, so the
        # windowed machine-wide total must dominate the job-scoped one.
        assert total_windowed >= total_aggregate - 1e-6

    def test_double_observer_rejected(self):
        cfg = repro.tiny()
        from repro.core.runner import build_topology
        from repro.network.fabric import Fabric
        from repro.routing import make_routing

        sim = Simulator()
        fabric = Fabric(
            sim, build_topology(cfg.topology), cfg.network, make_routing("min")
        )
        ObsRecorder(sim, fabric).install()
        with pytest.raises(RuntimeError):
            ObsRecorder(sim, fabric).install()

    def test_finalize_idempotent(self, observed_run):
        ts = observed_run.obs
        assert ts.schema_version == SCHEMA_VERSION

    def test_event_cap_counts_drops(self):
        cfg = repro.tiny()
        trace = repro.amg_trace(num_ranks=8, seed=5).scaled(0.3)
        r = repro.run_single(
            cfg, trace, "rand", "adp", seed=4,
            obs=ObsConfig(window_ns=30_000.0, max_trace_events=3),
        )
        assert len(r.obs.events) == 3
        assert r.obs.events_dropped > 0

    def test_events_disabled(self):
        cfg = repro.tiny()
        trace = repro.amg_trace(num_ranks=8, seed=5).scaled(0.3)
        r = repro.run_single(
            cfg, trace, "rand", "adp", seed=4,
            obs=ObsConfig(window_ns=30_000.0, events=False),
        )
        assert r.obs.events == [] and r.obs.events_dropped == 0

    def test_congestion_events_ordered_and_typed(self):
        cfg = repro.tiny()
        trace = repro.amg_trace(num_ranks=8, seed=5).scaled(0.3)
        r = repro.run_single(
            cfg, trace, "rand", "adp", seed=4, obs=ObsConfig(window_ns=30_000.0)
        )
        events = r.obs.events
        assert events, "congested adaptive run should produce events"
        kinds = {ev.kind for ev in events}
        assert kinds <= {
            "stall_onset", "stall_clear", "buffer_full", "adaptive_divert"
        }
        times = [ev.t_ns for ev in events]
        assert times == sorted(times)
        clears = [ev for ev in events if ev.kind == "stall_clear"]
        assert all(ev.value > 0 for ev in clears)


class TestTimeSeriesDerived:
    def test_link_utilisation_bounded(self, observed_run):
        util = observed_run.obs.link_utilisation()
        assert (util >= 0).all() and (util <= 1 + 1e-9).all()

    def test_saturation_onset(self, observed_run):
        onset = observed_run.obs.saturation_onset_ns(frac=1e-9)
        ts = observed_run.obs
        stalled = ts.link_saturation_ns() > 0
        assert np.isfinite(onset[stalled]).all()
        assert np.isinf(onset[~stalled]).all()
        with pytest.raises(ValueError):
            ts.saturation_onset_ns(frac=0.0)

    def test_class_series_partitions_traffic(self, observed_run):
        ts = observed_run.obs
        per_class = [
            ts.class_series(LinkKind.TERMINAL_IN)["bytes_fwd"],
            ts.class_series(LinkKind.TERMINAL_OUT)["bytes_fwd"],
            ts.class_series(LinkKind.LOCAL_ROW, LinkKind.LOCAL_COL)["bytes_fwd"],
            ts.class_series(LinkKind.GLOBAL)["bytes_fwd"],
        ]
        total = sum(series.sum() for series in per_class)
        assert total == ts.bytes_fwd.sum()

    def test_pickle_round_trip(self, observed_run):
        ts = observed_run.obs
        clone = pickle.loads(pickle.dumps(ts))
        assert clone.schema_version == SCHEMA_VERSION
        assert clone.window_ns == ts.window_ns
        assert (clone.edges == ts.edges).all()
        assert (clone.bytes_fwd == ts.bytes_fwd).all()
        assert (clone.busy_ns == ts.busy_ns).all()
        assert (clone.stall_ns == ts.stall_ns).all()
        assert (clone.queue_bytes == ts.queue_bytes).all()
        assert (clone.injected_packets == ts.injected_packets).all()
        assert clone.events == ts.events
        assert isinstance(clone.events[0], CongestionEvent)
        assert clone.events_dropped == ts.events_dropped


class TestExport:
    def test_jsonl_round_trip(self, observed_run, tmp_path):
        ts = observed_run.obs
        path = write_jsonl(ts, tmp_path / "run.jsonl")
        clone = read_jsonl(path)
        assert clone.schema_version == SCHEMA_VERSION
        assert (clone.bytes_fwd == ts.bytes_fwd).all()
        assert np.allclose(clone.stall_ns, ts.stall_ns)
        assert np.allclose(clone.busy_ns, ts.busy_ns)
        assert (clone.link_kind == ts.link_kind).all()
        assert clone.events == ts.events

    def test_jsonl_rejects_unknown_schema(self, observed_run, tmp_path):
        path = write_jsonl(observed_run.obs, tmp_path / "run.jsonl")
        lines = path.read_text().splitlines()
        import json

        header = json.loads(lines[0])
        header["schema_version"] = 999
        path.write_text("\n".join([json.dumps(header)] + lines[1:]) + "\n")
        with pytest.raises(ValueError, match="schema version"):
            read_jsonl(path)

    def test_csv_long_format(self, observed_run, tmp_path):
        ts = observed_run.obs
        path = write_csv(ts, tmp_path / "run.csv")
        lines = path.read_text().splitlines()
        assert lines[0].startswith("window_end_ns,link,link_kind,bytes_fwd")
        assert len(lines) == 1 + ts.num_windows * ts.num_links

    def test_export_dispatches_on_suffix(self, observed_run, tmp_path):
        from repro.obs import export

        assert export(observed_run.obs, tmp_path / "a.csv").suffix == ".csv"
        assert export(observed_run.obs, tmp_path / "a.jsonl").suffix == ".jsonl"
