"""Feature extraction: layout, determinism, and candidate enumeration."""

from concurrent.futures import ProcessPoolExecutor
from multiprocessing import get_context

import numpy as np
import pytest

import repro
from repro.advisor.features import (
    FEATURE_NAMES,
    NUM_FEATURES,
    PLACEMENT_BLOCK,
    FeatureExtractor,
    enumerate_candidates,
    mirror_allocation,
)
from repro.engine.rng import spawn_seed
from repro.placement.machine import Machine
from repro.placement.policies import PLACEMENT_NAMES

from tests.advisor_helpers import advisor_trace, feature_bytes


@pytest.fixture(scope="module")
def config():
    return repro.tiny()


@pytest.fixture(scope="module")
def trace():
    return advisor_trace()


class TestLayout:
    def test_names_are_unique_and_sized(self):
        assert len(FEATURE_NAMES) == NUM_FEATURES
        assert len(set(FEATURE_NAMES)) == NUM_FEATURES
        # interaction block mirrors the placement block exactly
        placement = FEATURE_NAMES[PLACEMENT_BLOCK : PLACEMENT_BLOCK + 10]
        interactions = FEATURE_NAMES[PLACEMENT_BLOCK + 10 :]
        assert tuple(f"adp_x_{n}" for n in placement) == interactions

    def test_vector_shape_and_dtype(self, config, trace):
        fx = FeatureExtractor(config, trace, "min")
        cand = enumerate_candidates(config, trace.num_ranks, per_policy=1)[0]
        v = fx.vector(cand.nodes)
        assert v.shape == (NUM_FEATURES,)
        assert v.dtype == np.float64
        assert np.isfinite(v).all()

    def test_rank_count_mismatch_raises(self, config, trace):
        fx = FeatureExtractor(config, trace, "min")
        with pytest.raises(ValueError, match="ranks"):
            fx.vector((0, 1, 2))

    def test_unknown_routing_raises(self, config, trace):
        with pytest.raises(ValueError, match="routing"):
            FeatureExtractor(config, trace, "ugal")


class TestSemantics:
    def test_base_block_is_placement_invariant(self, config, trace):
        fx = FeatureExtractor(config, trace, "min")
        cands = enumerate_candidates(config, trace.num_ranks, per_policy=3)
        base = [fx.vector(c.nodes)[:PLACEMENT_BLOCK] for c in cands]
        for other in base[1:]:
            assert np.array_equal(base[0], other)

    def test_placements_produce_different_vectors(self, config, trace):
        fx = FeatureExtractor(config, trace, "min")
        by_policy = {
            c.placement: c
            for c in enumerate_candidates(config, trace.num_ranks, per_policy=1)
        }
        v_cont = fx.vector(by_policy["cont"].nodes)
        v_rand = fx.vector(by_policy["rand"].nodes)
        assert not np.array_equal(
            v_cont[PLACEMENT_BLOCK:], v_rand[PLACEMENT_BLOCK:]
        )

    def test_min_routing_zeroes_the_interaction_block(self, config, trace):
        fx = FeatureExtractor(config, trace, "min")
        cand = enumerate_candidates(config, trace.num_ranks, per_policy=1)[0]
        v = fx.vector(cand.nodes)
        assert np.all(v[PLACEMENT_BLOCK + 10 :] == 0.0)
        assert v[FEATURE_NAMES.index("routing_adp")] == 0.0

    def test_adp_interactions_equal_placement_block(self, config, trace):
        fx = FeatureExtractor(config, trace, "adp")
        cand = enumerate_candidates(config, trace.num_ranks, per_policy=1)[0]
        v = fx.vector(cand.nodes)
        assert v[FEATURE_NAMES.index("routing_adp")] == 1.0
        assert np.array_equal(
            v[PLACEMENT_BLOCK : PLACEMENT_BLOCK + 10],
            v[PLACEMENT_BLOCK + 10 :],
        )
        # the placement block itself matches the min extractor's
        fx_min = FeatureExtractor(config, trace, "min")
        assert np.array_equal(
            fx_min.vector(cand.nodes)[PLACEMENT_BLOCK : PLACEMENT_BLOCK + 10],
            v[PLACEMENT_BLOCK : PLACEMENT_BLOCK + 10],
        )


class TestDeterminism:
    def test_byte_identical_within_process(self, config, trace):
        cand = enumerate_candidates(config, trace.num_ranks, per_policy=1)[2]
        a = FeatureExtractor(config, trace, "adp").vector(cand.nodes)
        b = FeatureExtractor(config, trace, "adp").vector(cand.nodes)
        assert a.tobytes() == b.tobytes()

    @pytest.mark.parametrize("routing", ["min", "adp"])
    def test_byte_identical_across_processes(self, config, trace, routing):
        """Same inputs -> byte-identical vector in a spawned process."""
        cand = enumerate_candidates(config, trace.num_ranks, per_policy=2)[3]
        local = FeatureExtractor(config, trace, routing).vector(cand.nodes)
        with ProcessPoolExecutor(
            max_workers=1, mp_context=get_context("spawn")
        ) as pool:
            remote = pool.submit(
                feature_bytes, "FB", 8, 7, routing, cand.nodes
            ).result(timeout=120)
        assert local.tobytes() == remote


class TestCandidates:
    def test_enumeration_is_deterministic_and_deduplicated(self, config):
        a = enumerate_candidates(config, 8, per_policy=6, seed=3)
        b = enumerate_candidates(config, 8, per_policy=6, seed=3)
        assert a == b
        assert len({c.nodes for c in a}) == len(a)
        for c in a:
            assert len(c.nodes) == 8
            assert len(set(c.nodes)) == 8
            assert all(0 <= n < config.topology.num_nodes for n in c.nodes)

    def test_deterministic_policies_collapse(self, config):
        cands = enumerate_candidates(
            config, 8, placements=("cont",), per_policy=10
        )
        assert len(cands) == 1
        assert cands[0].placement == "cont"

    def test_seed_changes_random_draws(self, config):
        a = enumerate_candidates(config, 8, placements=("rand",), per_policy=4, seed=1)
        b = enumerate_candidates(config, 8, placements=("rand",), per_policy=4, seed=2)
        assert {c.nodes for c in a} != {c.nodes for c in b}

    def test_mirror_matches_machine_allocate(self, config):
        seed = spawn_seed(99, "claim", 12)
        for name in PLACEMENT_NAMES:
            machine = Machine(config.topology)
            mirrored = mirror_allocation(machine, name, 8, seed)
            allocated = machine.allocate(name, 8, seed=seed)
            assert mirrored == allocated
