"""Whitebox tests of the fluid fabric: analytic rates, NIC
serialisation, fair sharing, and the saturation proxy."""

from __future__ import annotations

import math

import pytest

import repro
from repro.engine.simulator import Simulator
from repro.flow.fabric import FlowFabric
from repro.network.packet import Message


@pytest.fixture(scope="module")
def cfg():
    return repro.tiny()


@pytest.fixture(scope="module")
def topo(cfg):
    return repro.Dragonfly(cfg.topology)


def make_fabric(cfg, topo, routing="min"):
    sim = Simulator()
    return sim, FlowFabric(sim, topo, cfg.network, routing)


def send(fabric, msg_id, src, dst, size, at=0.0):
    """Inject one message at time ``at`` and return it."""
    msg = Message(msg_id, src, dst, size)
    fabric.sim.at(at, fabric.inject, msg)
    return msg


def same_router_pair(topo):
    for s in range(topo.num_nodes):
        for d in range(topo.num_nodes):
            if s != d and topo.router_of(s) == topo.router_of(d):
                return s, d
    raise AssertionError("tiny preset has multi-node routers")


class TestSingleFlow:
    def test_analytic_drain_and_delivery(self, cfg, topo):
        """A lone same-router flow drains at terminal bandwidth and is
        delivered one path latency later."""
        sim, fabric = make_fabric(cfg, topo)
        src, dst = same_router_pair(topo)
        size = 64 * 1024
        msg = send(fabric, 0, src, dst, size)
        sim.run()
        bw = cfg.network.terminal_bw
        assert math.isclose(msg.injected_time, size / bw, rel_tol=1e-9)
        entry = fabric.routes.entry(src, dst)
        assert math.isclose(
            msg.delivered_time - msg.injected_time,
            entry.latency_ns,
            rel_tol=1e-9,
        )
        assert msg.arrived_bytes == size
        assert fabric.messages_delivered == 1
        assert fabric.bytes_delivered == size

    def test_lone_flow_never_counts_as_saturation(self, cfg, topo):
        """A single flow pinned at its own bottleneck is healthy
        progress — the proxy requires two contending flows."""
        sim, fabric = make_fabric(cfg, topo)
        src, dst = same_router_pair(topo)
        send(fabric, 0, src, dst, 1024 * 1024)
        sim.run()
        fabric.drain_saturation()
        assert sum(fabric.sat_ns) == 0.0

    def test_bytes_tx_counts_wire_bytes_per_link(self, cfg, topo):
        sim, fabric = make_fabric(cfg, topo)
        src, dst = same_router_pair(topo)
        size = 16 * 1024
        send(fabric, 0, src, dst, size)
        sim.run()
        fabric.drain_saturation()
        assert fabric.bytes_tx[topo.terminal_in(src)] == size
        assert fabric.bytes_tx[topo.terminal_out(dst)] == size
        assert sum(fabric.bytes_tx) == 2 * size

    def test_min_routing_is_all_minimal(self, cfg, topo):
        sim, fabric = make_fabric(cfg, topo)
        send(fabric, 0, 0, topo.num_nodes - 1, 64 * 1024)
        sim.run()
        assert fabric.nonminimal_fraction == 0.0

    def test_hop_accounting_matches_entry(self, cfg, topo):
        """Delivered hop metadata reproduces the route expectation."""
        sim, fabric = make_fabric(cfg, topo)
        src, dst = 0, topo.num_nodes - 1
        size = 64 * 1024
        msg = send(fabric, 0, src, dst, size)
        sim.run()
        entry = fabric.routes.entry(src, dst)
        assert msg.num_packets == -(-size // cfg.network.packet_size)
        assert math.isclose(msg.avg_hops, entry.rr_hops, rel_tol=1e-9)


class TestNicSerialisation:
    def test_same_source_messages_serialise(self, cfg, topo):
        """The packet NIC is FIFO, so two concurrent messages from one
        node inject back-to-back, not in parallel."""
        sim, fabric = make_fabric(cfg, topo)
        src, dst = same_router_pair(topo)
        size = 32 * 1024
        first = send(fabric, 0, src, dst, size)
        second = send(fabric, 1, src, dst, size)
        sim.run()
        bw = cfg.network.terminal_bw
        assert math.isclose(first.injected_time, size / bw, rel_tol=1e-9)
        assert math.isclose(
            second.injected_time, 2 * size / bw, rel_tol=1e-9
        )

    def test_successor_starts_at_exact_finish(self, cfg, topo):
        """NIC turnaround is not quantised to the admission epoch."""
        sim, fabric = make_fabric(cfg, topo)
        src, dst = same_router_pair(topo)
        size = 3000  # drains mid-epoch
        first = send(fabric, 0, src, dst, size)
        second = send(fabric, 1, src, dst, size)
        sim.run()
        assert math.isclose(
            second.injected_time - first.injected_time,
            size / cfg.network.terminal_bw,
            rel_tol=1e-9,
        )

    def test_distinct_sources_inject_in_parallel(self, cfg, topo):
        sim, fabric = make_fabric(cfg, topo)
        src, dst = same_router_pair(topo)
        other = next(
            n
            for n in range(topo.num_nodes)
            if n not in (src, dst) and topo.router_of(n) != topo.router_of(src)
        )
        size = 32 * 1024
        a = send(fabric, 0, src, dst, size)
        b = send(fabric, 1, other, dst, size)
        sim.run()
        # Different NICs drain concurrently: each flow finishes before
        # the *sum* of their stand-alone drain times (a serialising NIC
        # would force one of them past it). Flow b's stand-alone floor
        # is its slowest path link, not the terminal.
        alone_a = size / cfg.network.terminal_bw
        alone_b = size / min(
            fabric.bw[lid] for lid, _ in fabric.routes.entry(other, dst).links
        )
        assert a.injected_time < alone_a + alone_b
        assert b.injected_time < alone_a + alone_b


def contended_trio(topo, fabric):
    """Two sources whose minimal routes both put weight 1.0 on one
    router-to-router link toward a common destination."""
    for dst in range(topo.num_nodes):
        t_out = topo.terminal_out(dst)
        by_link: dict[int, list[int]] = {}
        for src in range(topo.num_nodes):
            if src == dst or topo.router_of(src) == topo.router_of(dst):
                continue
            t_in = topo.terminal_in(src)
            for lid, w in fabric.routes.entry(src, dst).links:
                if lid not in (t_in, t_out) and w == 1.0:
                    by_link.setdefault(lid, []).append(src)
        for lid, srcs in by_link.items():
            if len(srcs) >= 2:
                return srcs[0], srcs[1], dst, lid
    raise AssertionError("tiny topology offers no shared weight-1 link")


class TestFairSharing:
    def test_shared_link_splits_bandwidth(self, cfg, topo):
        """Two flows forced over one router link get half its rate
        each (weighted max-min with weight 2 on the bottleneck)."""
        sim, fabric = make_fabric(cfg, topo)
        src_a, src_b, dst, lid = contended_trio(topo, fabric)
        size = 64 * 1024
        a = send(fabric, 0, src_a, dst, size)
        b = send(fabric, 1, src_b, dst, size)
        sim.run()
        expect = 2 * size / fabric.bw[lid]
        assert math.isclose(a.injected_time, expect, rel_tol=1e-6)
        assert math.isclose(b.injected_time, expect, rel_tol=1e-6)

    def test_contended_bottleneck_accrues_sat_time(self, cfg, topo):
        sim, fabric = make_fabric(cfg, topo)
        src_a, src_b, dst, lid = contended_trio(topo, fabric)
        send(fabric, 0, src_a, dst, 256 * 1024)
        send(fabric, 1, src_b, dst, 256 * 1024)
        sim.run()
        fabric.drain_saturation()
        assert fabric.sat_ns[lid] > 0.0
        # Only the contended link saturates; each ingress terminal
        # serves one flow and stays congestion-free.
        assert fabric.sat_ns[topo.terminal_in(src_a)] == 0.0


class TestConservation:
    def test_every_injected_byte_is_delivered(self, cfg, topo):
        sim, fabric = make_fabric(cfg, topo, routing="adp")
        rng_pairs = [
            (0, 9),
            (3, 17),
            (5, 23),
            (8, 2),
            (12, 21),
        ]
        total = 0
        t = 0.0
        for i, (s, d) in enumerate(rng_pairs):
            size = (i + 1) * 24 * 1024
            send(fabric, i, s, d, size, at=t)
            total += size
            t += 700.0
        sim.run()
        assert fabric.bytes_injected == total
        assert fabric.bytes_delivered == total
        assert fabric.messages_delivered == len(rng_pairs)
        assert fabric.packets_delivered == fabric.packets_injected
        # The pending-load ledger fully reconciles once traffic drains.
        assert max(map(abs, fabric._load)) < 1e-6

    def test_adaptive_flows_count_nonminimal_bytes(self, cfg, topo):
        sim, fabric = make_fabric(cfg, topo, routing="adp")
        # A large inter-group message spills onto Valiant paths.
        src = 0
        dst = topo.num_nodes - 1
        send(fabric, 0, src, dst, 512 * 1024)
        sim.run()
        assert 0.0 < fabric.nonminimal_fraction < 1.0


class TestWakeRearm:
    """Regression: the wake machinery must make progress even when
    floating-point time resolution collapses the next finish time."""

    @pytest.mark.parametrize("solver", ("scalar", "vector"))
    def test_no_livelock_when_finish_time_rounds_to_now(
        self, cfg, topo, solver
    ):
        """At huge simulated times ``now + remaining/rate`` can round
        back to ``now``; re-arming the wake at the same instant then
        spins forever (same-timestamp wakes re-arm without settling any
        bytes). The fix bumps the re-arm one ulp forward, which
        over-covers the sub-ulp residual and finishes the flow.
        Before the fix this raised ``RuntimeError: simulation exceeded
        10000 events`` with zero deliveries."""
        sim = Simulator()
        fabric = FlowFabric(sim, topo, cfg.network, "min", solver=solver)
        src, dst = same_router_pair(topo)
        msg = Message(0, src, dst, 100)
        sim.at(1e18, fabric.inject, msg)
        sim.run(max_events=10_000)
        assert fabric.messages_delivered == 1
        assert fabric.bytes_delivered == 100
        assert msg.delivered_time > 1e18

    def test_normal_times_unaffected_by_ulp_guard(self, cfg, topo):
        """At ordinary magnitudes the guard never engages: delivery
        matches the analytic drain + latency exactly (the existing
        single-flow timing test pins the same arithmetic; this one
        pins it right next to the collapse regression)."""
        sim, fabric = make_fabric(cfg, topo)
        src, dst = same_router_pair(topo)
        size = 4096
        msg = send(fabric, 0, src, dst, size)
        sim.run()
        bw = cfg.network.terminal_bw
        entry = fabric.routes.entry(src, dst)
        assert math.isclose(
            msg.delivered_time,
            size / bw + entry.latency_ns,
            rel_tol=1e-12,
        )
