"""Placement advisor tests: the paper's findings as decisions."""

import pytest

import repro
from repro.core.advisor import characterize, recommend


@pytest.fixture(scope="module")
def config():
    return repro.medium()


class TestCharacterize:
    def test_cr_profile(self):
        p = characterize(repro.crystal_router_trace(num_ranks=64, seed=1))
        # Steady many-to-many with a strong neighbourhood share.
        assert p.load_fluctuation < 0.5
        assert p.neighborhood_share > 0.3
        assert p.partners_per_rank >= 6

    def test_fb_profile(self):
        p = characterize(repro.fill_boundary_trace(num_ranks=64, seed=1))
        # Strongly fluctuating, heaviest load of the three.
        assert p.load_fluctuation > 0.5
        assert p.bytes_per_rank > 1e6

    def test_amg_profile(self):
        p = characterize(repro.amg_trace(num_ranks=64, seed=1))
        cr = characterize(repro.crystal_router_trace(num_ranks=64, seed=1))
        assert p.bytes_per_rank < cr.bytes_per_rank
        assert p.partners_per_rank < 20

    def test_scaling_affects_only_load(self):
        base = characterize(repro.crystal_router_trace(num_ranks=32, seed=1))
        scaled = characterize(
            repro.crystal_router_trace(num_ranks=32, seed=1).scaled(0.1)
        )
        assert scaled.bytes_per_rank < base.bytes_per_rank
        assert scaled.messages_per_rank == base.messages_per_rank
        assert scaled.partners_per_rank == base.partners_per_rank

    def test_phase_counting(self):
        p = characterize(repro.amg_trace(num_ranks=27, cycles=2, seed=1))
        assert p.phases_per_rank > 0
        assert p.bytes_per_phase < p.bytes_per_rank


class TestRecommend:
    def test_heavy_steady_app_gets_rand_min(self, config):
        """CR-like at full load: balanced placement, minimal routing."""
        trace = repro.crystal_router_trace(num_ranks=128, seed=1)
        rec = recommend(trace, config)
        assert rec.label == "rand-min"
        assert rec.rationale

    def test_heavy_fluctuating_app_gets_rand_adp(self, config):
        """FB-like: balanced placement, adaptive routing."""
        trace = repro.fill_boundary_trace(num_ranks=128, seed=1).scaled(0.1)
        rec = recommend(trace, config)
        assert rec.label == "rand-adp"

    def test_light_app_gets_contiguous(self, config):
        """AMG-like: localized placement."""
        trace = repro.amg_trace(num_ranks=128, seed=1)
        rec = recommend(trace, config)
        assert rec.placement == "cont"

    def test_low_intensity_flips_heavy_app(self, config):
        """The same app at 1% load localizes (paper Fig 7 crossover)."""
        trace = repro.crystal_router_trace(num_ranks=128, seed=1).scaled(0.01)
        rec = recommend(trace, config)
        assert rec.placement == "cont"

    def test_bursty_shared_network_forces_isolation(self, config):
        """§IV-C: under bursty external traffic, even heavy apps are
        advised into the isolated cont-min configuration."""
        trace = repro.fill_boundary_trace(num_ranks=128, seed=1).scaled(0.1)
        rec = recommend(trace, config, shared_network=True, bursty_neighbors=True)
        assert rec.label == "cont-min"

    def test_shared_network_light_app_keeps_minimal(self, config):
        """Fig 8: AMG-like apps on shared networks stay cont-min so
        background traffic cannot route through their routers."""
        trace = repro.amg_trace(num_ranks=128, seed=1)
        rec = recommend(trace, config, shared_network=True)
        assert rec.label == "cont-min"

    def test_machine_relative_intensity(self):
        """The same trace is heavier relative to a slower network."""
        import dataclasses

        trace = repro.crystal_router_trace(num_ranks=64, seed=1)
        fast = repro.medium()
        slow_net = dataclasses.replace(fast.network, local_bw=fast.network.local_bw / 50)
        slow = dataclasses.replace(fast, network=slow_net)
        assert recommend(trace, slow).intensity > recommend(trace, fast).intensity

    def test_recommendation_validated_by_simulation(self):
        """The advisor's pick is at least as good as the opposite
        extreme when actually simulated (AMG on the small machine)."""
        cfg = repro.small()
        trace = repro.amg_trace(num_ranks=32, seed=2)
        rec = recommend(trace, cfg)
        chosen = repro.run_single(cfg, trace, rec.placement, rec.routing, seed=2)
        opposite = repro.run_single(cfg, trace, "rand", "min", seed=2)
        assert (
            chosen.metrics.median_comm_time_ns
            <= opposite.metrics.median_comm_time_ns
        )
