"""Placement-policy tests (paper Section III-B invariants)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import DragonflyParams
from repro.placement import (
    PLACEMENT_NAMES,
    Machine,
    make_placement,
)
from repro.topology.geometry import (
    node_cabinet,
    node_chassis,
    node_group,
    node_router,
)

PARAMS = DragonflyParams(
    groups=4, rows=4, cols=4, nodes_per_router=2,
    chassis_per_cabinet=2, global_links_per_pair=4,
)


def allocate(name, n, seed=0, params=PARAMS):
    return Machine(params).allocate(name, n, seed=seed)


class TestCommonInvariants:
    @pytest.mark.parametrize("name", PLACEMENT_NAMES)
    @pytest.mark.parametrize("n", [1, 7, 32, PARAMS.num_nodes])
    def test_exact_distinct_in_range(self, name, n):
        nodes = allocate(name, n)
        assert len(nodes) == n
        assert len(set(nodes)) == n
        assert all(0 <= x < PARAMS.num_nodes for x in nodes)

    @pytest.mark.parametrize("name", PLACEMENT_NAMES)
    def test_deterministic_per_seed(self, name):
        assert allocate(name, 20, seed=5) == allocate(name, 20, seed=5)

    @pytest.mark.parametrize("name", ["cab", "chas", "rotr", "rand"])
    def test_seed_changes_allocation(self, name):
        a = allocate(name, 20, seed=1)
        b = allocate(name, 20, seed=2)
        assert a != b

    @given(
        name=st.sampled_from(PLACEMENT_NAMES),
        n=st.integers(1, PARAMS.num_nodes),
        seed=st.integers(0, 50),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_valid_allocation(self, name, n, seed):
        nodes = allocate(name, n, seed)
        assert len(nodes) == n == len(set(nodes))


class TestContiguous:
    def test_takes_prefix(self):
        assert allocate("cont", 10) == list(range(10))

    def test_respects_free_list(self):
        m = Machine(PARAMS)
        first = m.allocate("cont", 10)
        second = m.allocate("cont", 10)
        assert second == list(range(10, 20))
        assert not set(first) & set(second)


class TestGranularity:
    def _containers_partially_filled(self, nodes, container_of, capacity):
        """Count containers that are touched but not completely used."""
        from collections import Counter

        counts = Counter(container_of(PARAMS, n) for n in nodes)
        return sum(1 for c in counts.values() if c < capacity)

    def test_cabinet_placement_fills_cabinets(self):
        n = PARAMS.nodes_per_cabinet * 3
        nodes = allocate("cab", n, seed=3)
        partial = self._containers_partially_filled(
            nodes, node_cabinet, PARAMS.nodes_per_cabinet
        )
        assert partial == 0

    def test_chassis_placement_fills_chassis(self):
        n = PARAMS.nodes_per_chassis * 5
        nodes = allocate("chas", n, seed=3)
        partial = self._containers_partially_filled(
            nodes, node_chassis, PARAMS.nodes_per_chassis
        )
        assert partial == 0

    def test_router_placement_fills_routers(self):
        n = PARAMS.nodes_per_router * 9
        nodes = allocate("rotr", n, seed=3)
        partial = self._containers_partially_filled(
            nodes, node_router, PARAMS.nodes_per_router
        )
        assert partial == 0

    def test_at_most_one_partial_container(self):
        # A non-multiple request leaves exactly one partially-used cabinet.
        n = PARAMS.nodes_per_cabinet * 2 + 3
        nodes = allocate("cab", n, seed=1)
        partial = self._containers_partially_filled(
            nodes, node_cabinet, PARAMS.nodes_per_cabinet
        )
        assert partial == 1


class TestLocalitySpectrum:
    def test_group_spread_ordering(self):
        """cont concentrates groups; rand spreads them the most."""
        n = PARAMS.nodes_per_group  # one group's worth of nodes
        spreads = {}
        for name in PLACEMENT_NAMES:
            nodes = allocate(name, n, seed=7)
            spreads[name] = len({node_group(PARAMS, x) for x in nodes})
        assert spreads["cont"] == 1
        assert spreads["cont"] <= spreads["cab"] <= spreads["rand"]
        assert spreads["rand"] >= 3

    def test_router_spread_ordering(self):
        n = 32
        routers = {}
        for name in PLACEMENT_NAMES:
            nodes = allocate(name, n, seed=7)
            routers[name] = len({node_router(PARAMS, x) for x in nodes})
        # Contiguous and router placement pack routers fully; random-node
        # touches the most routers.
        assert routers["cont"] == n // PARAMS.nodes_per_router
        assert routers["rotr"] == n // PARAMS.nodes_per_router
        assert routers["rand"] >= routers["cont"]


class TestMachine:
    def test_over_allocation_rejected(self):
        m = Machine(PARAMS)
        with pytest.raises(ValueError, match="free"):
            m.allocate("cont", PARAMS.num_nodes + 1)

    def test_zero_allocation_rejected(self):
        with pytest.raises(ValueError):
            Machine(PARAMS).allocate("cont", 0)

    def test_release_returns_nodes(self):
        m = Machine(PARAMS)
        nodes = m.allocate("rand", 10, seed=1)
        m.release(nodes)
        assert m.num_free == PARAMS.num_nodes

    def test_release_rejects_double_free(self):
        m = Machine(PARAMS)
        nodes = m.allocate("rand", 10, seed=1)
        m.release(nodes)
        with pytest.raises(ValueError):
            m.release(nodes)

    def test_free_nodes_sorted(self):
        m = Machine(PARAMS)
        m.allocate("rand", 30, seed=2)
        free = m.free_nodes()
        assert free == sorted(free)
        assert len(free) == PARAMS.num_nodes - 30

    def test_unknown_policy(self):
        with pytest.raises(ValueError, match="unknown placement"):
            Machine(PARAMS).allocate("bogus", 4)

    def test_long_names_accepted(self):
        nodes = Machine(PARAMS).allocate("random-node", 4, seed=0)
        assert len(nodes) == 4

    def test_policy_instance_accepted(self):
        policy = make_placement("cont")
        nodes = Machine(PARAMS).allocate(policy, 4)
        assert nodes == [0, 1, 2, 3]

    def test_non_policy_rejected(self):
        with pytest.raises(TypeError):
            Machine(PARAMS).allocate(42, 4)
