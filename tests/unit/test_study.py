"""TradeoffStudy / StudyResult unit tests (on a tiny machine)."""

import numpy as np
import pytest

import repro
from repro.core.study import StudyResult, TradeoffStudy


@pytest.fixture(scope="module")
def study_result():
    cfg = repro.tiny()
    traces = {
        "CR": repro.crystal_router_trace(num_ranks=10, seed=1).scaled(0.05),
        "AMG": repro.amg_trace(num_ranks=10, seed=1).scaled(0.5),
    }
    return TradeoffStudy(
        cfg, traces, placements=("cont", "rand"), routings=("min", "adp"), seed=1
    ).run()


class TestTradeoffStudy:
    def test_grid_complete(self, study_result):
        assert len(study_result.runs) == 2 * 2 * 2
        assert study_result.labels() == [
            "cont-min", "rand-min", "cont-adp", "rand-adp",
        ]

    def test_get_by_label(self, study_result):
        r = study_result.get("CR", "cont-min")
        assert r.app == "CR" and r.placement == "cont" and r.routing == "min"

    def test_comm_time_boxes(self, study_result):
        boxes = study_result.comm_time_boxes("CR")
        assert set(boxes) == set(study_result.labels())
        for b in boxes.values():
            assert b.minimum <= b.median <= b.maximum

    def test_hops_cdf_monotone(self, study_result):
        for label, (x, pct) in study_result.hops_cdf("CR").items():
            assert (np.diff(x) >= 0).all()
            assert pct[-1] == 100.0

    def test_random_placement_raises_hops(self, study_result):
        cont = study_result.get("CR", "cont-min").metrics.mean_hops
        rand = study_result.get("CR", "rand-min").metrics.mean_hops
        assert rand > cont

    def test_traffic_cdf_channels(self, study_result):
        curves = study_result.traffic_cdf("CR", "local")
        assert set(curves) == set(study_result.labels())
        curves_g = study_result.traffic_cdf("CR", "global")
        assert set(curves_g) == set(study_result.labels())

    def test_saturation_cdf(self, study_result):
        for label, (x, pct) in study_result.saturation_cdf("AMG", "local").items():
            assert (x >= 0).all()

    def test_best_label(self, study_result):
        best = study_result.best_label("CR")
        assert best in study_result.labels()
        best_val = study_result._stat("CR", best, "median")
        for label in study_result.labels():
            assert best_val <= study_result._stat("CR", label, "median")

    def test_improvement_antisymmetric_sign(self, study_result):
        a = study_result.improvement_pct("CR", "rand-min", "cont-min")
        b = study_result.improvement_pct("CR", "cont-min", "rand-min")
        assert (a > 0) != (b > 0) or (a == 0 and b == 0)

    def test_unknown_stat(self, study_result):
        with pytest.raises(ValueError):
            study_result._stat("CR", "cont-min", "p99")


class TestValidation:
    def test_requires_traces(self):
        with pytest.raises(ValueError):
            TradeoffStudy(repro.tiny(), {})

    def test_accepts_trace_list(self):
        trace = repro.amg_trace(num_ranks=8, seed=0).scaled(0.2)
        study = TradeoffStudy(
            repro.tiny(), [trace], placements=("cont",), routings=("min",)
        )
        result = study.run()
        assert ("AMG", "cont", "min") in result.runs

    def test_verbose_prints(self, capsys):
        trace = repro.amg_trace(num_ranks=8, seed=0).scaled(0.2)
        TradeoffStudy(
            repro.tiny(), [trace], placements=("cont",), routings=("min",)
        ).run(verbose=True)
        out = capsys.readouterr().out
        assert "cont-min" in out
