"""Unit tests for the cross-fidelity harness (repro.flow.fidelity)."""

from __future__ import annotations

import json

import pytest

import repro
from repro.flow.fidelity import (
    METRIC_KEYS,
    SCHEMA,
    _rel_err,
    fidelity_report,
    kendall_tau,
)


class TestKendallTau:
    def test_identical_orderings(self):
        assert kendall_tau([1, 2, 3, 4], [10, 20, 30, 40]) == 1.0

    def test_reversed_orderings(self):
        assert kendall_tau([1, 2, 3], [3, 2, 1]) == -1.0

    def test_partial_agreement(self):
        # One discordant pair out of three.
        assert kendall_tau([1, 2, 3], [1, 3, 2]) == pytest.approx(1 / 3)

    def test_ties_count_zero(self):
        assert kendall_tau([1, 1], [1, 2]) == 0.0

    def test_short_vectors_are_trivially_concordant(self):
        assert kendall_tau([5], [9]) == 1.0
        assert kendall_tau([], []) == 1.0

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            kendall_tau([1, 2], [1, 2, 3])


class TestRelErr:
    def test_signed(self):
        assert _rel_err(2.0, 3.0) == 0.5
        assert _rel_err(2.0, 1.0) == -0.5

    def test_zero_reference_zero_value(self):
        assert _rel_err(0.0, 0.0) == 0.0

    def test_zero_reference_nonzero_value_is_undefined(self):
        assert _rel_err(0.0, 1.0) is None


@pytest.fixture(scope="module")
def small_report():
    cfg = repro.tiny()
    trace = repro.fill_boundary_trace(num_ranks=8, seed=3).scaled(0.05)
    return fidelity_report(
        cfg,
        {"FB": trace},
        placements=("cont", "rand"),
        routings=("min",),
        seed=7,
    )


class TestFidelityReport:
    def test_grid_shape(self, small_report):
        assert small_report.apps == ("FB",)
        assert len(small_report.cells) == 2  # 2 placements x 1 routing
        labels = {
            (c["placement"], c["routing"]) for c in small_report.cells
        }
        assert labels == {("cont", "min"), ("rand", "min")}

    def test_cells_carry_both_summaries_and_errors(self, small_report):
        for cell in small_report.cells:
            assert set(METRIC_KEYS) <= set(cell["packet"])
            assert set(METRIC_KEYS) <= set(cell["flow"])
            assert set(cell["rel_err"]) == set(METRIC_KEYS)

    def test_rank_record_per_routing(self, small_report):
        rec = small_report.rank["FB"]["min"]
        assert set(rec) == {
            "kendall_tau",
            "top1_packet",
            "top1_flow",
            "top1_agree",
        }
        assert -1.0 <= rec["kendall_tau"] <= 1.0
        assert rec["top1_agree"] == (
            rec["top1_packet"] == rec["top1_flow"]
        )

    def test_wall_clock_is_measured(self, small_report):
        assert small_report.packet_wall_s > 0.0
        assert small_report.flow_wall_s > 0.0
        assert small_report.speedup > 0.0

    def test_metric_errors_are_absolute(self, small_report):
        for err in small_report.metric_errors().values():
            assert err["max_abs"] >= err["mean_abs"] >= 0.0

    def test_json_export_schema(self, small_report, tmp_path):
        path = tmp_path / "fidelity.json"
        small_report.save_json(path)
        data = json.loads(path.read_text())
        assert data["schema"] == SCHEMA == "repro-fidelity/v1"
        for key in (
            "apps",
            "placements",
            "routings",
            "cells",
            "rank",
            "metric_errors",
            "packet_wall_s",
            "flow_wall_s",
            "speedup",
            "top1_agreement",
        ):
            assert key in data
        assert data["top1_agreement"] == small_report.top1_agreement()
        assert len(data["cells"]) == 2

    def test_format_table_mentions_agreement(self, small_report):
        table = small_report.format_table()
        assert "flow-vs-packet fidelity" in table
        assert "FB min" in table
        assert "speedup" in table
