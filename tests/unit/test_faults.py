"""Fault-plan layer: validation, identity, generation, application."""

from __future__ import annotations

import json

import pytest

import repro
from repro.core.runner import build_topology
from repro.engine import Simulator
from repro.faults import (
    FaultPlan,
    LinkFault,
    RouterFault,
    load_fault_plan,
    random_fault_plan,
    save_fault_plan,
)
from repro.faults.plan import FaultPlanError, _LiveGraph, _undirected_pairs, install_plan
from repro.network import Fabric
from repro.placement.machine import Machine
from repro.routing import MinimalRouting
from repro.topology.links import LinkKind


@pytest.fixture(scope="module")
def topo():
    return build_topology(repro.tiny().topology)


def _nonterminal_links(topo, kind=None):
    out = []
    for lid in range(topo.num_links):
        k = topo.links.kind_of(lid)
        if k.is_terminal:
            continue
        if kind is None or k == kind:
            out.append(lid)
    return out


def _reverse_of(topo, lid):
    links = topo.links
    s, d = links._src[lid], links._dst[lid]
    for other in range(topo.num_links):
        if (
            links._src[other] == d
            and links._dst[other] == s
            and not links.kind_of(other).is_terminal
        ):
            return other
    raise AssertionError(f"no reverse link for {lid}")


def _terminal_link(topo):
    for lid in range(topo.num_links):
        if topo.links.kind_of(lid).is_terminal:
            return lid
    raise AssertionError("topology has no terminal links")


class TestFaultValidation:
    def test_link_fault_rejects_bad_fields(self):
        with pytest.raises(FaultPlanError):
            LinkFault(-1)
        with pytest.raises(FaultPlanError):
            LinkFault(0, time_ns=-1.0)
        with pytest.raises(FaultPlanError):
            LinkFault(0, bw_scale=1.0)  # 1.0 would be a no-op fault
        with pytest.raises(FaultPlanError):
            LinkFault(0, bw_scale=-0.5)

    def test_router_fault_must_be_at_start(self):
        with pytest.raises(FaultPlanError):
            RouterFault(-1)
        with pytest.raises(FaultPlanError):
            RouterFault(0, time_ns=100.0)
        RouterFault(0)  # t=0 is the only legal onset

    def test_plan_rejects_duplicates(self):
        with pytest.raises(FaultPlanError):
            FaultPlan(link_faults=(LinkFault(3), LinkFault(3, bw_scale=0.5)))
        with pytest.raises(FaultPlanError):
            FaultPlan(router_faults=(RouterFault(1), RouterFault(1)))

    def test_plan_coerces_lists_to_tuples(self):
        plan = FaultPlan(link_faults=[LinkFault(3)], router_faults=[RouterFault(0)])
        assert isinstance(plan.link_faults, tuple)
        assert isinstance(plan.router_faults, tuple)

    def test_validate_against_topology(self, topo):
        ok = _nonterminal_links(topo)[0]
        FaultPlan(link_faults=(LinkFault(ok),)).validate(topo)
        with pytest.raises(FaultPlanError):
            FaultPlan(link_faults=(LinkFault(topo.num_links),)).validate(topo)
        with pytest.raises(FaultPlanError):
            FaultPlan(
                link_faults=(LinkFault(_terminal_link(topo)),)
            ).validate(topo)
        with pytest.raises(FaultPlanError):
            FaultPlan(
                router_faults=(RouterFault(topo.num_routers),)
            ).validate(topo)


class TestPlanIdentity:
    def test_empty_plan(self):
        assert FaultPlan().is_empty()
        assert not FaultPlan(link_faults=(LinkFault(0),)).is_empty()

    def test_digest_is_content_addressed(self):
        a = FaultPlan(link_faults=(LinkFault(3), LinkFault(5)))
        b = FaultPlan(link_faults=(LinkFault(3), LinkFault(5)))
        assert a.digest == b.digest
        # Any content change — faults, timing, scale, or provenance
        # seed — must change the digest.
        assert a.digest != FaultPlan(link_faults=(LinkFault(3),)).digest
        assert (
            a.digest
            != FaultPlan(link_faults=(LinkFault(3), LinkFault(5, 100.0))).digest
        )
        assert (
            a.digest
            != FaultPlan(link_faults=(LinkFault(3), LinkFault(5)), seed=1).digest
        )

    def test_json_round_trip(self, tmp_path, topo):
        plan = random_fault_plan(topo, 0.3, seed=42, degraded_fraction=0.5)
        assert not plan.is_empty()
        path = save_fault_plan(plan, tmp_path / "plan.json")
        loaded = load_fault_plan(path)
        assert loaded == plan
        assert loaded.digest == plan.digest
        payload = json.loads(path.read_text())
        assert payload["schema"] == "repro-faults/v1"

    def test_malformed_payload_raises(self):
        with pytest.raises(FaultPlanError):
            FaultPlan.from_json({"link_faults": [{"bogus_field": 1}]})


class TestTopologyProjection:
    def test_dead_nodes_are_routers_nodes(self, topo):
        plan = FaultPlan(router_faults=(RouterFault(1),))
        dead = plan.dead_nodes(topo)
        assert dead == sorted(dead)
        assert dead  # tiny has nodes on every router
        assert all(topo.router_of(n) == 1 for n in dead)
        assert FaultPlan().dead_nodes(topo) == []

    def test_materialize_expands_router_faults(self, topo):
        plan = FaultPlan(router_faults=(RouterFault(0),))
        events = plan.materialize(topo)
        links = topo.links
        incident = {
            lid
            for lid in _nonterminal_links(topo)
            if links._src[lid] == 0 or links._dst[lid] == 0
        }
        assert {lid for _, lid, _ in events} == incident
        assert all(t == 0.0 and scale == 0.0 for t, _, scale in events)

    def test_materialize_router_fault_wins_collision(self, topo):
        links = topo.links
        incident = next(
            lid for lid in _nonterminal_links(topo) if links._src[lid] == 0
        )
        plan = FaultPlan(
            link_faults=(LinkFault(incident, time_ns=500.0, bw_scale=0.5),),
            router_faults=(RouterFault(0),),
        )
        events = {lid: (t, scale) for t, lid, scale in plan.materialize(topo)}
        # The scheduled degrade is overridden by the dead-at-t=0 router.
        assert events[incident] == (0.0, 0.0)

    def test_materialize_is_sorted(self, topo):
        lids = _nonterminal_links(topo)[:3]
        plan = FaultPlan(
            link_faults=(
                LinkFault(lids[2], 900.0),
                LinkFault(lids[0], 100.0),
                LinkFault(lids[1], 500.0),
            )
        )
        events = plan.materialize(topo)
        assert events == sorted(events)


class TestRandomFaultPlan:
    def test_deterministic_for_seed(self, topo):
        a = random_fault_plan(topo, 0.2, seed=5, router_rate=0.1)
        b = random_fault_plan(topo, 0.2, seed=5, router_rate=0.1)
        assert a == b and a.digest == b.digest
        assert a != random_fault_plan(topo, 0.2, seed=6, router_rate=0.1)

    def test_zero_rate_is_empty(self, topo):
        assert random_fault_plan(topo, 0.0, seed=1).is_empty()

    def test_plan_validates_and_pairs_fault_together(self, topo):
        plan = random_fault_plan(topo, 0.4, seed=3)
        plan.validate(topo)
        assert not plan.is_empty()
        faulted = {f.link for f in plan.link_faults}
        for lid in faulted:
            assert _reverse_of(topo, lid) in faulted

    def test_connectivity_guard_at_full_rate(self, topo):
        """rate=1.0 samples every channel; the survivors keep the router
        graph connected (a spanning structure is always preserved)."""
        plan = random_fault_plan(topo, 1.0, seed=0, router_rate=0.5)
        dead_links = {f.link for f in plan.link_faults if f.bw_scale == 0.0}
        graph = _LiveGraph(topo, _undirected_pairs(topo))
        for router in plan.dead_routers():
            graph.remove_router(router)
        for fwd, _rev in _undirected_pairs(topo):
            if fwd in dead_links:
                graph.remove_edge(fwd)
        assert graph.connected()
        # And the guard actually kicked in: not every channel can die.
        assert len(dead_links) < 2 * len(_undirected_pairs(topo))

    def test_degraded_fraction_draws_scales(self, topo):
        plan = random_fault_plan(topo, 0.5, seed=2, degraded_fraction=1.0)
        assert plan.link_faults
        for f in plan.link_faults:
            assert 0.25 <= f.bw_scale < 0.75

    def test_onset_window_spreads_onsets(self, topo):
        plan = random_fault_plan(topo, 0.5, seed=2, onset_window_ns=1e6)
        assert plan.link_faults
        assert all(0.0 <= f.time_ns < 1e6 for f in plan.link_faults)
        assert any(f.time_ns > 0.0 for f in plan.link_faults)

    def test_rejects_bad_arguments(self, topo):
        with pytest.raises(FaultPlanError):
            random_fault_plan(topo, 1.5)
        with pytest.raises(FaultPlanError):
            random_fault_plan(topo, 0.1, router_rate=-0.1)
        with pytest.raises(FaultPlanError):
            random_fault_plan(topo, 0.1, degraded_fraction=2.0)
        with pytest.raises(FaultPlanError):
            random_fault_plan(topo, 0.1, onset_window_ns=-1.0)


class TestApplication:
    def _fabric(self, topo):
        cfg = repro.tiny()
        sim = Simulator()
        return sim, Fabric(sim, topo, cfg.network, MinimalRouting(seed=0))

    def test_apply_link_fault_rejects_terminals(self, topo):
        _, fab = self._fabric(topo)
        with pytest.raises(ValueError):
            fab.apply_link_fault(_terminal_link(topo))

    def test_kill_sets_liveness_and_epoch(self, topo):
        _, fab = self._fabric(topo)
        lid = _nonterminal_links(topo)[0]
        assert fab.fault_epoch == 0
        fab.apply_link_fault(lid)
        assert fab.link_down[lid]
        assert fab.fault_epoch == 1 and fab.faults_applied == 1

    def test_degrade_rescales_bandwidth_in_place(self, topo):
        _, fab = self._fabric(topo)
        lid = _nonterminal_links(topo)[0]
        before = fab.bw[lid]
        fab.apply_link_fault(lid, bw_scale=0.5)
        assert fab.bw[lid] == pytest.approx(0.5 * before)
        assert not fab.link_down[lid]  # degraded, not dead

    def test_install_plan_splits_now_vs_scheduled(self, topo):
        sim, fab = self._fabric(topo)
        lids = _nonterminal_links(topo)
        plan = FaultPlan(
            link_faults=(LinkFault(lids[0]), LinkFault(lids[1], 5_000.0))
        )
        installed = install_plan(sim, fab, plan)
        assert installed == 2
        # t=0 applied synchronously; the scheduled one waits on the calendar.
        assert fab.faults_applied == 1 and fab.link_down[lids[0]]
        assert not fab.link_down[lids[1]]
        sim.run()
        assert fab.faults_applied == 2 and fab.link_down[lids[1]]

    def test_machine_mark_down_fences_nodes(self):
        cfg = repro.tiny()
        machine = Machine(cfg.topology)
        total = len(machine.free_nodes())
        machine.mark_down([0, 1])
        assert len(machine.free_nodes()) == total - 2
        machine.mark_down([1])  # already-removed nodes are tolerated
        assert len(machine.free_nodes()) == total - 2
        with pytest.raises(ValueError):
            machine.mark_down([10**6])
        nodes = machine.allocate("cont", 4, seed=0)
        assert not {0, 1} & set(nodes)


def test_link_kind_enum_covers_faultable_kinds(topo):
    kinds = {topo.links.kind_of(lid) for lid in _nonterminal_links(topo)}
    assert kinds == {LinkKind.LOCAL_ROW, LinkKind.LOCAL_COL, LinkKind.GLOBAL}
