"""Executor: scheduling, retry, timeout, caching, IPC slimming, pickling."""

import os
import pickle

import numpy as np
import pytest

import repro
from repro.exec.cache import ResultCache
from repro.exec.plan import plan_grid
from repro.exec.pool import ExecutionError, execute_plan

from tests.exec_helpers import (
    crashing_runner,
    flaky_runner,
    sleepy_runner,
    stub_plan,
    stub_runner,
    tiny_trace,
)

#: CI's second job sets this to exercise the pool on its runners.
WORKERS = int(os.environ.get("REPRO_TEST_WORKERS", "2"))




class TestSerialExecution:
    def test_matches_direct_run_single(self):
        trace = repro.amg_trace(num_ranks=8, seed=1).scaled(0.05)
        config = repro.tiny()
        plan = plan_grid(config, {"AMG": trace}, ("cont",), ("min",), seed=1)
        report = execute_plan(plan)
        direct = repro.run_single(config, trace, "cont", "min", seed=1)
        [result] = report.results()
        assert np.array_equal(
            result.metrics.comm_time_ns, direct.metrics.comm_time_ns
        )
        assert result.sim_time_ns == direct.sim_time_ns
        assert result.events == direct.events

    def test_outcomes_in_plan_order(self):
        plan = stub_plan(n_seeds=3)
        report = execute_plan(plan, runner=stub_runner)
        assert [o.spec.key for o in report.outcomes] == plan.keys()
        assert report.done == len(plan) and report.failed == 0

    def test_retry_then_success(self, tmp_path):
        plan = stub_plan(tags=(f"scratch={tmp_path}", "fail_times=1"))
        report = execute_plan(plan, runner=flaky_runner, retries=1)
        assert report.done == len(plan)
        assert all(o.attempts == 2 for o in report.outcomes)

    def test_retries_exhausted(self, tmp_path):
        plan = stub_plan(tags=(f"scratch={tmp_path}", "fail_times=5"))
        report = execute_plan(plan, runner=flaky_runner, retries=1)
        assert report.failed == len(plan)
        assert all("injected failure" in o.error for o in report.failures())

    def test_strict_raises(self, tmp_path):
        plan = stub_plan(tags=(f"scratch={tmp_path}", "fail_times=5"))
        with pytest.raises(ExecutionError, match="cells failed"):
            execute_plan(plan, runner=flaky_runner, retries=0, strict=True)


class TestParallelExecution:
    def test_basic_parallel(self):
        plan = stub_plan(n_seeds=3)
        report = execute_plan(plan, max_workers=WORKERS, runner=stub_runner)
        assert report.done == len(plan)
        assert [o.spec.key for o in report.outcomes] == plan.keys()

    def test_worker_exception_retried(self, tmp_path):
        plan = stub_plan(tags=(f"scratch={tmp_path}", "fail_times=1"))
        report = execute_plan(
            plan, max_workers=WORKERS, runner=flaky_runner, retries=1
        )
        assert report.done == len(plan)
        assert all(o.attempts == 2 for o in report.outcomes)

    def test_worker_crash_recovers_on_fresh_pool(self, tmp_path):
        # crashing_runner os._exit()s the worker once per cell: the real
        # BrokenProcessPool path, not a pickled exception.
        plan = stub_plan(tags=(f"scratch={tmp_path}",))
        report = execute_plan(
            plan, max_workers=WORKERS, runner=crashing_runner, retries=2
        )
        assert report.done == len(plan)
        assert all(o.attempts >= 2 for o in report.outcomes)

    def test_crash_retries_bounded(self, tmp_path):
        plan = stub_plan(tags=(f"scratch={tmp_path}", "fail_times=99"))
        report = execute_plan(
            plan, max_workers=WORKERS, runner=flaky_runner, retries=1
        )
        assert report.failed == len(plan)
        assert all(o.attempts == 2 for o in report.failures())

    def test_timeout_fails_cell(self, tmp_path):
        plan = stub_plan(tags=("sleep=30",))
        report = execute_plan(
            plan,
            max_workers=WORKERS,
            runner=sleepy_runner,
            timeout_s=0.3,
            retries=0,
        )
        assert report.failed == len(plan)
        assert all("budget" in o.error for o in report.failures())

    def test_serial_timeout_also_enforced(self):
        plan = stub_plan(tags=("sleep=30",))
        report = execute_plan(
            plan, runner=sleepy_runner, timeout_s=0.3, retries=0
        )
        assert report.failed == len(plan)


class TestCacheIntegration:
    def test_warm_cache_skips_simulation(self, tmp_path):
        plan = stub_plan(n_seeds=2)
        cache = ResultCache(tmp_path)
        cold = execute_plan(plan, cache=cache, runner=stub_runner)
        assert cold.done == len(plan) and cold.cached == 0
        warm = execute_plan(plan, cache=cache, runner=stub_runner)
        assert warm.cached == len(plan) and warm.done == 0

    def test_cache_accepts_path(self, tmp_path):
        plan = stub_plan()
        execute_plan(plan, cache=tmp_path / "c", runner=stub_runner)
        warm = execute_plan(plan, cache=tmp_path / "c", runner=stub_runner)
        assert warm.cached == len(plan)

    def test_changed_cell_resimulated(self, tmp_path):
        cache = ResultCache(tmp_path)
        execute_plan(stub_plan(), cache=cache, runner=stub_runner)
        changed = plan_grid(
            repro.tiny(),
            {"A": tiny_trace("A").scaled(2.0)},
            ("cont", "rand"),
            ("min",),
        )
        report = execute_plan(changed, cache=cache, runner=stub_runner)
        assert report.done == len(changed) and report.cached == 0


class TestResultIPC:
    """RunResult must pickle (satellite: slim, IPC-safe results)."""

    def test_pickle_round_trip_with_send_events(self):
        trace = repro.amg_trace(num_ranks=8, seed=1).scaled(0.05)
        result = repro.run_single(
            repro.tiny(), trace, "cont", "min", seed=1, record_sends=True
        )
        clone = pickle.loads(pickle.dumps(result))
        assert np.array_equal(
            clone.metrics.comm_time_ns, result.metrics.comm_time_ns
        )
        assert np.array_equal(clone.job.avg_hops, result.job.avg_hops)
        assert clone.job.send_events == result.job.send_events
        assert clone.nodes == result.nodes and clone.label == result.label

    def test_parallel_drops_send_events_by_default(self):
        trace = repro.amg_trace(num_ranks=8, seed=1).scaled(0.05)
        plan = plan_grid(
            repro.tiny(), {"AMG": trace}, ("cont",), ("min",),
            seed=1, record_sends=True,
        )
        [outcome] = execute_plan(plan, max_workers=WORKERS).outcomes
        assert outcome.result.job.send_events is None

    def test_parallel_keeps_send_events_on_opt_in(self):
        trace = repro.amg_trace(num_ranks=8, seed=1).scaled(0.05)
        plan = plan_grid(
            repro.tiny(), {"AMG": trace}, ("cont",), ("min",),
            seed=1, record_sends=True,
        )
        [outcome] = execute_plan(
            plan, max_workers=WORKERS, ipc_send_events=True
        ).outcomes
        serial = repro.run_single(
            repro.tiny(), trace, "cont", "min", seed=1, record_sends=True
        )
        assert outcome.result.job.send_events == serial.job.send_events
