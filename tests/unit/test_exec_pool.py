"""Executor: scheduling, retry, timeout, caching, IPC slimming, pickling."""

import dataclasses
import os
import pickle

import numpy as np
import pytest

import repro
from repro.exec.cache import ResultCache
from repro.exec.plan import plan_grid
from repro.exec.pool import ExecutionError, execute_plan

from tests.exec_helpers import (
    crashing_runner,
    flaky_runner,
    picky_runner,
    sleepy_runner,
    stub_plan,
    stub_runner,
    tiny_trace,
)

#: CI's second job sets this to exercise the pool on its runners.
WORKERS = int(os.environ.get("REPRO_TEST_WORKERS", "2"))




class TestSerialExecution:
    def test_matches_direct_run_single(self):
        trace = repro.amg_trace(num_ranks=8, seed=1).scaled(0.05)
        config = repro.tiny()
        plan = plan_grid(config, {"AMG": trace}, ("cont",), ("min",), seed=1)
        report = execute_plan(plan)
        direct = repro.run_single(config, trace, "cont", "min", seed=1)
        [result] = report.results()
        assert np.array_equal(
            result.metrics.comm_time_ns, direct.metrics.comm_time_ns
        )
        assert result.sim_time_ns == direct.sim_time_ns
        assert result.events == direct.events

    def test_outcomes_in_plan_order(self):
        plan = stub_plan(n_seeds=3)
        report = execute_plan(plan, runner=stub_runner)
        assert [o.spec.key for o in report.outcomes] == plan.keys()
        assert report.done == len(plan) and report.failed == 0

    def test_retry_then_success(self, tmp_path):
        plan = stub_plan(tags=(f"scratch={tmp_path}", "fail_times=1"))
        report = execute_plan(plan, runner=flaky_runner, retries=1)
        assert report.done == len(plan)
        assert all(o.attempts == 2 for o in report.outcomes)

    def test_retries_exhausted(self, tmp_path):
        plan = stub_plan(tags=(f"scratch={tmp_path}", "fail_times=5"))
        report = execute_plan(plan, runner=flaky_runner, retries=1)
        assert report.failed == len(plan)
        assert all("injected failure" in o.error for o in report.failures())

    def test_strict_raises(self, tmp_path):
        plan = stub_plan(tags=(f"scratch={tmp_path}", "fail_times=5"))
        with pytest.raises(ExecutionError, match="cells failed"):
            execute_plan(plan, runner=flaky_runner, retries=0, strict=True)


class TestParallelExecution:
    def test_basic_parallel(self):
        plan = stub_plan(n_seeds=3)
        report = execute_plan(plan, max_workers=WORKERS, runner=stub_runner)
        assert report.done == len(plan)
        assert [o.spec.key for o in report.outcomes] == plan.keys()

    def test_worker_exception_retried(self, tmp_path):
        plan = stub_plan(tags=(f"scratch={tmp_path}", "fail_times=1"))
        report = execute_plan(
            plan, max_workers=WORKERS, runner=flaky_runner, retries=1
        )
        assert report.done == len(plan)
        assert all(o.attempts == 2 for o in report.outcomes)

    def test_worker_crash_recovers_on_fresh_pool(self, tmp_path):
        # crashing_runner os._exit()s the worker once per cell: the real
        # BrokenProcessPool path, not a pickled exception.
        plan = stub_plan(tags=(f"scratch={tmp_path}",))
        report = execute_plan(
            plan, max_workers=WORKERS, runner=crashing_runner, retries=2
        )
        assert report.done == len(plan)
        assert all(o.attempts >= 2 for o in report.outcomes)

    def test_crash_retries_bounded(self, tmp_path):
        plan = stub_plan(tags=(f"scratch={tmp_path}", "fail_times=99"))
        report = execute_plan(
            plan, max_workers=WORKERS, runner=flaky_runner, retries=1
        )
        assert report.failed == len(plan)
        assert all(o.attempts == 2 for o in report.failures())

    def test_timeout_fails_cell(self, tmp_path):
        plan = stub_plan(tags=("sleep=30",))
        report = execute_plan(
            plan,
            max_workers=WORKERS,
            runner=sleepy_runner,
            timeout_s=0.3,
            retries=0,
        )
        assert report.failed == len(plan)
        assert all("budget" in o.error for o in report.failures())

    def test_serial_timeout_also_enforced(self):
        plan = stub_plan(tags=("sleep=30",))
        report = execute_plan(
            plan, runner=sleepy_runner, timeout_s=0.3, retries=0
        )
        assert report.failed == len(plan)


class TestCacheIntegration:
    def test_warm_cache_skips_simulation(self, tmp_path):
        plan = stub_plan(n_seeds=2)
        cache = ResultCache(tmp_path)
        cold = execute_plan(plan, cache=cache, runner=stub_runner)
        assert cold.done == len(plan) and cold.cached == 0
        warm = execute_plan(plan, cache=cache, runner=stub_runner)
        assert warm.cached == len(plan) and warm.done == 0

    def test_cache_accepts_path(self, tmp_path):
        plan = stub_plan()
        execute_plan(plan, cache=tmp_path / "c", runner=stub_runner)
        warm = execute_plan(plan, cache=tmp_path / "c", runner=stub_runner)
        assert warm.cached == len(plan)

    def test_changed_cell_resimulated(self, tmp_path):
        cache = ResultCache(tmp_path)
        execute_plan(stub_plan(), cache=cache, runner=stub_runner)
        changed = plan_grid(
            repro.tiny(),
            {"A": tiny_trace("A").scaled(2.0)},
            ("cont", "rand"),
            ("min",),
        )
        report = execute_plan(changed, cache=cache, runner=stub_runner)
        assert report.done == len(changed) and report.cached == 0


class TestResultIPC:
    """RunResult must pickle (satellite: slim, IPC-safe results)."""

    def test_pickle_round_trip_with_send_events(self):
        trace = repro.amg_trace(num_ranks=8, seed=1).scaled(0.05)
        result = repro.run_single(
            repro.tiny(), trace, "cont", "min", seed=1, record_sends=True
        )
        clone = pickle.loads(pickle.dumps(result))
        assert np.array_equal(
            clone.metrics.comm_time_ns, result.metrics.comm_time_ns
        )
        assert np.array_equal(clone.job.avg_hops, result.job.avg_hops)
        assert clone.job.send_events == result.job.send_events
        assert clone.nodes == result.nodes and clone.label == result.label

    def test_parallel_drops_send_events_by_default(self):
        trace = repro.amg_trace(num_ranks=8, seed=1).scaled(0.05)
        plan = plan_grid(
            repro.tiny(), {"AMG": trace}, ("cont",), ("min",),
            seed=1, record_sends=True,
        )
        [outcome] = execute_plan(plan, max_workers=WORKERS).outcomes
        assert outcome.result.job.send_events is None

    def test_parallel_keeps_send_events_on_opt_in(self):
        trace = repro.amg_trace(num_ranks=8, seed=1).scaled(0.05)
        plan = plan_grid(
            repro.tiny(), {"AMG": trace}, ("cont",), ("min",),
            seed=1, record_sends=True,
        )
        [outcome] = execute_plan(
            plan, max_workers=WORKERS, ipc_send_events=True
        ).outcomes
        serial = repro.run_single(
            repro.tiny(), trace, "cont", "min", seed=1, record_sends=True
        )
        assert outcome.result.job.send_events == serial.job.send_events


class TestBatchedExecution:
    """The ``flow_batch`` path: chunked tasks, per-cell retry accounting."""

    @staticmethod
    def _flow_plan(n_seeds=1, tags=()):
        return stub_plan(n_seeds=n_seeds, tags=tags, backend="flow")

    def test_batched_outcomes_in_plan_order(self):
        plan = self._flow_plan(n_seeds=3)
        report = execute_plan(plan, runner=stub_runner, flow_batch=2)
        assert [o.spec.key for o in report.outcomes] == plan.keys()
        assert report.done == len(plan) and report.failed == 0

    def test_packet_cells_never_batched(self):
        """Only ``backend="flow"`` cells take the batch path; a mixed
        plan still completes with everything in plan order."""
        flow = self._flow_plan(n_seeds=2)
        packet = stub_plan(n_seeds=2)
        mixed = dataclasses.replace(
            flow, specs=flow.specs + packet.specs
        )
        report = execute_plan(mixed, runner=stub_runner, flow_batch=2)
        assert report.done == len(mixed)
        assert [o.spec.key for o in report.outcomes] == mixed.keys()

    def test_single_flow_cell_skips_batching(self):
        """A lone flow cell is not worth a batch — normal path, same
        outcome shape."""
        plan = self._flow_plan()
        solo = dataclasses.replace(plan, specs=plan.specs[:1])
        report = execute_plan(solo, runner=stub_runner, flow_batch=8)
        assert report.done == 1

    def test_batched_retry_then_success(self, tmp_path):
        plan = self._flow_plan(tags=(f"scratch={tmp_path}", "fail_times=1"))
        report = execute_plan(
            plan, runner=flaky_runner, retries=1, flow_batch=2
        )
        assert report.done == len(plan)
        assert all(o.attempts == 2 for o in report.outcomes)

    def test_batched_retries_exhausted(self, tmp_path):
        plan = self._flow_plan(tags=(f"scratch={tmp_path}", "fail_times=5"))
        report = execute_plan(
            plan, runner=flaky_runner, retries=1, flow_batch=2
        )
        assert report.failed == len(plan)
        assert all("injected failure" in o.error for o in report.failures())

    def test_failing_cell_does_not_poison_its_chunk(self):
        """Batch-mates of a failing cell land normally and are never
        re-run; only the bad cell is retried (re-chunked) and failed."""
        plan = self._flow_plan(n_seeds=2)
        specs = list(plan.specs)
        specs[1] = dataclasses.replace(specs[1], tags=("poison=1",))
        plan = dataclasses.replace(plan, specs=tuple(specs))
        report = execute_plan(
            plan, runner=picky_runner, retries=1, flow_batch=4
        )
        assert report.done == len(plan) - 1
        [bad] = report.failures()
        assert bad.spec.key == specs[1].key
        assert bad.attempts == 2
        assert "poisoned cell" in bad.error
        good = [o for o in report.outcomes if o.status == "done"]
        assert all(o.attempts == 1 for o in good)

    def test_batched_timeout_fails_cell(self, tmp_path):
        plan = self._flow_plan(tags=("sleep=5",))
        report = execute_plan(
            plan, runner=sleepy_runner, retries=0,
            timeout_s=0.2, flow_batch=2,
        )
        assert report.failed == len(plan)

    def test_batched_parallel_pool(self):
        plan = self._flow_plan(n_seeds=3)
        report = execute_plan(
            plan, max_workers=WORKERS, runner=stub_runner, flow_batch=2
        )
        assert report.done == len(plan)
        assert [o.spec.key for o in report.outcomes] == plan.keys()

    def test_batched_worker_crash_recovers(self, tmp_path):
        """A crash poisons every in-flight chunk; survivors resubmit on
        a fresh pool with their attempts counted."""
        plan = self._flow_plan(tags=(f"scratch={tmp_path}",))
        report = execute_plan(
            plan, max_workers=WORKERS, runner=crashing_runner,
            retries=2, flow_batch=2,
        )
        assert report.done == len(plan)
        assert all(o.attempts >= 2 for o in report.outcomes)

    def test_batched_warm_cache_skips_simulation(self, tmp_path):
        plan = self._flow_plan(n_seeds=2)
        first = execute_plan(
            plan, cache=tmp_path, runner=stub_runner, flow_batch=2
        )
        assert first.done == len(plan)
        second = execute_plan(
            plan, cache=tmp_path, runner=stub_runner, flow_batch=2
        )
        assert second.cached == len(plan) and second.done == 0
