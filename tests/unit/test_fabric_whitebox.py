"""White-box fabric tests: VC arbitration, credit accounting, stalls."""

import pytest

from repro.config import tiny
from repro.core.runner import build_topology
from repro.engine.simulator import Simulator
from repro.network.fabric import MAX_VCS, Fabric
from repro.network.packet import Message, Packet
from repro.routing import MinimalRouting


def make_fabric(**net_overrides):
    import dataclasses

    cfg = tiny()
    net = dataclasses.replace(cfg.network, **net_overrides)
    topo = build_topology(cfg.topology)
    sim = Simulator()
    return sim, topo, Fabric(sim, topo, net, MinimalRouting(seed=0))


def manual_packet(fabric, link, vc_hop, size=1000):
    """A packet positioned to request ``link`` at a given VC index.

    Builds a synthetic route so that ``link`` sits at router-to-router
    hop ``vc_hop`` (VC index = hop - 1); earlier hops are dummies the
    packet pretends to have traversed.
    """
    msg = Message(1, 0, 1, size)
    pkt = Packet(msg, size, first_link=fabric.topo.terminal_in(0), last=True)
    pkt.route = [fabric.topo.terminal_in(0)] + [link] * (vc_hop + 1)
    pkt.hop = vc_hop + 1  # index of `link` occurrence we request
    pkt.route = pkt.route + [fabric.topo.terminal_out(1)]
    return pkt


class TestVcArbitration:
    def test_round_robin_across_vcs(self):
        """With two VCs holding traffic, service alternates."""
        sim, topo, fabric = make_fabric()
        link = topo.local_link(0, 1)
        assert link is not None
        # Enqueue two packets on different VCs of the same link.
        p1 = manual_packet(fabric, link, vc_hop=0)
        p2 = manual_packet(fabric, link, vc_hop=1)
        fabric._enqueue(p1, link)
        fabric._enqueue(p2, link)
        # Both scheduled; the serializer processes them sequentially.
        assert fabric.busy_until[link] > 0
        assert fabric._wait_count[link] == 1  # one waiting, one in flight

    def test_blocked_head_does_not_block_other_vcs(self):
        """A credit-starved VC must not stall traffic on another VC
        (the deadlock-freedom prerequisite)."""
        sim, topo, fabric = make_fabric()
        link = topo.local_link(0, 1)
        cap = fabric.buf[link]
        # Exhaust VC 0's downstream buffer artificially.
        fabric._buf_used[link * MAX_VCS + 0] = cap
        p_vc0 = manual_packet(fabric, link, vc_hop=0)  # hop 1 -> VC 0
        p_vc1 = manual_packet(fabric, link, vc_hop=1)  # hop 2 -> VC 1
        fabric._enqueue(p_vc0, link)  # cannot go: VC0 buffer full
        assert fabric.busy_until[link] == 0.0
        fabric._enqueue(p_vc1, link)  # must go despite VC0's stall
        assert fabric.busy_until[link] > 0.0

    def test_saturation_interval_opens_and_closes(self):
        sim, topo, fabric = make_fabric()
        link = topo.local_link(0, 1)
        cap = fabric.buf[link]
        fabric._buf_used[link * MAX_VCS + 0] = cap
        pkt = manual_packet(fabric, link, vc_hop=0)
        fabric._enqueue(pkt, link)
        assert fabric._blocked_since[link] == 0.0  # opened at t=0
        # Free the buffer and re-kick at a later time.
        sim.at(1000.0, lambda: None)
        sim.run()
        fabric._buf_used[link * MAX_VCS + 0] = 0
        fabric._try_transmit(link)
        assert fabric.sat_ns[link] == pytest.approx(1000.0)
        assert fabric._blocked_since[link] == -1.0


class TestCreditAccounting:
    def test_inflight_packet_holds_downstream_buffer(self):
        sim, topo, fabric = make_fabric()
        src, dst = 0, topo.params.nodes_per_router  # adjacent routers
        msg = Message(1, src, dst, 1000)
        fabric.inject(msg)
        # After the injection event, the terminal-in buffer is claimed.
        t_in = topo.terminal_in(src)
        sim.run(until=1.0)
        assert fabric._buf_used[t_in * MAX_VCS] == 1000
        sim.run()
        assert fabric._buf_used[t_in * MAX_VCS] == 0

    def test_queued_bytes_track_waiting_traffic(self):
        sim, topo, fabric = make_fabric()
        src, dst = 0, topo.params.nodes_per_router
        for i in range(5):
            fabric.inject(Message(i + 1, src, dst, 2000))
        t_in = topo.terminal_in(src)
        # One packet is already in flight (transmission starts at
        # enqueue time); the other four wait at the NIC.
        assert fabric.queued_bytes[t_in] == 8_000
        sim.run()
        assert fabric.queued_bytes[t_in] == 0


class TestTieredBuffers:
    def test_global_buffer_larger_than_local(self):
        sim, topo, fabric = make_fabric()
        local = topo.links.local_ids()
        glob = topo.links.global_ids()
        assert fabric.buf[int(local[0])] == fabric.net.local_vc_buffer
        assert fabric.buf[int(glob[0])] == fabric.net.global_vc_buffer
        assert fabric.buf[int(glob[0])] > fabric.buf[int(local[0])]
