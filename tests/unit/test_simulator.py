"""Discrete-event engine unit tests."""

import pytest

from repro.engine.simulator import Simulator


class TestScheduling:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        log = []
        sim.at(5.0, log.append, "b")
        sim.at(1.0, log.append, "a")
        sim.at(9.0, log.append, "c")
        sim.run()
        assert log == ["a", "b", "c"]

    def test_ties_run_in_schedule_order(self):
        sim = Simulator()
        log = []
        for i in range(10):
            sim.at(3.0, log.append, i)
        sim.run()
        assert log == list(range(10))

    def test_schedule_is_relative(self):
        sim = Simulator()
        times = []
        def tick():
            times.append(sim.now)
            if len(times) < 3:
                sim.schedule(2.5, tick)
        sim.schedule(1.0, tick)
        sim.run()
        assert times == [1.0, 3.5, 6.0]

    def test_rejects_past_events(self):
        sim = Simulator()
        sim.at(10.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.at(5.0, lambda: None)
        with pytest.raises(ValueError):
            sim.schedule(-1.0, lambda: None)

    def test_now_advances_monotonically(self):
        sim = Simulator()
        seen = []
        sim.at(1.0, lambda: seen.append(sim.now))
        sim.at(2.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == sorted(seen)


class TestRunControls:
    def test_until_leaves_future_events_queued(self):
        sim = Simulator()
        log = []
        sim.at(1.0, log.append, "early")
        sim.at(100.0, log.append, "late")
        end = sim.run(until=50.0)
        assert log == ["early"]
        assert end == 50.0
        assert sim.pending == 1
        sim.run()
        assert log == ["early", "late"]

    def test_stop_condition(self):
        sim = Simulator()
        log = []
        for i in range(10):
            sim.at(float(i), log.append, i)
        sim.run(stop=lambda: len(log) >= 3)
        assert log == [0, 1, 2]

    def test_max_events_guard(self):
        sim = Simulator()
        def forever():
            sim.schedule(1.0, forever)
        sim.at(0.0, forever)
        with pytest.raises(RuntimeError, match="exceeded"):
            sim.run(max_events=100)

    def test_events_run_counter(self):
        sim = Simulator()
        for i in range(5):
            sim.at(float(i), lambda: None)
        sim.run()
        assert sim.events_run == 5

    def test_run_returns_final_time(self):
        sim = Simulator()
        sim.at(42.0, lambda: None)
        assert sim.run() == 42.0

    def test_empty_run(self):
        sim = Simulator()
        assert sim.run() == 0.0
        assert sim.events_run == 0

    def test_events_scheduled_during_run_execute(self):
        sim = Simulator()
        log = []
        sim.at(1.0, lambda: sim.at(2.0, log.append, "nested"))
        sim.run()
        assert log == ["nested"]
