"""repro.cluster: workloads, scheduler, stream engine, export."""

import json
import math

import pytest

import repro
from repro.cluster import (
    ClusterScheduler,
    EpochSpec,
    JobClass,
    StreamResult,
    WorkloadMix,
    fragmentation_index,
    generate_stream,
    interference_matrix,
    merge_epoch_trace,
    run_stream,
    save_json,
    simulate_epoch,
    to_doc,
    utilization_timeline,
)
from repro.cluster.workload import default_mix
from repro.exec.plan import RunSpec, config_digest, trace_fingerprint
from repro.placement.machine import Machine


# ---------------------------------------------------------------------------
# workload
# ---------------------------------------------------------------------------
class TestWorkload:
    def test_mix_parse_and_canonical_label(self):
        mix = WorkloadMix.parse("FB=2, CR , AMG=0.5")
        assert mix.label == "AMG=0.5,CR=1,FB=2"
        assert [c.app for c in mix.classes] == ["AMG", "CR", "FB"]
        assert WorkloadMix.parse("CR,FB=2,AMG=0.5").label == mix.label

    def test_mix_rejects_garbage(self):
        with pytest.raises(ValueError, match="unknown app"):
            WorkloadMix.parse("NOPE=1")
        with pytest.raises(ValueError, match="bad weight"):
            WorkloadMix.parse("CR=heavy")
        with pytest.raises(ValueError, match="empty"):
            WorkloadMix.parse(" , ")
        with pytest.raises(ValueError, match="duplicate"):
            WorkloadMix.parse("CR=1,CR=2")

    def test_ml_mix_generates_training_jobs(self):
        from repro.cluster.workload import ml_mix

        mix = ml_mix()
        assert {c.app for c in mix.classes} == {"DP", "PP", "TP", "MOE"}
        jobs = generate_stream(mix, 7200.0, 0.6, 24, seed=3, max_jobs=12)
        assert jobs
        for job in jobs:
            assert job.app in ("DP", "PP", "TP", "MOE")
            job.trace.validate()
            assert job.trace.meta["family"] == "mlcomms"

    def test_ml_apps_have_default_scales(self):
        for app in ("DP", "PP", "TP", "MOE"):
            scales = JobClass(app).scales
            assert scales and all(0 < s < 1 for s in scales)

    def test_job_class_validation(self):
        with pytest.raises(ValueError, match="weight"):
            JobClass("CR", weight=0)
        with pytest.raises(ValueError, match="ranks"):
            JobClass("CR", ranks=())
        with pytest.raises(ValueError, match="service_s"):
            JobClass("CR", service_s=(10.0, 5.0))
        with pytest.raises(ValueError, match="msg_scales"):
            JobClass("CR", msg_scales=(0.0,))

    def test_stream_is_deterministic(self):
        a = generate_stream(default_mix(), 7200.0, 0.6, 24, seed=7)
        b = generate_stream("AMG=1,CR=1,FB=1", 7200.0, 0.6, 24, seed=7)
        assert len(a) == len(b) > 0
        for x, y in zip(a, b):
            assert (x.id, x.app, x.ranks, x.arrival_s, x.service_s) == (
                y.id,
                y.app,
                y.ranks,
                y.arrival_s,
                y.service_s,
            )
            assert trace_fingerprint(x.trace) == trace_fingerprint(y.trace)

    def test_different_seeds_differ(self):
        a = generate_stream(default_mix(), 7200.0, 0.6, 24, seed=1)
        b = generate_stream(default_mix(), 7200.0, 0.6, 24, seed=2)
        assert [j.arrival_s for j in a] != [j.arrival_s for j in b]

    def test_trace_driven_interarrivals(self):
        gaps = [100.0, 50.0, 25.0]
        jobs = generate_stream(
            default_mix(), 1000.0, 0.0, 24, seed=0, interarrivals_s=gaps
        )
        assert [j.arrival_s for j in jobs] == [100.0, 150.0, 175.0]
        with pytest.raises(ValueError, match="non-negative"):
            generate_stream(
                default_mix(), 1e3, 0.0, 24, interarrivals_s=[-1.0]
            )

    def test_arrivals_sorted_and_capped(self):
        jobs = generate_stream(default_mix(), 36_000.0, 0.8, 24, seed=5)
        arr = [j.arrival_s for j in jobs]
        assert arr == sorted(arr) and arr[-1] <= 36_000.0
        assert all(j.ranks <= 12 for j in jobs)  # half of 24 nodes

    def test_infeasible_class_raises(self):
        big = WorkloadMix((JobClass("CR", ranks=(64,)),))
        with pytest.raises(ValueError, match="no rank choice"):
            generate_stream(big, 1e3, 0.5, 24, seed=0)

    def test_input_validation(self):
        with pytest.raises(ValueError, match="duration"):
            generate_stream(default_mix(), 0.0, 0.5, 24)
        with pytest.raises(ValueError, match="load"):
            generate_stream(default_mix(), 1e3, 0.0, 24)
        with pytest.raises(ValueError, match="num_nodes"):
            generate_stream(default_mix(), 1e3, 0.5, 0)


# ---------------------------------------------------------------------------
# machine claims (satellite)
# ---------------------------------------------------------------------------
class TestMachineClaims:
    def test_claim_release_roundtrip(self, tiny_config):
        m = Machine(tiny_config.topology)
        nodes = m.claim_nodes("a", "cont", 4, seed=1)
        assert len(nodes) == 4
        assert m.num_claimed == 4
        assert m.num_free == m.num_nodes - 4
        assert m.allocation_of("a") == nodes
        assert m.claimed_jobs() == ["a"]
        released = m.release_job("a")
        assert sorted(released) == sorted(nodes)
        assert m.num_claimed == 0 and m.num_free == m.num_nodes

    def test_double_claim_rejected(self, tiny_config):
        m = Machine(tiny_config.topology)
        m.claim_nodes(1, "cont", 2)
        with pytest.raises(ValueError, match="already holds"):
            m.claim_nodes(1, "rand", 2)

    def test_release_unknown_job_rejected(self, tiny_config):
        m = Machine(tiny_config.topology)
        with pytest.raises(KeyError, match="no allocation"):
            m.release_job("ghost")

    def test_claims_share_pool_with_allocate(self, tiny_config):
        m = Machine(tiny_config.topology)
        m.claim_nodes("a", "cont", m.num_nodes - 2)
        with pytest.raises(ValueError, match="free"):
            m.allocate("cont", 3)


# ---------------------------------------------------------------------------
# scheduler
# ---------------------------------------------------------------------------
def _job(jid: int, ranks: int, arrival: float = 0.0):
    from repro.cluster import StreamJob

    return StreamJob(
        id=jid,
        app="CR",
        ranks=ranks,
        arrival_s=arrival,
        service_s=100.0,
        msg_scale=1.0,
        trace=repro.crystal_router_trace(num_ranks=ranks, seed=jid),
    )


class TestScheduler:
    def test_fcfs_no_double_allocation(self, tiny_config):
        m = Machine(tiny_config.topology)
        s = ClusterScheduler(m, tiny_config, policy="cont", stream_seed=1)
        stream = generate_stream(default_mix(), 3600.0, 0.9, 24, seed=2)[:6]
        used: set[int] = set()
        for job in stream:
            assert s.submit(job)
        for job, nodes, placement in s.schedule():
            assert placement == "cont"
            assert not used & set(nodes)
            used |= set(nodes)
        assert m.num_claimed == len(used)

    def test_head_blocks_without_backfill(self, tiny_config):
        m = Machine(tiny_config.topology)
        s = ClusterScheduler(m, tiny_config, policy="cont")
        m.claim_nodes("wall", "cont", 20)  # 4 of 24 left
        big, small = _job(0, 8), _job(1, 2)
        s.submit(big)
        s.submit(small)
        assert s.schedule() == []
        assert s.num_queued == 2

    def test_backfill_starts_fitting_job(self, tiny_config):
        m = Machine(tiny_config.topology)
        s = ClusterScheduler(m, tiny_config, policy="cont", backfill=True)
        m.claim_nodes("wall", "cont", 20)
        big, small = _job(0, 8), _job(1, 2)
        s.submit(big)
        s.submit(small)
        launched = s.schedule()
        assert [j.id for j, _, _ in launched] == [small.id]
        assert s.backfilled == 1
        assert [j.id for j in s.queue] == [big.id]

    def test_oversized_job_rejected(self, tiny_config):
        m = Machine(tiny_config.topology)
        s = ClusterScheduler(m, tiny_config)
        job = _job(0, 25)
        assert job.ranks > 24
        assert not s.submit(job)

    def test_advisor_policy_resolves(self, tiny_config):
        m = Machine(tiny_config.topology)
        s = ClusterScheduler(m, tiny_config, policy="advisor")
        assert s.placement_for(_job(0, 8)) in repro.PLACEMENT_NAMES

    def test_unknown_policy_rejected(self, tiny_config):
        with pytest.raises(ValueError, match="unknown scheduling policy"):
            ClusterScheduler(
                Machine(tiny_config.topology), tiny_config, policy="best"
            )


# ---------------------------------------------------------------------------
# epoch cells
# ---------------------------------------------------------------------------
def _epoch_spec_for(config, jobs_nodes, backend="flow", seed=0, mix="CR=1"):
    epoch = EpochSpec(
        jobs=tuple(
            (t.name, t.num_ranks, tuple(nodes)) for t, nodes in jobs_nodes
        ),
        stream_seed=seed,
        mix=mix,
    )
    merged = merge_epoch_trace(
        [(t.name, t) for t, _ in jobs_nodes], f"epoch:{epoch.digest[:16]}"
    )
    spec = RunSpec(
        app=merged.name,
        placement="cont",
        routing="adp",
        seed=seed,
        config_digest=config_digest(config),
        trace_digest=trace_fingerprint(merged),
        backend=backend,
        epoch=epoch,
    )
    return spec, merged


class TestEpochCells:
    def test_merge_renumbers_and_shares_ops(self, tiny_config):
        a = repro.crystal_router_trace(num_ranks=4, seed=1)
        b = repro.amg_trace(num_ranks=6, seed=2)
        merged = merge_epoch_trace([("a", a), ("b", b)], "epoch:x")
        assert merged.num_ranks == 10
        assert [rt.rank for rt in merged.ranks] == list(range(10))
        # Ops are shared (not deep-copied): renumbering is O(ranks).
        assert merged.ranks[4].ops[0] is b.ranks[0].ops[0]

    def test_simulate_epoch_splits_jobs(self, tiny_config):
        a = repro.crystal_router_trace(num_ranks=4, seed=1).scaled(0.1)
        b = repro.amg_trace(num_ranks=4, seed=2)
        spec, merged = _epoch_spec_for(
            tiny_config, [(a, list(range(4))), (b, list(range(8, 12)))]
        )
        out = simulate_epoch(tiny_config, spec, merged)
        per = out.extra["epoch_jobs"]
        assert set(per) == {a.name, b.name}
        for tele in per.values():
            assert tele["finish_ns"] > 0
        assert out.job.num_ranks == 8
        assert out.backend == "flow"

    def test_simulate_epoch_span_mismatch(self, tiny_config):
        a = repro.crystal_router_trace(num_ranks=4, seed=1)
        spec, merged = _epoch_spec_for(tiny_config, [(a, list(range(4)))])
        bigger = merge_epoch_trace([("x", a), ("y", a)], merged.name)
        with pytest.raises(ValueError, match="spans"):
            simulate_epoch(tiny_config, spec, bigger)

    def test_flow_cell_rejects_fault_plan(self, tiny_config):
        from repro.faults import FaultPlan, LinkFault

        a = repro.crystal_router_trace(num_ranks=4, seed=1)
        spec, merged = _epoch_spec_for(tiny_config, [(a, list(range(4)))])
        spec = RunSpec(
            **{
                **{
                    f: getattr(spec, f)
                    for f in (
                        "app placement routing seed config_digest "
                        "trace_digest backend epoch"
                    ).split()
                },
                "faults": FaultPlan(link_faults=(LinkFault(0),)),
            }
        )
        with pytest.raises(ValueError, match="fault plans"):
            simulate_epoch(tiny_config, spec, merged)

    def test_epoch_identity_covers_stream_and_mix(self, tiny_config):
        a = repro.crystal_router_trace(num_ranks=4, seed=1)
        jn = [(a, list(range(4)))]
        base, _ = _epoch_spec_for(tiny_config, jn, seed=0)
        other_seed, _ = _epoch_spec_for(tiny_config, jn, seed=1)
        other_mix, _ = _epoch_spec_for(tiny_config, jn, mix="FB=1")
        single, _ = _epoch_spec_for(tiny_config, jn)
        no_epoch = RunSpec(
            app=base.app,
            placement=base.placement,
            routing=base.routing,
            seed=base.seed,
            config_digest=base.config_digest,
            trace_digest=base.trace_digest,
            backend=base.backend,
        )
        keys = {
            base.key,
            other_mix.key,
            no_epoch.key,
            single.key,
        }
        assert len(keys) == 3  # single == base; others all distinct
        assert base.key == single.key
        # The stream seed alone splits keys, even with identical specs.
        import dataclasses

        reseeded = dataclasses.replace(
            base, epoch=dataclasses.replace(base.epoch, stream_seed=99)
        )
        assert reseeded.key != base.key
        assert other_seed.key != base.key


# ---------------------------------------------------------------------------
# stream engine
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def tiny_stream():
    cfg = repro.tiny()
    return run_stream(
        cfg, duration_s=1800.0, load=0.5, policy="cont", seed=3
    )


class TestRunStream:
    def test_invariants_and_completion(self, tiny_stream):
        tiny_stream.check_invariants()  # raises on violation
        assert len(tiny_stream.completed) == len(tiny_stream.jobs) > 0
        for j in tiny_stream.completed:
            assert j.finish_s >= j.start_s >= j.arrival_s
            assert j.iterations >= 1
            assert j.work_s > 0
            assert j.mean_slowdown > 0

    def test_epochs_tile_the_run(self, tiny_stream):
        epochs = tiny_stream.epochs
        assert epochs[0].t0_s > 0  # machine idle until the first arrival
        for a, b in zip(epochs, epochs[1:]):
            assert a.t1_s == b.t0_s
        busy = [e for e in epochs if e.job_ids]
        assert busy and all(e.key for e in busy)
        assert all(e.busy_nodes <= tiny_stream.num_nodes for e in epochs)

    def test_warm_rerun_simulates_nothing(self, tmp_path):
        cfg = repro.tiny()
        kw = dict(duration_s=900.0, load=0.5, seed=3, cache=str(tmp_path))
        cold = run_stream(cfg, **kw)
        assert cold.counters["cells_simulated"] > 0
        warm = run_stream(cfg, **kw)
        assert warm.counters["cells_simulated"] == 0
        assert warm.counters["cells_cached"] == cold.counters["cells_planned"]
        assert to_doc_stable(warm) == to_doc_stable(cold)

    def test_serial_matches_parallel(self):
        cfg = repro.tiny()
        kw = dict(duration_s=900.0, load=0.5, seed=3)
        serial = run_stream(cfg, **kw, max_workers=1)
        parallel = run_stream(cfg, **kw, max_workers=3)
        assert to_doc_stable(serial) == to_doc_stable(parallel)

    def test_validation_records(self):
        cfg = repro.tiny()
        res = run_stream(
            cfg, duration_s=900.0, load=0.5, seed=3, validate_every=2
        )
        assert res.validations
        for v in res.validations:
            assert v.flow_key != v.packet_key
            assert math.isfinite(v.max_rel_err)

    def test_explicit_jobs_and_packet_backend(self, tiny_config):
        jobs = generate_stream(
            "CR=1", 600.0, 0.0, 24, seed=1, interarrivals_s=[50.0, 20.0]
        )
        res = run_stream(
            tiny_config,
            mix="CR=1",
            duration_s=600.0,
            load=0.5,
            backend="packet",
            seed=1,
            jobs=jobs,
        )
        assert len(res.completed) == 2
        assert res.backend == "packet"

    def test_router_fault_fences_nodes(self, tiny_config):
        from repro.faults import FaultPlan, RouterFault

        plan = FaultPlan(router_faults=(RouterFault(0),))
        res = run_stream(
            tiny_config,
            duration_s=900.0,
            load=0.5,
            seed=3,
            faults=plan,
        )
        from repro.core.runner import build_topology

        dead = set(plan.dead_nodes(build_topology(tiny_config.topology)))
        for j in res.completed:
            assert not dead & set(j.nodes)
        assert res.num_nodes == 24 - len(dead)

    def test_flow_rejects_link_faults(self, tiny_config):
        from repro.core.runner import build_topology
        from repro.faults import FaultPlan, LinkFault

        topo = build_topology(tiny_config.topology)
        link = next(
            i
            for i in range(topo.num_links)
            if not topo.links.kind_of(i).is_terminal
        )
        with pytest.raises(ValueError, match="packet"):
            run_stream(
                tiny_config,
                duration_s=900.0,
                load=0.5,
                faults=FaultPlan(link_faults=(LinkFault(link),)),
            )

    def test_bad_backend_rejected(self, tiny_config):
        with pytest.raises(ValueError, match="backend"):
            run_stream(tiny_config, backend="quantum")


def to_doc_stable(result: StreamResult) -> str:
    """Canonical JSON of a stream doc minus wall-clock noise."""
    doc = to_doc(result)
    doc["wall_s"] = 0.0
    doc["counters"] = {}
    for e in doc["epochs"]:
        e.pop("status", None)  # cached-vs-done differs, values must not
    return json.dumps(doc, sort_keys=True)


# ---------------------------------------------------------------------------
# accounting + export
# ---------------------------------------------------------------------------
class TestAccounting:
    def test_fragmentation_index(self):
        assert fragmentation_index([]) == 0.0
        assert fragmentation_index([4, 5, 6, 7]) == 0.0
        assert fragmentation_index([0, 2, 4, 6]) == 0.75
        assert 0.0 < fragmentation_index([0, 1, 5]) < 1.0

    def test_utilization_timeline(self, tiny_stream):
        util = utilization_timeline(tiny_stream)
        assert util
        for t0, t1, u in util:
            assert t1 > t0 and 0.0 <= u <= 1.0

    def test_interference_matrix(self, tiny_stream):
        apps, mat = interference_matrix(tiny_stream)
        assert mat.shape == (len(apps), len(apps))
        finite = mat[~(mat != mat)]  # drop NaNs
        assert (finite > 0).all()

    def test_export_schema_and_invariants(self, tiny_stream, tmp_path):
        path = save_json(tiny_stream, tmp_path / "stream.json")
        doc = json.loads(path.read_text())
        assert doc["schema"] == "repro-cluster-stream/v1"
        inv = doc["invariants"]
        assert inv["conserved"] and inv["warm_rerun_ready"]
        assert inv["submitted"] == len(doc["jobs"])
        assert doc["aggregates"]["makespan_s"] > 0
        for j in doc["jobs"]:
            if j["status"] == "completed":
                assert j["finish_s"] is not None

    def test_peak_link_accounting(self, tiny_stream):
        busy = [
            e
            for e in tiny_stream.epochs
            if e.job_ids and e.status != "empty"
        ]
        assert busy
        for e in busy:
            assert e.peak_link_bytes > 0
            assert e.makespan_ns > 0
            assert 0.0 <= e.peak_link_sat_frac <= 1.0
        peaks = tiny_stream.heavy_epoch_peaks()
        assert peaks["mean_bytes"] > 0
        assert 0.0 <= peaks["mean_sat_frac"] <= 1.0
        assert peaks["max_sat_frac"] >= peaks["mean_sat_frac"] >= 0.0
        doc = to_doc(tiny_stream)
        agg = doc["aggregates"]["heavy_peak_link"]
        assert agg["mean_bytes"] == peaks["mean_bytes"]
        for e in doc["epochs"]:
            if e["status"] != "empty":
                assert e["peak_link_bytes"] > 0
