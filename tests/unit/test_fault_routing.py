"""Failure-aware routing: degraded tables, BFS fallback, policy behaviour."""

from __future__ import annotations

import pytest

import repro
from repro.core.runner import build_topology
from repro.engine import Simulator
from repro.faults.routing import (
    DegradedTables,
    FaultAwareAdaptiveRouting,
    FaultAwareMinimalRouting,
    UnreachableError,
    make_fault_aware_routing,
)
from repro.network import Fabric
from repro.routing import AdaptiveRouting, MinimalRouting
from repro.routing.tables import route_tables


@pytest.fixture(scope="module")
def topo():
    return build_topology(repro.tiny().topology)


def _fabric(topo, routing):
    sim = Simulator()
    return Fabric(sim, topo, repro.tiny().network, routing)


def _direct_pair(topo):
    """Two routers joined by a single direct link (plus its reverse)."""
    links = topo.links
    for lid in range(topo.num_links):
        if links.kind_of(lid).is_terminal:
            continue
        r1, r2 = links._src[lid], links._dst[lid]
        routes = route_tables(topo).minimal(r1, r2)
        if routes == ((lid,),):
            rev = next(
                other
                for other in range(topo.num_links)
                if links._src[other] == r2
                and links._dst[other] == r1
                and not links.kind_of(other).is_terminal
            )
            return r1, r2, lid, rev
    raise AssertionError("no direct router pair found")


def _node_on(topo, router):
    return next(
        n for n in range(topo.num_nodes) if topo.router_of(n) == router
    )


class TestDegradedTables:
    def test_alive_probe(self, topo):
        down = [False] * topo.num_links
        tables = DegradedTables(topo, down)
        r1, r2, lid, _ = _direct_pair(topo)
        assert tables.alive((lid,))
        down[lid] = True
        assert not tables.alive((lid,))

    def test_minimal_filters_dead_routes(self, topo):
        down = [False] * topo.num_links
        r1, r2, lid, _ = _direct_pair(topo)
        healthy_routes = route_tables(topo).minimal(r1, r2)
        down[lid] = True
        survivors = DegradedTables(topo, down).minimal(r1, r2)
        assert all(lid not in path for path in survivors)
        assert survivors != healthy_routes

    def test_bfs_fallback_when_all_minimal_severed(self, topo):
        r1, r2, lid, rev = _direct_pair(topo)
        down = [False] * topo.num_links
        down[lid] = down[rev] = True
        (detour,) = DegradedTables(topo, down).minimal(r1, r2)
        # The detour is a live multi-hop path that actually lands on r2.
        assert len(detour) >= 2
        assert all(not down[step] for step in detour)
        links = topo.links
        assert links._src[detour[0]] == r1
        assert links._dst[detour[-1]] == r2
        for a, b in zip(detour, detour[1:]):
            assert links._dst[a] == links._src[b]

    def test_bfs_fallback_is_deterministic(self, topo):
        r1, r2, lid, rev = _direct_pair(topo)
        down = [False] * topo.num_links
        down[lid] = down[rev] = True
        a = DegradedTables(topo, down).minimal(r1, r2)
        b = DegradedTables(topo, down).minimal(r1, r2)
        assert a == b

    def test_unreachable_raises(self, topo):
        # Sever every channel out of r1: no plan generator would produce
        # this (connectivity guard), but hand-written plans can.
        r1, r2, _, _ = _direct_pair(topo)
        links = topo.links
        down = [False] * topo.num_links
        for lid in range(topo.num_links):
            if links.kind_of(lid).is_terminal:
                continue
            if links._src[lid] == r1 or links._dst[lid] == r1:
                down[lid] = True
        with pytest.raises(UnreachableError):
            DegradedTables(topo, down).minimal(r1, r2)


class TestFaultAwarePolicies:
    def test_factory_mirrors_baseline(self):
        rmin = make_fault_aware_routing("min", seed=3)
        radp = make_fault_aware_routing("adp", seed=3)
        # Subclasses of the healthy policies (isinstance checks in the
        # runner keep working), reporting under the same labels.
        assert isinstance(rmin, MinimalRouting) and rmin.name == "min"
        assert isinstance(radp, AdaptiveRouting) and radp.name == "adp"
        with pytest.raises(ValueError):
            make_fault_aware_routing("nope")

    @pytest.mark.parametrize("name", ["min", "adp"])
    def test_routes_avoid_dead_links(self, topo, name):
        r1, r2, lid, rev = _direct_pair(topo)
        fab = _fabric(topo, make_fault_aware_routing(name, seed=1))
        fab.apply_link_fault(lid)
        fab.apply_link_fault(rev)
        dst = _node_on(topo, r2)
        for _ in range(50):
            route = fab.routing.route(fab, r1, dst, 4096)
            assert lid not in route and rev not in route
            # Route still terminates at the destination node's port.
            assert route[-1] == topo._terminal_out_l[dst]

    def test_healthy_fabric_routes_match_candidates(self, topo):
        """With nothing down the degraded tables are the healthy ones."""
        r1, r2, lid, _ = _direct_pair(topo)
        fab = _fabric(topo, FaultAwareMinimalRouting(seed=1))
        dst = _node_on(topo, r2)
        route = fab.routing.route(fab, r1, dst, 4096)
        assert route == [lid, topo._terminal_out_l[dst]]

    def test_tables_rebuilt_on_fault_epoch(self, topo):
        r1, r2, lid, rev = _direct_pair(topo)
        policy = FaultAwareMinimalRouting(seed=1)
        fab = _fabric(topo, policy)
        dst = _node_on(topo, r2)
        assert fab.routing.route(fab, r1, dst, 4096)[0] == lid
        first_tables = policy._degraded
        fab.apply_link_fault(lid)
        fab.apply_link_fault(rev)
        assert fab.routing.route(fab, r1, dst, 4096)[0] != lid
        assert policy._degraded is not first_tables

    def test_adaptive_drops_unloaded_memo_on_fault(self, topo):
        r1, r2, lid, rev = _direct_pair(topo)
        policy = FaultAwareAdaptiveRouting(seed=1)
        fab = _fabric(topo, policy)
        dst = _node_on(topo, r2)
        policy.route(fab, r1, dst, 4096)
        # Seed the parent's unloaded-cost memo: after a fault rescales
        # link bandwidth every cached traversal time is stale, so the
        # epoch-triggered rebuild must drop it.
        policy._unloaded[((lid,), 4096)] = 1.0
        fab.apply_link_fault(lid, bw_scale=0.5)
        policy.route(fab, r1, dst, 4096)
        assert not policy._unloaded
        assert policy._epoch == fab.fault_epoch

    def test_adaptive_counters_still_tally(self, topo):
        policy = FaultAwareAdaptiveRouting(seed=1)
        fab = _fabric(topo, policy)
        r1, r2, lid, rev = _direct_pair(topo)
        dst = _node_on(topo, r2)
        fab.apply_link_fault(lid)
        fab.apply_link_fault(rev)
        for _ in range(20):
            policy.route(fab, r1, dst, 4096)
        assert policy.minimal_taken + policy.nonminimal_taken == 20
