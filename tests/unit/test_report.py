"""Report rendering tests (Table I and figure-style tables)."""

import numpy as np
import pytest

import repro
from repro.core.report import (
    config_label,
    format_box_table,
    format_cdf_table,
    format_series_table,
    key_findings,
    nomenclature_table,
)
from repro.core.study import TradeoffStudy
from repro.metrics.analysis import BoxStats


class TestNomenclature:
    def test_table1_contains_all_ten_configs(self):
        text = nomenclature_table()
        for p in ("cont", "cab", "chas", "rotr", "rand"):
            for r in ("min", "adp"):
                assert f"{p}-{r}" in text

    def test_long_names_present(self):
        text = nomenclature_table()
        for long in (
            "Contiguous",
            "Random-cabinet",
            "Random-chassis",
            "Random-router",
            "Random-node",
        ):
            assert long in text

    def test_config_label(self):
        assert config_label("cont", "min") == "cont-min"


class TestFormatters:
    def test_box_table(self):
        boxes = {"cont-min": BoxStats(1, 2, 3, 4, 5)}
        text = format_box_table(boxes, "title", unit="ms")
        assert "title" in text
        assert "cont-min" in text
        assert "3.0000" in text

    def test_cdf_table(self):
        curves = {
            "a": (np.array([1.0, 2.0, 3.0]), np.array([33.3, 66.7, 100.0])),
            "b": (np.array([]), np.array([])),
        }
        text = format_cdf_table(curves, "cdf", unit="MB")
        assert "cdf" in text
        assert "(no channels)" in text
        assert "p50" in text

    def test_series_table(self):
        text = format_series_table(
            [0.5, 1.0],
            {"cont-min": [101.0, 102.0], "rand-adp": [100.0, 100.0]},
            "fig7",
        )
        assert "fig7" in text
        assert "cont-min" in text
        assert "0.5" in text


class TestKeyFindings:
    @pytest.fixture(scope="class")
    def result(self):
        cfg = repro.tiny()
        traces = {"CR": repro.crystal_router_trace(num_ranks=10, seed=1).scaled(0.1)}
        return TradeoffStudy(
            cfg, traces, placements=("cont", "rand"), routings=("min", "adp"), seed=1
        ).run()

    def test_findings_structure(self, result):
        findings = key_findings(result)
        assert "CR" in findings
        f = findings["CR"]
        assert f["best"] in result.labels()
        # The two comparisons have opposite signs.
        assert (f["rand_vs_cont_pct"] > 0) != (f["cont_vs_rand_pct"] > 0) or (
            f["rand_vs_cont_pct"] == f["cont_vs_rand_pct"] == 0
        )
