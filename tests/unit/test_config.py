"""Unit tests for configuration dataclasses and presets."""

import dataclasses

import pytest

from repro.config import (
    GIB_PER_SEC,
    DragonflyParams,
    NetworkParams,
    SimulationConfig,
    medium,
    small,
    theta,
    tiny,
)


class TestDragonflyParams:
    def test_theta_defaults_match_paper(self):
        p = DragonflyParams()
        assert p.groups == 9
        assert p.rows == 6
        assert p.cols == 16
        assert p.nodes_per_router == 4
        assert p.routers_per_group == 96
        assert p.num_routers == 864
        # 9 groups x 96 routers x 4 nodes (the paper's 3,624-node Theta
        # has some service blades; the network fabric is this size).
        assert p.num_nodes == 3456

    def test_chassis_and_cabinet_counts(self):
        p = DragonflyParams()
        assert p.chassis_per_group == 6
        assert p.cabinets_per_group == 2
        assert p.num_chassis == 54
        assert p.num_cabinets == 18
        assert p.nodes_per_chassis == 64
        assert p.nodes_per_cabinet == 192

    def test_rejects_too_few_groups(self):
        with pytest.raises(ValueError, match="groups"):
            DragonflyParams(groups=1)

    def test_rejects_empty_grid(self):
        with pytest.raises(ValueError):
            DragonflyParams(rows=0)
        with pytest.raises(ValueError):
            DragonflyParams(cols=0)

    def test_rejects_zero_nodes(self):
        with pytest.raises(ValueError):
            DragonflyParams(nodes_per_router=0)

    def test_rejects_non_tiling_cabinets(self):
        with pytest.raises(ValueError, match="multiple"):
            DragonflyParams(rows=5, chassis_per_cabinet=3)

    def test_rejects_disconnected_groups(self):
        with pytest.raises(ValueError):
            DragonflyParams(global_links_per_pair=0)

    def test_frozen(self):
        p = DragonflyParams()
        with pytest.raises(dataclasses.FrozenInstanceError):
            p.groups = 5  # type: ignore[misc]


class TestNetworkParams:
    def test_theta_bandwidths(self):
        n = NetworkParams()
        assert n.terminal_bw == pytest.approx(16.0 * GIB_PER_SEC)
        assert n.local_bw == pytest.approx(5.25 * GIB_PER_SEC)
        assert n.global_bw == pytest.approx(4.69 * GIB_PER_SEC)

    def test_theta_buffers(self):
        n = NetworkParams()
        assert n.node_vc_buffer == 8 * 1024
        assert n.local_vc_buffer == 8 * 1024
        assert n.global_vc_buffer == 16 * 1024

    def test_gib_conversion(self):
        # 1 GiB/s is ~1.0737 bytes per ns.
        assert GIB_PER_SEC == pytest.approx(1.0737, rel=1e-3)

    def test_packet_must_fit_smallest_buffer(self):
        with pytest.raises(ValueError, match="packet_size"):
            NetworkParams(packet_size=9000)

    def test_rejects_nonpositive_bandwidth(self):
        with pytest.raises(ValueError):
            NetworkParams(local_bw=0.0)

    def test_rejects_negative_latency(self):
        with pytest.raises(ValueError):
            NetworkParams(global_latency_ns=-1.0)

    def test_rejects_zero_vcs(self):
        with pytest.raises(ValueError):
            NetworkParams(num_vcs=0)


class TestPresets:
    @pytest.mark.parametrize("preset", [theta, medium, small, tiny])
    def test_presets_construct(self, preset):
        cfg = preset()
        assert isinstance(cfg, SimulationConfig)
        assert cfg.topology.num_nodes >= 24

    def test_preset_sizes(self):
        assert theta().topology.num_nodes == 3456
        assert medium().topology.num_nodes == 432
        assert small().topology.num_nodes == 80
        assert tiny().topology.num_nodes == 24

    def test_with_seed_returns_new_config(self):
        cfg = small()
        cfg2 = cfg.with_seed(42)
        assert cfg2.seed == 42
        assert cfg.seed == 0
        assert cfg2.topology == cfg.topology
