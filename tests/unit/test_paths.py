"""Route-construction validity tests (property-based over router pairs)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import DragonflyParams
from repro.routing.paths import (
    enumerate_minimal_routes,
    intra_group_links,
    local_hop_count,
    valiant_route,
)
from repro.routing.tables import route_tables
from repro.topology.dragonfly import Dragonfly

PARAMS = DragonflyParams(
    groups=4, rows=3, cols=4, nodes_per_router=2,
    chassis_per_cabinet=3, global_links_per_pair=3,
)
TOPO = Dragonfly(PARAMS)

routers = st.integers(0, PARAMS.num_routers - 1)


def assert_route_valid(topo, route, src_router, dst_router):
    """Every link chains from src to dst over existing links."""
    at = src_router
    for lid in route:
        s, d = topo.links.endpoints(lid)
        assert s == at, f"link {lid} starts at {s}, packet is at {at}"
        at = d
    assert at == dst_router


class TestLocalHopCount:
    def test_same_router(self):
        assert local_hop_count(TOPO, 0, 0) == 0

    def test_same_row(self):
        assert local_hop_count(TOPO, 0, 1) == 1

    def test_same_column(self):
        assert local_hop_count(TOPO, 0, PARAMS.cols) == 1

    def test_diagonal(self):
        assert local_hop_count(TOPO, 0, PARAMS.cols + 1) == 2

    def test_cross_group_raises(self):
        with pytest.raises(ValueError):
            local_hop_count(TOPO, 0, PARAMS.routers_per_group)


class TestIntraGroupLinks:
    @given(data=st.data())
    @settings(max_examples=60)
    def test_path_valid_and_minimal(self, data):
        g = data.draw(st.integers(0, PARAMS.groups - 1))
        base = g * PARAMS.routers_per_group
        r1 = base + data.draw(st.integers(0, PARAMS.routers_per_group - 1))
        r2 = base + data.draw(st.integers(0, PARAMS.routers_per_group - 1))
        for col_first in (False, True):
            path = intra_group_links(TOPO, r1, r2, col_first)
            assert_route_valid(TOPO, path, r1, r2)
            assert len(path) == local_hop_count(TOPO, r1, r2)

    def test_two_variants_differ(self):
        r1, r2 = 0, PARAMS.cols + 1  # diagonal pair
        a = intra_group_links(TOPO, r1, r2, col_first=False)
        b = intra_group_links(TOPO, r1, r2, col_first=True)
        assert a != b


class TestMinimalRoutes:
    @given(r1=routers, r2=routers)
    @settings(max_examples=80)
    def test_routes_valid(self, r1, r2):
        for route in enumerate_minimal_routes(TOPO, r1, r2):
            assert_route_valid(TOPO, list(route), r1, r2)

    @given(r1=routers, r2=routers)
    @settings(max_examples=80)
    def test_routes_all_same_minimal_length(self, r1, r2):
        routes = enumerate_minimal_routes(TOPO, r1, r2)
        lengths = {len(r) for r in routes}
        assert len(lengths) == 1

    @given(r1=routers, r2=routers)
    @settings(max_examples=80)
    def test_length_bounds(self, r1, r2):
        (route, *_) = enumerate_minimal_routes(TOPO, r1, r2)
        g1 = TOPO.group_of_router(r1)
        g2 = TOPO.group_of_router(r2)
        if r1 == r2:
            assert len(route) == 0
        elif g1 == g2:
            assert 1 <= len(route) <= 2
        else:
            assert 1 <= len(route) <= 5
            kinds = [TOPO.links.kind_of(l) for l in route]
            assert sum(1 for k in kinds if k.name == "GLOBAL") == 1

    def test_limit_respected(self):
        r1, r2 = 0, PARAMS.routers_per_group  # different groups
        routes = enumerate_minimal_routes(TOPO, r1, r2, limit=2)
        assert len(routes) <= 2

    def test_distinct_routes(self):
        r1, r2 = 0, PARAMS.routers_per_group + 5
        routes = enumerate_minimal_routes(TOPO, r1, r2)
        assert len(set(routes)) == len(routes)


class TestValiantRoutes:
    @given(r1=routers, r2=routers, seed=st.integers(0, 1000))
    @settings(max_examples=80)
    def test_routes_valid(self, r1, r2, seed):
        if r1 == r2:
            return
        rng = random.Random(seed)
        tables = route_tables(TOPO)
        route = valiant_route(tables, r1, r2, rng)
        assert_route_valid(TOPO, list(route), r1, r2)

    @given(r1=routers, r2=routers, seed=st.integers(0, 1000))
    @settings(max_examples=80)
    def test_hop_bound_is_eight(self, r1, r2, seed):
        """The VC count is sized for <= 8 router-to-router hops."""
        if r1 == r2:
            return
        rng = random.Random(seed)
        route = valiant_route(route_tables(TOPO), r1, r2, rng)
        assert len(route) <= 8

    def test_inter_group_avoids_endpoint_groups(self):
        rng = random.Random(0)
        tables = route_tables(TOPO)
        r1 = 0
        r2 = PARAMS.routers_per_group  # group 1
        for _ in range(50):
            route = valiant_route(tables, r1, r2, rng)
            globals_on_route = [
                l for l in route if TOPO.links.kind_of(l).name == "GLOBAL"
            ]
            assert len(globals_on_route) == 2  # detour through a third group
