"""Store-and-forward switching mode: conservation and semantics."""

import dataclasses

import pytest

import repro
from repro.config import tiny
from repro.core.runner import build_topology
from repro.engine.simulator import Simulator
from repro.mpi.replay import ReplayEngine
from repro.network.fabric import Fabric
from repro.routing import make_routing


def sf_config():
    cfg = tiny()
    return dataclasses.replace(
        cfg, network=dataclasses.replace(cfg.network, switching="store_forward")
    )


class TestStoreForward:
    def test_switching_validated(self):
        from repro.config import NetworkParams

        with pytest.raises(ValueError, match="switching"):
            NetworkParams(switching="wormhole")

    @pytest.mark.parametrize("routing", ["min", "adp"])
    def test_conservation(self, routing):
        cfg = sf_config()
        trace = repro.crystal_router_trace(num_ranks=12, seed=5).scaled(0.1)
        topo = build_topology(cfg.topology)
        sim = Simulator()
        fabric = Fabric(sim, topo, cfg.network, make_routing(routing, seed=5))
        engine = ReplayEngine(sim, fabric)
        engine.add_job(0, trace, list(range(12)))
        engine.run(target_job=0)
        assert fabric.bytes_injected == fabric.bytes_delivered
        assert all(v == 0 for v in fabric._buf_used)

    def test_qualitative_ordering_preserved(self):
        """The hops ordering (cont < rand) holds in either mode."""
        trace = repro.crystal_router_trace(num_ranks=12, seed=5).scaled(0.1)
        for cfg in (tiny(), sf_config()):
            cont = repro.run_single(cfg, trace, "cont", "min", seed=5)
            rand = repro.run_single(cfg, trace, "rand", "min", seed=5)
            assert cont.metrics.mean_hops < rand.metrics.mean_hops

    def test_deterministic(self):
        cfg = sf_config()
        trace = repro.amg_trace(num_ranks=8, seed=5).scaled(0.5)
        a = repro.run_single(cfg, trace, "rotr", "adp", seed=9)
        b = repro.run_single(cfg, trace, "rotr", "adp", seed=9)
        assert a.sim_time_ns == b.sim_time_ns
