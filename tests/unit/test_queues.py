"""Event-queue implementations (``repro.engine.queues``).

The contract under test: entries are ``(time, seq, fn, args)`` tuples and
``(time, seq)`` is a total order, so every queue must drain any push
sequence in exactly sorted order — that equivalence is what makes the
scheduler a pure performance knob.
"""

import heapq
import random

import pytest

from repro.engine.queues import (
    SCHEDULER_NAMES,
    CalendarQueue,
    EventQueue,
    HeapQueue,
    make_queue,
)


def _noop():
    pass


def _ev(time, seq):
    return (time, seq, _noop, ())


def _random_events(rng, n, *, t_lo=0.0, t_hi=1e6, tie_every=4):
    """Events with deliberately duplicated times (seq breaks the ties)."""
    events = []
    last_t = 0.0
    for seq in range(n):
        if seq % tie_every == 0 and events:
            t = last_t  # force a (time, seq) tie-break
        else:
            t = rng.uniform(t_lo, t_hi)
        last_t = t
        events.append(_ev(t, seq))
    return events


class TestRegistry:
    def test_scheduler_names(self):
        assert SCHEDULER_NAMES == ("calendar", "heap")

    def test_make_queue_instances(self):
        assert isinstance(make_queue("heap"), HeapQueue)
        assert isinstance(make_queue("calendar"), CalendarQueue)

    def test_implementations_satisfy_protocol(self):
        for name in SCHEDULER_NAMES:
            assert isinstance(make_queue(name), EventQueue)

    def test_unknown_scheduler_raises(self):
        with pytest.raises(ValueError, match="unknown scheduler"):
            make_queue("fifo")


class TestOrderEquivalence:
    @pytest.mark.parametrize("name", SCHEDULER_NAMES)
    def test_drains_in_sorted_order(self, name):
        rng = random.Random(1234)
        events = _random_events(rng, 500)
        q = make_queue(name)
        for ev in events:
            q.push(ev)
        popped = [q.pop() for _ in range(len(events))]
        assert popped == sorted(events, key=lambda e: (e[0], e[1]))
        assert len(q) == 0

    @pytest.mark.parametrize("name", SCHEDULER_NAMES)
    def test_interleaved_push_pop_matches_heapq(self, name):
        """Mixed push/pop traffic pops the global minimum every time."""
        rng = random.Random(99)
        q = make_queue(name)
        mirror = []
        seq = 0
        now = 0.0
        for _ in range(2000):
            if mirror and rng.random() < 0.45:
                ev = q.pop()
                assert ev == heapq.heappop(mirror)
                now = ev[0]
            else:
                # Simulator-style monotone schedule: never in the past.
                ev = _ev(now + rng.uniform(0.0, 1000.0), seq)
                seq += 1
                q.push(ev)
                heapq.heappush(mirror, ev)
        while mirror:
            assert q.pop() == heapq.heappop(mirror)
        assert len(q) == 0

    @pytest.mark.parametrize("name", SCHEDULER_NAMES)
    def test_identical_times_pop_in_seq_order(self, name):
        q = make_queue(name)
        for seq in (5, 3, 9, 0, 7):
            q.push(_ev(42.0, seq))
        assert [q.pop()[1] for _ in range(5)] == [0, 3, 5, 7, 9]


class TestCalendarQueue:
    def test_constructor_validation(self):
        with pytest.raises(ValueError, match="two buckets"):
            CalendarQueue(bucket_count=1)
        with pytest.raises(ValueError, match="width"):
            CalendarQueue(bucket_width=0.0)

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            CalendarQueue().pop()

    def test_resize_grows_and_shrinks(self):
        q = CalendarQueue(bucket_count=16)
        rng = random.Random(7)
        events = _random_events(rng, 400)
        for ev in events:
            q.push(ev)
        assert q._n > 16  # directory doubled under load
        drained = [q.pop() for _ in range(len(events))]
        assert drained == sorted(events, key=lambda e: (e[0], e[1]))
        assert q._n == 16  # and lazily shrank back to the floor

    def test_sparse_far_future_jump(self):
        """A next event many 'years' ahead is found via the head scan."""
        q = CalendarQueue(bucket_count=16, bucket_width=1.0)
        q.push(_ev(0.5, 0))
        q.push(_ev(1e9, 1))  # astronomically far from the position
        assert q.pop()[1] == 0
        assert q.pop()[1] == 1
        assert len(q) == 0

    def test_width_re_estimated_on_resize(self):
        q = CalendarQueue(bucket_count=2, bucket_width=1.0)
        for seq in range(64):
            q.push(_ev(seq * 1e5, seq))
        # 64 events over 6.3e6 ns through 1.0-wide buckets would be
        # pathological; the lazy resize must have widened them.
        assert q._width > 1.0
        assert [q.pop()[1] for _ in range(64)] == list(range(64))
