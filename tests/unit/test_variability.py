"""Run-to-run variability study tests (paper §I motivation, §IV-C)."""

import pytest

import repro
from repro.core.interference import BackgroundSpec
from repro.core.variability import variability_study


class TestVariabilityStudy:
    @pytest.fixture(scope="class")
    def study(self):
        cfg = repro.tiny()
        trace = repro.amg_trace(num_ranks=8, seed=0).scaled(0.5)
        return variability_study(cfg, trace, seeds=(0, 1, 2))

    def test_samples_per_config(self, study):
        assert set(study.samples) == {"cont-min", "rand-adp"}
        for s in study.samples.values():
            assert len(s) == 3
            assert (s > 0).all()

    def test_metrics_defined(self, study):
        for label in study.samples:
            assert study.cv(label) >= 0
            assert study.spread_pct(label) >= 0

    def test_to_text(self, study):
        text = study.to_text()
        assert "cont-min" in text and "cv" in text

    def test_needs_two_seeds(self):
        cfg = repro.tiny()
        trace = repro.amg_trace(num_ranks=8, seed=0)
        with pytest.raises(ValueError):
            variability_study(cfg, trace, seeds=(0,))

    def test_contiguous_varies_less_than_random(self):
        """Contiguous placement is seed-independent (same block every
        time), so without background its variability is minimal."""
        cfg = repro.tiny()
        trace = repro.crystal_router_trace(num_ranks=12, seed=0).scaled(0.2)
        study = variability_study(cfg, trace, seeds=(0, 1, 2, 3))
        assert study.cv("cont-min") <= study.cv("rand-adp") + 0.01

    def test_localization_reduces_variation_under_bursty_bg(self):
        """§IV-C headline: cont-min varies less than rand-adp when
        bursty background traffic shares the network."""
        cfg = repro.tiny()
        trace = repro.amg_trace(num_ranks=8, seed=0)
        bg = BackgroundSpec(
            "bursty", message_bytes=65_536, interval_ns=100_000.0, fanout=6
        )
        study = variability_study(
            cfg, trace, seeds=(0, 1, 2, 3), background=bg
        )
        assert study.cv("cont-min") <= study.cv("rand-adp") + 0.05
