"""Obs x exec interplay: cache versioning, key identity, IPC survival."""

from __future__ import annotations

import numpy as np

import repro
from repro.exec import plan as plan_mod
from repro.exec.cache import ResultCache
from repro.exec.plan import plan_grid
from repro.exec.pool import execute_plan
from repro.obs import ObsConfig

from tests.exec_helpers import tiny_trace


def make_plan(obs=None):
    return plan_grid(
        repro.tiny(),
        {"A": tiny_trace("A")},
        ("cont",),
        ("min",),
        obs=obs,
    )


class TestCacheVersioning:
    def test_stale_salt_entries_are_misses(self, tmp_path, monkeypatch):
        """Entries cached under an older salt must never be served.

        Each salt bump marks a change to what a cached ``RunResult``
        carries (v2: obs schema; v3: fault telemetry in ``extra``;
        v4: backend field on specs/results; v5: epoch field on specs;
        v6: vectorized default flow solver + fabric wake guard; v7:
        array default flow fabric + flow_params field on specs; v8:
        the repro.mlcomms training family's expansions and app
        names); a warm cache directory from an older salt has to
        behave as fully cold.
        """
        assert plan_mod.CODE_SALT == "repro-exec/v8"
        cache = ResultCache(tmp_path)

        monkeypatch.setattr(plan_mod, "CODE_SALT", "repro-exec/v7")
        old_keys = make_plan().keys()
        report_v7 = execute_plan(make_plan(), cache=cache)
        assert report_v7.done == 1 and report_v7.cached == 0

        monkeypatch.undo()
        new_keys = make_plan().keys()
        assert set(old_keys).isdisjoint(new_keys)
        report_v8 = execute_plan(make_plan(), cache=cache)
        assert report_v8.done == 1 and report_v8.cached == 0
        # And the v8 entry now hits under the v8 salt.
        assert execute_plan(make_plan(), cache=cache).cached == 1

    def test_obs_config_is_part_of_cell_identity(self):
        bare = make_plan().keys()[0]
        observed = make_plan(obs=ObsConfig(window_ns=10_000.0)).keys()[0]
        other_window = make_plan(obs=ObsConfig(window_ns=20_000.0)).keys()[0]
        assert len({bare, observed, other_window}) == 3
        # Equal configs produce equal keys (value identity, not object).
        again = make_plan(obs=ObsConfig(window_ns=10_000.0)).keys()[0]
        assert again == observed


class TestObsThroughExecutor:
    def test_obs_survives_cache_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path)
        plan = make_plan(obs=ObsConfig(window_ns=10_000.0))
        fresh = execute_plan(plan, cache=cache)
        assert fresh.done == 1
        ts = fresh.outcomes[0].result.obs
        assert ts is not None and ts.num_windows >= 1

        served = execute_plan(plan, cache=cache)
        assert served.cached == 1
        cached_ts = served.outcomes[0].result.obs
        assert cached_ts is not None
        assert (cached_ts.bytes_fwd == ts.bytes_fwd).all()
        assert np.allclose(cached_ts.stall_ns, ts.stall_ns)
        assert cached_ts.events == ts.events

    def test_obs_survives_worker_ipc(self):
        plan = make_plan(obs=ObsConfig(window_ns=10_000.0))
        report = execute_plan(plan, max_workers=2)
        assert report.done == 1
        ts = report.outcomes[0].result.obs
        assert ts is not None and ts.bytes_fwd.sum() > 0

    def test_unobserved_cells_stay_obs_free(self, tmp_path):
        report = execute_plan(make_plan(), cache=ResultCache(tmp_path))
        assert report.outcomes[0].result.obs is None
