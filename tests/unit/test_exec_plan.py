"""Planning: grid/sweep enumeration and content-addressed spec keys."""

import repro
from repro.core.interference import BackgroundSpec
from repro.exec.plan import (
    config_digest,
    plan_grid,
    plan_sensitivity,
    trace_fingerprint,
)

from tests.exec_helpers import tiny_trace


def small_traces():
    return {"A": tiny_trace("A"), "B": tiny_trace("B")}


class TestFingerprints:
    def test_config_digest_stable_and_sensitive(self):
        assert config_digest(repro.tiny()) == config_digest(repro.tiny())
        assert config_digest(repro.tiny()) != config_digest(repro.small())
        assert config_digest(repro.tiny()) != config_digest(
            repro.tiny().with_seed(3)
        )

    def test_trace_fingerprint_stable(self):
        assert trace_fingerprint(tiny_trace()) == trace_fingerprint(tiny_trace())

    def test_trace_fingerprint_sees_content(self):
        t = repro.amg_trace(num_ranks=8, seed=1)
        assert trace_fingerprint(t) != trace_fingerprint(t.scaled(0.5))
        assert trace_fingerprint(t) != trace_fingerprint(
            repro.amg_trace(num_ranks=8, seed=2)
        )

    def test_trace_fingerprint_ignores_meta(self):
        a, b = tiny_trace(), tiny_trace()
        b.meta["note"] = "annotation only"
        assert trace_fingerprint(a) == trace_fingerprint(b)


class TestGridPlan:
    def test_order_matches_serial_loop_nest(self):
        plan = plan_grid(
            repro.tiny(), small_traces(), ("cont", "rand"), ("min", "adp")
        )
        cells = [(s.app, s.placement, s.routing) for s in plan.specs]
        expected = [
            (app, p, r)
            for app in ("A", "B")
            for p in ("cont", "rand")
            for r in ("min", "adp")
        ]
        assert cells == expected

    def test_keys_deterministic_across_plans(self):
        make = lambda: plan_grid(
            repro.tiny(), small_traces(), ("cont",), ("min",), seed=3
        )
        assert make().keys() == make().keys()

    def test_key_sensitivity(self):
        base = plan_grid(repro.tiny(), small_traces(), ("cont",), ("min",))
        reseeded = plan_grid(
            repro.tiny(), small_traces(), ("cont",), ("min",), seed=9
        )
        reconfigured = plan_grid(
            repro.small(), small_traces(), ("cont",), ("min",)
        )
        rescaled = plan_grid(
            repro.tiny(),
            {"A": tiny_trace("A").scaled(2.0), "B": tiny_trace("B")},
            ("cont",),
            ("min",),
        )
        with_bg = plan_grid(
            repro.tiny(),
            small_traces(),
            ("cont",),
            ("min",),
            background=BackgroundSpec("uniform", 1024, 1000.0),
        )
        for other in (reseeded, reconfigured, with_bg):
            assert base.keys() != other.keys()
        # only A's trace changed, so only A's key moves
        assert base.specs[0].key != rescaled.specs[0].key
        assert base.specs[1].key == rescaled.specs[1].key

    def test_spec_label_and_trace_lookup(self):
        plan = plan_grid(repro.tiny(), small_traces(), ("rand",), ("adp",))
        spec = plan.specs[0]
        assert spec.label == "rand-adp"
        assert plan.trace_for(spec).name == "A"


class TestSensitivityPlan:
    def test_scale_major_order_and_scaled_traces(self):
        trace = repro.amg_trace(num_ranks=8, seed=1)
        configs = (("cont", "min"), ("rand", "adp"))
        plan = plan_sensitivity(repro.tiny(), trace, (0.5, 2.0), configs)
        assert len(plan) == 4
        assert [s.tags for s in plan.specs] == [
            ("scale=0.5",), ("scale=0.5",), ("scale=2",), ("scale=2",)
        ]
        assert [s.label for s in plan.specs] == [
            "cont-min", "rand-adp", "cont-min", "rand-adp"
        ]
        half = plan.trace_for(plan.specs[0])
        double = plan.trace_for(plan.specs[2])
        assert half.total_bytes() < trace.total_bytes() < double.total_bytes()

    def test_each_scale_gets_distinct_keys(self):
        trace = repro.amg_trace(num_ranks=8, seed=1)
        plan = plan_sensitivity(
            repro.tiny(), trace, (0.5, 1.0), (("cont", "min"),)
        )
        assert len(set(plan.keys())) == 2
