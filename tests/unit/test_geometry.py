"""Unit + property tests for id/coordinate arithmetic."""

from hypothesis import given, strategies as st

from repro.config import DragonflyParams
from repro.topology import geometry as geo


def params_strategy():
    return st.builds(
        DragonflyParams,
        groups=st.integers(2, 6),
        rows=st.integers(1, 4),
        cols=st.integers(1, 5),
        nodes_per_router=st.integers(1, 4),
        chassis_per_cabinet=st.just(1),
        global_links_per_pair=st.integers(1, 4),
    )


class TestRouterCoord:
    def test_round_trip_explicit(self, medium_params):
        p = medium_params
        for r in range(p.num_routers):
            g, row, col = geo.router_coord(p, r)
            assert geo.router_id(p, g, row, col) == r

    @given(params=params_strategy(), data=st.data())
    def test_round_trip_property(self, params, data):
        r = data.draw(st.integers(0, params.num_routers - 1))
        g, row, col = geo.router_coord(params, r)
        assert 0 <= g < params.groups
        assert 0 <= row < params.rows
        assert 0 <= col < params.cols
        assert geo.router_id(params, g, row, col) == r

    def test_row_major_within_group(self, medium_params):
        p = medium_params
        # Router 1 is in the same row as router 0, next column.
        assert geo.router_coord(p, 0) == (0, 0, 0)
        assert geo.router_coord(p, 1) == (0, 0, 1)
        assert geo.router_coord(p, p.cols) == (0, 1, 0)

    def test_group_boundary(self, medium_params):
        p = medium_params
        last_of_g0 = p.routers_per_group - 1
        assert geo.router_group(p, last_of_g0) == 0
        assert geo.router_group(p, last_of_g0 + 1) == 1


class TestNodeMapping:
    @given(params=params_strategy(), data=st.data())
    def test_node_round_trip(self, params, data):
        n = data.draw(st.integers(0, params.num_nodes - 1))
        r = geo.node_router(params, n)
        slot = geo.node_slot(params, n)
        assert geo.node_id(params, r, slot) == n
        assert 0 <= slot < params.nodes_per_router

    def test_nodes_of_router_contiguous(self, medium_params):
        p = medium_params
        nodes = [geo.node_id(p, 3, s) for s in range(p.nodes_per_router)]
        assert nodes == list(range(nodes[0], nodes[0] + p.nodes_per_router))

    @given(params=params_strategy(), data=st.data())
    def test_node_group_consistent(self, params, data):
        n = data.draw(st.integers(0, params.num_nodes - 1))
        assert geo.node_group(params, n) == geo.router_group(
            params, geo.node_router(params, n)
        )


class TestHierarchy:
    def test_chassis_is_one_row(self, medium_params):
        p = medium_params
        # All routers of row 0 of group 0 share chassis 0.
        chassis = {geo.chassis_id(p, r) for r in range(p.cols)}
        assert chassis == {0}
        # Next row is the next chassis.
        assert geo.chassis_id(p, p.cols) == 1

    def test_cabinet_groups_chassis(self, medium_params):
        p = medium_params  # chassis_per_cabinet=3, rows=3 -> 1 cabinet/group
        for r in range(p.routers_per_group):
            assert geo.cabinet_id(p, r) == 0
        assert geo.cabinet_id(p, p.routers_per_group) == 1

    @given(params=params_strategy(), data=st.data())
    def test_chassis_ids_dense(self, params, data):
        n = data.draw(st.integers(0, params.num_nodes - 1))
        c = geo.node_chassis(params, n)
        assert 0 <= c < params.num_chassis

    @given(params=params_strategy(), data=st.data())
    def test_cabinet_ids_dense(self, params, data):
        n = data.draw(st.integers(0, params.num_nodes - 1))
        c = geo.node_cabinet(params, n)
        assert 0 <= c < params.num_cabinets

    @given(params=params_strategy(), data=st.data())
    def test_hierarchy_nesting(self, params, data):
        """Two nodes in the same chassis share the cabinet and group."""
        n1 = data.draw(st.integers(0, params.num_nodes - 1))
        n2 = data.draw(st.integers(0, params.num_nodes - 1))
        if geo.node_chassis(params, n1) == geo.node_chassis(params, n2):
            assert geo.node_cabinet(params, n1) == geo.node_cabinet(params, n2)
            assert geo.node_group(params, n1) == geo.node_group(params, n2)
        if geo.node_router(params, n1) == geo.node_router(params, n2):
            assert geo.node_chassis(params, n1) == geo.node_chassis(params, n2)
