"""Deterministic RNG stream tests."""

from hypothesis import given, strategies as st

from repro.engine.rng import rng_stream, spawn_seed


class TestSpawnSeed:
    def test_deterministic(self):
        assert spawn_seed(7, "a", 1) == spawn_seed(7, "a", 1)

    def test_distinct_keys_distinct_seeds(self):
        seeds = {spawn_seed(0, "component", i) for i in range(100)}
        assert len(seeds) == 100

    def test_distinct_base_seeds(self):
        assert spawn_seed(1, "x") != spawn_seed(2, "x")

    @given(st.integers(0, 2**31), st.text(max_size=20))
    def test_in_range(self, seed, key):
        s = spawn_seed(seed, key)
        assert 0 <= s < 2**63


class TestRngStream:
    def test_same_key_same_sequence(self):
        a = rng_stream(3, "placement", "rand")
        b = rng_stream(3, "placement", "rand")
        assert (a.integers(0, 1000, 50) == b.integers(0, 1000, 50)).all()

    def test_different_key_different_sequence(self):
        a = rng_stream(3, "placement", "rand")
        b = rng_stream(3, "routing", "rand")
        assert (a.integers(0, 1000, 50) != b.integers(0, 1000, 50)).any()

    def test_consuming_one_stream_does_not_affect_another(self):
        a = rng_stream(3, "a")
        _ = a.integers(0, 10, 1000)  # burn
        b_fresh = rng_stream(3, "b")
        b_ref = rng_stream(3, "b")
        assert (b_fresh.integers(0, 1000, 20) == b_ref.integers(0, 1000, 20)).all()
