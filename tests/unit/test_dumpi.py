"""Trace format round-trip and parse-error tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.mpi.dumpi import (
    MAGIC,
    TraceParseError,
    format_trace,
    load_trace,
    parse_trace,
    save_trace,
)
from repro.mpi.ops import (
    Barrier,
    Compute,
    Irecv,
    Isend,
    Recv,
    Send,
    Wait,
    WaitAll,
)
from repro.mpi.trace import JobTrace, RankTrace

ops_strategy = st.lists(
    st.one_of(
        st.builds(Send, st.integers(0, 3), st.integers(0, 10**6), st.integers(0, 99)),
        st.builds(
            Isend,
            st.integers(0, 3),
            st.integers(0, 10**6),
            st.integers(0, 99),
            st.integers(0, 9),
        ),
        st.builds(Recv, st.integers(-1, 3), st.integers(0, 10**6), st.integers(-1, 99)),
        st.builds(
            Irecv,
            st.integers(-1, 3),
            st.integers(0, 10**6),
            st.integers(-1, 99),
            st.integers(0, 9),
        ),
        st.builds(Wait, st.integers(0, 9)),
        st.just(WaitAll()),
        st.just(Barrier()),
        st.builds(Compute, st.floats(0, 1e9, allow_nan=False)),
    ),
    max_size=30,
)


class TestRoundTrip:
    @given(per_rank=st.lists(ops_strategy, min_size=1, max_size=4))
    @settings(max_examples=40)
    def test_round_trip_property(self, per_rank):
        job = JobTrace(
            "prop", [RankTrace(i, ops) for i, ops in enumerate(per_rank)]
        )
        parsed = parse_trace(format_trace(job))
        assert parsed.name == job.name
        assert parsed.num_ranks == job.num_ranks
        for a, b in zip(parsed.ranks, job.ranks):
            assert a.ops == b.ops

    def test_meta_round_trip(self):
        job = JobTrace(
            "meta", [RankTrace(0)], meta={"app": "x", "dims": [2, 2, 2]}
        )
        parsed = parse_trace(format_trace(job))
        assert parsed.meta == job.meta

    def test_file_round_trip(self, tmp_path):
        r0 = RankTrace(0)
        r0.send(1, 100)
        r1 = RankTrace(1)
        r1.recv(0, 100)
        job = JobTrace("files", [r0, r1])
        path = tmp_path / "sub" / "trace.dumpi"
        save_trace(job, path)
        loaded = load_trace(path)
        assert loaded.ranks[0].ops == job.ranks[0].ops
        assert path.read_text().startswith(MAGIC)

    def test_app_generator_round_trip(self):
        from repro.apps import amg_trace

        job = amg_trace(num_ranks=8, seed=3)
        parsed = parse_trace(format_trace(job))
        for a, b in zip(parsed.ranks, job.ranks):
            assert a.ops == b.ops
        parsed.validate()


class TestParseErrors:
    def test_missing_magic(self):
        with pytest.raises(TraceParseError, match="magic"):
            parse_trace("job x\nranks 1\n")

    def test_unknown_op(self):
        text = f"{MAGIC}\njob x\nranks 1\nrank 0\nfrobnicate 1 2\nendrank\n"
        with pytest.raises(TraceParseError, match="frobnicate"):
            parse_trace(text)

    def test_op_outside_rank_section(self):
        text = f"{MAGIC}\njob x\nranks 1\nsend 0 1 0\n"
        with pytest.raises(TraceParseError, match="outside"):
            parse_trace(text)

    def test_unterminated_rank(self):
        text = f"{MAGIC}\njob x\nranks 1\nrank 0\nsend 0 1 0\n"
        with pytest.raises(TraceParseError, match="unterminated"):
            parse_trace(text)

    def test_rank_count_mismatch(self):
        text = f"{MAGIC}\njob x\nranks 2\nrank 0\nendrank\n"
        with pytest.raises(TraceParseError, match="declares"):
            parse_trace(text)

    def test_out_of_order_ranks(self):
        text = f"{MAGIC}\njob x\nranks 2\nrank 1\nendrank\nrank 0\nendrank\n"
        with pytest.raises(TraceParseError, match="expected rank"):
            parse_trace(text)

    def test_malformed_fields(self):
        text = f"{MAGIC}\njob x\nranks 1\nrank 0\nsend abc\nendrank\n"
        with pytest.raises(TraceParseError, match="malformed"):
            parse_trace(text)

    def test_comments_and_blanks_ignored(self):
        text = (
            f"{MAGIC}\n\n# comment\njob x\nranks 1\nrank 0\n"
            "# inner comment\n\nbarrier\nendrank\n"
        )
        job = parse_trace(text)
        assert job.ranks[0].ops == [Barrier()]

    def test_error_carries_line_number(self):
        text = f"{MAGIC}\njob x\nranks 1\nrank 0\nbogus\nendrank\n"
        with pytest.raises(TraceParseError) as exc:
            parse_trace(text)
        assert exc.value.lineno == 5
