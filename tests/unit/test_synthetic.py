"""Background-traffic injector tests (paper Section IV-C)."""

import pytest

from repro.apps.synthetic import BACKGROUND_JOB_ID, BurstyTraffic, UniformRandomTraffic
from repro.config import tiny
from repro.core.runner import build_topology
from repro.engine.simulator import Simulator
from repro.network.fabric import Fabric
from repro.routing import MinimalRouting


def make_fabric():
    cfg = tiny()
    topo = build_topology(cfg.topology)
    sim = Simulator()
    return sim, topo, Fabric(sim, topo, cfg.network, MinimalRouting(seed=0))


class TestUniformRandom:
    def test_emits_one_message_per_node_per_interval(self):
        sim, topo, fabric = make_fabric()
        nodes = list(range(8))
        inj = UniformRandomTraffic(nodes, 1000, interval_ns=10_000.0, seed=1)
        inj.start(sim, fabric)
        sim.run(until=100_000.0)
        # ~10 intervals x 8 nodes (start offsets shave off < 1 interval).
        assert 60 <= inj.messages_sent <= 88
        assert inj.bytes_sent == inj.messages_sent * 1000

    def test_destinations_stay_within_job(self):
        sim, topo, fabric = make_fabric()
        nodes = [2, 5, 7, 11]
        seen = set()
        inj = UniformRandomTraffic(nodes, 100, interval_ns=1000.0, seed=1)
        original = inj._send

        def spy(src, dst, size):
            seen.add((src, dst))
            original(src, dst, size)

        inj._send = spy
        inj.start(sim, fabric)
        sim.run(until=50_000.0)
        for src, dst in seen:
            assert src in nodes and dst in nodes
            assert src != dst

    def test_peak_load(self):
        inj = UniformRandomTraffic(list(range(10)), 500, interval_ns=1.0)
        assert inj.peak_load_bytes() == 10 * 500

    def test_messages_tagged_background(self):
        sim, topo, fabric = make_fabric()
        captured = []
        orig_inject = fabric.inject
        fabric.inject = lambda m: (captured.append(m), orig_inject(m))
        inj = UniformRandomTraffic(list(range(4)), 100, interval_ns=1000.0, seed=1)
        inj.start(sim, fabric)
        sim.run(until=5000.0)
        assert captured
        assert all(m.job == BACKGROUND_JOB_ID for m in captured)

    def test_validation(self):
        with pytest.raises(ValueError):
            UniformRandomTraffic([0], 100, 1000.0)  # needs >= 2 nodes
        with pytest.raises(ValueError):
            UniformRandomTraffic([0, 1], 0, 1000.0)
        with pytest.raises(ValueError):
            UniformRandomTraffic([0, 1], 100, 0.0)


class TestBursty:
    def test_full_fanout_by_default(self):
        sim, topo, fabric = make_fabric()
        nodes = list(range(6))
        inj = BurstyTraffic(nodes, 200, interval_ns=1_000_000.0, seed=1)
        inj.start(sim, fabric)
        sim.run(until=999_999.0)  # stop just before the second pulse
        # One burst per node: 6 nodes x 5 peers, all at t=0 (synchronised).
        assert inj.messages_sent == 30

    def test_fanout_capped(self):
        inj = BurstyTraffic(list(range(4)), 100, 1000.0, fanout=10)
        assert inj.fanout == 3

    def test_limited_fanout(self):
        sim, topo, fabric = make_fabric()
        inj = BurstyTraffic(list(range(6)), 100, 1_000_000.0, fanout=2, seed=1)
        inj.start(sim, fabric)
        sim.run(until=999_999.0)
        assert inj.messages_sent == 12

    def test_peak_load_table2_formula(self):
        """Table II: total message load among all ranks per interval."""
        inj = BurstyTraffic(list(range(8)), 1_000_000, 1.0)
        assert inj.peak_load_bytes() == 8 * 7 * 1_000_000

    def test_start_offset(self):
        sim, topo, fabric = make_fabric()
        inj = BurstyTraffic(
            list(range(4)), 100, 50_000.0, fanout=1, seed=1, start_ns=200_000.0
        )
        inj.start(sim, fabric)
        sim.run(until=150_000.0)
        assert inj.messages_sent == 0
        sim.run(until=400_000.0)
        assert inj.messages_sent > 0
