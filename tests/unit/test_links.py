"""LinkKind/LinkTable unit tests."""

import numpy as np
import pytest

from repro.topology.links import LinkKind, LinkTable


class TestLinkKind:
    def test_is_local(self):
        assert LinkKind.LOCAL_ROW.is_local
        assert LinkKind.LOCAL_COL.is_local
        assert not LinkKind.GLOBAL.is_local
        assert not LinkKind.TERMINAL_IN.is_local

    def test_is_terminal(self):
        assert LinkKind.TERMINAL_IN.is_terminal
        assert LinkKind.TERMINAL_OUT.is_terminal
        assert not LinkKind.LOCAL_ROW.is_terminal


class TestLinkTable:
    def build(self):
        t = LinkTable()
        assert t.add(LinkKind.TERMINAL_IN, 0, 10) == 0
        assert t.add(LinkKind.LOCAL_ROW, 10, 11) == 1
        assert t.add(LinkKind.GLOBAL, 10, 20) == 2
        return t

    def test_len_and_endpoints_before_freeze(self):
        t = self.build()
        assert len(t) == 3
        assert t.endpoints(2) == (10, 20)
        assert t.kind_of(1) == LinkKind.LOCAL_ROW

    def test_freeze_makes_arrays_immutable(self):
        t = self.build()
        t.freeze()
        assert isinstance(t.kind, np.ndarray)
        with pytest.raises(ValueError):
            t.kind[0] = 3
        with pytest.raises(RuntimeError):
            t.add(LinkKind.GLOBAL, 1, 2)

    def test_freeze_idempotent(self):
        t = self.build()
        t.freeze()
        kind = t.kind
        t.freeze()
        assert t.kind is kind

    def test_kind_queries_require_freeze(self):
        t = self.build()
        with pytest.raises(RuntimeError):
            t.local_ids()
        t.freeze()
        assert list(t.local_ids()) == [1]
        assert list(t.global_ids()) == [2]
        assert list(t.ids_of_kind(LinkKind.TERMINAL_IN)) == [0]
