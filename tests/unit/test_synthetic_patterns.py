"""Synthetic pattern trace generators."""

import pytest

import repro
from repro.apps.synthetic_patterns import (
    alltoall_trace,
    stencil3d_trace,
    transpose_trace,
    uniform_traffic_trace,
)


class TestUniformTraffic:
    def test_balanced(self):
        uniform_traffic_trace(num_ranks=16, seed=1).validate()

    def test_spreads_partners(self):
        job = uniform_traffic_trace(num_ranks=16, rounds=10, seed=1)
        mat = job.communication_matrix()
        partners = (mat > 0).sum(axis=1)
        assert partners.mean() > 4  # matchings accumulate distinct peers

    def test_replayable(self):
        job = uniform_traffic_trace(num_ranks=12, rounds=3, seed=1).scaled(0.05)
        r = repro.run_single(repro.tiny(), job, "rand", "min", seed=1)
        assert r.job.bytes_recv.sum() == job.total_bytes()

    def test_validation(self):
        with pytest.raises(ValueError):
            uniform_traffic_trace(num_ranks=1)
        with pytest.raises(ValueError):
            uniform_traffic_trace(num_ranks=4, rounds=0)


class TestStencil3d:
    def test_balanced(self):
        stencil3d_trace(num_ranks=27, seed=1).validate()

    def test_six_neighbors_periodic(self):
        job = stencil3d_trace(num_ranks=27, periodic=True, seed=1)
        partners = (job.communication_matrix() > 0).sum(axis=1)
        assert (partners == 6).all()

    def test_boundary_nonperiodic(self):
        job = stencil3d_trace(num_ranks=27, periodic=False, seed=1)
        partners = (job.communication_matrix() > 0).sum(axis=1)
        assert partners.min() == 3
        assert partners.max() == 6

    def test_locality_prefers_contiguous(self):
        """Pure stencil is the canonical localized workload: contiguous
        placement reduces hops substantially."""
        cfg = repro.tiny()
        job = stencil3d_trace(num_ranks=24, steps=2, seed=1).scaled(0.02)
        cont = repro.run_single(cfg, job, "cont", "min", seed=1)
        rand = repro.run_single(cfg, job, "rand", "min", seed=1)
        assert cont.metrics.mean_hops < rand.metrics.mean_hops


class TestTranspose:
    def test_balanced(self):
        transpose_trace(num_ranks=16, seed=1).validate()

    def test_single_partner(self):
        job = transpose_trace(num_ranks=16, seed=1)
        partners = (job.communication_matrix() > 0).sum(axis=1)
        assert (partners == 1).all()

    def test_requires_even(self):
        with pytest.raises(ValueError):
            transpose_trace(num_ranks=7)

    def test_adversarial_for_contiguous_minimal(self):
        """All transpose traffic crosses the machine: contiguous
        placement funnels it through few inter-group links, so balanced
        placement or adaptive routing must not be worse than cont-min."""
        cfg = repro.tiny()
        job = transpose_trace(num_ranks=16, rounds=2, seed=1).scaled(0.1)
        cont_min = repro.run_single(cfg, job, "cont", "min", seed=1)
        rand_adp = repro.run_single(cfg, job, "rand", "adp", seed=1)
        assert (
            rand_adp.metrics.max_comm_time_ns
            <= cont_min.metrics.max_comm_time_ns * 1.3
        )


class TestAlltoall:
    def test_balanced(self):
        alltoall_trace(num_ranks=8, seed=1).validate()

    def test_dense_matrix(self):
        job = alltoall_trace(num_ranks=8, seed=1)
        mat = job.communication_matrix()
        assert ((mat + mat.T) > 0).sum() == 8 * 7

    def test_replayable(self):
        job = alltoall_trace(num_ranks=10, message_bytes=2048, seed=1)
        r = repro.run_single(repro.tiny(), job, "chas", "adp", seed=1)
        assert r.job.bytes_recv.sum() == job.total_bytes()
