"""Funnel mechanics: tier escalation, caching, and result structure."""

import numpy as np
import pytest

import repro
from repro.advisor.features import FEATURE_NAMES, FeatureExtractor
from repro.advisor.funnel import FUNNEL_SCHEMA, suggest_placement
from repro.advisor.model import RidgeSurrogate
from repro.advisor.store import build_training_set
from repro.exec.cache import ResultCache

from tests.advisor_helpers import advisor_trace
from tests.exec_helpers import make_stub_result, tiny_trace


@pytest.fixture(scope="module")
def config():
    return repro.tiny()


@pytest.fixture(scope="module")
def trace():
    return advisor_trace()


@pytest.fixture(scope="module")
def model():
    """A tiny synthetic surrogate — funnel mechanics don't need a good
    model, only a deterministic one."""
    rng = np.random.default_rng(11)
    x = rng.normal(size=(40, len(FEATURE_NAMES)))
    y = x @ rng.normal(size=len(FEATURE_NAMES)) * 0.01 + 14.0
    return RidgeSurrogate.fit(x, y)


class TestFunnel:
    def test_tier_escalation_ordering(self, config, trace, model, tmp_path):
        res = suggest_placement(
            config,
            trace,
            "min",
            model,
            per_policy=2,
            screen_top=3,
            validate_top=1,
            seed=5,
            cache=ResultCache(tmp_path),
        )
        names = [t.name for t in res.tiers]
        assert names == ["surrogate", "flow-screen", "packet-val"]
        assert res.ranked >= res.screened >= res.validated >= 1
        assert res.screened == 3
        assert res.validated == 1
        counts = [t.candidates for t in res.tiers]
        assert counts[0] >= counts[1] >= counts[2]

    def test_chosen_came_from_the_validated_set(
        self, config, trace, model, tmp_path
    ):
        res = suggest_placement(
            config,
            trace,
            "min",
            model,
            per_policy=2,
            screen_top=3,
            validate_top=2,
            seed=5,
            cache=ResultCache(tmp_path),
        )
        assert res.chosen.packet_ns is not None
        assert res.chosen.flow_ns is not None
        validated = [c for c in res.ranking if c.packet_ns is not None]
        assert res.chosen in validated
        assert res.chosen.packet_ns == min(c.packet_ns for c in validated)

    def test_validate_top_zero_recommends_flow_winner(
        self, config, trace, model, tmp_path
    ):
        res = suggest_placement(
            config,
            trace,
            "min",
            model,
            per_policy=1,
            screen_top=3,
            validate_top=0,
            seed=5,
            cache=ResultCache(tmp_path),
        )
        assert [t.name for t in res.tiers] == ["surrogate", "flow-screen"]
        assert res.validated == 0
        assert res.chosen.packet_ns is None
        screened = [c for c in res.ranking if c.flow_ns is not None]
        assert res.chosen.flow_ns == min(c.flow_ns for c in screened)

    def test_warm_cache_rerun_simulates_nothing(
        self, config, trace, model, tmp_path
    ):
        cache = ResultCache(tmp_path)
        kwargs = dict(
            per_policy=2, screen_top=3, validate_top=1, seed=5, cache=cache
        )
        first = suggest_placement(config, trace, "min", model, **kwargs)
        second = suggest_placement(config, trace, "min", model, **kwargs)
        for tier in second.tiers[1:]:
            assert tier.simulated == 0
            assert tier.cached == tier.candidates
        assert second.chosen.nodes == first.chosen.nodes
        assert second.chosen.flow_ns == first.chosen.flow_ns
        assert second.chosen.packet_ns == first.chosen.packet_ns

    def test_exhaustive_reports_agreement_fields(
        self, config, trace, model, tmp_path
    ):
        res = suggest_placement(
            config,
            trace,
            "min",
            model,
            per_policy=1,
            screen_top=5,
            validate_top=0,
            seed=5,
            cache=ResultCache(tmp_path),
            exhaustive=True,
        )
        ex = res.exhaustive
        assert ex is not None
        assert set(ex) >= {
            "best_placement",
            "best_draw",
            "best_nodes",
            "best_flow_ns",
            "chosen_flow_ns",
            "agree_placement",
            "agree_nodes",
        }
        # screen_top covers every candidate, so the flow winner IS the
        # exhaustive optimum by construction.
        assert ex["agree_nodes"] is True
        assert ex["agree_placement"] is True
        assert [t.name for t in res.tiers][-1] == "flow-exhaust"

    def test_payload_round_trip(self, config, trace, model, tmp_path):
        res = suggest_placement(
            config,
            trace,
            "min",
            model,
            per_policy=1,
            screen_top=2,
            validate_top=0,
            seed=5,
            cache=ResultCache(tmp_path / "c"),
        )
        out = tmp_path / "funnel.json"
        res.save_json(out)
        import json

        payload = json.loads(out.read_text())
        assert payload["schema"] == FUNNEL_SCHEMA
        assert payload["chosen"]["placement"] == res.chosen.placement
        assert payload["counts"]["ranked"] == res.ranked
        assert res.format_table()  # renders without raising

    def test_parameter_validation(self, config, trace, model):
        with pytest.raises(ValueError, match="screen_top"):
            suggest_placement(
                config, trace, "min", model, screen_top=0
            )
        with pytest.raises(ValueError, match="validate_top"):
            suggest_placement(
                config, trace, "min", model, validate_top=-1
            )


class TestTrainingSet:
    def test_skips_unusable_results(self, config):
        trace = tiny_trace("A")
        good = make_stub_result(
            type(
                "S",
                (),
                {
                    "app": "A",
                    "placement": "cont",
                    "routing": "min",
                    "seed": 0,
                },
            )()
        )
        good.metrics.comm_time_ns[:] = 1000.0
        epoch = make_stub_result(
            type(
                "S",
                (),
                {
                    "app": "A",
                    "placement": "cont",
                    "routing": "min",
                    "seed": 1,
                },
            )()
        )
        epoch.metrics.comm_time_ns[:] = 1000.0
        epoch.extra["epoch_jobs"] = []
        unknown = make_stub_result(
            type(
                "S",
                (),
                {
                    "app": "NOPE",
                    "placement": "cont",
                    "routing": "min",
                    "seed": 2,
                },
            )()
        )
        ts = build_training_set(
            [good, epoch, unknown, "not-a-result"],
            config,
            {"A": trace},
        )
        assert ts.n_samples == 1
        assert ts.per_app == {"A": 1}
        assert ts.skipped == {
            "epoch_merged": 1,
            "unknown_app": 1,
            "not_a_run_result": 1,
        }

    def test_feature_vector_matches_direct_extraction(self, config):
        trace = tiny_trace("A")
        spec = type(
            "S",
            (),
            {"app": "A", "placement": "cont", "routing": "min", "seed": 0},
        )()
        result = make_stub_result(spec)
        result.metrics.comm_time_ns[:] = 5000.0
        ts = build_training_set([result], config, {"A": trace})
        fx = FeatureExtractor(config, trace, "min")
        assert np.array_equal(ts.features[0], fx.vector(result.nodes))
        assert ts.targets[0] == pytest.approx(np.log1p(5000.0))
