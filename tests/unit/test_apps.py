"""Application-generator tests: published characteristics (Fig 2, §III-A)."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.apps import amg_trace, crystal_router_trace, fill_boundary_trace
from repro.apps.patterns import (
    coord_3d,
    grid_dims_3d,
    neighbors_3d,
    pair_jitter,
    rank_3d,
)


class TestPatterns:
    @given(st.integers(1, 2000))
    def test_grid_dims_product(self, n):
        px, py, pz = grid_dims_3d(n)
        assert px * py * pz == n
        assert px >= py >= pz >= 1

    def test_perfect_cube(self):
        assert grid_dims_3d(1728) == (12, 12, 12)
        assert grid_dims_3d(8) == (2, 2, 2)

    def test_near_cubic_for_1000(self):
        assert grid_dims_3d(1000) == (10, 10, 10)

    @given(st.integers(1, 500), st.data())
    def test_coord_round_trip(self, n, data):
        dims = grid_dims_3d(n)
        r = data.draw(st.integers(0, n - 1))
        assert rank_3d(coord_3d(r, dims), dims) == r

    def test_neighbors_periodic_symmetric(self):
        dims = grid_dims_3d(64)
        for r in range(64):
            for peer in neighbors_3d(r, dims, periodic=True):
                assert r in neighbors_3d(peer, dims, periodic=True)

    def test_neighbors_nonperiodic_boundary(self):
        dims = (4, 4, 4)
        corner = 0
        interior = rank_3d((1, 1, 1), dims)
        assert len(neighbors_3d(corner, dims, periodic=False)) == 3
        assert len(neighbors_3d(interior, dims, periodic=False)) == 6

    def test_neighbors_stride(self):
        dims = (4, 4, 4)
        peers = neighbors_3d(0, dims, periodic=False, stride=2)
        coords = [coord_3d(p, dims) for p in peers]
        assert sorted(coords) == [(0, 0, 2), (0, 2, 0), (2, 0, 0)]

    @given(st.integers(0, 100), st.integers(0, 100))
    def test_pair_jitter_bounds_and_symmetry(self, a, b):
        j = pair_jitter(0, "k", min(a, b), max(a, b))
        assert 0.9 <= j <= 1.1
        assert j == pair_jitter(0, "k", min(a, b), max(a, b))


class TestCrystalRouter:
    def test_trace_is_balanced(self):
        crystal_router_trace(num_ranks=32, seed=1).validate()

    def test_load_per_rank_near_target(self):
        job = crystal_router_trace(num_ranks=64, iterations=2, seed=1)
        per_iter = job.total_bytes() / job.num_ranks / 2
        assert per_iter == pytest.approx(190_000, rel=0.25)

    def test_many_to_many_with_neighborhood_concentration(self):
        job = crystal_router_trace(num_ranks=64, seed=1)
        mat = job.communication_matrix()
        partners = (mat > 0).sum(axis=1)
        # Butterfly stages: ~log2(n) distinct partners + 4 ring neighbours.
        assert partners.mean() >= math.log2(64)
        # Neighbourhood share: near-diagonal traffic is a substantial part.
        near = sum(
            mat[i, j]
            for i in range(64)
            for j in range(64)
            if 0 < min((i - j) % 64, (j - i) % 64) <= 2
        )
        assert near / mat.sum() > 0.3

    def test_butterfly_partners_present(self):
        job = crystal_router_trace(num_ranks=16, seed=1)
        mat = job.communication_matrix()
        for s in range(4):
            assert mat[0, 1 << s] > 0

    def test_steady_phase_profile(self):
        """CR: 'relatively constant message load' across iterations."""
        job = crystal_router_trace(num_ranks=32, iterations=3, seed=1)
        profile = job.meta["phase_profile"]
        per_iter = {}
        for label, load in profile:
            it = label.split("/")[0]
            per_iter[it] = per_iter.get(it, 0.0) + load
        loads = list(per_iter.values())
        assert max(loads) / min(loads) < 1.05

    def test_rejects_tiny_jobs(self):
        with pytest.raises(ValueError):
            crystal_router_trace(num_ranks=1)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            crystal_router_trace(num_ranks=8, neighbor_share=1.5)
        with pytest.raises(ValueError):
            crystal_router_trace(num_ranks=8, neighbor_radius=0)


class TestFillBoundary:
    def test_trace_is_balanced(self):
        fill_boundary_trace(num_ranks=27, seed=1).validate()

    def test_message_sizes_span_paper_range(self):
        """FB halo messages fluctuate between ~100 KB and ~2560 KB."""
        job = fill_boundary_trace(num_ranks=64, seed=1)
        halo_sizes = [
            op.size
            for rt in job.ranks
            for op in rt.sends()
            if op.size > 50_000  # ignore the small many-to-many phase
        ]
        assert min(halo_sizes) < 150_000
        assert max(halo_sizes) > 2_000_000

    def test_six_neighbors_dominate(self):
        job = fill_boundary_trace(num_ranks=64, far_rounds=0, seed=1)
        mat = job.communication_matrix()
        partners = (mat > 0).sum(axis=1)
        assert (partners <= 6).all()
        assert partners.mean() == pytest.approx(6.0, abs=0.5)

    def test_far_phase_adds_many_to_many(self):
        with_far = fill_boundary_trace(num_ranks=64, far_rounds=2, seed=1)
        without = fill_boundary_trace(num_ranks=64, far_rounds=0, seed=1)
        assert (with_far.communication_matrix() > 0).sum() > (
            without.communication_matrix() > 0
        ).sum()

    def test_fluctuating_profile(self):
        """FB: load 'fluctuates strongly' over steps."""
        job = fill_boundary_trace(num_ranks=27, steps=6, seed=1)
        halo_loads = [
            load for label, load in job.meta["phase_profile"] if "halo" in label
        ]
        assert max(halo_loads) / min(halo_loads) > 5

    def test_far_rounds_bounded(self):
        with pytest.raises(ValueError):
            fill_boundary_trace(num_ranks=8, far_rounds=7)


class TestAMG:
    def test_trace_is_balanced(self):
        amg_trace(num_ranks=64, seed=1).validate()

    def test_at_most_six_neighbors(self):
        job = amg_trace(num_ranks=64, seed=1)
        mat = job.communication_matrix()
        # Level-0 neighbours are the 3D stencil; coarser levels add
        # strided peers, but the *regional* character holds: partner
        # count stays far below many-to-many.
        partners = (mat > 0).sum(axis=1)
        assert partners.max() <= 18  # 6 per level, 3 levels possible
        assert partners.mean() < 12

    def test_boundary_ranks_have_fewer_neighbors(self):
        job = amg_trace(num_ranks=64, cycles=1, levels=1, seed=1)
        mat = job.communication_matrix()
        partners = (mat > 0).sum(axis=1)
        assert partners.min() == 3  # corners of the 4x4x4 grid
        assert partners.max() == 6  # interior

    def test_message_sizes_decrease_with_level(self):
        job = amg_trace(num_ranks=64, cycles=1, seed=1)
        profile = dict(job.meta["phase_profile"])
        l0 = profile["cycle0/level0"]
        l1 = profile["cycle0/level1"]
        assert l1 < l0

    def test_surge_load_near_peak(self):
        """One V-cycle moves ~75 KB per rank (paper Fig 2f surge peak)."""
        job = amg_trace(num_ranks=64, cycles=1, seed=1)
        per_rank = job.total_bytes() / job.num_ranks
        assert per_rank == pytest.approx(75_000, rel=0.4)

    def test_lightest_of_the_three_apps(self):
        """AMG's load is 'relatively small compared with the other two'."""
        n = 64
        amg = amg_trace(num_ranks=n, seed=1).avg_message_load_per_rank()
        cr = crystal_router_trace(num_ranks=n, seed=1).avg_message_load_per_rank()
        fb = fill_boundary_trace(num_ranks=n, seed=1).avg_message_load_per_rank()
        assert amg < cr < fb

    def test_three_surges(self):
        job = amg_trace(num_ranks=27, cycles=3, seed=1)
        cycles = {label.split("/")[0] for label, _ in job.meta["phase_profile"]}
        assert cycles == {"cycle0", "cycle1", "cycle2"}

    def test_compute_gaps_between_cycles(self):
        from repro.mpi.ops import Compute

        job = amg_trace(num_ranks=8, cycles=3, seed=1)
        computes = [op for op in job.ranks[0].ops if isinstance(op, Compute)]
        assert len(computes) == 2  # between the three surges


class TestScaledGenerators:
    @pytest.mark.parametrize(
        "builder", [crystal_router_trace, fill_boundary_trace, amg_trace]
    )
    def test_scaling_keeps_balance(self, builder):
        job = builder(num_ranks=27, seed=2).scaled(0.05)
        job.validate()
        assert job.total_bytes() > 0
