"""Property-based end-to-end replay: random balanced workloads complete.

Hypothesis generates arbitrary exchange graphs; each is converted into a
deadlock-free trace (all irecvs posted, then all isends, then waitall
per rank), replayed on the tiny machine under both routings, and checked
for byte conservation and completion.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.config import tiny
from repro.core.runner import build_topology
from repro.engine.simulator import Simulator
from repro.mpi.replay import ReplayEngine
from repro.mpi.trace import JobTrace, RankTrace
from repro.network.fabric import Fabric
from repro.routing import make_routing

NUM_RANKS = 6

edges = st.lists(
    st.tuples(
        st.integers(0, NUM_RANKS - 1),  # src
        st.integers(0, NUM_RANKS - 1),  # dst
        st.integers(0, 50_000),  # size
        st.integers(0, 3),  # tag
    ),
    min_size=1,
    max_size=25,
)


def trace_from_edges(edge_list) -> JobTrace:
    """All irecvs, then all isends, then waitall — cannot deadlock."""
    ranks = [RankTrace(i) for i in range(NUM_RANKS)]
    for i, (src, dst, size, tag) in enumerate(edge_list):
        if src == dst:
            continue
        # Encode the edge index into the tag space so duplicate
        # (src, tag) pairs stay FIFO-consistent in both op lists.
        ranks[dst].irecv(src, size, tag, req=1000 + i)
        ranks[src].isend(dst, size, tag, req=2000 + i)
    for rt in ranks:
        rt.waitall()
    return JobTrace("prop", ranks)


@given(edge_list=edges, routing=st.sampled_from(["min", "adp"]))
@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_random_workloads_complete_and_conserve(edge_list, routing):
    trace = trace_from_edges(edge_list)
    trace.validate()
    cfg = tiny()
    topo = build_topology(cfg.topology)
    sim = Simulator()
    fabric = Fabric(sim, topo, cfg.network, make_routing(routing, seed=3))
    engine = ReplayEngine(sim, fabric)
    engine.add_job(0, trace, list(range(NUM_RANKS)))
    engine.run(target_job=0, max_events=2_000_000)

    assert fabric.bytes_injected == fabric.bytes_delivered
    result = engine.job_result(0)
    assert result.bytes_sent.sum() == trace.total_bytes()
    assert result.bytes_recv.sum() == trace.total_bytes()
    assert (result.finish_time_ns >= 0).all()
    # No buffer leaks.
    assert all(v == 0 for v in fabric._buf_used)
    assert all(q == 0 for q in fabric.queued_bytes)


@given(edge_list=edges)
@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_rendezvous_equivalence(edge_list):
    """Eager and rendezvous deliver identical byte totals."""
    cfg = tiny()
    topo = build_topology(cfg.topology)
    results = {}
    for threshold in (None, 1024):
        trace = trace_from_edges(edge_list)
        sim = Simulator()
        fabric = Fabric(sim, topo, cfg.network, make_routing("min", seed=3))
        engine = ReplayEngine(sim, fabric, eager_threshold=threshold)
        engine.add_job(0, trace, list(range(NUM_RANKS)))
        engine.run(target_job=0, max_events=2_000_000)
        results[threshold] = engine.job_result(0)
    assert (
        results[None].bytes_recv.tolist() == results[1024].bytes_recv.tolist()
    )
