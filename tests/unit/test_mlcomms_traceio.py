"""param-style comms-trace importer: schema, lowering, typed errors."""

import json
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro.mlcomms.traceio import (
    DTYPE_WIDTHS,
    TraceImportError,
    load_comms_trace,
    parse_comms_trace,
)

FIXTURE = Path(__file__).parent.parent / "data" / "comms_trace_dp8.json"


def records(*recs):
    return list(recs)


class TestDocumentForms:
    def test_bare_list_needs_explicit_ranks(self):
        recs = records({"comms": "all_reduce", "in_msg_size": 64})
        job = parse_comms_trace(recs, num_ranks=4)
        assert job.num_ranks == 4
        with pytest.raises(TraceImportError, match="num_ranks missing"):
            parse_comms_trace(recs)

    def test_object_form_headers(self):
        doc = {
            "name": "myjob",
            "num_ranks": 4,
            "trace": records({"comms": "all_reduce", "in_msg_size": 64}),
        }
        job = parse_comms_trace(doc)
        assert job.name == "myjob"
        assert job.num_ranks == 4

    def test_world_size_alias(self):
        doc = {
            "world_size": 4,
            "trace": records({"comms": "barrier", "in_msg_size": 1}),
        }
        assert parse_comms_trace(doc).num_ranks == 4

    def test_caller_ranks_override_header(self):
        doc = {
            "num_ranks": 4,
            "trace": records({"comms": "all_reduce", "in_msg_size": 64}),
        }
        assert parse_comms_trace(doc, num_ranks=8).num_ranks == 8

    def test_meta_carries_family_and_counts(self):
        job = parse_comms_trace(
            records(
                {"comms": "all_reduce", "in_msg_size": 64},
                {"comms": "wait", "in_msg_size": 1},
                {"marker": "it0"},
            ),
            num_ranks=4,
        )
        assert job.meta["family"] == "mlcomms"
        assert job.meta["records"] == 3
        assert job.meta["collectives"] == 1


class TestLowering:
    def test_validates_and_balances(self):
        job = parse_comms_trace(
            records(
                {"comms": "all_reduce", "in_msg_size": 1024},
                {"comms": "all_to_all", "in_msg_size": 4096},
                {"comms": "all_gather", "in_msg_size": 256},
                {"comms": "reduce_scatter", "in_msg_size": 512},
                {"comms": "broadcast", "in_msg_size": 128, "root": 2},
            ),
            num_ranks=4,
        )
        job.validate()
        assert job.total_bytes() > 0

    def test_dtype_scales_sizes(self):
        base = records({"comms": "all_gather", "in_msg_size": 100})
        plain = parse_comms_trace(base, num_ranks=4)
        for dtype, width in (("float32", 4), ("float16", 2), ("int64", 8)):
            typed = parse_comms_trace(
                records(
                    {"comms": "all_gather", "in_msg_size": 100, "dtype": dtype}
                ),
                num_ranks=4,
            )
            assert typed.total_bytes() == width * plain.total_bytes()

    def test_allreduce_algo_selects_expansion(self):
        ring = parse_comms_trace(
            records({"comms": "all_reduce", "in_msg_size": 1024}), num_ranks=8
        )
        rd = parse_comms_trace(
            records(
                {"comms": "all_reduce", "in_msg_size": 1024, "algo": "rd"}
            ),
            num_ranks=8,
        )
        # Ring moves 2(N-1)/N of the buffer per rank; rd log2(N) buffers.
        assert ring.ranks[0].bytes_sent() == 2 * 7 * 128
        assert rd.ranks[0].bytes_sent() == 3 * 1024

    def test_markers_delimit_iterations(self):
        job = parse_comms_trace(
            records(
                {"comms": "all_reduce", "in_msg_size": 64},
                {"marker": "it0"},
                {"comms": "all_reduce", "in_msg_size": 64},
                {"marker": "it1"},
            ),
            num_ranks=4,
        )
        assert job.meta["iterations"] == 2
        labels = [label for label, _ in job.meta["phase_profile"]]
        assert labels == ["iter0", "iter1"]

    def test_trailing_unmarked_span_counts(self):
        job = parse_comms_trace(
            records({"comms": "all_reduce", "in_msg_size": 64}), num_ranks=4
        )
        assert job.meta["iterations"] == 1

    def test_compute_record_lands_on_every_rank(self):
        from repro.mpi.ops import Compute

        job = parse_comms_trace(
            records({"compute_ns": 1500.5}), num_ranks=4
        )
        for rt in job.ranks:
            assert any(
                isinstance(op, Compute) and op.duration_ns == 1500.5
                for op in rt.ops
            )

    def test_adjacent_records_use_disjoint_tags(self):
        job = parse_comms_trace(
            records(
                {"comms": "all_gather", "in_msg_size": 64},
                {"comms": "all_gather", "in_msg_size": 64},
            ),
            num_ranks=4,
        )
        tags = [op.tag for op in job.ranks[0].sends()]
        assert len(tags) == len(set(tags))


class TestTypedErrors:
    @pytest.mark.parametrize(
        "bad, index, match",
        [
            ({"comms": "mystery", "in_msg_size": 4}, 0, "unknown collective"),
            ({"comms": "all_reduce"}, 0, "missing required field"),
            ({"comms": "all_reduce", "in_msg_size": 0}, 0, "must be >= 1"),
            ({"comms": "all_reduce", "in_msg_size": -5}, 0, "must be >= 1"),
            ({"comms": "all_reduce", "in_msg_size": "big"}, 0, "integer"),
            ({"comms": "all_reduce", "in_msg_size": True}, 0, "integer"),
            (
                {"comms": "all_reduce", "in_msg_size": 4, "dtype": "weird"},
                0,
                "unknown dtype",
            ),
            (
                {"comms": "all_reduce", "in_msg_size": 4, "algo": "tree"},
                0,
                "unknown all_reduce algo",
            ),
            (
                {"comms": "broadcast", "in_msg_size": 4, "root": 9},
                0,
                "out of range",
            ),
            ({"in_msg_size": 4}, 0, "neither"),
            ({"comms": 7, "in_msg_size": 4}, 0, "must be a string"),
            ({"marker": 3}, 0, "string label"),
            ({"compute_ns": "fast"}, 0, "number"),
            ({"compute_ns": -1}, 0, ">= 0"),
        ],
    )
    def test_malformed_record_raises_with_index(self, bad, index, match):
        with pytest.raises(TraceImportError, match=match) as exc_info:
            parse_comms_trace([bad], num_ranks=4)
        assert exc_info.value.index == index

    def test_index_points_at_offending_record(self):
        recs = records(
            {"comms": "all_reduce", "in_msg_size": 4},
            {"comms": "all_reduce", "in_msg_size": 4},
            {"comms": "nope", "in_msg_size": 4},
        )
        with pytest.raises(TraceImportError) as exc_info:
            parse_comms_trace(recs, num_ranks=4)
        assert exc_info.value.index == 2
        assert "record 2" in str(exc_info.value)

    def test_non_object_record(self):
        with pytest.raises(TraceImportError, match="must be an object"):
            parse_comms_trace(["oops"], num_ranks=4)

    def test_document_level_errors_have_no_index(self):
        for doc in (42, "nope", {"num_ranks": 4}, {"trace": "x"}):
            with pytest.raises(TraceImportError) as exc_info:
                parse_comms_trace(doc, num_ranks=4)
            assert exc_info.value.index is None

    def test_bad_rank_counts(self):
        recs = records({"comms": "barrier", "in_msg_size": 1})
        for n in (1, 0, -3, 2.5, True):
            with pytest.raises(TraceImportError, match="num_ranks"):
                parse_comms_trace(recs, num_ranks=n)

    # Fuzz: random JSON-shaped garbage must always surface as the typed
    # error, never a bare KeyError/TypeError/AttributeError.
    json_scalars = st.one_of(
        st.none(),
        st.booleans(),
        st.integers(-10, 10**7),
        st.floats(allow_nan=False, allow_infinity=False),
        st.text(max_size=12),
    )
    fuzz_record = st.one_of(
        json_scalars,
        st.lists(json_scalars, max_size=3),
        st.dictionaries(
            st.sampled_from(
                [
                    "comms",
                    "in_msg_size",
                    "dtype",
                    "marker",
                    "compute_ns",
                    "root",
                    "algo",
                    "junk",
                ]
            ),
            json_scalars,
            max_size=5,
        ),
    )

    @given(recs=st.lists(fuzz_record, max_size=6))
    @settings(max_examples=120, deadline=None)
    def test_fuzzed_documents_never_leak_bare_exceptions(self, recs):
        try:
            job = parse_comms_trace(recs, num_ranks=4)
        except TraceImportError:
            pass
        else:
            job.validate()


class TestLoadFile:
    def test_fixture_loads(self):
        job = load_comms_trace(FIXTURE)
        job.validate()
        assert job.name == "dp8"
        assert job.num_ranks == 8
        assert job.meta["iterations"] == 2

    def test_truncated_file_is_typed_error(self, tmp_path):
        full = FIXTURE.read_text()
        stub = tmp_path / "trunc.json"
        stub.write_text(full[: len(full) // 2])
        with pytest.raises(TraceImportError, match="not valid JSON"):
            load_comms_trace(stub)

    def test_missing_file_is_typed_error(self, tmp_path):
        with pytest.raises(TraceImportError, match="cannot read"):
            load_comms_trace(tmp_path / "nope.json")

    def test_bare_list_file_named_after_stem(self, tmp_path):
        p = tmp_path / "mylist.json"
        p.write_text(
            json.dumps([{"comms": "all_reduce", "in_msg_size": 32}])
        )
        job = load_comms_trace(p, num_ranks=4)
        assert job.name == "mylist"

    def test_dtype_table_sane(self):
        assert DTYPE_WIDTHS["float32"] == 4
        assert DTYPE_WIDTHS["bfloat16"] == 2
