"""Topology wiring invariants (paper Section II / Figure 1)."""

import networkx as nx
import numpy as np
import pytest

from repro.config import DragonflyParams, NetworkParams
from repro.topology.dragonfly import Dragonfly
from repro.topology.links import LinkKind


@pytest.fixture(scope="module")
def topo():
    return Dragonfly(
        DragonflyParams(
            groups=4, rows=3, cols=4, nodes_per_router=2,
            chassis_per_cabinet=3, global_links_per_pair=3,
        )
    )


class TestLinkCounts:
    def test_terminal_links(self, topo):
        p = topo.params
        terminal = topo.links.ids_of_kind(LinkKind.TERMINAL_IN, LinkKind.TERMINAL_OUT)
        assert len(terminal) == 2 * p.num_nodes

    def test_local_link_count(self, topo):
        p = topo.params
        per_group = (
            p.rows * p.cols * (p.cols - 1) + p.cols * p.rows * (p.rows - 1)
        )  # directed row + column links
        assert len(topo.links.local_ids()) == p.groups * per_group

    def test_global_link_count(self, topo):
        p = topo.params
        pairs = p.groups * (p.groups - 1) // 2
        assert len(topo.links.global_ids()) == 2 * pairs * p.global_links_per_pair

    def test_row_vs_column_split(self, topo):
        p = topo.params
        rows = topo.links.ids_of_kind(LinkKind.LOCAL_ROW)
        cols = topo.links.ids_of_kind(LinkKind.LOCAL_COL)
        assert len(rows) == p.groups * p.rows * p.cols * (p.cols - 1)
        assert len(cols) == p.groups * p.cols * p.rows * (p.rows - 1)


class TestWiring:
    def test_local_links_bidirectional(self, topo):
        for (r1, r2), lid in topo._local.items():
            back = topo.local_link(r2, r1)
            assert back is not None and back != lid

    def test_local_links_stay_in_group(self, topo):
        for (r1, r2) in topo._local:
            assert topo.group_of_router(r1) == topo.group_of_router(r2)

    def test_local_links_share_row_or_column(self, topo):
        from repro.topology.geometry import router_coord

        p = topo.params
        for (r1, r2) in topo._local:
            _, row1, col1 = router_coord(p, r1)
            _, row2, col2 = router_coord(p, r2)
            assert row1 == row2 or col1 == col2

    def test_global_links_join_right_groups(self, topo):
        p = topo.params
        for g1 in range(p.groups):
            for g2 in range(p.groups):
                if g1 == g2:
                    continue
                links = topo.global_links(g1, g2)
                assert len(links) == p.global_links_per_pair
                for _, a, b in links:
                    assert topo.group_of_router(a) == g1
                    assert topo.group_of_router(b) == g2

    def test_global_links_symmetric(self, topo):
        p = topo.params
        for g1 in range(p.groups):
            for g2 in range(g1 + 1, p.groups):
                fwd = {(a, b) for _, a, b in topo.global_links(g1, g2)}
                rev = {(b, a) for _, a, b in topo.global_links(g2, g1)}
                assert fwd == rev

    def test_global_endpoints_spread(self, topo):
        """Global endpoints are balanced over routers (max-min <= 1)."""
        p = topo.params
        counts = np.zeros(p.num_routers, dtype=int)
        for g1 in range(p.groups):
            for g2 in range(p.groups):
                if g1 == g2:
                    continue
                for _, a, _ in topo.global_links(g1, g2):
                    counts[a] += 1
        for g in range(p.groups):
            block = counts[
                g * p.routers_per_group : (g + 1) * p.routers_per_group
            ]
            assert block.max() - block.min() <= 1

    def test_router_global_links_consistent(self, topo):
        p = topo.params
        total = 0
        for r in range(p.num_routers):
            for peer_group, links in topo.router_global_links(r).items():
                assert peer_group != topo.group_of_router(r)
                total += len(links)
        pairs = p.groups * (p.groups - 1) // 2
        assert total == 2 * pairs * p.global_links_per_pair

    def test_terminal_links_attach_right_router(self, topo):
        p = topo.params
        for node in range(p.num_nodes):
            t_in = topo.terminal_in(node)
            t_out = topo.terminal_out(node)
            src, dst = topo.links.endpoints(t_in)
            assert (src, dst) == (node, topo.router_of(node))
            src, dst = topo.links.endpoints(t_out)
            assert (src, dst) == (topo.router_of(node), node)


class TestGraphProperties:
    def test_router_fabric_strongly_connected(self, topo):
        g = topo.router_graph()
        assert nx.is_strongly_connected(g)

    def test_diameter_bounded_by_minimal_route_length(self, topo):
        """Any router pair is reachable within 5 hops (2+1+2)."""
        g = nx.DiGraph(topo.router_graph())
        lengths = dict(nx.all_pairs_shortest_path_length(g))
        diameter = max(max(d.values()) for d in lengths.values())
        assert diameter <= 5

    def test_intra_group_diameter_two(self, topo):
        p = topo.params
        g = nx.DiGraph()
        for (r1, r2), _ in topo._local.items():
            if r1 < p.routers_per_group and r2 < p.routers_per_group:
                g.add_edge(r1, r2)
        lengths = dict(nx.all_pairs_shortest_path_length(g))
        assert max(max(d.values()) for d in lengths.values()) <= 2


class TestLinkProfiles:
    def test_profiles_by_kind(self, topo):
        net = NetworkParams()
        bw, lat, buf = topo.link_profiles(net)
        kind = topo.links.kind
        assert np.all(bw[kind == LinkKind.GLOBAL] == net.global_bw)
        assert np.all(buf[kind == LinkKind.GLOBAL] == net.global_vc_buffer)
        assert np.all(bw[kind == LinkKind.LOCAL_ROW] == net.local_bw)
        assert np.all(buf[kind == LinkKind.TERMINAL_IN] == net.node_vc_buffer)
        assert np.all(lat[kind == LinkKind.GLOBAL] == net.global_latency_ns)

    def test_local_neighbors(self, topo):
        p = topo.params
        neighbors = list(topo.local_neighbors(0))
        assert len(neighbors) == (p.cols - 1) + (p.rows - 1)
        for n in neighbors:
            assert topo.local_link(0, n) is not None


class TestLinkTable:
    def test_frozen_rejects_add(self, topo):
        with pytest.raises(RuntimeError):
            topo.links.add(LinkKind.GLOBAL, 0, 1)

    def test_kind_of_matches_arrays(self, topo):
        for lid in (0, 1, len(topo.links) - 1):
            assert topo.links.kind_of(lid) == LinkKind(int(topo.links.kind[lid]))
