"""Metric analysis helper tests (CDFs, box stats, timelines)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.metrics.analysis import (
    BoxStats,
    box_stats,
    cdf,
    load_timeline,
    percent_improvement,
)

floats = st.lists(
    st.floats(0, 1e9, allow_nan=False, allow_infinity=False), min_size=1, max_size=200
)


class TestCdf:
    def test_simple(self):
        x, pct = cdf([3.0, 1.0, 2.0])
        assert list(x) == [1.0, 2.0, 3.0]
        assert list(pct) == [pytest.approx(100 / 3), pytest.approx(200 / 3), 100.0]

    def test_empty(self):
        x, pct = cdf([])
        assert x.size == 0 and pct.size == 0

    @given(floats)
    def test_properties(self, values):
        x, pct = cdf(values)
        assert (np.diff(x) >= 0).all()
        assert (np.diff(pct) > 0).all()
        assert pct[-1] == 100.0
        assert x.size == len(values)

    @given(floats)
    def test_percentile_consistency(self, values):
        x, pct = cdf(values)
        # At every point, pct% of values are <= x.
        for xi, pi in zip(x[:: max(1, len(x) // 10)], pct[:: max(1, len(x) // 10)]):
            below = sum(1 for v in values if v <= xi)
            assert below >= pi / 100.0 * len(values) - 1e-9


class TestBoxStats:
    def test_five_numbers(self):
        b = box_stats([1, 2, 3, 4, 5])
        assert b == BoxStats(1, 2, 3, 4, 5)

    def test_empty_is_nan(self):
        b = box_stats([])
        assert np.isnan(b.median)

    @given(floats)
    def test_ordering_property(self, values):
        b = box_stats(values)
        assert b.minimum <= b.q1 <= b.median <= b.q3 <= b.maximum

    @given(floats)
    def test_bounds_match_data(self, values):
        b = box_stats(values)
        assert b.minimum == min(values)
        assert b.maximum == max(values)

    def test_scaled(self):
        b = box_stats([1, 2, 3, 4, 5]).scaled(2.0)
        assert b == BoxStats(2, 4, 6, 8, 10)


class TestLoadTimeline:
    def test_bins_and_average(self):
        events = [(0.0, 0, 100), (10.0, 1, 300), (95.0, 0, 500)]
        centers, loads = load_timeline(events, num_ranks=2, num_bins=2, t_end=100.0)
        assert len(centers) == 2
        assert loads[0] == pytest.approx((100 + 300) / 2)
        assert loads[1] == pytest.approx(500 / 2)

    def test_empty(self):
        centers, loads = load_timeline([], num_ranks=4)
        assert centers.size == 0

    def test_total_preserved(self):
        events = [(float(i), i % 3, 10 * i) for i in range(50)]
        _, loads = load_timeline(events, num_ranks=3, num_bins=7)
        assert loads.sum() * 3 == pytest.approx(sum(10 * i for i in range(50)))

    def test_validation(self):
        with pytest.raises(ValueError):
            load_timeline([(0.0, 0, 1)], num_ranks=0)
        with pytest.raises(ValueError):
            load_timeline([(0.0, 0, 1)], num_ranks=1, num_bins=0)


class TestPercentImprovement:
    def test_positive_when_better(self):
        assert percent_improvement(100.0, 92.0) == pytest.approx(8.0)

    def test_negative_when_worse(self):
        assert percent_improvement(100.0, 110.0) == pytest.approx(-10.0)

    def test_zero_baseline_rejected(self):
        with pytest.raises(ValueError):
            percent_improvement(0.0, 1.0)


class TestRunMetrics:
    def test_extraction_restricted_to_job_routers(self):
        """Channel arrays cover exactly the local/global links of the
        routers serving the job's nodes."""
        import repro

        cfg = repro.tiny()
        trace = repro.crystal_router_trace(num_ranks=8, seed=1).scaled(0.02)
        result = repro.run_single(cfg, trace, "cont", "min", seed=1)
        topo = repro.core.runner.build_topology(cfg.topology)
        routers = {topo.router_of(n) for n in result.nodes}
        from repro.topology.links import LinkKind

        kind = topo.links.kind
        src = topo.links.src
        n_local = sum(
            1
            for lid in range(topo.num_links)
            if kind[lid] in (LinkKind.LOCAL_ROW, LinkKind.LOCAL_COL)
            and src[lid] in routers
        )
        assert len(result.metrics.local_traffic_bytes) == n_local

    def test_summary_keys(self):
        import repro

        cfg = repro.tiny()
        trace = repro.amg_trace(num_ranks=8, seed=1).scaled(0.1)
        result = repro.run_single(cfg, trace, "rand", "adp", seed=1)
        s = result.metrics.summary()
        assert set(s) == {
            "max_comm_ms",
            "median_comm_ms",
            "mean_hops",
            "local_traffic_mb",
            "global_traffic_mb",
            "local_sat_ms",
            "global_sat_ms",
        }
        assert s["max_comm_ms"] >= s["median_comm_ms"] > 0
