"""Ridge surrogate: fit quality, validation, and save/load identity."""

import json

import numpy as np
import pytest

from repro.advisor.features import FEATURE_NAMES, NUM_FEATURES
from repro.advisor.model import MODEL_SCHEMA, RidgeSurrogate


def linear_problem(n=200, seed=0, noise=0.0):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, NUM_FEATURES))
    w = rng.normal(size=NUM_FEATURES)
    y = x @ w + 3.0 + noise * rng.normal(size=n)
    return x, y


class TestFit:
    def test_recovers_linear_relationship(self):
        x, y = linear_problem()
        model = RidgeSurrogate.fit(x, y, alpha=1e-6)
        assert model.score(x, y) > 0.999
        assert model.n_samples == 200

    def test_ranking_survives_noise(self):
        x, y = linear_problem(noise=0.1)
        model = RidgeSurrogate.fit(x, y, alpha=1.0)
        pred = model.predict(x)
        # rank correlation: argsort agreement on the top decile
        top = set(np.argsort(y)[:20]) & set(np.argsort(pred)[:20])
        assert len(top) >= 10

    def test_constant_feature_is_harmless(self):
        x, y = linear_problem(n=50)
        x[:, 3] = 7.5  # zero variance column
        model = RidgeSurrogate.fit(x, y, alpha=1.0)
        assert np.isfinite(model.predict(x)).all()
        assert model.scale[3] == 1.0

    def test_single_row_prediction_matches_batch(self):
        x, y = linear_problem(n=40)
        model = RidgeSurrogate.fit(x, y)
        batch = model.predict(x)
        # BLAS matrix-matrix vs. vector-dot may differ in the last ulp,
        # so equality here is numerical, not byte-level (byte identity
        # is asserted for the same call shape in TestSaveLoad).
        assert float(batch[7]) == pytest.approx(
            float(model.predict(x[7])), rel=1e-12
        )

    @pytest.mark.parametrize(
        "bad",
        [
            dict(alpha=0.0),
            dict(alpha=-1.0),
        ],
    )
    def test_bad_alpha_rejected(self, bad):
        x, y = linear_problem(n=10)
        with pytest.raises(ValueError, match="alpha"):
            RidgeSurrogate.fit(x, y, **bad)

    def test_shape_validation(self):
        x, y = linear_problem(n=10)
        with pytest.raises(ValueError, match="feature matrix"):
            RidgeSurrogate.fit(x[:, :5], y)
        with pytest.raises(ValueError, match="targets"):
            RidgeSurrogate.fit(x, y[:5])
        with pytest.raises(ValueError, match="2 samples"):
            RidgeSurrogate.fit(x[:1], y[:1])
        model = RidgeSurrogate.fit(x, y)
        with pytest.raises(ValueError, match="features"):
            model.predict(x[:, :5])


class TestSaveLoad:
    def test_round_trip_predictions_are_byte_identical(self, tmp_path):
        x, y = linear_problem(n=60, noise=0.05)
        model = RidgeSurrogate.fit(x, y, alpha=0.5)
        path = tmp_path / "model.json"
        model.save(path)
        loaded = RidgeSurrogate.load(path)
        assert loaded == model
        a = np.asarray(model.predict(x))
        b = np.asarray(loaded.predict(x))
        assert a.tobytes() == b.tobytes()

    def test_payload_is_versioned_json(self, tmp_path):
        x, y = linear_problem(n=20)
        model = RidgeSurrogate.fit(x, y)
        path = tmp_path / "model.json"
        model.save(path)
        payload = json.loads(path.read_text())
        assert payload["schema"] == MODEL_SCHEMA
        assert payload["feature_names"] == list(FEATURE_NAMES)
        assert payload["n_samples"] == 20

    def test_wrong_schema_rejected(self, tmp_path):
        x, y = linear_problem(n=20)
        model = RidgeSurrogate.fit(x, y)
        payload = model.to_payload()
        payload["schema"] = "repro-advisor-model/v999"
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="schema"):
            RidgeSurrogate.load(path)

    def test_feature_layout_mismatch_rejected(self, tmp_path):
        x, y = linear_problem(n=20)
        model = RidgeSurrogate.fit(x, y)
        payload = model.to_payload()
        payload["feature_names"][0] = "renamed_feature"
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="feature layout"):
            RidgeSurrogate.load(path)
