"""Whitebox tests of the array flow fabric and its support layers:
the fabric factory/env knob, the fast spill path's bit-exactness, the
incremental CSR + link-aggregate invariants, the vectorized settle and
solve dispatch, and the disk-backed route-model prewarm cache.

The cross-driver physics equivalence (object vs array fabric over the
full grid, schedulers, worker pools, warm caches) lives in
``tests/integration/test_flow_batch_equivalence.py``; this module pins
the internals those promises rest on.
"""

from __future__ import annotations

import math
import random
from types import SimpleNamespace

import numpy as np
import pytest

import repro
from repro.engine.simulator import Simulator
from repro.flow import modelcache
from repro.flow.batch import BatchedFlowRunner
from repro.flow.fabric import (
    DEFAULT_FABRIC,
    FABRIC_NAMES,
    FlowFabric,
    make_flow_fabric,
)
from repro.flow.fabric_array import ArrayFlowFabric
from repro.flow.routes import (
    FlowParams,
    FlowRouteModel,
    _shared_model,
    flow_route_model,
)
from repro.network.packet import Message


@pytest.fixture(scope="module")
def cfg():
    return repro.tiny()


@pytest.fixture(scope="module")
def topo(cfg):
    return repro.Dragonfly(cfg.topology)


def _workload(topo, n_msgs, seed, max_size=96 * 1024):
    """A deterministic random burst of distinct-pair messages."""
    rng = random.Random(seed)
    nodes = range(topo.num_nodes)
    out = []
    for i in range(n_msgs):
        src, dst = rng.sample(nodes, 2)
        size = rng.randrange(512, max_size)
        at = rng.uniform(0.0, 5_000.0)
        out.append((i, src, dst, size, at))
    return out


def _run_workload(fabric, msgs):
    """Inject ``msgs``, drain the sim, and return the physics."""
    sim = fabric.sim
    out = []
    for mid, src, dst, size, at in msgs:
        msg = Message(mid, src, dst, size)
        out.append(msg)
        sim.at(at, fabric.inject, msg)
    sim.run()
    fabric.drain_saturation()
    return out


class TestFabricFactory:
    def test_names_and_default(self):
        assert FABRIC_NAMES == ("object", "array")
        assert DEFAULT_FABRIC == "array"

    def test_default_is_array(self, cfg, topo, monkeypatch):
        monkeypatch.delenv("REPRO_FLOW_FABRIC", raising=False)
        fabric = make_flow_fabric(Simulator(), topo, cfg.network, "min")
        assert isinstance(fabric, ArrayFlowFabric)

    @pytest.mark.parametrize(
        ("name", "cls"),
        [("object", FlowFabric), ("array", ArrayFlowFabric)],
    )
    def test_env_knob_selects(self, cfg, topo, monkeypatch, name, cls):
        monkeypatch.setenv("REPRO_FLOW_FABRIC", name)
        fabric = make_flow_fabric(Simulator(), topo, cfg.network, "min")
        assert type(fabric) is cls

    def test_explicit_arg_beats_env(self, cfg, topo, monkeypatch):
        monkeypatch.setenv("REPRO_FLOW_FABRIC", "array")
        fabric = make_flow_fabric(
            Simulator(), topo, cfg.network, "min", fabric="object"
        )
        assert type(fabric) is FlowFabric

    def test_unknown_name_raises(self, cfg, topo):
        with pytest.raises(ValueError, match="tensor"):
            make_flow_fabric(
                Simulator(), topo, cfg.network, "min", fabric="tensor"
            )


class TestSpillFastExactness:
    def test_spill_fast_matches_reference_bit_for_bit(self, cfg, topo):
        """The restructured spill emulation returns the *same tuple of
        entries* as the reference, idle and under random cross-flow
        load. Two separate models so the shared idle-spill memo cannot
        mask a divergence."""
        ref = FlowRouteModel(topo, cfg.network, "adp")
        fast = FlowRouteModel(topo, cfg.network, "adp")
        rng = random.Random(42)
        n_links = topo.num_links
        for _ in range(60):
            src, dst = rng.sample(range(topo.num_nodes), 2)
            size = rng.randrange(256, 512 * 1024)
            if rng.random() < 0.4:
                load = None
                load_np = None
            else:
                load = [0.0] * n_links
                for _ in range(rng.randrange(1, 12)):
                    load[rng.randrange(n_links)] = rng.uniform(0.0, 8e5)
                load_np = np.asarray(load)
            a = ref.spill(src, dst, size, load)
            b = fast.spill_fast(src, dst, size, load_np)
            assert a == b, (src, dst, size)

    def test_emulate_empty_candidate_set(self, cfg, topo):
        """No scoreable candidates (degenerate inputs) must yield an
        empty spread, not an IndexError in the quantum loop."""
        model = FlowRouteModel(topo, cfg.network, "adp")
        assert model._emulate(0, (), 4, None) == ()


def _check_invariants(fabric):
    """The incremental CSR and link aggregates match a from-scratch
    rebuild over the currently admitted units."""
    n = fabric._csr_n
    lw: dict[int, float] = {}
    lc: dict[int, int] = {}
    lu: dict[int, list[int]] = {}
    n_live = 0
    for us in sorted(
        fabric._act_units, key=lambda u: fabric._u_span[u][0]
    ):
        s, e = fabric._u_span[us]
        assert 0 <= s <= e <= n
        assert fabric._csr_live[s:e].all(), us
        assert (fabric._csr_unit[s:e] == us).all(), us
        np.testing.assert_array_equal(
            fabric._csr_cols[s:e], fabric._u_cols[us]
        )
        np.testing.assert_array_equal(
            fabric._csr_wgts[s:e], fabric._u_wgts[us]
        )
        n_live += e - s
        for lid, w in fabric._u_links[us]:
            lw[lid] = lw.get(lid, 0.0) + w
            lc[lid] = lc.get(lid, 0) + 1
            lu.setdefault(lid, []).append(us)
    assert int(fabric._csr_live[:n].sum()) == n_live
    assert fabric._csr_dead == n - n_live
    assert {lid: rec[9] for lid, rec in fabric._lrec.items()} == lc
    assert set(fabric._lrec) == set(lw)
    for lid, w in lw.items():
        rec = fabric._lrec[lid]
        assert math.isclose(rec[7], w, rel_tol=1e-9, abs_tol=1e-9)
        assert rec[4] == lid
        assert rec[8] == fabric.bw[lid]
    assert {
        lid: sorted(rec[10]) for lid, rec in fabric._lrec.items()
    } == {lid: sorted(us) for lid, us in lu.items()}
    lx: dict[int, int] = {}
    for fs in fabric._act_flows:
        for lid in fabric._f_links[fs]:
            lx[lid] = lx.get(lid, 0) + 1
    assert fabric._lx == lx


class TestCSRInvariants:
    def test_invariants_hold_through_churn(self, cfg, topo):
        """Snapshots taken mid-run — after admissions, finishes, and
        the growth/compaction cycles they trigger — always agree with
        a from-scratch rebuild of the CSR and the aggregates."""
        sim = Simulator()
        fabric = ArrayFlowFabric(sim, topo, cfg.network, "adp")
        msgs = _workload(topo, 48, seed=9, max_size=32 * 1024)
        checks = 0

        def snap():
            nonlocal checks
            _check_invariants(fabric)
            checks += 1

        for t in (500.0, 2_000.0, 6_000.0, 20_000.0, 60_000.0):
            sim.at(t, snap)
        _run_workload(fabric, msgs)
        assert checks == 5
        # Fully drained: nothing admitted, nothing live.
        _check_invariants(fabric)
        assert not fabric._act_flows and not fabric._act_units

    def test_compaction_preserves_live_rows(self, cfg, topo):
        """Forcing a compaction mid-flight keeps exactly the live rows
        in admission order and resets the dead counter."""
        sim = Simulator()
        fabric = ArrayFlowFabric(sim, topo, cfg.network, "adp")
        msgs = _workload(topo, 40, seed=13, max_size=24 * 1024)
        ran = 0

        def force_compact():
            nonlocal ran
            before = [
                (us, fabric._csr_cols[slice(*fabric._u_span[us])].copy())
                for us in fabric._act_units
            ]
            fabric._csr_compact()
            assert fabric._csr_dead == 0
            _check_invariants(fabric)
            for us, cols in before:
                np.testing.assert_array_equal(
                    fabric._csr_cols[slice(*fabric._u_span[us])], cols
                )
            ran += 1

        for t in (3_000.0, 30_000.0):
            sim.at(t, force_compact)
        _run_workload(fabric, msgs)
        assert ran == 2


class TestVectorizedDispatch:
    @pytest.mark.parametrize("routing", ["adp", "min"])
    def test_forced_vector_paths_match_scalar_paths(
        self, cfg, topo, routing
    ):
        """Pinning ``vec_min_units`` to 0 (every settle/solve takes the
        numpy path) and to infinity (never) must agree: rates and sat
        clocks to 1e-9, byte counters to their one-byte rint quantum."""
        results = {}
        for vec_min in (0, 10**9):
            sim = Simulator()
            fabric = ArrayFlowFabric(
                sim, topo, cfg.network, routing, vec_min_units=vec_min
            )
            msgs = _run_workload(fabric, _workload(topo, 36, seed=21))
            results[vec_min] = (
                fabric.bytes_tx,
                list(fabric.sat_ns),
                [m.delivered_time for m in msgs],
                [m.injected_time for m in msgs],
                fabric.nonminimal_fraction,
            )
        tx_a, sat_a, del_a, inj_a, nm_a = results[0]
        tx_b, sat_b, del_b, inj_b, nm_b = results[10**9]
        assert np.abs(np.array(tx_a) - np.array(tx_b)).max() <= 1
        np.testing.assert_allclose(sat_a, sat_b, rtol=1e-9, atol=1e-9)
        np.testing.assert_allclose(del_a, del_b, rtol=1e-9)
        np.testing.assert_allclose(inj_a, inj_b, rtol=1e-9)
        assert math.isclose(nm_a, nm_b, rel_tol=1e-9, abs_tol=1e-12)

    def test_min_routing_skips_ledger(self, cfg, topo):
        """Minimal cells never read the UGAL ledger, so the array
        fabric skips that bookkeeping wholesale: it stays zero."""
        sim = Simulator()
        fabric = ArrayFlowFabric(sim, topo, cfg.network, "min")
        _run_workload(fabric, _workload(topo, 12, seed=3))
        assert not fabric._adaptive
        assert not any(fabric._load)


def _warm_model(cfg, topo, pairs=4):
    """A freshly constructed model with a few memos derived."""
    model = FlowRouteModel(topo, cfg.network, "adp")
    rng = random.Random(1)
    for _ in range(pairs):
        src, dst = rng.sample(range(topo.num_nodes), 2)
        model.entry(src, dst)
        model.spill(src, dst, 4096, None)
    return model


class TestModelCache:
    @pytest.fixture(autouse=True)
    def _clean(self, monkeypatch, tmp_path):
        monkeypatch.setenv(modelcache.MODEL_CACHE_ENV, str(tmp_path))
        modelcache.reset_stats()
        self.dir = tmp_path
        yield
        modelcache.reset_stats()

    def test_digest_is_content_keyed(self, cfg, topo):
        a = FlowRouteModel(topo, cfg.network, "adp")
        b = FlowRouteModel(topo, cfg.network, "adp")
        assert modelcache.model_digest(a) == modelcache.model_digest(b)
        other_routing = FlowRouteModel(topo, cfg.network, "min")
        assert modelcache.model_digest(a) != modelcache.model_digest(
            other_routing
        )
        other_params = FlowRouteModel(
            topo, cfg.network, "adp", FlowParams(epoch_ns=0.0)
        )
        assert modelcache.model_digest(a) != modelcache.model_digest(
            other_params
        )

    def test_round_trip_restores_memos(self, cfg, topo):
        warm = _warm_model(cfg, topo)
        assert modelcache.save_from(warm) is True
        cold = FlowRouteModel(topo, cfg.network, "adp")
        assert not cold._cache
        assert modelcache.load_into(cold) is True
        assert set(cold._cache) >= set(warm._cache)
        assert set(cold._idle_spill) >= set(warm._idle_spill)
        for key, entry in warm._cache.items():
            assert cold._cache[key] == entry
        assert modelcache.stats() == {
            "hits": 1,
            "misses": 0,
            "saves": 1,
            "errors": 0,
        }

    def test_save_skips_existing_digest(self, cfg, topo):
        warm = _warm_model(cfg, topo)
        assert modelcache.save_from(warm) is True
        assert modelcache.save_from(warm) is False
        assert modelcache.save_from(warm, force=True) is True
        assert modelcache.stats()["saves"] == 2

    def test_missing_file_is_a_miss(self, cfg, topo):
        cold = FlowRouteModel(topo, cfg.network, "adp")
        assert modelcache.load_into(cold) is False
        assert modelcache.stats()["misses"] == 1
        assert modelcache.stats()["errors"] == 0

    def test_corrupt_file_is_a_counted_miss(self, cfg, topo):
        warm = _warm_model(cfg, topo)
        modelcache.save_from(warm)
        (path,) = self.dir.glob("model-*.pkl")
        path.write_bytes(b"not a pickle")
        cold = FlowRouteModel(topo, cfg.network, "adp")
        assert modelcache.load_into(cold) is False
        assert not cold._cache
        assert modelcache.stats()["errors"] == 1
        assert modelcache.stats()["misses"] == 1

    def test_disabled_without_env(self, cfg, topo, monkeypatch):
        monkeypatch.delenv(modelcache.MODEL_CACHE_ENV)
        warm = _warm_model(cfg, topo)
        assert modelcache.cache_dir() is None
        assert modelcache.save_from(warm) is False
        assert modelcache.load_into(warm) is False
        assert modelcache.stats() == {
            "hits": 0,
            "misses": 0,
            "saves": 0,
            "errors": 0,
        }

    def test_flow_route_model_loads_from_disk(self, cfg, topo):
        """The shared-model constructor prewarms from the disk cache
        when the knob is set: a fresh process-level lookup starts with
        the persisted memos already derived."""
        modelcache.save_from(_warm_model(cfg, topo))
        _shared_model.cache_clear()
        model = flow_route_model(topo, cfg.network, "adp")
        assert modelcache.stats()["hits"] == 1
        assert model._cache  # warmed before any entry() call
        _shared_model.cache_clear()


class TestPrewarmParams:
    def _spec(self, routing, params=None):
        return SimpleNamespace(routing=routing, flow_params=params)

    def test_prewarm_warms_each_params_combination(self, cfg, monkeypatch):
        """Regression: prewarm used to key models by routing alone, so
        a spec carrying non-default ``FlowParams`` warmed the *default*
        model and the cell then paid the full derivation cost."""
        calls = []

        def recorder(topo, net, routing, params=None):
            calls.append((routing, params))
            return ("model", routing, params)

        monkeypatch.setattr(
            "repro.flow.batch.flow_route_model", recorder
        )
        runner = BatchedFlowRunner(cfg, runner=lambda c, s, t: None)
        tuned = FlowParams(epoch_ns=0.0)
        specs = [
            self._spec("adp"),
            self._spec("adp", tuned),
            self._spec("adp"),  # duplicate: one model, not two
            self._spec("min"),
        ]
        assert runner.prewarm(specs) == 3
        assert runner.models_warmed == 3
        assert calls == [
            ("adp", None),
            ("adp", tuned),
            ("min", None),
        ]

    def test_save_models_persists_prewarmed_set(
        self, cfg, monkeypatch, tmp_path
    ):
        monkeypatch.setenv(modelcache.MODEL_CACHE_ENV, str(tmp_path))
        modelcache.reset_stats()
        runner = BatchedFlowRunner(cfg, runner=lambda c, s, t: None)
        runner.prewarm([self._spec("adp"), self._spec("min")])
        assert runner.save_models() == 2
        assert len(list(tmp_path.glob("model-*.pkl"))) == 2
        # Digests already on disk: nothing rewritten.
        assert runner.save_models() == 0
        modelcache.reset_stats()

    def test_run_batch_saves_after_solving(
        self, cfg, monkeypatch, tmp_path
    ):
        monkeypatch.setenv(modelcache.MODEL_CACHE_ENV, str(tmp_path))
        modelcache.reset_stats()
        runner = BatchedFlowRunner(
            cfg, runner=lambda c, spec, trace: ("solved", spec.routing)
        )
        payloads = runner.run_batch([(self._spec("min"), "trace")])
        assert [(s, r) for s, r, _ in payloads] == [
            ("ok", ("solved", "min"))
        ]
        assert len(list(tmp_path.glob("model-*.pkl"))) == 1
        modelcache.reset_stats()
