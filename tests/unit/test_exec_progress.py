"""Progress telemetry: event accounting and the text reporter."""

import io

import repro
from repro.exec.plan import plan_grid
from repro.exec.pool import execute_plan
from repro.exec.progress import ProgressTracker, TextReporter

from tests.exec_helpers import flaky_runner, stub_plan, stub_runner, tiny_trace


class TestTracker:
    def test_accounting_invariant(self):
        events = []
        plan = plan_grid(
            repro.tiny(), {"A": tiny_trace("A")},
            ("cont", "rand", "rotr"), ("min", "adp"),
        )
        report = execute_plan(plan, runner=stub_runner, progress=events.append)
        kinds = [e.kind for e in events]
        assert kinds[0] == "planned" and kinds[-1] == "finished"
        final = events[-1]
        assert final.done + final.failed + final.cached == final.total == len(plan)
        assert final.done == report.done

    def test_terminal_event_per_cell(self, tmp_path):
        events = []
        plan = stub_plan(tags=(f"scratch={tmp_path}", "fail_times=99"))
        execute_plan(
            plan, runner=flaky_runner, retries=1, progress=events.append
        )
        terminal = [e for e in events if e.kind in ("cell-done", "cell-failed", "cell-cached")]
        assert len(terminal) == len(plan)
        assert sum(1 for e in events if e.kind == "cell-retry") == len(plan)
        assert events[-1].failed == len(plan)

    def test_eta_appears_after_first_cell(self):
        clock_now = [0.0]
        tracker = ProgressTracker(4, clock=lambda: clock_now[0])
        assert tracker.eta_s() is None
        plan = plan_grid(repro.tiny(), {"A": tiny_trace("A")}, ("cont",), ("min",))
        tracker.cell_done(plan.specs[0], wall_s=2.0)
        # one of four cells took 2s => three remain ~6s at one worker
        assert tracker.eta_s() == 6.0


class TestTextReporter:
    def test_renders_lifecycle_lines(self):
        buf = io.StringIO()
        reporter = TextReporter(stream=buf)
        plan = plan_grid(
            repro.tiny(), {"A": tiny_trace("A")}, ("cont", "rand"), ("min",)
        )
        execute_plan(plan, runner=stub_runner, progress=reporter)
        out = buf.getvalue()
        assert "planned 2 cells" in out
        assert "[1/2] A cont-min done" in out
        assert "finished: 2 simulated, 0 cached, 0 failed" in out

    def test_reports_cached_and_failed(self, tmp_path):
        buf = io.StringIO()
        plan = stub_plan(tags=(f"scratch={tmp_path}", "fail_times=99"))
        execute_plan(plan, cache=tmp_path / "c", runner=flaky_runner,
                     retries=0, progress=TextReporter(stream=buf))
        assert "FAILED" in buf.getvalue()
