"""Interference-study unit tests (paper Section IV-C machinery)."""

import pytest

import repro
from repro.core.interference import (
    BackgroundSpec,
    background_load_table,
    interference_study,
)


class TestBackgroundSpec:
    def test_uniform_build(self):
        spec = BackgroundSpec("uniform", 1000, 5000.0)
        inj = spec.build(list(range(6)), seed=1)
        assert inj.peak_load_bytes() == 6000

    def test_bursty_build_full_fanout(self):
        spec = BackgroundSpec("bursty", 1000, 1e6)
        inj = spec.build(list(range(6)), seed=1)
        assert inj.fanout == 5
        assert spec.peak_load_bytes(6) == 6 * 5 * 1000

    def test_bursty_build_limited_fanout(self):
        spec = BackgroundSpec("bursty", 1000, 1e6, fanout=2)
        assert spec.peak_load_bytes(6) == 6 * 2 * 1000

    def test_pattern_validated(self):
        with pytest.raises(ValueError):
            BackgroundSpec("poisson", 1000, 1.0)
        with pytest.raises(ValueError):
            BackgroundSpec("uniform", 0, 1.0)
        with pytest.raises(ValueError):
            BackgroundSpec("uniform", 10, 0.0)


class TestInterferenceStudy:
    @pytest.fixture(scope="class")
    def study(self):
        cfg = repro.tiny()
        trace = repro.amg_trace(num_ranks=8, seed=1).scaled(0.3)
        spec = BackgroundSpec("uniform", message_bytes=2048, interval_ns=3000.0)
        return interference_study(
            cfg,
            trace,
            spec,
            placements=("cont", "rand"),
            routings=("min", "adp"),
            seed=1,
        )

    def test_grid_complete(self, study):
        assert len(study.runs) == 4

    def test_background_traffic_present(self, study):
        for result in study.runs.values():
            assert result.background_messages > 0

    def test_background_slows_target(self, study):
        """The same app runs slower with background than alone."""
        cfg = repro.tiny()
        trace = repro.amg_trace(num_ranks=8, seed=1).scaled(0.3)
        alone = repro.run_single(cfg, trace, "rand", "adp", seed=1)
        shared = study.get("AMG", "rand-adp")
        assert (
            shared.metrics.median_comm_time_ns
            >= alone.metrics.median_comm_time_ns
        )


class TestTable2:
    def test_background_load_table(self):
        specs = {
            "CR": {
                "uniform": BackgroundSpec("uniform", 16_000, 1000.0),
                "bursty": BackgroundSpec("bursty", 40_000_000, 6e7),
            },
        }
        rows = background_load_table(specs, {"CR": 2400})
        (row,) = rows
        app, uniform_mb, bursty_gb = row
        assert app == "CR"
        assert uniform_mb == pytest.approx(2400 * 16_000 / 1e6)
        assert bursty_gb == pytest.approx(2400 * 2399 * 40_000_000 / 1e9)
