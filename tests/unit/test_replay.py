"""Replay-engine semantics: matching, blocking, barriers, accounting."""

import pytest

from repro.config import tiny
from repro.core.runner import build_topology
from repro.engine.simulator import Simulator
from repro.mpi.ops import ANY_SOURCE, ANY_TAG
from repro.mpi.replay import ReplayEngine, ReplayStalled
from repro.mpi.trace import JobTrace, RankTrace
from repro.network.fabric import Fabric
from repro.routing import MinimalRouting


def make_engine(compute_scale=0.0, record_sends=False):
    cfg = tiny()
    topo = build_topology(cfg.topology)
    sim = Simulator()
    fabric = Fabric(sim, topo, cfg.network, MinimalRouting(seed=0))
    engine = ReplayEngine(
        sim, fabric, compute_scale=compute_scale, record_sends=record_sends
    )
    return sim, fabric, engine


def run_job(ranks, nodes=None, **kwargs):
    sim, fabric, engine = make_engine(**kwargs)
    job = JobTrace("t", ranks)
    engine.add_job(0, job, nodes or list(range(job.num_ranks)))
    engine.run(target_job=0)
    return engine.job_result(0), fabric, sim


class TestBasicExchange:
    def test_send_recv_completes(self):
        r0 = RankTrace(0)
        r0.send(1, 5000)
        r1 = RankTrace(1)
        r1.recv(0, 5000)
        result, fabric, sim = run_job([r0, r1])
        assert (result.finish_time_ns > 0).all()
        assert result.bytes_sent[0] == 5000
        assert result.bytes_recv[1] == 5000

    def test_recv_posted_before_send_arrives(self):
        r0 = RankTrace(0)
        r0.compute(1_000_000.0)  # delay the send
        r0.send(1, 100)
        r1 = RankTrace(1)
        r1.recv(0, 100)
        result, _, _ = run_job([r0, r1], compute_scale=1.0)
        # Receiver had to wait for the delayed sender.
        assert result.finish_time_ns[1] >= 1_000_000.0

    def test_unexpected_message_then_recv(self):
        r0 = RankTrace(0)
        r0.send(1, 100)
        r1 = RankTrace(1)
        r1.compute(1_000_000.0)  # message arrives before the recv posts
        r1.recv(0, 100)
        result, _, _ = run_job([r0, r1], compute_scale=1.0)
        # Recv completes instantly at post time.
        assert result.finish_time_ns[1] == pytest.approx(1_000_000.0, rel=0.01)

    def test_nonblocking_pair_with_waitall(self):
        r0 = RankTrace(0)
        r0.irecv(1, 200, tag=1, req=0)
        r0.isend(1, 200, tag=1, req=1)
        r0.waitall()
        r1 = RankTrace(1)
        r1.irecv(0, 200, tag=1, req=0)
        r1.isend(0, 200, tag=1, req=1)
        r1.waitall()
        result, fabric, _ = run_job([r0, r1])
        assert fabric.messages_delivered == 2

    def test_wait_on_specific_request(self):
        r0 = RankTrace(0)
        r0.isend(1, 100, tag=0, req=7)
        r0.wait(7)
        r1 = RankTrace(1)
        r1.irecv(0, 100, tag=0, req=3)
        r1.wait(3)
        result, _, _ = run_job([r0, r1])
        assert (result.finish_time_ns > 0).all()

    def test_wait_on_completed_request_is_noop(self):
        r0 = RankTrace(0)
        r0.send(1, 100)
        r0.wait(99)  # never issued -> treated as complete
        r1 = RankTrace(1)
        r1.recv(0, 100)
        run_job([r0, r1])


class TestMatchingSemantics:
    def test_tag_matching(self):
        """Messages match on tags, not arrival order."""
        r0 = RankTrace(0)
        r0.send(1, 111, tag=1)
        r0.send(1, 222, tag=2)
        r1 = RankTrace(1)
        r1.recv(0, 222, tag=2)
        r1.recv(0, 111, tag=1)
        result, _, _ = run_job([r0, r1])
        assert result.bytes_recv[1] == 333

    def test_any_source_wildcard(self):
        r0 = RankTrace(0)
        r0.send(2, 100, tag=9)
        r1 = RankTrace(1)
        r1.send(2, 100, tag=9)
        r2 = RankTrace(2)
        r2.recv(ANY_SOURCE, 100, tag=9)
        r2.recv(ANY_SOURCE, 100, tag=9)
        result, _, _ = run_job([r0, r1, r2])
        assert result.bytes_recv[2] == 200

    def test_any_tag_wildcard(self):
        r0 = RankTrace(0)
        r0.send(1, 100, tag=42)
        r1 = RankTrace(1)
        r1.recv(0, 100, tag=ANY_TAG)
        run_job([r0, r1])

    def test_posted_recvs_match_fifo(self):
        """Two wildcard irecvs match two same-envelope messages in post
        order (MPI ordering semantics)."""
        r0 = RankTrace(0)
        r0.send(1, 100, tag=1)
        r0.send(1, 100, tag=1)
        r1 = RankTrace(1)
        r1.irecv(0, 100, tag=1, req=0)
        r1.irecv(0, 100, tag=1, req=1)
        r1.waitall()
        result, fabric, _ = run_job([r0, r1])
        assert fabric.messages_delivered == 2


class TestBarriers:
    def test_barrier_synchronizes(self):
        r0 = RankTrace(0)
        r0.compute(5_000_000.0)
        r0.barrier()
        r1 = RankTrace(1)
        r1.barrier()
        result, _, _ = run_job([r0, r1], compute_scale=1.0)
        # Rank 1 cannot pass the barrier before rank 0 arrives.
        assert result.finish_time_ns[1] >= 5_000_000.0

    def test_barrier_wait_excluded_from_comm_time(self):
        r0 = RankTrace(0)
        r0.compute(5_000_000.0)
        r0.barrier()
        r1 = RankTrace(1)
        r1.barrier()
        result, _, _ = run_job([r0, r1], compute_scale=1.0)
        # Rank 1 exchanged no messages: its comm time is (almost) zero
        # even though it idled 5 ms at the barrier.
        assert result.comm_time_ns[1] < 100_000.0

    def test_sequential_barriers(self):
        ranks = []
        for i in range(4):
            t = RankTrace(i)
            t.barrier()
            t.barrier()
            t.barrier()
            ranks.append(t)
        result, _, _ = run_job(ranks)
        assert (result.finish_time_ns > 0).all()


class TestComputeScale:
    def test_compute_ignored_by_default(self):
        r0 = RankTrace(0)
        r0.compute(1e9)
        r0.send(1, 10)
        r1 = RankTrace(1)
        r1.recv(0, 10)
        result, _, sim = run_job([r0, r1])  # compute_scale=0
        assert sim.now < 1e6

    def test_compute_scale_applies(self):
        r0 = RankTrace(0)
        r0.compute(1000.0)
        r1 = RankTrace(1)
        result, _, _ = run_job([r0, r1], compute_scale=2.0)
        assert result.finish_time_ns[0] == pytest.approx(2000.0)
        assert result.comm_time_ns[0] == pytest.approx(0.0)


class TestLocalDelivery:
    def test_same_node_messages_bypass_fabric(self):
        r0 = RankTrace(0)
        r0.send(1, 4096)
        r1 = RankTrace(1)
        r1.recv(0, 4096)
        # Both ranks on node 0.
        result, fabric, _ = run_job([r0, r1], nodes=[0, 0])
        assert fabric.bytes_injected == 0
        assert result.bytes_recv[1] == 4096


class TestStallDetection:
    def test_unmatched_recv_raises(self):
        r0 = RankTrace(0)
        r0.recv(1, 100)  # nothing ever sent
        r1 = RankTrace(1)
        with pytest.raises(ReplayStalled, match="rank 0"):
            run_job([r0, r1])

    def test_partial_barrier_raises(self):
        r0 = RankTrace(0)
        r0.barrier()
        r1 = RankTrace(1)  # never reaches a barrier... it just finishes
        r1_ops = r1
        with pytest.raises(ReplayStalled):
            run_job([r0, r1_ops])


class TestEngineSetup:
    def test_add_job_after_start_rejected(self):
        sim, fabric, engine = make_engine()
        t = RankTrace(0)
        engine.add_job(0, JobTrace("a", [t]), [0])
        engine.start()
        with pytest.raises(RuntimeError):
            engine.add_job(1, JobTrace("b", [RankTrace(0)]), [1])

    def test_duplicate_job_id_rejected(self):
        sim, fabric, engine = make_engine()
        engine.add_job(0, JobTrace("a", [RankTrace(0)]), [0])
        with pytest.raises(ValueError):
            engine.add_job(0, JobTrace("b", [RankTrace(0)]), [1])

    def test_placement_size_mismatch_rejected(self):
        sim, fabric, engine = make_engine()
        with pytest.raises(ValueError, match="placement"):
            engine.add_job(0, JobTrace("a", [RankTrace(0)]), [0, 1])

    def test_unknown_target_job(self):
        sim, fabric, engine = make_engine()
        engine.add_job(0, JobTrace("a", [RankTrace(0)]), [0])
        with pytest.raises(ValueError):
            engine.run(target_job=5)

    def test_record_sends(self):
        r0 = RankTrace(0)
        r0.send(1, 123)
        r1 = RankTrace(1)
        r1.recv(0, 123)
        result, _, _ = run_job([r0, r1], record_sends=True)
        assert result.send_events == [(0.0, 0, 123)]


class TestMultiJob:
    def test_two_jobs_share_fabric(self):
        sim, fabric, engine = make_engine()
        a0 = RankTrace(0)
        a0.send(1, 1000)
        a1 = RankTrace(1)
        a1.recv(0, 1000)
        b0 = RankTrace(0)
        b0.send(1, 2000)
        b1 = RankTrace(1)
        b1.recv(0, 2000)
        engine.add_job(0, JobTrace("A", [a0, a1]), [0, 2])
        engine.add_job(1, JobTrace("B", [b0, b1]), [4, 6])
        engine.run()
        ra = engine.job_result(0)
        rb = engine.job_result(1)
        assert ra.bytes_recv[1] == 1000
        assert rb.bytes_recv[1] == 2000
        assert fabric.bytes_injected == fabric.bytes_delivered

    def test_jobs_do_not_cross_match(self):
        """Same (src_rank, tag) envelopes in different jobs stay separate."""
        sim, fabric, engine = make_engine()
        a0 = RankTrace(0)
        a0.send(1, 111, tag=7)
        a1 = RankTrace(1)
        a1.recv(0, 111, tag=7)
        b0 = RankTrace(0)
        b0.send(1, 222, tag=7)
        b1 = RankTrace(1)
        b1.recv(0, 222, tag=7)
        engine.add_job(0, JobTrace("A", [a0, a1]), [0, 2])
        engine.add_job(1, JobTrace("B", [b0, b1]), [4, 6])
        engine.run()
        assert engine.job_result(0).bytes_recv[1] == 111
        assert engine.job_result(1).bytes_recv[1] == 222
