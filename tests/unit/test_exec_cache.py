"""Disk result cache: hit/miss/invalidation/corruption behaviour."""

import pickle

import numpy as np
import pytest

import repro
from repro.exec.cache import ResultCache
from repro.exec.plan import plan_grid

from tests.exec_helpers import make_stub_result, tiny_trace


def one_spec(config=None, **kw):
    config = config or repro.tiny()
    plan = plan_grid(config, {"A": tiny_trace("A")}, ("cont",), ("min",), **kw)
    return plan.specs[0]


class TestResultCache:
    def test_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = one_spec()
        result = make_stub_result(spec)
        cache.put(spec.key, result)
        loaded = cache.get(spec.key)
        assert loaded is not None
        assert loaded.app == result.app and loaded.label == result.label
        assert np.array_equal(
            loaded.metrics.comm_time_ns, result.metrics.comm_time_ns
        )
        assert cache.stats == {"hits": 1, "misses": 0, "stores": 1}

    def test_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get(one_spec().key) is None
        assert cache.stats["misses"] == 1

    def test_config_change_invalidates(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = one_spec()
        cache.put(spec.key, make_stub_result(spec))
        assert one_spec(config=repro.small()).key not in cache
        assert one_spec(seed=7).key not in cache
        assert spec.key in cache

    def test_corrupt_entry_is_miss_and_removed(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = one_spec()
        cache.put(spec.key, make_stub_result(spec))
        cache.path_for(spec.key).write_bytes(b"not a pickle")
        with pytest.warns(RuntimeWarning, match="corrupt cache entry"):
            assert cache.get(spec.key) is None
        assert not cache.path_for(spec.key).exists()

    def test_iter_items_skips_corrupt_entries(self, tmp_path):
        """A training-set scan must survive any file it finds (PR 9 fix)."""
        cache = ResultCache(tmp_path)
        good = {}
        for seed in range(3):
            spec = one_spec(seed=seed)
            cache.put(spec.key, make_stub_result(spec))
            good[spec.key] = seed
        # Garbage bytes: not a pickle at all.
        garbage = one_spec(seed=100)
        cache.put(garbage.key, make_stub_result(garbage))
        cache.path_for(garbage.key).write_bytes(b"\x00garbage\x00")
        # Truncation: a valid pickle cut mid-stream (crashed writer on
        # a pre-atomic cache, partial copy, disk rot).
        truncated = one_spec(seed=101)
        cache.put(truncated.key, make_stub_result(truncated))
        path = cache.path_for(truncated.key)
        path.write_bytes(path.read_bytes()[:20])

        with pytest.warns(RuntimeWarning, match="corrupt cache entry"):
            items = list(cache.iter_items())
        assert sorted(k for k, _ in items) == sorted(good)
        for key, result in items:
            assert result.seed == good[key]
        # The scan leaves bad files alone; the keyed lookup reaps them.
        assert path.exists()
        with pytest.warns(RuntimeWarning):
            assert cache.get(truncated.key) is None
        assert not path.exists()

    def test_iter_results_yields_every_good_entry(self, tmp_path):
        cache = ResultCache(tmp_path)
        for seed in range(4):
            spec = one_spec(seed=seed)
            cache.put(spec.key, make_stub_result(spec))
        results = list(cache.iter_results())
        assert sorted(r.seed for r in results) == [0, 1, 2, 3]
        assert all(
            isinstance(pickle.dumps(r), bytes) for r in results
        )  # round-trippable objects, not raw bytes

    def test_len_and_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        for seed in range(3):
            spec = one_spec(seed=seed)
            cache.put(spec.key, make_stub_result(spec))
        assert len(cache) == 3
        assert cache.clear() == 3
        assert len(cache) == 0
