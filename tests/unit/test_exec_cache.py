"""Disk result cache: hit/miss/invalidation/corruption behaviour."""

import numpy as np

import repro
from repro.exec.cache import ResultCache
from repro.exec.plan import plan_grid

from tests.exec_helpers import make_stub_result, tiny_trace


def one_spec(config=None, **kw):
    config = config or repro.tiny()
    plan = plan_grid(config, {"A": tiny_trace("A")}, ("cont",), ("min",), **kw)
    return plan.specs[0]


class TestResultCache:
    def test_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = one_spec()
        result = make_stub_result(spec)
        cache.put(spec.key, result)
        loaded = cache.get(spec.key)
        assert loaded is not None
        assert loaded.app == result.app and loaded.label == result.label
        assert np.array_equal(
            loaded.metrics.comm_time_ns, result.metrics.comm_time_ns
        )
        assert cache.stats == {"hits": 1, "misses": 0, "stores": 1}

    def test_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get(one_spec().key) is None
        assert cache.stats["misses"] == 1

    def test_config_change_invalidates(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = one_spec()
        cache.put(spec.key, make_stub_result(spec))
        assert one_spec(config=repro.small()).key not in cache
        assert one_spec(seed=7).key not in cache
        assert spec.key in cache

    def test_corrupt_entry_is_miss_and_removed(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = one_spec()
        cache.put(spec.key, make_stub_result(spec))
        cache.path_for(spec.key).write_bytes(b"not a pickle")
        assert cache.get(spec.key) is None
        assert not cache.path_for(spec.key).exists()

    def test_len_and_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        for seed in range(3):
            spec = one_spec(seed=seed)
            cache.put(spec.key, make_stub_result(spec))
        assert len(cache) == 3
        assert cache.clear() == 3
        assert len(cache) == 0
