"""Rendezvous-protocol tests (eager_threshold semantics)."""

import pytest

from repro.config import tiny
from repro.core.runner import build_topology
from repro.engine.simulator import Simulator
from repro.mpi.ops import ANY_SOURCE
from repro.mpi.replay import ReplayEngine
from repro.mpi.trace import JobTrace, RankTrace
from repro.network.fabric import Fabric
from repro.routing import MinimalRouting

THRESHOLD = 4096
BIG = 64_000
SMALL = 512


def run_job(ranks, threshold=THRESHOLD, compute_scale=0.0):
    cfg = tiny()
    topo = build_topology(cfg.topology)
    sim = Simulator()
    fabric = Fabric(sim, topo, cfg.network, MinimalRouting(seed=0))
    engine = ReplayEngine(
        sim, fabric, compute_scale=compute_scale, eager_threshold=threshold
    )
    job = JobTrace("rdv", ranks)
    engine.add_job(0, job, list(range(job.num_ranks)))
    engine.run(target_job=0)
    return engine.job_result(0), fabric, sim


class TestRendezvousBasics:
    def test_large_message_completes(self):
        r0 = RankTrace(0)
        r0.send(1, BIG)
        r1 = RankTrace(1)
        r1.recv(0, BIG)
        result, fabric, _ = run_job([r0, r1])
        assert result.bytes_recv[1] == BIG
        # RTS + CTS + payload crossed the fabric.
        assert fabric.messages_delivered == 3

    def test_small_message_stays_eager(self):
        r0 = RankTrace(0)
        r0.send(1, SMALL)
        r1 = RankTrace(1)
        r1.recv(0, SMALL)
        result, fabric, _ = run_job([r0, r1])
        assert fabric.messages_delivered == 1

    def test_rts_waits_for_late_receiver(self):
        """The payload does not move until the recv posts."""
        r0 = RankTrace(0)
        r0.send(1, BIG)
        r1 = RankTrace(1)
        r1.compute(1_000_000.0)
        r1.recv(0, BIG)
        result, _, sim = run_job([r0, r1], compute_scale=1.0)
        # Sender's blocking Send cannot finish before the receiver posts.
        assert result.finish_time_ns[0] > 1_000_000.0

    def test_eager_send_does_not_wait(self):
        """Contrast: below the threshold the sender finishes early."""
        r0 = RankTrace(0)
        r0.send(1, SMALL)
        r1 = RankTrace(1)
        r1.compute(1_000_000.0)
        r1.recv(0, SMALL)
        result, _, _ = run_job([r0, r1], compute_scale=1.0)
        assert result.finish_time_ns[0] < 1_000_000.0

    def test_nonblocking_rendezvous(self):
        r0 = RankTrace(0)
        r0.isend(1, BIG, tag=3, req=0)
        r0.wait(0)
        r1 = RankTrace(1)
        r1.irecv(0, BIG, tag=3, req=0)
        r1.wait(0)
        result, fabric, _ = run_job([r0, r1])
        assert result.bytes_recv[1] == BIG

    def test_recv_posted_first(self):
        """CTS returns immediately when the recv was already posted."""
        r0 = RankTrace(0)
        r0.compute(500_000.0)
        r0.send(1, BIG)
        r1 = RankTrace(1)
        r1.recv(0, BIG)
        result, fabric, _ = run_job([r0, r1], compute_scale=1.0)
        assert result.bytes_recv[1] == BIG

    def test_wildcard_recv_matches_rts(self):
        r0 = RankTrace(0)
        r0.send(1, BIG, tag=9)
        r1 = RankTrace(1)
        r1.recv(ANY_SOURCE, BIG, tag=9)
        result, _, _ = run_job([r0, r1])
        assert result.bytes_recv[1] == BIG


class TestMixedTraffic:
    def test_eager_and_rendezvous_interleaved(self):
        r0 = RankTrace(0)
        r0.isend(1, SMALL, tag=1, req=0)
        r0.isend(1, BIG, tag=2, req=1)
        r0.waitall()
        r1 = RankTrace(1)
        r1.irecv(0, BIG, tag=2, req=0)
        r1.irecv(0, SMALL, tag=1, req=1)
        r1.waitall()
        result, _, _ = run_job([r0, r1])
        assert result.bytes_recv[1] == SMALL + BIG

    def test_many_pairs_conserve_bytes(self):
        n = 8
        ranks = []
        for i in range(n):
            t = RankTrace(i)
            peer = i ^ 1
            t.irecv(peer, BIG, tag=0, req=0)
            t.isend(peer, BIG, tag=0, req=1)
            t.waitall()
            ranks.append(t)
        result, fabric, _ = run_job(ranks)
        assert fabric.bytes_injected == fabric.bytes_delivered
        assert (result.bytes_recv == BIG).all()

    def test_app_trace_replays_under_rendezvous(self):
        import repro

        trace = repro.fill_boundary_trace(num_ranks=8, seed=4).scaled(0.02)
        cfg = tiny()
        topo = build_topology(cfg.topology)
        sim = Simulator()
        fabric = Fabric(sim, topo, cfg.network, MinimalRouting(seed=0))
        engine = ReplayEngine(sim, fabric, eager_threshold=THRESHOLD)
        engine.add_job(0, trace, list(range(8)))
        engine.run(target_job=0)
        result = engine.job_result(0)
        assert result.bytes_recv.sum() == trace.total_bytes()


class TestRendezvousCost:
    def test_handshake_adds_latency(self):
        """The same exchange is never faster under rendezvous."""

        def build():
            r0 = RankTrace(0)
            r0.send(1, BIG)
            r1 = RankTrace(1)
            r1.recv(0, BIG)
            return [r0, r1]

        eager, _, _ = run_job(build(), threshold=None)
        rdv, _, _ = run_job(build(), threshold=THRESHOLD)
        assert rdv.finish_time_ns[1] >= eager.finish_time_ns[1]

    def test_threshold_validation(self):
        cfg = tiny()
        topo = build_topology(cfg.topology)
        sim = Simulator()
        fabric = Fabric(sim, topo, cfg.network, MinimalRouting(seed=0))
        with pytest.raises(ValueError):
            ReplayEngine(sim, fabric, eager_threshold=-1)
