"""Differential and property-based tests of the max-min solvers.

The vectorized solver (``repro.flow.solver.solve_vector``) must match
the frozen scalar reference on every allocation it produces; the
property suite then checks the max-min invariants *themselves* on both
implementations, so a bug shared by the pair (or a wrong "invariant")
cannot hide behind agreement. Synthetic flow/unit stand-ins mirror the
fabric's duck-typed contract (``flow.units``, ``unit.links``,
``unit.rate``, ``flow.rate``) and let the harness drive the solvers at
sizes and shapes the tiny grid never reaches — including forcing the
numpy path below its adaptive-dispatch floor with ``min_units=0``.
"""

from __future__ import annotations

import math
import random

import pytest
from hypothesis import given, settings, strategies as st

import repro
from repro.engine.simulator import Simulator
from repro.flow.fabric import FlowFabric
from repro.flow.solver import (
    DEFAULT_SOLVER,
    SOLVER_NAMES,
    VECTOR_MIN_UNITS,
    get_solver,
    solve_scalar,
    solve_vector,
)
from repro.network.packet import Message

REL_TOL = 1e-9


class U:
    """Stand-in for the fabric's ``_Unit``: links + solver-set rate."""

    __slots__ = ("links", "rate")

    def __init__(self, links):
        self.links = tuple(links)
        self.rate = 0.0


class F:
    """Stand-in for the fabric's ``_Flow``: units + solver-set rate."""

    __slots__ = ("units", "rate")

    def __init__(self, units):
        self.units = tuple(units)
        self.rate = 0.0


def build(flow_specs):
    """Fresh mutable flow objects from a pure-data instance spec."""
    return [F([U(links) for links in units]) for units in flow_specs]


def random_instance(rng, max_links=12, max_flows=10):
    """A seeded random (caps, flow_specs) max-min instance."""
    n_links = rng.randint(1, max_links)
    caps = [rng.uniform(0.5, 100.0) for _ in range(n_links)]
    flow_specs = []
    for _ in range(rng.randint(1, max_flows)):
        units = []
        for _ in range(rng.randint(1, 3)):
            k = rng.randint(1, min(4, n_links))
            lids = rng.sample(range(n_links), k)
            units.append([(lid, rng.uniform(0.25, 4.0)) for lid in lids])
        flow_specs.append(units)
    return caps, flow_specs


def rates_of(flows):
    return (
        [f.rate for f in flows],
        [u.rate for f in flows for u in f.units],
    )


def assert_allocations_match(caps, flow_specs, rel_tol=REL_TOL):
    """Solve one instance with both solvers and compare everything."""
    fs = build(flow_specs)
    sat_s = solve_scalar(fs, caps)
    fv = build(flow_specs)
    sat_v = solve_vector(fv, caps, min_units=0)
    assert sat_s == sat_v
    for got, want in zip(rates_of(fv), rates_of(fs)):
        for g, w in zip(got, want):
            assert math.isclose(g, w, rel_tol=rel_tol, abs_tol=1e-30), (
                g, w, caps, flow_specs,
            )
    return fs, fv


def link_loads(caps, flows):
    """Recompute per-link load from the final unit rates."""
    load = [0.0] * len(caps)
    for f in flows:
        for u in f.units:
            for lid, w in u.links:
                load[lid] += w * u.rate
    return load


class TestDifferential:
    @pytest.mark.parametrize("seed", range(25))
    def test_vector_matches_scalar_on_random_instances(self, seed):
        rng = random.Random(seed)
        caps, flow_specs = random_instance(rng)
        assert_allocations_match(caps, flow_specs)

    def test_numpy_path_engages_above_dispatch_floor(self):
        """A large instance runs the real numpy path under the default
        dispatch and still matches the scalar reference."""
        rng = random.Random(99)
        flow_specs = []
        n_links = 40
        caps = [rng.uniform(1.0, 50.0) for _ in range(n_links)]
        while sum(len(u) for u in flow_specs) < 2 * VECTOR_MIN_UNITS:
            units = []
            for _ in range(rng.randint(1, 2)):
                lids = rng.sample(range(n_links), rng.randint(1, 4))
                units.append([(lid, rng.uniform(0.25, 4.0)) for lid in lids])
            flow_specs.append(units)
        fs = build(flow_specs)
        sat_s = solve_scalar(fs, caps)
        fv = build(flow_specs)
        sat_v = solve_vector(fv, caps)  # default min_units: numpy path
        assert sat_s == sat_v
        for got, want in zip(rates_of(fv), rates_of(fs)):
            for g, w in zip(got, want):
                assert math.isclose(g, w, rel_tol=REL_TOL, abs_tol=1e-30)

    def test_small_instances_dispatch_bit_identically(self):
        """Below the floor ``solve_vector`` delegates to the scalar
        loop, so results are exactly equal, not just close."""
        rng = random.Random(7)
        for _ in range(10):
            caps, flow_specs = random_instance(rng, max_links=6, max_flows=5)
            assert sum(len(u) for u in flow_specs) < VECTOR_MIN_UNITS
            fs = build(flow_specs)
            sat_s = solve_scalar(fs, caps)
            fv = build(flow_specs)
            sat_v = solve_vector(fv, caps)
            assert sat_s == sat_v
            assert rates_of(fv) == rates_of(fs)

    def test_single_unit_fast_path_is_exact(self):
        caps = [8.0, 2.0, 12.0]
        spec = [[[(0, 1.0), (1, 0.5), (2, 2.0)]]]
        fv = build(spec)
        assert solve_vector(fv, caps, min_units=0) == []
        # Bottleneck is link 1: 2.0 / 0.5.
        assert fv[0].units[0].rate == 4.0
        assert fv[0].rate == 4.0
        fs = build(spec)
        assert solve_scalar(fs, caps) == []
        assert rates_of(fs) == rates_of(fv)

    @pytest.mark.parametrize("name", SOLVER_NAMES)
    def test_empty_instance(self, name):
        assert get_solver(name)([], [1.0, 2.0]) == []

    def test_get_solver_rejects_unknown_names(self):
        assert get_solver("scalar") is solve_scalar
        assert get_solver("vector") is solve_vector
        assert DEFAULT_SOLVER in SOLVER_NAMES
        with pytest.raises(ValueError, match="unknown flow solver"):
            get_solver("gurobi")


@st.composite
def instances(draw):
    n_links = draw(st.integers(1, 8))
    caps = draw(
        st.lists(
            st.floats(0.5, 64.0), min_size=n_links, max_size=n_links
        )
    )
    flow_specs = []
    for _ in range(draw(st.integers(1, 6))):
        units = []
        for _ in range(draw(st.integers(1, 2))):
            lids = draw(
                st.lists(
                    st.integers(0, n_links - 1),
                    min_size=1,
                    max_size=min(4, n_links),
                    unique=True,
                )
            )
            units.append(
                [(lid, draw(st.floats(0.25, 4.0))) for lid in lids]
            )
        flow_specs.append(units)
    return caps, flow_specs


def _solve(name, caps, flow_specs):
    flows = build(flow_specs)
    if name == "vector":
        solve_vector(flows, caps, min_units=0)
    else:
        solve_scalar(flows, caps)
    return flows


class TestMaxMinProperties:
    """The max-min invariants, asserted on both implementations."""

    @pytest.mark.parametrize("name", SOLVER_NAMES)
    @settings(max_examples=60, deadline=None)
    @given(inst=instances())
    def test_capacity_feasibility(self, name, inst):
        """No link is loaded beyond its capacity."""
        caps, flow_specs = inst
        flows = _solve(name, caps, flow_specs)
        for lid, load in enumerate(link_loads(caps, flows)):
            assert load <= caps[lid] * (1.0 + 1e-9)

    @pytest.mark.parametrize("name", SOLVER_NAMES)
    @settings(max_examples=60, deadline=None)
    @given(inst=instances())
    def test_bottleneck_condition(self, name, inst):
        """Every unit is pinned by at least one saturated link — the
        defining property of a max-min fair allocation (no unit can be
        raised without lowering another)."""
        caps, flow_specs = inst
        flows = _solve(name, caps, flow_specs)
        load = link_loads(caps, flows)
        for f in flows:
            for u in f.units:
                slack = min(
                    (caps[lid] - load[lid]) / caps[lid] for lid, _ in u.links
                )
                assert slack <= 1e-6, (slack, u.links)

    @pytest.mark.parametrize("name", SOLVER_NAMES)
    @settings(max_examples=40, deadline=None)
    @given(inst=instances(), data=st.data())
    def test_min_rate_monotone_in_capacity(self, name, inst, data):
        """Raising one link's capacity never lowers the *minimum* unit
        rate (the first bottleneck's fill level). NOTE: per-unit and
        total-throughput monotonicity are NOT max-min theorems — see
        ``test_total_throughput_not_monotone_counterexample``."""
        caps, flow_specs = inst
        lid = data.draw(st.integers(0, len(caps) - 1))
        factor = data.draw(st.floats(1.0, 8.0))
        flows = _solve(name, caps, flow_specs)
        raised_caps = list(caps)
        raised_caps[lid] *= factor
        raised = _solve(name, raised_caps, flow_specs)
        lo = min(u.rate for f in flows for u in f.units)
        hi = min(u.rate for f in raised for u in f.units)
        assert hi >= lo * (1.0 - 1e-9)

    @pytest.mark.parametrize("name", SOLVER_NAMES)
    @settings(max_examples=40, deadline=None)
    @given(inst=instances(), k=st.integers(-3, 6))
    def test_power_of_two_homogeneity_is_exact(self, name, inst, k):
        """Scaling every capacity by 2**k scales every rate by exactly
        2**k — bit-exact, because binary scaling commutes with every
        float add/multiply/divide the solvers perform."""
        caps, flow_specs = inst
        scale = 2.0 ** k
        flows = _solve(name, caps, flow_specs)
        scaled = _solve(name, [c * scale for c in caps], flow_specs)
        for f, g in zip(flows, scaled):
            assert g.rate == f.rate * scale
            for u, v in zip(f.units, g.units):
                assert v.rate == u.rate * scale

    @pytest.mark.parametrize("name", SOLVER_NAMES)
    @settings(max_examples=40, deadline=None)
    @given(
        n=st.integers(2, 12),
        cap=st.floats(0.5, 64.0),
        w=st.floats(0.25, 4.0),
    )
    def test_identical_units_share_equally(self, name, n, cap, w):
        """n identical single-link units each get cap/(n*w), exhausting
        the link: fair-share equality inside one bottleneck."""
        flow_specs = [[[(0, w)]] for _ in range(n)]
        flows = _solve(name, [cap], flow_specs)
        rates = [f.units[0].rate for f in flows]
        assert len(set(rates)) == 1
        assert math.isclose(sum(r * w for r in rates), cap, rel_tol=1e-9)

    @pytest.mark.parametrize("name", SOLVER_NAMES)
    def test_total_throughput_not_monotone_counterexample(self, name):
        """Documents why the suite does NOT assert per-unit or total
        monotonicity in capacity: raising link L's capacity from 1 to 5
        lets the three-hop flow B grab more of links M and N, squeezing
        the single-hop flows C and D and *lowering* the total. (B
        crosses L, M, N; C crosses M; D crosses N; caps M = N = 10.)"""
        spec = [
            [[(0, 1.0), (1, 1.0), (2, 1.0)]],
            [[(1, 1.0)]],
            [[(2, 1.0)]],
        ]
        before = _solve(name, [1.0, 10.0, 10.0], spec)
        after = _solve(name, [5.0, 10.0, 10.0], spec)
        assert [f.rate for f in before] == [1.0, 9.0, 9.0]
        assert [f.rate for f in after] == [5.0, 5.0, 5.0]
        total_before = sum(f.rate for f in before)
        total_after = sum(f.rate for f in after)
        assert total_after < total_before  # 19 -> 15


class TestFabricConservation:
    """End-to-end conservation through the fabric, on both solvers."""

    @pytest.fixture(scope="class")
    def cfg(self):
        return repro.tiny()

    @pytest.fixture(scope="class")
    def topo(self, cfg):
        return repro.Dragonfly(cfg.topology)

    @pytest.mark.parametrize("solver", SOLVER_NAMES)
    def test_every_injected_byte_is_delivered(self, cfg, topo, solver):
        sim = Simulator()
        fabric = FlowFabric(sim, topo, cfg.network, "adp", solver=solver)
        assert fabric.solver == solver
        rng = random.Random(13)
        total = 0
        for i in range(40):
            src, dst = rng.sample(range(topo.num_nodes), 2)
            size = rng.randint(1, 96 * 1024)
            total += size
            sim.at(
                rng.uniform(0.0, 5000.0), fabric.inject,
                Message(i, src, dst, size),
            )
        sim.run()
        assert fabric.bytes_delivered == total
        assert fabric.messages_delivered == 40
        assert fabric.packets_delivered == fabric.packets_injected

    def test_env_knob_selects_solver(self, cfg, topo, monkeypatch):
        monkeypatch.setenv("REPRO_FLOW_SOLVER", "scalar")
        sim = Simulator()
        fabric = FlowFabric(sim, topo, cfg.network, "min")
        assert fabric.solver == "scalar"
        assert fabric._solve_fn is solve_scalar
        monkeypatch.delenv("REPRO_FLOW_SOLVER")
        fabric = FlowFabric(Simulator(), topo, cfg.network, "min")
        assert fabric.solver == DEFAULT_SOLVER

    def test_unknown_solver_rejected(self, cfg, topo):
        with pytest.raises(ValueError, match="unknown flow solver"):
            FlowFabric(Simulator(), topo, cfg.network, "min", solver="nope")
