"""Importable helpers for the advisor test suites.

The cross-process determinism test ships this module's functions to
spawned worker processes by reference, so they must live in a real
module, not inside a test function (same constraint as
``tests.exec_helpers``).
"""

from __future__ import annotations

import repro
from repro.advisor.features import FeatureExtractor
from repro.apps import APP_BUILDERS


def advisor_trace(app: str = "FB", ranks: int = 8, seed: int = 7):
    """The canonical tiny-machine advisor test trace."""
    return APP_BUILDERS[app](num_ranks=ranks, seed=seed).scaled(0.2)


def feature_bytes(
    app: str, ranks: int, seed: int, routing: str, nodes: tuple[int, ...]
) -> bytes:
    """Build a fresh extractor and return the raw vector bytes.

    Runs in a worker process with no shared state: byte equality with
    the parent's vector proves the extraction is deterministic across
    processes, not merely within one.
    """
    config = repro.tiny()
    trace = advisor_trace(app, ranks, seed)
    fx = FeatureExtractor(config, trace, routing)
    return fx.vector(nodes).tobytes()
