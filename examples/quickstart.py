#!/usr/bin/env python3
"""Quickstart: simulate one application under two placements.

Builds an 80-node dragonfly (5 groups of 2x4 routers), generates the
Crystal Router mini-app's communication trace, and replays it twice:
once with contiguous placement + minimal routing (maximum locality) and
once with random-node placement + adaptive routing (maximum balance).

Run:  python examples/quickstart.py
"""

import repro


def main() -> None:
    config = repro.small()

    # The CR mini-app: a many-to-many butterfly exchange with a heavy
    # neighbourhood share, ~190 KB per rank per iteration (paper §III-A).
    trace = repro.crystal_router_trace(num_ranks=32, seed=1)
    print(
        f"CR trace: {trace.num_ranks} ranks, {trace.num_messages()} messages, "
        f"{trace.total_bytes() / 1e6:.1f} MB total"
    )

    for placement, routing in [("cont", "min"), ("rand", "adp")]:
        result = repro.run_single(config, trace, placement, routing, seed=1)
        s = result.metrics.summary()
        print(
            f"\n{result.label}:"
            f"\n  median comm time : {s['median_comm_ms']:.4f} ms"
            f"\n  max comm time    : {s['max_comm_ms']:.4f} ms"
            f"\n  mean hops        : {s['mean_hops']:.2f}"
            f"\n  local saturation : {s['local_sat_ms']:.4f} ms"
            f"\n  events simulated : {result.events}"
        )

    print(
        "\nLocalized placement minimises hops; balanced placement "
        "spreads traffic. Which wins depends on the app's communication "
        "intensity — that trade-off is what this library studies."
    )


if __name__ == "__main__":
    main()
