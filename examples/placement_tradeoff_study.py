#!/usr/bin/env python3
"""The paper's Section IV-A application study, end to end.

Runs the Fill Boundary mini-app alone under all 10 placement x routing
configurations (Table I) and prints the Figure 3/5 data: per-rank
communication-time box statistics, channel-traffic CDF summaries, and
the headline improvement percentages.

Run:  python examples/placement_tradeoff_study.py
"""

import repro
from repro.core.report import format_box_table, format_cdf_table, key_findings
from repro.core.study import TradeoffStudy


def main() -> None:
    config = repro.small()
    # FB at a benchmark-friendly fraction of its (very heavy) original
    # load; the fluctuating 6-neighbour halo pattern is preserved.
    trace = repro.fill_boundary_trace(num_ranks=32, seed=1).scaled(0.05)

    study = TradeoffStudy(config, {"FB": trace}, seed=1)
    result = study.run(verbose=True)

    print()
    print(
        format_box_table(
            result.comm_time_boxes("FB"),
            "FB communication time by configuration (cf. Figure 3b)",
            unit="ms",
        )
    )
    print()
    print(
        format_cdf_table(
            result.traffic_cdf("FB", "local"),
            "FB local channel traffic (cf. Figure 5a)",
            "MB",
        )
    )
    print()
    print(
        format_cdf_table(
            result.saturation_cdf("FB", "local"),
            "FB local link saturation (cf. Figure 5b)",
            "ms",
        )
    )

    findings = key_findings(result)["FB"]
    print(f"\nbest configuration: {findings['best']}")
    print(
        f"random-node vs contiguous: {findings['rand_vs_cont_pct']:+.1f}% "
        "(positive = random wins, as the paper reports for FB)"
    )


if __name__ == "__main__":
    main()
