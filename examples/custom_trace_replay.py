#!/usr/bin/env python3
"""Authoring, saving, and replaying a custom application trace.

Shows the trace substrate end to end: build a 2D halo-exchange
application with the RankTrace builder API, validate it, write it to
the repro-dumpi ASCII format (the drop-in equivalent of an exported
DUMPI trace), load it back, and replay it under two configurations.

Run:  python examples/custom_trace_replay.py
"""

import tempfile
from pathlib import Path

import repro
from repro.mpi import JobTrace, RankTrace, load_trace, save_trace


def build_2d_halo(width: int, height: int, halo_bytes: int) -> JobTrace:
    """A 5-point-stencil halo exchange on a periodic width x height grid."""
    n = width * height
    ranks = []
    for rank in range(n):
        x, y = rank % width, rank // width
        t = RankTrace(rank)
        for step in range(3):  # three exchange rounds
            neighbors = {
                ((x + 1) % width) + y * width,
                ((x - 1) % width) + y * width,
                x + ((y + 1) % height) * width,
                x + ((y - 1) % height) * width,
            } - {rank}
            req = 0
            for peer in sorted(neighbors):
                t.irecv(peer, halo_bytes, tag=step, req=req)
                t.isend(peer, halo_bytes, tag=step, req=req + 1)
                req += 2
            t.waitall()
            t.barrier()
        ranks.append(t)
    return JobTrace("halo2d", ranks, meta={"width": width, "height": height})


def main() -> None:
    job = build_2d_halo(width=8, height=4, halo_bytes=32_768)
    job.validate()  # balanced sends/recvs, ranks in range
    print(
        f"authored {job.name}: {job.num_ranks} ranks, "
        f"{job.num_messages()} messages, {job.total_bytes() / 1e6:.2f} MB"
    )

    # Round-trip through the on-disk format.
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "halo2d.dumpi"
        save_trace(job, path)
        print(f"saved to {path} ({path.stat().st_size} bytes)")
        job = load_trace(path)

    config = repro.small()
    for placement, routing in [("cont", "min"), ("rotr", "adp")]:
        result = repro.run_single(config, job, placement, routing, seed=7)
        s = result.metrics.summary()
        print(
            f"{result.label}: median={s['median_comm_ms']:.4f} ms "
            f"max={s['max_comm_ms']:.4f} ms hops={s['mean_hops']:.2f}"
        )


if __name__ == "__main__":
    main()
