#!/usr/bin/env python3
"""The paper's Section IV-C external-traffic study, end to end.

Places the AMG solver on part of the machine and fills every remaining
node with a synthetic background job issuing uniform-random traffic.
Reruns the placement x routing grid and shows the paper's key finding:
*localized communication (contiguous + minimal) creates a relatively
"isolated" location on the shared network*, while spread placements
with adaptive routing let background packets flood the app's routers.

Run:  python examples/interference_study.py
"""

import repro
from repro.core.interference import BackgroundSpec, interference_study
from repro.core.report import format_box_table


def main() -> None:
    config = repro.small()
    trace = repro.amg_trace(num_ranks=32, seed=1)

    # Heavy uniform-random background: every free node sends a 16 KB
    # message to a random peer every 2 us (cf. Table II's AMG column).
    background = BackgroundSpec(
        "uniform", message_bytes=16_384, interval_ns=2_000.0
    )
    bg_nodes = config.topology.num_nodes - trace.num_ranks
    print(
        f"target: AMG on {trace.num_ranks} nodes; background job on "
        f"{bg_nodes} nodes, peak load "
        f"{background.peak_load_bytes(bg_nodes) / 1e6:.2f} MB per interval"
    )

    # Baselines without interference.
    alone = {}
    for placement, routing in [("cont", "min"), ("rand", "adp")]:
        r = repro.run_single(config, trace, placement, routing, seed=1)
        alone[f"{placement}-{routing}"] = r.metrics.median_comm_time_ns

    result = interference_study(config, trace, background, seed=1)

    print()
    print(
        format_box_table(
            result.comm_time_boxes("AMG"),
            "AMG communication time under uniform background (cf. Fig 8a)",
            unit="ms",
        )
    )

    print("\ndegradation vs interference-free run:")
    for label in ("cont-min", "rand-adp"):
        shared = result.get("AMG", label).metrics.median_comm_time_ns
        print(f"  {label}: {shared / alone[label]:5.2f}x")

    print(
        "\nMinimal routing keeps background packets off the app's "
        "routers (dragonfly minimal paths never transit a third group); "
        "adaptive routing detours them straight through."
    )


if __name__ == "__main__":
    main()
