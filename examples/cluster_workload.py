#!/usr/bin/env python3
"""Multi-job cluster study: real applications interfering.

The paper approximates a shared machine with synthetic background
traffic (§IV-C) and lists "the joint actions among applications" as
future work. This example runs that future-work experiment: CR, FB and
AMG co-scheduled on one dragonfly with staggered arrivals, measuring
each job's slowdown versus running alone on the same nodes — then asks
the placement advisor what each job should have requested.

Run:  python examples/cluster_workload.py
"""

import repro
from repro.core.advisor import recommend
from repro.core.cluster import JobSpec, run_cluster


def main() -> None:
    config = repro.small()

    specs = [
        JobSpec(
            repro.crystal_router_trace(num_ranks=24, seed=1).scaled(0.5),
            placement="cont",
        ),
        JobSpec(
            repro.fill_boundary_trace(num_ranks=24, seed=2).scaled(0.02),
            placement="rotr",
            arrival_ns=10_000.0,
        ),
        JobSpec(
            repro.amg_trace(num_ranks=16, seed=3),
            placement="cont",
            arrival_ns=20_000.0,
        ),
    ]

    print("running 3 jobs on a shared 80-node dragonfly...\n")
    result = run_cluster(config, specs, routing="adp", seed=7)
    print(result.to_text())

    print("\nwhat the advisor would have recommended (shared network):")
    for spec in specs:
        rec = recommend(spec.trace, config, shared_network=True)
        print(f"  {spec.trace.name:<4} requested {spec.placement:<5} "
              f"-> advisor says {rec.label}")


if __name__ == "__main__":
    main()
