#!/usr/bin/env python3
"""The placement trade-off, operationally: one job stream, two policies.

The paper's single-job studies ask which placement a given application
prefers. ``repro.cluster`` asks the question the way a machine owner
meets it: jobs arrive for hours, a scheduler places them, and every
co-schedule interval (epoch) is priced as a cached flow-backend cell.
This demo runs the *same* seeded CR/FB/AMG stream (a few hundred
completions) under contiguous and random placement and reads the
trade-off off the stream exports:

* ``cont`` localises — fewer hops per byte;
* ``rand`` balances — the hottest link during the heavy jobs' epochs
  spends a smaller fraction of each block oversubscribed, because no
  single link carries a whole partition's traffic.

It also shows the cache doing its job: the warm re-run of the cont
stream plans the identical epoch cells and simulates none of them.

Run:  python examples/cluster_stream.py        (~1 minute)
"""

import tempfile
import time

import repro
from repro.cluster import JobClass, WorkloadMix, run_stream

#: Communication-heavy CR jobs over a light FB/AMG background. Rank
#: counts deliberately misalign with the tiny machine's router rows so
#: contiguous claims pack neighbouring jobs onto shared local links —
#: the regime where localisation concentrates contention.
MIX = WorkloadMix(
    (
        JobClass(
            "CR", ranks=(6, 10), msg_scales=(2.0,), service_s=(60.0, 180.0)
        ),
        JobClass(
            "FB",
            weight=2.0,
            ranks=(4, 6),
            msg_scales=(0.005,),
            service_s=(60.0, 180.0),
        ),
        JobClass(
            "AMG", ranks=(6,), msg_scales=(0.1,), service_s=(60.0, 180.0)
        ),
    )
)

DURATION_S = 9000.0  # 2.5 simulated hours of arrivals (stream then drains)
LOAD = 0.85
SEED = 11


def run(policy: str, cache_dir: str):
    t0 = time.perf_counter()
    res = run_stream(
        repro.tiny(),
        mix=MIX,
        duration_s=DURATION_S,
        load=LOAD,
        policy=policy,
        routing="adp",
        backend="flow",
        seed=SEED,
        cache=cache_dir,
    )
    print(f"[{policy}] {time.perf_counter() - t0:.0f}s wall")
    print("   " + res.summary().replace("\n", "\n   "))
    return res


def main() -> None:
    with tempfile.TemporaryDirectory(prefix="cluster-stream-") as tmp:
        print("1. contiguous placement, cold cache")
        cont = run("cont", tmp)
        assert len(cont.completed) >= 200, "stream too short for the demo"

        print("2. same stream, warm cache (nothing should simulate)")
        warm = run("cont", tmp)
        c = warm.counters
        assert c["cells_simulated"] == 0, c
        assert c["cells_cached"] == c["cells_planned"] > 0, c
        print(f"   warm re-run: 0 of {c['cells_planned']} cells simulated")

        print("3. random placement, same seeded stream")
        rand = run("rand", tmp)

    import numpy as np

    hops = {
        p: float(np.mean([j.avg_hops for j in r.completed]))
        for p, r in (("cont", cont), ("rand", rand))
    }
    sat = {
        p: r.heavy_epoch_peaks()["mean_sat_frac"]
        for p, r in (("cont", cont), ("rand", rand))
    }
    print("4. the trade-off, read off the two exports")
    print(
        f"   hops/byte:            cont {hops['cont']:.3f}  "
        f"rand {hops['rand']:.3f}   (localising wins)"
    )
    print(
        f"   heavy-epoch peak-link cont {sat['cont']:.0%}   "
        f"rand {sat['rand']:.0%}    (balancing wins)"
    )
    print("   saturated duty cycle")
    assert hops["cont"] < hops["rand"], "contiguous should minimise hops"
    assert sat["rand"] < sat["cont"], (
        "random should keep the hottest link less contended"
    )


if __name__ == "__main__":
    main()
