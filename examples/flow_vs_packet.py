#!/usr/bin/env python3
"""Sweep a grid with the fast flow backend, spot-check at packet level.

The intended division of labour for ``repro.flow`` (DESIGN.md S16):

1. run the full placement x routing grid under ``backend="flow"`` —
   fluid flows with max-min link sharing instead of per-packet
   events, typically an order of magnitude faster;
2. cross-check ranking fidelity with ``fidelity_report`` (Kendall-tau
   over the placement order, top-1 agreement, per-metric error);
3. re-run only the flow-picked winners under the packet backend for
   full-fidelity numbers.

Run:  python examples/flow_vs_packet.py
"""

import time

import repro
from repro.flow import fidelity_report


def main() -> None:
    config = repro.tiny()
    traces = {"FB": repro.fill_boundary_trace(num_ranks=8, seed=3).scaled(0.2)}

    print("1. full 5x2 grid under the flow backend")
    t0 = time.perf_counter()
    flow = repro.TradeoffStudy(config, traces, seed=7, backend="flow").run()
    flow_s = time.perf_counter() - t0
    best = flow.best_label("FB")
    print(f"   {len(flow.runs)} cells in {flow_s:.2f}s, best {best}")

    print("2. cross-fidelity check against the packet backend")
    fid = fidelity_report(config, traces, seed=7)
    print("   " + fid.format_table().replace("\n", "\n   "))
    assert fid.top1_agreement(), "flow and packet disagree on the winner"

    print("3. packet-fidelity re-run of the flow-picked winner")
    placement, routing = best.rsplit("-", 1)
    t0 = time.perf_counter()
    result = repro.run_single(
        config, traces["FB"], placement, routing, seed=7, backend="packet"
    )
    packet_s = time.perf_counter() - t0
    for key, value in result.metrics.summary().items():
        print(f"   {key:>18}: {value:.4f}")
    print(f"   one packet cell took {packet_s:.2f}s "
          f"(~{packet_s * len(flow.runs) / flow_s:.0f}x the whole flow grid)")

    print("\nsame thing from the shell:")
    print("  dragonfly-tradeoff study FB --preset tiny --ranks 8 "
          "--msg-scale 0.2 --backend flow")
    print("  dragonfly-tradeoff fidelity FB --preset tiny --ranks 8 "
          "--msg-scale 0.2 --out fidelity.json")


if __name__ == "__main__":
    main()
