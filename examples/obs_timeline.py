#!/usr/bin/env python3
"""Congestion timelines from the repro.obs telemetry layer.

Runs one FB cell with the time-resolved recorder attached, exports the
telemetry to JSONL, reads it back, and renders a congestion timeline:

* mean serialiser utilisation of local vs global links per window;
* stalled (credit-blocked) fraction of the hottest link;
* congestion-event overlay (buffer-full and adaptive-divert times).

With matplotlib installed the figure is saved to ``obs-timeline.png``;
without it the same series are printed as a compact ASCII sparkline, so
the example runs anywhere the simulator does.

Run:  python examples/obs_timeline.py
"""

import tempfile
from pathlib import Path

import numpy as np

import repro
from repro.obs import ObsConfig, export, read_jsonl
from repro.topology.links import LinkKind

BARS = " .:-=+*#%@"


def sparkline(series: np.ndarray, width: int = 64) -> str:
    """Downsample ``series`` to ``width`` buckets of one glyph each."""
    if len(series) == 0:
        return ""
    buckets = np.array_split(series, min(width, len(series)))
    peak = max(float(series.max()), 1e-12)
    return "".join(
        BARS[int(float(b.mean()) / peak * (len(BARS) - 1))] for b in buckets
    )


def main() -> None:
    config = repro.small()
    trace = repro.fill_boundary_trace(num_ranks=32, seed=1).scaled(0.1)

    print("simulating FB on cont-adp with a 25 us observation window...")
    result = repro.run_single(
        config, trace, "cont", "adp", seed=1,
        obs=ObsConfig(window_ns=25_000.0),
    )
    ts = result.obs
    print(
        f"  {ts.num_windows} windows x {ts.num_links} links, "
        f"{len(ts.events)} congestion events"
    )

    # Round-trip through the JSONL export, exactly as the CLI writes it.
    out = Path(tempfile.mkdtemp(prefix="repro-obs-")) / "FB-cont-adp.jsonl"
    export(ts, out)
    ts = read_jsonl(out)
    print(f"  exported + re-read {out}")

    spans = ts.window_spans()
    t_ms = ts.edges / 1e6
    util = ts.link_utilisation()
    stalled = ts.stall_ns / spans[:, None]
    local = ts.link_mask(kinds=(LinkKind.LOCAL_ROW, LinkKind.LOCAL_COL))
    glob = ts.link_mask(kinds=(LinkKind.GLOBAL,))
    hottest = int(np.argmax(ts.link_saturation_ns()))

    series = {
        "local util (mean)": util[:, local].mean(axis=1),
        "global util (mean)": util[:, glob].mean(axis=1),
        f"stall frac (link {hottest})": stalled[:, hottest],
    }
    event_times = {
        kind: np.array([e.t_ns / 1e6 for e in ts.events if e.kind == kind])
        for kind in ("buffer_full", "adaptive_divert")
    }

    try:
        import matplotlib

        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        print("\nmatplotlib not installed — ASCII timeline "
              f"(0 .. {t_ms[-1]:.2f} ms):")
        for label, values in series.items():
            print(f"  {label:24s} |{sparkline(values)}| peak={values.max():.2f}")
        for kind, times in event_times.items():
            marks = np.histogram(times, bins=64, range=(0, t_ms[-1]))[0]
            print(f"  {kind:24s} |{sparkline(marks)}| n={len(times)}")
        return

    fig, (ax_u, ax_s) = plt.subplots(
        2, 1, figsize=(9, 5), sharex=True, height_ratios=(2, 1)
    )
    for label, values in series.items():
        (ax_s if label.startswith("stall") else ax_u).plot(
            t_ms, values, label=label
        )
    for kind, times in event_times.items():
        if len(times):
            ax_s.plot(times, np.full(len(times), -0.05), "|", label=kind)
    ax_u.set_ylabel("utilisation")
    ax_u.legend(loc="upper right", fontsize=8)
    ax_s.set(xlabel="simulated time [ms]", ylabel="stalled fraction")
    ax_s.legend(loc="upper right", fontsize=8)
    fig.tight_layout()
    fig.savefig("obs-timeline.png", dpi=150)
    print("wrote obs-timeline.png")


if __name__ == "__main__":
    main()
