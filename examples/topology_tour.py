#!/usr/bin/env python3
"""A tour of the dragonfly topology and routing substrate.

Walks through the machine model at the level below the experiment
drivers: geometry (groups/cabinets/chassis/routers/nodes), link
inventory, minimal route enumeration, Valiant detours, and what the
adaptive policy sees when links are congested.

Run:  python examples/topology_tour.py
"""

import random

import repro
from repro.core.runner import build_topology
from repro.engine.simulator import Simulator
from repro.network.fabric import Fabric
from repro.routing import AdaptiveRouting, MinimalRouting
from repro.routing.paths import valiant_route
from repro.routing.tables import route_tables
from repro.topology.geometry import router_coord
from repro.topology.links import LinkKind


def main() -> None:
    config = repro.small()
    p = config.topology
    topo = build_topology(p)

    print("machine geometry")
    print(f"  groups={p.groups}  routers/group={p.routers_per_group} "
          f"({p.rows}x{p.cols} grid)  nodes/router={p.nodes_per_router}")
    print(f"  nodes={p.num_nodes}  chassis={p.num_chassis} "
          f"cabinets={p.num_cabinets}")
    kinds = topo.links.kind
    for kind in LinkKind:
        print(f"  {kind.name:<13} links: {(kinds == kind).sum()}")

    # Minimal routes between two routers in different groups.
    src, dst = 0, p.routers_per_group + 5
    tables = route_tables(topo)
    print(f"\nminimal routes router {src} {router_coord(p, src)} -> "
          f"router {dst} {router_coord(p, dst)}:")
    for route in tables.minimal(src, dst):
        names = [topo.links.kind_of(l).name for l in route]
        print(f"  {len(route)} hops: {' -> '.join(names)}")

    rng = random.Random(0)
    detour = valiant_route(tables, src, dst, rng)
    print(f"one Valiant detour: {len(detour)} hops "
          f"({' -> '.join(topo.links.kind_of(l).name for l in detour)})")

    # What adaptive routing does under congestion.
    sim = Simulator()
    fabric = Fabric(sim, topo, config.network, MinimalRouting(seed=0))
    adaptive = AdaptiveRouting(seed=0)
    dst_node = dst * p.nodes_per_router
    route_clear = adaptive.route(fabric, src, dst_node, 2048)
    # Pile synthetic backlog onto every minimal first hop.
    for path in tables.minimal(src, dst):
        fabric.queued_bytes[path[0]] += 5_000_000
    route_congested = adaptive.route(fabric, src, dst_node, 2048)
    print(f"\nadaptive, idle network:     {len(route_clear) - 1} hops "
          f"(minimal taken: {adaptive.minimal_taken})")
    print(f"adaptive, congested source: {len(route_congested) - 1} hops "
          f"(nonminimal taken: {adaptive.nonminimal_taken})")


if __name__ == "__main__":
    main()
