#!/usr/bin/env python3
"""The placement-advisor pipeline, end to end: cache -> model -> answer.

The paper's trade-off grid tells you which placement *family* an
application prefers; ``repro.advisor`` answers the operational
question — which concrete node set should this job get — without
paying for an exhaustive sweep. This demo walks the whole funnel:

1. an ordinary flow-backend study over three apps populates a result
   cache (the kind of sweep a machine owner has already run);
2. a ridge surrogate is trained on those cached cells — no extra
   simulation, the sweep *is* the training set;
3. ``suggest_placement`` ranks a multi-draw candidate pool with the
   surrogate, flow-screens the top few, packet-validates the
   finalists, and recommends the packet winner;
4. an exhaustive flow sweep over the same pool confirms the funnel
   found the grid optimum at a fraction of the simulated cells;
5. the same model drives the cluster stream's ``surrogate`` policy,
   placing arriving jobs online.

Run:  python examples/advisor_funnel.py        (~1 minute)
"""

import tempfile

import repro
from repro.advisor import suggest_placement, train_surrogate
from repro.apps import APP_BUILDERS
from repro.cluster import run_stream
from repro.exec.cache import ResultCache
from repro.exec.plan import plan_grid
from repro.exec.pool import execute_plan
from repro.placement.policies import PLACEMENT_NAMES

RANKS = 8
SEED = 7
SCALE = 0.2


def main() -> None:
    config = repro.tiny()
    traces = {
        app: APP_BUILDERS[app](num_ranks=RANKS, seed=SEED).scaled(SCALE)
        for app in ("FB", "CR", "AMG")
    }

    with tempfile.TemporaryDirectory(prefix="advisor-funnel-") as tmp:
        cache = ResultCache(tmp)

        print("1. warm a training cache: 3 apps x 5 placements x 2 routings")
        plan = plan_grid(
            config,
            traces,
            PLACEMENT_NAMES,
            ("min", "adp"),
            seed=SEED,
            backend="flow",
        )
        report = execute_plan(plan, cache=cache)
        report.raise_if_failed()
        print(f"   {len(plan.specs)} flow cells cached")

        print("2. train the surrogate on the cached sweep")
        model, training = train_surrogate(config, traces, cache)
        r2 = model.score(training.features, training.targets)
        print(f"   {training.n_samples} samples, R^2={r2:.3f}")

        print("3. funnel: rank a 3-draw pool, screen 7, validate 2")
        res = suggest_placement(
            config,
            traces["FB"],
            "adp",
            model,
            per_policy=3,
            screen_top=7,
            validate_top=2,
            seed=3,
            cache=cache,
            exhaustive=True,
        )
        for tier in res.tiers:
            print(
                f"   {tier.name:<12} {tier.candidates:>3} candidates, "
                f"{tier.simulated} simulated, {tier.cached} cached"
            )
        print(
            f"   recommendation: {res.chosen.label}, "
            f"nodes={list(res.chosen.nodes)}"
        )

        print("4. exhaustive flow sweep over the same pool")
        ex = res.exhaustive
        assert ex is not None
        verdict = "agrees" if ex["agree_nodes"] else "DISAGREES"
        print(
            f"   optimum {ex['best_placement']}#{ex['best_draw']} — "
            f"the funnel {verdict}"
        )
        assert ex["agree_nodes"], "funnel missed the pool optimum"
        full_fidelity = res.screened + res.validated
        print(
            f"   funnel spent {full_fidelity} full-fidelity cells for a "
            f"{res.ranked}-candidate pool"
        )

        print("5. the same model placing jobs online (surrogate policy)")
        stream = run_stream(
            config,
            duration_s=7200.0,
            load=0.6,
            policy="surrogate",
            routing="adp",
            backend="flow",
            seed=5,
            surrogate_model=model,
            cache=cache,
        )
        placements = [j.placement for j in stream.jobs]
        counts = {p: placements.count(p) for p in sorted(set(placements))}
        print(
            f"   {len(stream.completed)} jobs completed; "
            f"policies chosen: {counts}"
        )


if __name__ == "__main__":
    main()
