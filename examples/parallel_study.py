#!/usr/bin/env python3
"""The Section IV-A grid as a parallel, cached workload (repro.exec).

Runs the three-application placement x routing grid twice:

1. cold — cells are sharded across worker processes, with per-cell
   progress/ETA telemetry on stderr and results stored in a disk cache;
2. warm — the same grid again, which performs **zero** simulations
   because every cell is served from the cache.

Results are bit-identical to a serial ``study.run()`` at any worker
count: each cell is an independent, fully-seeded simulation, and the
executor reassembles them in deterministic grid order.

Run:  python examples/parallel_study.py
"""

import tempfile
import time

import repro
from repro.exec import TextReporter


def main() -> None:
    config = repro.small()
    traces = {
        "CR": repro.crystal_router_trace(num_ranks=32, seed=1).scaled(0.05),
        "FB": repro.fill_boundary_trace(num_ranks=32, seed=1).scaled(0.05),
        "AMG": repro.amg_trace(num_ranks=32, seed=1).scaled(0.05),
    }
    study = repro.TradeoffStudy(config, traces, seed=1)
    cache_dir = tempfile.mkdtemp(prefix="repro-cache-")

    print(f"cold run: 30 cells on 4 workers, cache at {cache_dir}")
    t0 = time.perf_counter()
    cold = study.run(max_workers=4, cache_dir=cache_dir, progress=TextReporter())
    cold_s = time.perf_counter() - t0
    r = cold.report
    print(f"  simulated={r.done} cached={r.cached} in {cold_s:.1f}s")

    print("warm run: same grid against the populated cache")
    t0 = time.perf_counter()
    warm = study.run(max_workers=4, cache_dir=cache_dir)
    warm_s = time.perf_counter() - t0
    r = warm.report
    print(f"  simulated={r.done} cached={r.cached} in {warm_s:.2f}s")

    for app in traces:
        assert warm.best_label(app) == cold.best_label(app)
        print(f"  {app}: best configuration {warm.best_label(app)}")

    print("\nsame thing from the shell:")
    print("  dragonfly-tradeoff study CR --workers 4 "
          f"--cache-dir {cache_dir} --progress")


if __name__ == "__main__":
    main()
