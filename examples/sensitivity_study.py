#!/usr/bin/env python3
"""The paper's Section IV-B sensitivity study, end to end.

Scales the Crystal Router mini-app's message sizes from 1% to 200% of
the original and compares the four extreme configurations, reproducing
Figure 7(a)'s crossover: contiguous placement wins at low communication
intensity (fewer hops, nothing to congest), random-node placement wins
as intensity grows (balanced traffic avoids local saturation).

Run:  python examples/sensitivity_study.py
"""

import repro
from repro.core.report import format_series_table
from repro.core.sensitivity import sensitivity_sweep


def main() -> None:
    # The crossover needs groups big enough for contiguous placement to
    # congest itself: use the 432-node medium preset (~90 s runtime).
    config = repro.medium()
    trace = repro.crystal_router_trace(num_ranks=128, seed=1)

    scales = (0.01, 0.1, 0.5, 1.0, 2.0)
    sweep = sensitivity_sweep(config, trace, scales, seed=1)

    print(
        format_series_table(
            sweep.scales,
            sweep.relative(),
            "CR max comm time relative to rand-adp, % (cf. Figure 7a)",
            x_name="msg scale",
        )
    )

    rel = sweep.relative()
    low = {k: v[0] for k, v in rel.items()}
    high = {k: v[-1] for k, v in rel.items()}
    print(f"\nat {scales[0]:>5.2f}x load the best config is "
          f"{min(low, key=low.get)}")
    print(f"at {scales[-1]:>5.2f}x load the best config is "
          f"{min(high, key=high.get)}")


if __name__ == "__main__":
    main()
