#!/usr/bin/env python3
"""The DL-training workload family, end to end: generate -> import -> grid.

The paper's trade-off grid runs three HPC mini-apps; modern dragonfly
traffic is dominated by ML training collectives. ``repro.mlcomms``
adds that family, and this demo shows the paper's question asked of
it — does "localize vs balance" survive all-reduce-dominated
traffic?

1. synthesize the four family members (DP ring all-reduce, PP 1F1B
   pipeline, TP layer allgather/reduce-scatter, MoE expert
   all-to-all) and characterize their traffic shapes;
2. import a param commsTraceReplay-style JSON document through the
   same path a real collected trace would take;
3. run the placement x routing grid on the flow backend via
   ``training_tradeoff`` and read each app's leaning;
4. spot-check one winner and one loser on the packet engine.

Run:  python examples/training_tradeoff.py        (~1 minute)
"""

import json
import tempfile
from pathlib import Path

import repro
from repro.core.advisor import characterize
from repro.mlcomms import load_comms_trace, training_tradeoff
from repro.mlcomms.study import default_training_traces

RANKS = 8
SEED = 1
SCALE = 0.02


def main() -> None:
    config = repro.tiny().with_seed(SEED)

    print("1. synthesize the training family and characterize it")
    traces = default_training_traces(RANKS, msg_scale=SCALE, seed=SEED)
    for app, trace in traces.items():
        profile = characterize(trace)
        print(
            f"   {app:>3}: {profile.bytes_per_rank / 1024:8.1f} KiB/rank, "
            f"{profile.partners_per_rank:.1f} partners/rank, "
            f"neighborhood share {profile.neighborhood_share:.2f}"
        )

    print("\n2. import a param-style comms trace (JSON -> JobTrace)")
    doc = {
        "name": "IMP",
        "num_ranks": RANKS,
        "trace": [
            {"comms": "all_reduce", "in_msg_size": 65536,
             "dtype": "float32", "algo": "ring"},
            {"compute_ns": 50_000},
            {"comms": "all_to_all", "in_msg_size": 32768},
            {"marker": "iteration_0"},
            {"comms": "all_reduce", "in_msg_size": 65536,
             "dtype": "float32", "algo": "ring"},
            {"marker": "iteration_1"},
        ],
    }
    with tempfile.TemporaryDirectory(prefix="mlcomms-") as tmp:
        path = Path(tmp) / "imported.json"
        path.write_text(json.dumps(doc))
        imported = load_comms_trace(path)
    meta = imported.meta
    print(
        f"   {imported.name}: {meta['records']} records -> "
        f"{meta['collectives']} collectives over "
        f"{meta['iterations']} iterations"
    )

    print("\n3. the paper's grid, asked of training traffic (flow backend)")
    study_traces = {
        "DP": traces["DP"], "MOE": traces["MOE"], "IMP": imported
    }
    report = training_tradeoff(
        config, study_traces, seed=SEED, backend="flow"
    )
    print(report.format_table())

    print("4. packet-engine spot check of the DP winner vs worst")
    winner = report.winners["DP"]["adp"]
    for placement in (winner["placement"], winner["worst_placement"]):
        res = repro.run_single(
            config, traces["DP"], placement, "adp", seed=SEED
        )
        label = "winner" if placement == winner["placement"] else "worst "
        print(
            f"   {label} {placement:>4}-adp: "
            f"max comm {res.metrics.summary()['max_comm_ms']:.3f} ms"
        )


if __name__ == "__main__":
    main()
