"""Configuration dataclasses and presets for the dragonfly trade-off study.

All simulation times are expressed in **nanoseconds** and all sizes in
**bytes**. Bandwidths are stored as bytes/ns (1 GiB/s == 2**30 / 1e9
bytes/ns) so that ``size / bandwidth`` directly yields a duration.

The default parameter values mirror the Theta Cray XC40 configuration used
in the paper (Section II): 9 groups of 96 Aries routers arranged in a 6x16
grid, 4 nodes per router, 16 GiB/s terminal links, 5.25 GiB/s local links,
4.69 GiB/s global links, and 8/8/16 KiB virtual-channel buffers.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

__all__ = [
    "GIB_PER_SEC",
    "DragonflyParams",
    "NetworkParams",
    "SimulationConfig",
    "theta",
    "medium",
    "small",
    "tiny",
]

#: Multiplier converting GiB/s into bytes per nanosecond.
GIB_PER_SEC = (2**30) / 1e9


@dataclass(frozen=True)
class DragonflyParams:
    """Geometry of a two-tier (Cray Cascade style) dragonfly network.

    A machine has ``groups`` groups. Each group is a ``rows x cols`` grid
    of routers whose rows and columns are each all-to-all connected by
    local links. Each row of routers forms a *chassis* and
    ``chassis_per_cabinet`` consecutive chassis form a *cabinet* (on Theta
    a chassis is a row of 16 routers and a cabinet is 3 chassis).

    Every unordered pair of groups is joined by ``global_links_per_pair``
    bidirectional global links whose endpoints are spread deterministically
    over the routers of each group.
    """

    groups: int = 9
    rows: int = 6
    cols: int = 16
    nodes_per_router: int = 4
    chassis_per_cabinet: int = 3
    global_links_per_pair: int = 24

    def __post_init__(self) -> None:
        if self.groups < 2:
            raise ValueError("a dragonfly needs at least 2 groups")
        if self.rows < 1 or self.cols < 1:
            raise ValueError("router grid must be at least 1x1")
        if self.nodes_per_router < 1:
            raise ValueError("need at least one node per router")
        if self.chassis_per_cabinet < 1:
            raise ValueError("chassis_per_cabinet must be positive")
        if self.rows % self.chassis_per_cabinet != 0:
            raise ValueError(
                "rows must be a multiple of chassis_per_cabinet so cabinets "
                "tile the group exactly"
            )
        if self.global_links_per_pair < 1:
            raise ValueError("groups must be connected by at least one link")

    @property
    def routers_per_group(self) -> int:
        return self.rows * self.cols

    @property
    def num_routers(self) -> int:
        return self.groups * self.routers_per_group

    @property
    def num_nodes(self) -> int:
        return self.num_routers * self.nodes_per_router

    @property
    def nodes_per_chassis(self) -> int:
        return self.cols * self.nodes_per_router

    @property
    def nodes_per_cabinet(self) -> int:
        return self.nodes_per_chassis * self.chassis_per_cabinet

    @property
    def nodes_per_group(self) -> int:
        return self.routers_per_group * self.nodes_per_router

    @property
    def chassis_per_group(self) -> int:
        return self.rows

    @property
    def cabinets_per_group(self) -> int:
        return self.rows // self.chassis_per_cabinet

    @property
    def num_chassis(self) -> int:
        return self.groups * self.chassis_per_group

    @property
    def num_cabinets(self) -> int:
        return self.groups * self.cabinets_per_group


@dataclass(frozen=True)
class NetworkParams:
    """Link bandwidths, latencies, buffering, and packetisation.

    ``*_bw`` values are bytes/ns. Buffer sizes are the per-virtual-channel
    downstream buffer capacity of each link class; a packet may only start
    crossing a link once the target VC buffer has room for the whole packet
    (store-and-forward with credit-based backpressure).
    """

    terminal_bw: float = 16.0 * GIB_PER_SEC
    local_bw: float = 5.25 * GIB_PER_SEC
    global_bw: float = 4.69 * GIB_PER_SEC
    terminal_latency_ns: float = 50.0
    local_latency_ns: float = 50.0
    global_latency_ns: float = 300.0
    node_vc_buffer: int = 8 * 1024
    local_vc_buffer: int = 8 * 1024
    global_vc_buffer: int = 16 * 1024
    packet_size: int = 2048
    num_vcs: int = 8
    router_delay_ns: float = 50.0
    #: "vct" (virtual cut-through, the default — matches flit-level
    #: simulators like CODES: a packet's header moves on after one hop
    #: latency, so end-to-end latency is roughly one serialisation plus
    #: per-hop latencies) or "store_forward" (the packet is fully
    #: received before moving on — every hop pays full serialisation).
    switching: str = "vct"

    def __post_init__(self) -> None:
        if self.switching not in ("vct", "store_forward"):
            raise ValueError(
                f"switching must be 'vct' or 'store_forward', "
                f"got {self.switching!r}"
            )
        for name in ("terminal_bw", "local_bw", "global_bw"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        for name in (
            "terminal_latency_ns",
            "local_latency_ns",
            "global_latency_ns",
            "router_delay_ns",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        if self.packet_size <= 0:
            raise ValueError("packet_size must be positive")
        smallest = min(
            self.node_vc_buffer, self.local_vc_buffer, self.global_vc_buffer
        )
        if self.packet_size > smallest:
            raise ValueError(
                "packet_size must fit in the smallest VC buffer "
                f"({self.packet_size} > {smallest})"
            )
        if self.num_vcs < 1:
            raise ValueError("need at least one virtual channel")


@dataclass(frozen=True)
class SimulationConfig:
    """Complete configuration for one simulation run."""

    topology: DragonflyParams = dataclasses.field(default_factory=DragonflyParams)
    network: NetworkParams = dataclasses.field(default_factory=NetworkParams)
    seed: int = 0

    def with_seed(self, seed: int) -> "SimulationConfig":
        return dataclasses.replace(self, seed=seed)


def theta() -> SimulationConfig:
    """Full-scale Theta configuration from the paper (3,456 nodes)."""
    return SimulationConfig()


def medium() -> SimulationConfig:
    """A 432-node dragonfly preserving Theta's shape at reduced scale.

    9 groups of 4x6 routers with 2 nodes each; cabinets of 2 chassis.
    Suitable for running the full experiment grid in minutes.
    """
    topo = DragonflyParams(
        groups=9,
        rows=4,
        cols=6,
        nodes_per_router=2,
        chassis_per_cabinet=2,
        global_links_per_pair=6,
    )
    return SimulationConfig(topology=topo)


def small() -> SimulationConfig:
    """An 80-node dragonfly for quick experiments and benchmarks."""
    topo = DragonflyParams(
        groups=5,
        rows=2,
        cols=4,
        nodes_per_router=2,
        chassis_per_cabinet=2,
        global_links_per_pair=4,
    )
    return SimulationConfig(topology=topo)


def tiny() -> SimulationConfig:
    """A 24-node dragonfly for unit tests."""
    topo = DragonflyParams(
        groups=3,
        rows=2,
        cols=2,
        nodes_per_router=2,
        chassis_per_cabinet=1,
        global_links_per_pair=2,
    )
    return SimulationConfig(topology=topo)
