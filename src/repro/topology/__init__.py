"""Dragonfly topology substrate (paper Section II).

Builds the Cray Cascade style two-tier dragonfly used by Theta: groups of
routers arranged in a row/column grid with all-to-all local links along
each row and each column, global links joining every pair of groups, and
compute nodes hanging off each router via terminal links.
"""

from repro.topology.links import LinkKind, LinkTable
from repro.topology.geometry import (
    RouterCoord,
    router_coord,
    router_id,
    node_router,
    node_slot,
    node_id,
    router_group,
    chassis_id,
    cabinet_id,
    node_chassis,
    node_cabinet,
    node_group,
)
from repro.topology.dragonfly import Dragonfly

__all__ = [
    "LinkKind",
    "LinkTable",
    "RouterCoord",
    "router_coord",
    "router_id",
    "node_router",
    "node_slot",
    "node_id",
    "router_group",
    "chassis_id",
    "cabinet_id",
    "node_chassis",
    "node_cabinet",
    "node_group",
    "Dragonfly",
]
