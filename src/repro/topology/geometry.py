"""Pure id <-> coordinate arithmetic for dragonfly machines.

Identifier conventions (all zero-based, dense):

* router ``r``: global router id in ``[0, groups * rows * cols)``;
  within a group routers are numbered row-major, so a *chassis* (one row)
  is a contiguous block of ``cols`` router ids.
* node ``n``: global node id in ``[0, num_routers * nodes_per_router)``;
  the nodes of router ``r`` are ``r * nodes_per_router + slot``.
* chassis: ``group * rows + row``.
* cabinet: ``group * cabinets_per_group + row // chassis_per_cabinet``.

Keeping these as free functions (rather than methods) lets hot paths call
them without attribute lookups and makes them trivially property-testable.
"""

from __future__ import annotations

from typing import NamedTuple

from repro.config import DragonflyParams

__all__ = [
    "RouterCoord",
    "router_coord",
    "router_id",
    "router_group",
    "node_router",
    "node_slot",
    "node_id",
    "chassis_id",
    "cabinet_id",
    "node_chassis",
    "node_cabinet",
    "node_group",
]


class RouterCoord(NamedTuple):
    """Position of a router: which group, and where in the group grid."""

    group: int
    row: int
    col: int


def router_coord(params: DragonflyParams, router: int) -> RouterCoord:
    """Decompose a global router id into (group, row, col)."""
    per_group = params.routers_per_group
    group, local = divmod(router, per_group)
    row, col = divmod(local, params.cols)
    return RouterCoord(group, row, col)


def router_id(params: DragonflyParams, group: int, row: int, col: int) -> int:
    """Compose a global router id from (group, row, col)."""
    return (group * params.rows + row) * params.cols + col


def router_group(params: DragonflyParams, router: int) -> int:
    """Group that a router belongs to."""
    return router // params.routers_per_group


def node_router(params: DragonflyParams, node: int) -> int:
    """Router a node is attached to."""
    return node // params.nodes_per_router


def node_slot(params: DragonflyParams, node: int) -> int:
    """Terminal slot of a node on its router."""
    return node % params.nodes_per_router


def node_id(params: DragonflyParams, router: int, slot: int) -> int:
    """Node id of the ``slot``-th node attached to ``router``."""
    return router * params.nodes_per_router + slot


def chassis_id(params: DragonflyParams, router: int) -> int:
    """Global chassis id (a chassis is one row of routers in one group)."""
    group, row, _ = router_coord(params, router)
    return group * params.rows + row


def cabinet_id(params: DragonflyParams, router: int) -> int:
    """Global cabinet id (``chassis_per_cabinet`` consecutive chassis)."""
    group, row, _ = router_coord(params, router)
    return group * params.cabinets_per_group + row // params.chassis_per_cabinet


def node_chassis(params: DragonflyParams, node: int) -> int:
    """Global chassis id of a node."""
    return chassis_id(params, node_router(params, node))


def node_cabinet(params: DragonflyParams, node: int) -> int:
    """Global cabinet id of a node."""
    return cabinet_id(params, node_router(params, node))


def node_group(params: DragonflyParams, node: int) -> int:
    """Group id of a node."""
    return router_group(params, node_router(params, node))
