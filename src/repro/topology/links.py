"""Directed-link table shared by the topology, routing, and fabric layers.

Every physical channel in the machine is a *directed* link with a dense
integer id. The table stores, per link: its kind, the transmitting
endpoint, and the receiving endpoint. For ``TERMINAL_IN`` links the source
is a node id; for ``TERMINAL_OUT`` links the destination is a node id; all
other endpoints are router ids.

The table is built incrementally with :meth:`LinkTable.add` and then
frozen into NumPy arrays so the metrics layer can do vectorised
aggregation over hundreds of thousands of channels.
"""

from __future__ import annotations

import enum

import numpy as np

__all__ = ["LinkKind", "LinkTable"]


class LinkKind(enum.IntEnum):
    """Physical class of a directed channel."""

    TERMINAL_IN = 0  # node NIC -> router
    TERMINAL_OUT = 1  # router -> node NIC
    LOCAL_ROW = 2  # router -> router, same group, same row
    LOCAL_COL = 3  # router -> router, same group, same column
    GLOBAL = 4  # router -> router, different groups

    @property
    def is_local(self) -> bool:
        return self in (LinkKind.LOCAL_ROW, LinkKind.LOCAL_COL)

    @property
    def is_terminal(self) -> bool:
        return self in (LinkKind.TERMINAL_IN, LinkKind.TERMINAL_OUT)


class LinkTable:
    """Append-only registry of directed links, freezable to NumPy arrays."""

    def __init__(self) -> None:
        self._kind: list[int] = []
        self._src: list[int] = []
        self._dst: list[int] = []
        self._frozen = False
        self.kind: np.ndarray | None = None
        self.src: np.ndarray | None = None
        self.dst: np.ndarray | None = None

    def add(self, kind: LinkKind, src: int, dst: int) -> int:
        """Register a directed link and return its id."""
        if self._frozen:
            raise RuntimeError("cannot add links to a frozen LinkTable")
        link_id = len(self._kind)
        self._kind.append(int(kind))
        self._src.append(src)
        self._dst.append(dst)
        return link_id

    def freeze(self) -> None:
        """Convert the accumulated lists into immutable NumPy arrays."""
        if self._frozen:
            return
        self.kind = np.asarray(self._kind, dtype=np.int8)
        self.src = np.asarray(self._src, dtype=np.int32)
        self.dst = np.asarray(self._dst, dtype=np.int32)
        for arr in (self.kind, self.src, self.dst):
            arr.setflags(write=False)
        self._frozen = True

    def __len__(self) -> int:
        return len(self._kind)

    def kind_of(self, link: int) -> LinkKind:
        """Kind of one link (works before and after freezing)."""
        return LinkKind(self._kind[link])

    def endpoints(self, link: int) -> tuple[int, int]:
        """(src, dst) endpoint ids of one link."""
        return self._src[link], self._dst[link]

    def ids_of_kind(self, *kinds: LinkKind) -> np.ndarray:
        """All link ids whose kind is in ``kinds`` (requires freeze)."""
        if not self._frozen:
            raise RuntimeError("LinkTable must be frozen first")
        mask = np.isin(self.kind, [int(k) for k in kinds])
        return np.nonzero(mask)[0]

    def local_ids(self) -> np.ndarray:
        """Ids of all local (row + column) links."""
        return self.ids_of_kind(LinkKind.LOCAL_ROW, LinkKind.LOCAL_COL)

    def global_ids(self) -> np.ndarray:
        """Ids of all global links."""
        return self.ids_of_kind(LinkKind.GLOBAL)
