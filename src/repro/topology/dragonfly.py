"""Construction of the two-tier dragonfly machine (paper Fig. 1).

Wiring rules reproduced from the Theta / Cray Cascade description in the
paper:

* each group is a ``rows x cols`` grid of routers;
* every row is all-to-all connected with local (row) links, every column
  is all-to-all connected with local (column) links — so an intra-group
  minimal route needs at most one intermediate router;
* every pair of groups is joined by ``global_links_per_pair``
  bidirectional global links whose endpoints rotate deterministically over
  the routers of each group so global connectivity is spread evenly;
* four (configurable) compute nodes attach to each router via terminal
  links.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.config import DragonflyParams, NetworkParams
from repro.topology.geometry import (
    router_coord,
    router_id,
    router_group,
    node_router,
    node_group,
)
from repro.topology.links import LinkKind, LinkTable

__all__ = ["Dragonfly"]


class Dragonfly:
    """A fully-wired dragonfly machine.

    Exposes the link table plus the lookup structures that the routing
    layer needs: terminal links per node, the local link joining two
    routers in the same row/column, and the global links joining each pair
    of groups (with their endpoint routers).
    """

    def __init__(self, params: DragonflyParams) -> None:
        self.params = params
        self.links = LinkTable()

        n_nodes = params.num_nodes
        self._terminal_in = np.empty(n_nodes, dtype=np.int32)
        self._terminal_out = np.empty(n_nodes, dtype=np.int32)
        #: (r1, r2) -> link id for routers sharing a row or column.
        self._local: dict[tuple[int, int], int] = {}
        #: (g1, g2) -> list of (link id, src router, dst router).
        self._global: dict[tuple[int, int], list[tuple[int, int, int]]] = {}
        #: router -> {peer group -> [(link id, dst router), ...]}.
        self._router_global: dict[int, dict[int, list[tuple[int, int]]]] = {}

        self._build_terminal_links()
        self._build_local_links()
        self._build_global_links()
        self.links.freeze()

        # Hot-path lookup tables: routing runs once per packet, so the
        # per-call NumPy scalar indexing / coordinate arithmetic of the
        # query methods below is replaced by plain-list indexing.
        self._terminal_in_l: list[int] = self._terminal_in.tolist()
        self._terminal_out_l: list[int] = self._terminal_out.tolist()
        self._node_router: list[int] = [
            node_router(params, n) for n in range(n_nodes)
        ]
        self._router_group: list[int] = [
            router_group(params, r) for r in range(params.num_routers)
        ]

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _build_terminal_links(self) -> None:
        p = self.params
        for node in range(p.num_nodes):
            router = node_router(p, node)
            self._terminal_in[node] = self.links.add(
                LinkKind.TERMINAL_IN, node, router
            )
            self._terminal_out[node] = self.links.add(
                LinkKind.TERMINAL_OUT, router, node
            )

    def _build_local_links(self) -> None:
        p = self.params
        for group in range(p.groups):
            for row in range(p.rows):
                members = [router_id(p, group, row, c) for c in range(p.cols)]
                self._connect_all_to_all(members, LinkKind.LOCAL_ROW)
            for col in range(p.cols):
                members = [router_id(p, group, r, col) for r in range(p.rows)]
                self._connect_all_to_all(members, LinkKind.LOCAL_COL)

    def _connect_all_to_all(self, routers: list[int], kind: LinkKind) -> None:
        for i, a in enumerate(routers):
            for b in routers[i + 1 :]:
                self._local[(a, b)] = self.links.add(kind, a, b)
                self._local[(b, a)] = self.links.add(kind, b, a)

    def _global_endpoint(self, group: int, peer: int, k: int) -> int:
        """Router inside ``group`` hosting its k-th link toward ``peer``.

        Endpoints are laid out round-robin: the links toward the
        ``rel``-th clockwise peer occupy router indices starting at
        ``rel * global_links_per_pair``, wrapping around the group. This
        spreads the (groups-1) * K global endpoints evenly over routers,
        mirroring how Cascade cabling distributes optical ports.
        """
        p = self.params
        rel = (peer - group) % p.groups - 1
        return router_id_from_local(
            p, group, (rel * p.global_links_per_pair + k) % p.routers_per_group
        )

    def _build_global_links(self) -> None:
        p = self.params
        for g1 in range(p.groups):
            for g2 in range(g1 + 1, p.groups):
                fwd: list[tuple[int, int, int]] = []
                rev: list[tuple[int, int, int]] = []
                for k in range(p.global_links_per_pair):
                    a = self._global_endpoint(g1, g2, k)
                    b = self._global_endpoint(g2, g1, k)
                    lid_ab = self.links.add(LinkKind.GLOBAL, a, b)
                    lid_ba = self.links.add(LinkKind.GLOBAL, b, a)
                    fwd.append((lid_ab, a, b))
                    rev.append((lid_ba, b, a))
                    self._router_global.setdefault(a, {}).setdefault(
                        g2, []
                    ).append((lid_ab, b))
                    self._router_global.setdefault(b, {}).setdefault(
                        g1, []
                    ).append((lid_ba, a))
                self._global[(g1, g2)] = fwd
                self._global[(g2, g1)] = rev

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return self.params.num_nodes

    @property
    def num_routers(self) -> int:
        return self.params.num_routers

    @property
    def num_links(self) -> int:
        return len(self.links)

    def terminal_in(self, node: int) -> int:
        """Injection link (node -> router) of ``node``."""
        return self._terminal_in_l[node]

    def terminal_out(self, node: int) -> int:
        """Ejection link (router -> node) of ``node``."""
        return self._terminal_out_l[node]

    def local_link(self, r1: int, r2: int) -> int | None:
        """Directed local link r1 -> r2, or None if not row/col adjacent."""
        return self._local.get((r1, r2))

    def global_links(self, g1: int, g2: int) -> list[tuple[int, int, int]]:
        """Global links from group ``g1`` to ``g2``: (lid, src, dst)."""
        if g1 == g2:
            raise ValueError("no global links inside a group")
        return self._global[(g1, g2)]

    def router_global_links(self, router: int) -> dict[int, list[tuple[int, int]]]:
        """Global links leaving ``router``: {peer group: [(lid, dst), ...]}."""
        return self._router_global.get(router, {})

    def local_neighbors(self, router: int) -> Iterator[int]:
        """Routers sharing a row or a column with ``router``."""
        p = self.params
        group, row, col = router_coord(p, router)
        for c in range(p.cols):
            if c != col:
                yield router_id(p, group, row, c)
        for r in range(p.rows):
            if r != row:
                yield router_id(p, group, r, col)

    def router_of(self, node: int) -> int:
        return self._node_router[node]

    def group_of_router(self, router: int) -> int:
        return self._router_group[router]

    def group_of_node(self, node: int) -> int:
        return node_group(self.params, node)

    # ------------------------------------------------------------------
    # derived tables
    # ------------------------------------------------------------------
    def link_profiles(
        self, net: NetworkParams
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Per-link (bandwidth, latency, VC buffer capacity) arrays.

        Terminal links use the terminal bandwidth and the node VC buffer;
        local and global links use their class parameters.
        """
        kind = self.links.kind
        assert kind is not None, "link table must be frozen"
        bw = np.empty(len(kind), dtype=np.float64)
        lat = np.empty(len(kind), dtype=np.float64)
        buf = np.empty(len(kind), dtype=np.int64)

        term = (kind == LinkKind.TERMINAL_IN) | (kind == LinkKind.TERMINAL_OUT)
        local = (kind == LinkKind.LOCAL_ROW) | (kind == LinkKind.LOCAL_COL)
        glob = kind == LinkKind.GLOBAL

        bw[term] = net.terminal_bw
        bw[local] = net.local_bw
        bw[glob] = net.global_bw
        lat[term] = net.terminal_latency_ns
        lat[local] = net.local_latency_ns
        lat[glob] = net.global_latency_ns
        buf[term] = net.node_vc_buffer
        buf[local] = net.local_vc_buffer
        buf[glob] = net.global_vc_buffer
        return bw, lat, buf

    def router_graph(self):
        """Router-level :class:`networkx.MultiDiGraph` (for validation).

        Edges carry ``kind`` and ``link`` attributes. Terminal links are
        omitted; the graph answers connectivity/diameter questions about
        the router fabric.
        """
        import networkx as nx

        g = nx.MultiDiGraph()
        g.add_nodes_from(range(self.num_routers))
        kind = self.links.kind
        src = self.links.src
        dst = self.links.dst
        for lid in range(self.num_links):
            k = LinkKind(int(kind[lid]))
            if k.is_terminal:
                continue
            g.add_edge(int(src[lid]), int(dst[lid]), kind=k, link=lid)
        return g


def router_id_from_local(params: DragonflyParams, group: int, local: int) -> int:
    """Global router id of the ``local``-th router inside ``group``."""
    return group * params.routers_per_group + local
