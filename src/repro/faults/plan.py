"""Deterministic fault plans: which channels fail, when, and how badly.

A :class:`FaultPlan` is the complete, content-hashable description of a
degraded fabric for one run: a set of directed-link faults (dead or
bandwidth-degraded, at simulation start or at a scheduled onset time)
plus whole-router faults (always at start — a router that dies mid-run
would kill the ranks placed on its nodes, which the replay layer does
not model). Plans are frozen dataclasses, so they

* ride inside a content-addressed :class:`~repro.exec.plan.RunSpec`
  (``dataclasses.asdict`` gives a canonical JSON payload);
* pickle cheaply across the executor's process boundary;
* round-trip through JSON files for the CLI's ``--faults`` flag.

:func:`random_fault_plan` draws a seeded plan from a topology at a given
per-link failure rate, with a connectivity guard: a sampled fault that
would disconnect the live router graph (counting every scheduled link
fault as eventually dead) is skipped, so failure-aware routing can
always find a path and no run can wedge on an unreachable destination.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Iterable

from repro.engine.rng import rng_stream
from repro.topology.links import LinkKind

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.topology.dragonfly import Dragonfly

__all__ = [
    "FaultPlan",
    "FaultPlanError",
    "LinkFault",
    "RouterFault",
    "install_plan",
    "load_fault_plan",
    "random_fault_plan",
    "save_fault_plan",
]


class FaultPlanError(ValueError):
    """A fault plan is malformed or inconsistent with its topology."""


@dataclass(frozen=True)
class LinkFault:
    """One directed-link fault.

    ``bw_scale == 0`` kills the link outright; a value in ``(0, 1)``
    multiplies its bandwidth (a degraded optical lane). ``time_ns`` is
    the onset time; ``0.0`` means the link is already faulted when the
    simulation starts.
    """

    link: int
    time_ns: float = 0.0
    bw_scale: float = 0.0

    def __post_init__(self) -> None:
        if self.link < 0:
            raise FaultPlanError(f"negative link id {self.link}")
        if self.time_ns < 0.0:
            raise FaultPlanError(f"fault onset in the past: {self.time_ns}")
        if not 0.0 <= self.bw_scale < 1.0:
            raise FaultPlanError(
                f"bw_scale must be in [0, 1) (0 = dead), got {self.bw_scale}"
            )


@dataclass(frozen=True)
class RouterFault:
    """A whole-router failure at simulation start.

    Every router-to-router link incident to the router dies and the
    router's compute nodes are marked down (the runner excludes them
    from placement, mirroring how a scheduler drains a failed blade).
    """

    router: int
    time_ns: float = 0.0

    def __post_init__(self) -> None:
        if self.router < 0:
            raise FaultPlanError(f"negative router id {self.router}")
        if self.time_ns != 0.0:
            raise FaultPlanError(
                "router faults must occur at t=0 (a mid-run router death "
                "would kill the ranks placed on its nodes, which replay "
                f"does not model); got time_ns={self.time_ns}"
            )


@dataclass(frozen=True)
class FaultPlan:
    """A complete, seeded description of one degraded fabric."""

    link_faults: tuple[LinkFault, ...] = ()
    router_faults: tuple[RouterFault, ...] = ()
    #: Provenance: the seed :func:`random_fault_plan` drew from (``None``
    #: for hand-written plans). Folded into the digest so two plans with
    #: different provenance never share a cache key by accident.
    seed: int | None = None

    def __post_init__(self) -> None:
        # Tolerate list inputs (e.g. straight from JSON) by coercing to
        # the hashable tuple form the frozen dataclass requires.
        if not isinstance(self.link_faults, tuple):
            object.__setattr__(self, "link_faults", tuple(self.link_faults))
        if not isinstance(self.router_faults, tuple):
            object.__setattr__(self, "router_faults", tuple(self.router_faults))
        seen_links = set()
        for f in self.link_faults:
            if f.link in seen_links:
                raise FaultPlanError(f"duplicate fault for link {f.link}")
            seen_links.add(f.link)
        seen_routers = set()
        for r in self.router_faults:
            if r.router in seen_routers:
                raise FaultPlanError(f"duplicate fault for router {r.router}")
            seen_routers.add(r.router)

    # ------------------------------------------------------------------
    # identity
    # ------------------------------------------------------------------
    def is_empty(self) -> bool:
        """True when the plan injects nothing (healthy fabric)."""
        return not self.link_faults and not self.router_faults

    @property
    def digest(self) -> str:
        """Stable hex digest of the plan content (cache identity)."""
        payload = json.dumps(dataclasses.asdict(self), sort_keys=True)
        return hashlib.sha256(payload.encode()).hexdigest()

    # ------------------------------------------------------------------
    # topology projection
    # ------------------------------------------------------------------
    def dead_routers(self) -> set[int]:
        return {r.router for r in self.router_faults}

    def dead_nodes(self, topo: "Dragonfly") -> list[int]:
        """Nodes attached to dead routers (excluded from placement)."""
        down = self.dead_routers()
        if not down:
            return []
        return sorted(
            node
            for node in range(topo.num_nodes)
            if topo.router_of(node) in down
        )

    def validate(self, topo: "Dragonfly") -> None:
        """Check the plan against a topology; raise on inconsistency."""
        links = topo.links
        n_links = topo.num_links
        for f in self.link_faults:
            if f.link >= n_links:
                raise FaultPlanError(
                    f"link {f.link} out of range (topology has {n_links})"
                )
            kind = links.kind_of(f.link)
            if kind.is_terminal:
                raise FaultPlanError(
                    f"link {f.link} is a terminal link; only local/global "
                    "links may be faulted (a dead terminal link would "
                    "strand its node's traffic with no reroute)"
                )
        for r in self.router_faults:
            if r.router >= topo.num_routers:
                raise FaultPlanError(
                    f"router {r.router} out of range "
                    f"(topology has {topo.num_routers})"
                )

    def materialize(self, topo: "Dragonfly") -> list[tuple[float, int, float]]:
        """Flatten to per-directed-link ``(time_ns, link, bw_scale)``.

        Router faults expand to every non-terminal link incident to the
        router. When a router fault and a link fault target the same
        link, the router fault (dead at t=0) wins. The list is sorted by
        ``(time, link)``, which is the deterministic application order.
        """
        out: dict[int, tuple[float, float]] = {}
        for f in self.link_faults:
            out[f.link] = (f.time_ns, f.bw_scale)
        down = self.dead_routers()
        if down:
            links = topo.links
            kind = links._kind
            src = links._src
            dst = links._dst
            terminal = (int(LinkKind.TERMINAL_IN), int(LinkKind.TERMINAL_OUT))
            for lid in range(topo.num_links):
                if kind[lid] in terminal:
                    continue
                if src[lid] in down or dst[lid] in down:
                    out[lid] = (0.0, 0.0)
        return sorted(
            (t, lid, scale) for lid, (t, scale) in out.items()
        )

    # ------------------------------------------------------------------
    # JSON round-trip
    # ------------------------------------------------------------------
    def to_json(self) -> dict:
        return {
            "schema": "repro-faults/v1",
            "seed": self.seed,
            "link_faults": [dataclasses.asdict(f) for f in self.link_faults],
            "router_faults": [
                dataclasses.asdict(r) for r in self.router_faults
            ],
        }

    @classmethod
    def from_json(cls, payload: dict) -> "FaultPlan":
        try:
            return cls(
                link_faults=tuple(
                    LinkFault(**f) for f in payload.get("link_faults", ())
                ),
                router_faults=tuple(
                    RouterFault(**r) for r in payload.get("router_faults", ())
                ),
                seed=payload.get("seed"),
            )
        except TypeError as exc:
            raise FaultPlanError(f"malformed fault plan payload: {exc}") from exc


def save_fault_plan(plan: FaultPlan, path: str | os.PathLike) -> Path:
    """Write a plan as pretty-printed JSON; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(plan.to_json(), indent=2, sort_keys=True) + "\n")
    return path


def load_fault_plan(path: str | os.PathLike) -> FaultPlan:
    """Read a plan written by :func:`save_fault_plan`."""
    return FaultPlan.from_json(json.loads(Path(path).read_text()))


# ----------------------------------------------------------------------
# seeded generation
# ----------------------------------------------------------------------
def _undirected_pairs(topo: "Dragonfly") -> list[tuple[int, int]]:
    """Non-terminal ``(forward, reverse)`` link-id pairs, forward-sorted."""
    links = topo.links
    kind = links._kind
    src = links._src
    dst = links._dst
    terminal = (int(LinkKind.TERMINAL_IN), int(LinkKind.TERMINAL_OUT))
    by_endpoints: dict[tuple[int, int], int] = {}
    for lid in range(topo.num_links):
        if kind[lid] in terminal:
            continue
        by_endpoints[(src[lid], dst[lid])] = lid
    pairs = []
    for (a, b), lid in by_endpoints.items():
        if a < b:
            pairs.append((lid, by_endpoints[(b, a)]))
    pairs.sort()
    return pairs


class _LiveGraph:
    """Undirected router graph with removable edges and a BFS probe."""

    def __init__(self, topo: "Dragonfly", pairs: Iterable[tuple[int, int]]):
        links = topo.links
        src = links._src
        dst = links._dst
        self._adj: list[set[int]] = [set() for _ in range(topo.num_routers)]
        self._edges: dict[int, tuple[int, int]] = {}
        for fwd, _rev in pairs:
            a, b = src[fwd], dst[fwd]
            self._adj[a].add(b)
            self._adj[b].add(a)
            self._edges[fwd] = (a, b)
        self._live_routers = set(range(topo.num_routers))

    def remove_edge(self, fwd: int) -> None:
        a, b = self._edges[fwd]
        self._adj[a].discard(b)
        self._adj[b].discard(a)

    def restore_edge(self, fwd: int) -> None:
        a, b = self._edges[fwd]
        if a in self._live_routers and b in self._live_routers:
            self._adj[a].add(b)
            self._adj[b].add(a)

    def remove_router(self, router: int) -> list[int]:
        """Detach a router; returns its (former) neighbours."""
        self._live_routers.discard(router)
        neighbours = sorted(self._adj[router])
        for n in neighbours:
            self._adj[n].discard(router)
        self._adj[router] = set()
        return neighbours

    def restore_router(self, router: int, neighbours: list[int]) -> None:
        self._live_routers.add(router)
        self._adj[router] = set(neighbours)
        for n in neighbours:
            self._adj[n].add(router)

    def connected(self) -> bool:
        live = self._live_routers
        if len(live) <= 1:
            return bool(live)
        start = next(iter(live))
        seen = {start}
        frontier = deque((start,))
        while frontier:
            r = frontier.popleft()
            for n in self._adj[r]:
                if n not in seen:
                    seen.add(n)
                    frontier.append(n)
        return len(seen) == len(live)


def random_fault_plan(
    topo: "Dragonfly",
    rate: float,
    seed: int = 0,
    router_rate: float = 0.0,
    degraded_fraction: float = 0.0,
    onset_window_ns: float = 0.0,
) -> FaultPlan:
    """Draw a seeded fault plan at a per-channel failure ``rate``.

    Each undirected local/global channel fails independently with
    probability ``rate`` (both directed links fault together, as a cable
    cut would); each router fails with probability ``router_rate``. A
    failed channel is dead unless a ``degraded_fraction`` coin flip
    turns it into a bandwidth degradation (scale drawn from
    ``[0.25, 0.75)``). With ``onset_window_ns > 0`` dead-link onsets are
    spread uniformly over that window instead of all landing at t=0.

    **Connectivity guard:** any sampled fault whose (eventual) removal
    would disconnect the live router graph is skipped, so the plan can
    never strand traffic. Same inputs always yield the same plan — the
    draw order is fixed and the RNG stream is derived from ``seed``.
    """
    if not 0.0 <= rate <= 1.0:
        raise FaultPlanError(f"rate must be in [0, 1], got {rate}")
    if not 0.0 <= router_rate <= 1.0:
        raise FaultPlanError(f"router_rate must be in [0, 1], got {router_rate}")
    if not 0.0 <= degraded_fraction <= 1.0:
        raise FaultPlanError(
            f"degraded_fraction must be in [0, 1], got {degraded_fraction}"
        )
    if onset_window_ns < 0.0:
        raise FaultPlanError(f"onset_window_ns must be >= 0, got {onset_window_ns}")

    rng = rng_stream(
        seed, "faults", f"rate={rate:g}", f"router_rate={router_rate:g}"
    )
    pairs = _undirected_pairs(topo)
    graph = _LiveGraph(topo, pairs)

    router_faults: list[RouterFault] = []
    dead_routers: set[int] = set()
    if router_rate > 0.0:
        draws = rng.random(topo.num_routers)
        for router in range(topo.num_routers):
            if draws[router] >= router_rate:
                continue
            neighbours = graph.remove_router(router)
            if graph.connected():
                router_faults.append(RouterFault(router))
                dead_routers.add(router)
            else:
                graph.restore_router(router, neighbours)

    link_faults: list[LinkFault] = []
    if rate > 0.0:
        links = topo.links
        src = links._src
        dst = links._dst
        draws = rng.random(len(pairs))
        for i, (fwd, rev) in enumerate(pairs):
            if draws[i] >= rate:
                continue
            if src[fwd] in dead_routers or dst[fwd] in dead_routers:
                continue  # already dead via the router fault
            degraded = (
                degraded_fraction > 0.0 and rng.random() < degraded_fraction
            )
            if degraded:
                scale = 0.25 + 0.5 * float(rng.random())
                link_faults.append(LinkFault(fwd, 0.0, scale))
                link_faults.append(LinkFault(rev, 0.0, scale))
                continue
            graph.remove_edge(fwd)
            if not graph.connected():
                graph.restore_edge(fwd)
                continue
            onset = (
                float(rng.random()) * onset_window_ns
                if onset_window_ns > 0.0
                else 0.0
            )
            link_faults.append(LinkFault(fwd, onset, 0.0))
            link_faults.append(LinkFault(rev, onset, 0.0))

    return FaultPlan(
        link_faults=tuple(link_faults),
        router_faults=tuple(router_faults),
        seed=seed,
    )


# ----------------------------------------------------------------------
# application
# ----------------------------------------------------------------------
def install_plan(sim, fabric, plan: FaultPlan) -> int:
    """Apply a validated plan to a live fabric.

    Faults at t=0 are applied immediately (before any event runs);
    later onsets are scheduled as ordinary calendar events, so they are
    totally ordered against packet events by ``(time, seq)`` and every
    scheduler executes them identically. Returns the number of directed
    link faults installed.
    """
    events = plan.materialize(fabric.topo)
    for time_ns, link, scale in events:
        if time_ns <= 0.0:
            fabric.apply_link_fault(link, scale)
        else:
            sim.at(time_ns, fabric.apply_link_fault, link, scale)
    return len(events)
