"""repro.faults — deterministic link/router fault injection.

See DESIGN.md §S15 for the fault model: which channels may fail, how
failure-aware routing reroutes around dead ports, and how a
:class:`FaultPlan` participates in experiment cache identity.
"""

from repro.faults.plan import (
    FaultPlan,
    FaultPlanError,
    LinkFault,
    RouterFault,
    install_plan,
    load_fault_plan,
    random_fault_plan,
    save_fault_plan,
)
from repro.faults.routing import (
    DegradedTables,
    FaultAwareAdaptiveRouting,
    FaultAwareMinimalRouting,
    UnreachableError,
    make_fault_aware_routing,
)

__all__ = [
    "DegradedTables",
    "FaultAwareAdaptiveRouting",
    "FaultAwareMinimalRouting",
    "FaultPlan",
    "FaultPlanError",
    "LinkFault",
    "RouterFault",
    "UnreachableError",
    "install_plan",
    "load_fault_plan",
    "make_fault_aware_routing",
    "random_fault_plan",
    "save_fault_plan",
]
