"""Failure-aware routing: the healthy policies, taught to avoid dead ports.

The baseline policies (:class:`~repro.routing.minimal.MinimalRouting`,
:class:`~repro.routing.adaptive.AdaptiveRouting`) pick from route tables
enumerated once per topology — correct only while every channel is up.
The fault-aware subclasses here consult the fabric's liveness state:

* minimal candidates are filtered to routes whose every link is alive;
  when *all* minimal routes for a router pair are severed, a
  deterministic BFS over the live router graph finds the new shortest
  detour (so "minimal" means minimal *on the degraded topology*);
* adaptive keeps its UGAL cost comparison but skips Valiant candidates
  that cross a dead channel, and drops its unloaded-cost memo whenever
  a fault changes link bandwidths mid-run.

Filtered tables are rebuilt only when ``fabric.fault_epoch`` changes
(each applied fault bumps it), so the per-packet cost between fault
onsets stays a cache probe, same as the healthy policies. The subclasses
keep the parent ``name`` ("min"/"adp"): a fault-aware cell reports under
the same routing label, which is what lets the resilience study compare
degraded cells against healthy ones policy-by-policy.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING

from repro.routing.adaptive import AdaptiveRouting
from repro.routing.minimal import MinimalRouting
from repro.routing.paths import valiant_route
from repro.routing.tables import RouteTables, route_tables
from repro.topology.links import LinkKind

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.network.fabric import Fabric
    from repro.topology.dragonfly import Dragonfly

__all__ = [
    "DegradedTables",
    "FaultAwareAdaptiveRouting",
    "FaultAwareMinimalRouting",
    "UnreachableError",
    "make_fault_aware_routing",
]

Path = tuple[int, ...]


class UnreachableError(RuntimeError):
    """No live path exists between two routers.

    :func:`~repro.faults.plan.random_fault_plan` guards connectivity, so
    this only fires for hand-written plans that partition the fabric.
    """


class DegradedTables:
    """The healthy :class:`RouteTables`, filtered by link liveness.

    Holds a reference to the fabric's ``link_down`` list; instances are
    valid for one fault epoch and rebuilt (cheaply — caches refill on
    demand) when another fault lands.
    """

    def __init__(self, topo: "Dragonfly", link_down: list[bool]) -> None:
        self.topo = topo
        self.healthy: RouteTables = route_tables(topo)
        self._down = link_down
        self._minimal: dict[tuple[int, int], tuple[Path, ...]] = {}
        self._adj: list[tuple[tuple[int, int], ...]] | None = None

    def alive(self, path: Path) -> bool:
        """True when no link of ``path`` is down."""
        down = self._down
        for lid in path:
            if down[lid]:
                return False
        return True

    def minimal(self, r1: int, r2: int, limit: int = 8) -> tuple[Path, ...]:
        """Minimum-hop live routes r1 -> r2 on the degraded topology."""
        key = (r1, r2)
        cached = self._minimal.get(key)
        if cached is not None:
            return cached
        down = self._down
        survivors = tuple(
            path
            for path in self.healthy.minimal(r1, r2, limit)
            if all(not down[lid] for lid in path)
        )
        if not survivors:
            survivors = (self._bfs_route(r1, r2),)
        self._minimal[key] = survivors
        return survivors

    # ------------------------------------------------------------------
    def _live_adjacency(self) -> list[tuple[tuple[int, int], ...]]:
        """Per-router ``(dst_router, link)`` pairs over live channels.

        Built lazily — only router pairs whose every healthy minimal
        route is severed ever need it. Adjacency is sorted by link id,
        which (with FIFO BFS) makes the fallback route deterministic.
        """
        adj = self._adj
        if adj is not None:
            return adj
        topo = self.topo
        links = topo.links
        kind = links._kind
        src = links._src
        dst = links._dst
        down = self._down
        terminal = (int(LinkKind.TERMINAL_IN), int(LinkKind.TERMINAL_OUT))
        lists: list[list[tuple[int, int]]] = [
            [] for _ in range(topo.num_routers)
        ]
        for lid in range(topo.num_links):
            if kind[lid] in terminal or down[lid]:
                continue
            lists[src[lid]].append((dst[lid], lid))
        adj = self._adj = [tuple(sorted(pairs)) for pairs in lists]
        return adj

    def _bfs_route(self, r1: int, r2: int) -> Path:
        """Shortest live route when the healthy enumeration is severed."""
        adj = self._live_adjacency()
        # parent[r] = (previous router, link taken into r)
        parent: dict[int, tuple[int, int]] = {r1: (-1, -1)}
        frontier = deque((r1,))
        while frontier:
            r = frontier.popleft()
            if r == r2:
                hops: list[int] = []
                while r != r1:
                    prev, lid = parent[r]
                    hops.append(lid)
                    r = prev
                hops.reverse()
                return tuple(hops)
            for nxt, lid in adj[r]:
                if nxt not in parent:
                    parent[nxt] = (r, lid)
                    frontier.append(nxt)
        raise UnreachableError(
            f"no live path from router {r1} to router {r2}; the fault "
            "plan disconnects the fabric"
        )


class FaultAwareMinimalRouting(MinimalRouting):
    """Minimal routing restricted to live channels.

    Identical random-pick semantics to the parent, applied to the
    degraded candidate set. Keeps ``name = "min"`` so study labels and
    cache tags line up with the healthy policy.
    """

    def __init__(self, seed: int = 0, max_candidates: int = 8) -> None:
        super().__init__(seed=seed, max_candidates=max_candidates)
        self._degraded: DegradedTables | None = None
        self._epoch = -1

    def _tables_for(self, fabric: "Fabric") -> DegradedTables:
        deg = self._degraded
        epoch = fabric.fault_epoch
        if deg is None or deg.topo is not fabric.topo or epoch != self._epoch:
            deg = self._degraded = DegradedTables(fabric.topo, fabric.link_down)
            self._epoch = epoch
        return deg

    def route(
        self, fabric: "Fabric", src_router: int, dst_node: int, size: int
    ) -> list[int]:
        topo = fabric.topo
        dst_router = topo._node_router[dst_node]
        routes = self._tables_for(fabric).minimal(
            src_router, dst_router, self.max_candidates
        )
        n = len(routes)
        # randrange(n) delegates to the same _randbelow(n) draw the
        # healthy policy makes, so pick sequences stay aligned.
        pick = routes[0] if n == 1 else routes[self._rng.randrange(n)]
        return [*pick, topo._terminal_out_l[dst_node]]


class FaultAwareAdaptiveRouting(AdaptiveRouting):
    """UGAL-style adaptive routing that skips faulted candidates.

    Minimal candidates come from the degraded tables; Valiant detours
    are sampled as usual but discarded when they cross a dead channel
    (the detour through a severed intermediate group simply loses the
    cost comparison by forfeit). Degraded-but-alive links stay eligible
    — their reduced bandwidth shows up in the cost estimate, which is
    exactly how adaptive routing is supposed to react to a brown-out.
    """

    def __init__(self, seed: int = 0, **kwargs) -> None:
        super().__init__(seed=seed, **kwargs)
        self._degraded: DegradedTables | None = None
        self._epoch = -1

    def _tables_for(self, fabric: "Fabric") -> DegradedTables:
        deg = self._degraded
        epoch = fabric.fault_epoch
        if deg is None or deg.topo is not fabric.topo or epoch != self._epoch:
            deg = self._degraded = DegradedTables(fabric.topo, fabric.link_down)
            self._epoch = epoch
            # A fault may have rescaled link bandwidth, so every cached
            # unloaded traversal time is suspect.
            self._unloaded.clear()
        return deg

    def route(
        self, fabric: "Fabric", src_router: int, dst_node: int, size: int
    ) -> list[int]:
        topo = fabric.topo
        dst_router = topo._node_router[dst_node]
        rng = self._rng
        tables = self._tables_for(fabric)

        candidates = tables.minimal(
            src_router, dst_router, self._minimal.max_candidates
        )
        if len(candidates) > self.minimal_candidates:
            candidates = tuple(rng.sample(candidates, self.minimal_candidates))

        best_path: Path | None = None
        best_cost = float("inf")
        best_is_min = True
        for path in candidates:
            cost = self.candidate_cost(fabric, path, size)
            if cost < best_cost:
                best_cost, best_path, best_is_min = cost, path, True

        if src_router != dst_router:
            weight = self.nonminimal_weight
            bias = self.minimal_bias_ns
            healthy = tables.healthy
            down = fabric.link_down
            for _ in range(self.nonminimal_candidates):
                path = valiant_route(healthy, src_router, dst_router, rng)
                dead = False
                for lid in path:
                    if down[lid]:
                        dead = True
                        break
                if dead:
                    continue
                cost = self.candidate_cost(fabric, path, size) * weight + bias
                if cost < best_cost:
                    best_cost, best_path, best_is_min = cost, path, False

        assert best_path is not None
        if best_is_min:
            self.minimal_taken += 1
        else:
            self.nonminimal_taken += 1
            if fabric.obs is not None:
                fabric.obs.on_adaptive_divert(
                    fabric.sim.now, src_router, len(best_path)
                )
        return [*best_path, topo._terminal_out_l[dst_node]]


def make_fault_aware_routing(name: str, seed: int = 0):
    """Fault-aware counterpart of :func:`repro.routing.make_routing`."""
    if name == "min":
        return FaultAwareMinimalRouting(seed=seed)
    if name == "adp":
        return FaultAwareAdaptiveRouting(seed=seed)
    raise ValueError(f"unknown routing policy {name!r}")
