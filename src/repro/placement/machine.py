"""Allocation bookkeeping for a dragonfly machine.

Tracks which nodes are free and hands out allocations through a
placement policy; the remainder (used for the paper's synthetic
background job, which "occupies all the nodes in the system that are not
assigned to the target application") is available via
:meth:`Machine.free_nodes`.
"""

from __future__ import annotations

from repro.config import DragonflyParams
from repro.engine.rng import rng_stream

__all__ = ["Machine"]


class Machine:
    """Node inventory of one dragonfly system.

    Two allocation surfaces share one free pool:

    * :meth:`allocate` / :meth:`release` — anonymous node lists, for
      one-shot drivers that manage their own bookkeeping;
    * :meth:`claim_nodes` / :meth:`release_job` — job-keyed claims, for
      schedulers: the machine remembers which nodes each job holds, so
      the caller cannot double-release or leak an allocation.
    """

    def __init__(self, params: DragonflyParams) -> None:
        self.params = params
        self._free: set[int] = set(range(params.num_nodes))
        self._claims: dict[object, list[int]] = {}

    @property
    def num_nodes(self) -> int:
        return self.params.num_nodes

    @property
    def num_free(self) -> int:
        return len(self._free)

    def free_nodes(self) -> list[int]:
        """Free nodes in natural (locality-preserving) order."""
        return sorted(self._free)

    def mark_down(self, nodes) -> None:
        """Remove ``nodes`` from the free pool without allocating them.

        Used by fault injection: nodes attached to a failed router are
        drained before placement (mirroring how a scheduler fences a
        failed blade), so neither the application nor the background job
        can land on them. Already-removed nodes are tolerated.
        """
        for n in nodes:
            if not 0 <= n < self.params.num_nodes:
                raise ValueError(f"node {n} out of range")
        self._free.difference_update(nodes)

    def allocate(self, policy, num_nodes: int, seed: int = 0) -> list[int]:
        """Allocate ``num_nodes`` through ``policy`` (name or instance).

        The returned list order defines the rank-to-node mapping (rank i
        runs on the i-th node).
        """
        from repro.placement.policies import PlacementPolicy, make_placement

        if isinstance(policy, str):
            policy = make_placement(policy)
        if not isinstance(policy, PlacementPolicy):
            raise TypeError(f"not a placement policy: {policy!r}")
        if num_nodes < 1:
            raise ValueError("must allocate at least one node")
        if num_nodes > len(self._free):
            raise ValueError(
                f"requested {num_nodes} nodes but only {len(self._free)} free"
            )
        rng = rng_stream(seed, "placement", policy.name)
        nodes = policy.select(self.params, self.free_nodes(), num_nodes, rng)
        if len(nodes) != num_nodes or len(set(nodes)) != num_nodes:
            raise AssertionError(
                f"policy {policy.name} returned an invalid allocation"
            )
        missing = set(nodes) - self._free
        if missing:
            raise AssertionError(
                f"policy {policy.name} allocated non-free nodes {sorted(missing)[:5]}"
            )
        self._free.difference_update(nodes)
        return nodes

    def release(self, nodes: list[int]) -> None:
        """Return an allocation to the free pool."""
        for n in nodes:
            if n in self._free:
                raise ValueError(f"node {n} is already free")
            if not 0 <= n < self.params.num_nodes:
                raise ValueError(f"node {n} out of range")
        self._free.update(nodes)

    # ------------------------------------------------------------------
    # job-keyed claims (scheduler surface)
    # ------------------------------------------------------------------
    @property
    def num_claimed(self) -> int:
        """Nodes currently held by job-keyed claims."""
        return sum(len(nodes) for nodes in self._claims.values())

    def claimed_jobs(self) -> list[object]:
        """Job keys with a live claim, in claim order."""
        return list(self._claims)

    def allocation_of(self, job_id: object) -> list[int]:
        """The nodes held by ``job_id`` (a copy)."""
        return list(self._claims[job_id])

    def claim_nodes(
        self, job_id: object, policy, num_nodes: int, seed: int = 0
    ) -> list[int]:
        """Allocate ``num_nodes`` through ``policy`` and record the claim.

        Exactly :meth:`allocate`, plus the machine remembers the nodes
        under ``job_id`` until :meth:`release_job`. Raises if the job
        already holds a claim.
        """
        if job_id in self._claims:
            raise ValueError(f"job {job_id!r} already holds an allocation")
        nodes = self.allocate(policy, num_nodes, seed=seed)
        self._claims[job_id] = nodes
        return list(nodes)

    def release_job(self, job_id: object) -> list[int]:
        """Free the claim held by ``job_id``; returns the released nodes."""
        try:
            nodes = self._claims.pop(job_id)
        except KeyError:
            raise KeyError(f"job {job_id!r} holds no allocation") from None
        self.release(nodes)
        return nodes
