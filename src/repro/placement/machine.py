"""Allocation bookkeeping for a dragonfly machine.

Tracks which nodes are free and hands out allocations through a
placement policy; the remainder (used for the paper's synthetic
background job, which "occupies all the nodes in the system that are not
assigned to the target application") is available via
:meth:`Machine.free_nodes`.
"""

from __future__ import annotations

from repro.config import DragonflyParams
from repro.engine.rng import rng_stream

__all__ = ["Machine"]


class Machine:
    """Node inventory of one dragonfly system."""

    def __init__(self, params: DragonflyParams) -> None:
        self.params = params
        self._free: set[int] = set(range(params.num_nodes))

    @property
    def num_nodes(self) -> int:
        return self.params.num_nodes

    @property
    def num_free(self) -> int:
        return len(self._free)

    def free_nodes(self) -> list[int]:
        """Free nodes in natural (locality-preserving) order."""
        return sorted(self._free)

    def mark_down(self, nodes) -> None:
        """Remove ``nodes`` from the free pool without allocating them.

        Used by fault injection: nodes attached to a failed router are
        drained before placement (mirroring how a scheduler fences a
        failed blade), so neither the application nor the background job
        can land on them. Already-removed nodes are tolerated.
        """
        for n in nodes:
            if not 0 <= n < self.params.num_nodes:
                raise ValueError(f"node {n} out of range")
        self._free.difference_update(nodes)

    def allocate(self, policy, num_nodes: int, seed: int = 0) -> list[int]:
        """Allocate ``num_nodes`` through ``policy`` (name or instance).

        The returned list order defines the rank-to-node mapping (rank i
        runs on the i-th node).
        """
        from repro.placement.policies import PlacementPolicy, make_placement

        if isinstance(policy, str):
            policy = make_placement(policy)
        if not isinstance(policy, PlacementPolicy):
            raise TypeError(f"not a placement policy: {policy!r}")
        if num_nodes < 1:
            raise ValueError("must allocate at least one node")
        if num_nodes > len(self._free):
            raise ValueError(
                f"requested {num_nodes} nodes but only {len(self._free)} free"
            )
        rng = rng_stream(seed, "placement", policy.name)
        nodes = policy.select(self.params, self.free_nodes(), num_nodes, rng)
        if len(nodes) != num_nodes or len(set(nodes)) != num_nodes:
            raise AssertionError(
                f"policy {policy.name} returned an invalid allocation"
            )
        missing = set(nodes) - self._free
        if missing:
            raise AssertionError(
                f"policy {policy.name} allocated non-free nodes {sorted(missing)[:5]}"
            )
        self._free.difference_update(nodes)
        return nodes

    def release(self, nodes: list[int]) -> None:
        """Return an allocation to the free pool."""
        for n in nodes:
            if n in self._free:
                raise ValueError(f"node {n} is already free")
            if not 0 <= n < self.params.num_nodes:
                raise ValueError(f"node {n} out of range")
        self._free.update(nodes)
