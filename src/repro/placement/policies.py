"""The five placement policies of the paper (Section III-B).

Each policy selects ``n`` nodes from the machine's free pool:

* **Contiguous** (``cont``) — consecutive free nodes in natural order;
  minimum router count, maximum locality, maximum local-link contention.
* **Random-cabinet** (``cab``) — cabinets in random order, nodes within a
  cabinet contiguous.
* **Random-chassis** (``chas``) — chassis in random order, contiguous
  inside.
* **Random-router** (``rotr``) — routers in random order, the nodes of a
  router contiguous.
* **Random-node** (``rand``) — a uniformly random selection of nodes;
  maximum traffic balance, maximum hop count.

Policies are pure: they never mutate the free list (the
:class:`~repro.placement.machine.Machine` owns allocation state).
"""

from __future__ import annotations

import abc
from typing import Callable, Sequence

import numpy as np

from repro.config import DragonflyParams
from repro.topology.geometry import node_cabinet, node_chassis, node_router

__all__ = [
    "PlacementPolicy",
    "ContiguousPlacement",
    "RandomCabinetPlacement",
    "RandomChassisPlacement",
    "RandomRouterPlacement",
    "RandomNodePlacement",
    "make_placement",
    "PLACEMENT_NAMES",
]

#: Table I short names, in the paper's column order.
PLACEMENT_NAMES = ("cont", "cab", "chas", "rotr", "rand")


class PlacementPolicy(abc.ABC):
    """Strategy selecting which free nodes a job receives."""

    #: Table I short name.
    name: str = "?"

    @abc.abstractmethod
    def select(
        self,
        params: DragonflyParams,
        free: Sequence[int],
        n: int,
        rng: np.random.Generator,
    ) -> list[int]:
        """Pick ``n`` distinct nodes from ``free`` (sorted ascending)."""


class ContiguousPlacement(PlacementPolicy):
    """First ``n`` free nodes in natural order."""

    name = "cont"

    def select(self, params, free, n, rng):
        return list(free[:n])


class _GroupedRandomPlacement(PlacementPolicy):
    """Shared machinery: shuffle containers, fill contiguously inside."""

    def __init__(self, container_of: Callable[[DragonflyParams, int], int]):
        self._container_of = container_of

    def select(self, params, free, n, rng):
        buckets: dict[int, list[int]] = {}
        for node in free:  # `free` is sorted, so buckets stay sorted inside
            buckets.setdefault(self._container_of(params, node), []).append(node)
        order = rng.permutation(sorted(buckets))
        out: list[int] = []
        for container in order:
            chunk = buckets[int(container)]
            take = min(len(chunk), n - len(out))
            out.extend(chunk[:take])
            if len(out) == n:
                break
        return out


class RandomCabinetPlacement(_GroupedRandomPlacement):
    """Random cabinets, contiguous nodes within each cabinet."""

    name = "cab"

    def __init__(self) -> None:
        super().__init__(node_cabinet)


class RandomChassisPlacement(_GroupedRandomPlacement):
    """Random chassis, contiguous nodes within each chassis."""

    name = "chas"

    def __init__(self) -> None:
        super().__init__(node_chassis)


class RandomRouterPlacement(_GroupedRandomPlacement):
    """Random routers, the nodes of each router contiguous."""

    name = "rotr"

    def __init__(self) -> None:
        super().__init__(node_router)


class RandomNodePlacement(PlacementPolicy):
    """Uniformly random nodes across the whole machine."""

    name = "rand"

    def select(self, params, free, n, rng):
        picks = rng.permutation(len(free))[:n]
        free = list(free)
        return [free[int(i)] for i in picks]


_POLICIES: dict[str, type] = {
    "cont": ContiguousPlacement,
    "cab": RandomCabinetPlacement,
    "chas": RandomChassisPlacement,
    "rotr": RandomRouterPlacement,
    "rand": RandomNodePlacement,
}

_ALIASES = {
    "contiguous": "cont",
    "random-cabinet": "cab",
    "random-chassis": "chas",
    "random-router": "rotr",
    "random-node": "rand",
}


def make_placement(name: str) -> PlacementPolicy:
    """Construct a placement policy from its Table-I (or long) name."""
    key = _ALIASES.get(name, name)
    cls = _POLICIES.get(key)
    if cls is None:
        raise ValueError(
            f"unknown placement {name!r}; known: {sorted(_POLICIES)} "
            f"or long forms {sorted(_ALIASES)}"
        )
    return cls()
