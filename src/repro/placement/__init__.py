"""Job placement policies (paper Section III-B).

Five policies spanning the locality spectrum, from fully localized
(``contiguous``) to fully spread (``random-node``), with cabinet,
chassis, and router granularities in between. Table I short names:
``cont``, ``cab``, ``chas``, ``rotr``, ``rand``.
"""

from repro.placement.machine import Machine
from repro.placement.policies import (
    PLACEMENT_NAMES,
    ContiguousPlacement,
    PlacementPolicy,
    RandomCabinetPlacement,
    RandomChassisPlacement,
    RandomNodePlacement,
    RandomRouterPlacement,
    make_placement,
)

__all__ = [
    "Machine",
    "PlacementPolicy",
    "ContiguousPlacement",
    "RandomCabinetPlacement",
    "RandomChassisPlacement",
    "RandomRouterPlacement",
    "RandomNodePlacement",
    "make_placement",
    "PLACEMENT_NAMES",
]
