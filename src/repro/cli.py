"""Command-line interface: ``dragonfly-tradeoff <command>``.

Commands mirror the paper's three analysis steps plus utilities:

* ``study``        — Section IV-A grid for one app (Figures 3-6 data)
* ``sensitivity``  — Section IV-B message-size sweep (Figure 7 data)
* ``interference`` — Section IV-C background-traffic study (Figures 8-10)
* ``resilience``   — failure-rate sweep over the grid (repro.faults)
* ``fidelity``     — flow-vs-packet cross-fidelity check (repro.flow)
* ``replay``       — replay a repro-dumpi trace file (or a param-style
  JSON comms trace, detected by the ``.json`` suffix)
* ``training-tradeoff`` — the placement x routing grid on the DL
  training family (repro.mlcomms), exported as repro-mlcomms/v1
* ``characterize`` — print an app's communication matrix summary (Fig 2)
* ``cluster-stream`` — online cluster scenario: seeded job stream,
  FCFS(+backfill) scheduling, epoch-cached interference (repro.cluster)
* ``nomenclature`` — print Table I

Fault injection (DESIGN.md §S15) is available on every simulating
command: ``--faults plan.json`` loads an explicit
:class:`~repro.faults.FaultPlan`, or ``--fault-rate R`` draws a seeded
one (``--fault-seed``) for the chosen preset's topology.

``--backend flow`` switches any simulating command to the fast
flow-level model (DESIGN.md §S16); it does not support ``--obs`` or
fault injection.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro import config as cfg
from repro.apps import APP_BUILDERS
from repro.core.interference import BackgroundSpec, interference_study
from repro.core.report import (
    format_box_table,
    format_cdf_table,
    format_series_table,
    key_findings,
    nomenclature_table,
)
from repro.core.sensitivity import PAPER_SCALES, sensitivity_sweep
from repro.cluster.scheduler import SCHED_POLICIES
from repro.core.study import TradeoffStudy
from repro.core.runner import run_single
from repro.engine.queues import SCHEDULER_NAMES
from repro.exec.progress import TextReporter
from repro.flow import BACKEND_NAMES
from repro.mpi.dumpi import load_trace
from repro.obs import ObsConfig, export as obs_export

__all__ = ["main"]

_PRESETS = {
    "theta": cfg.theta,
    "medium": cfg.medium,
    "small": cfg.small,
    "tiny": cfg.tiny,
}


def _add_common(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--preset",
        choices=sorted(_PRESETS),
        default="small",
        help="machine preset (default: small)",
    )
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--ranks", type=int, default=64, help="application rank count"
    )
    p.add_argument(
        "--msg-scale",
        type=float,
        default=0.05,
        help="scale applied to the paper's full-size message loads "
        "(keep small on small presets)",
    )
    p.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for grid/sweep cells (1 = serial, the "
        "default; results are identical at any worker count)",
    )
    p.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="disk result cache; re-runs only simulate changed cells",
    )
    p.add_argument(
        "--flow-batch",
        type=int,
        default=0,
        metavar="N",
        help="batch flow-backend cells N at a time per executor task "
        "(shared route-model reuse; a pure performance knob — results "
        "and cache keys are identical at any batch size; 0 = off)",
    )
    p.add_argument(
        "--progress",
        action="store_true",
        help="print per-cell progress/ETA telemetry to stderr",
    )
    p.add_argument(
        "--obs",
        action="store_true",
        help="record time-resolved per-link telemetry (repro.obs) on "
        "every simulated cell",
    )
    p.add_argument(
        "--obs-window-ns",
        type=float,
        default=50_000.0,
        metavar="NS",
        help="observability sampling window in simulated ns "
        "(default: 50000)",
    )
    p.add_argument(
        "--obs-out",
        default=None,
        metavar="DIR",
        help="export per-cell telemetry (one file per cell) under this "
        "directory; implies --obs",
    )
    p.add_argument(
        "--obs-format",
        choices=("jsonl", "csv"),
        default="jsonl",
        help="telemetry export format (default: jsonl)",
    )
    p.add_argument(
        "--backend",
        choices=BACKEND_NAMES,
        default="packet",
        help="simulation model: the exact packet engine or the fast "
        "flow-level approximation (default: packet)",
    )
    p.add_argument(
        "--scheduler",
        choices=SCHEDULER_NAMES,
        default="heap",
        help="engine event-queue implementation; a pure performance "
        "knob — results are bit-identical under every choice "
        "(default: heap)",
    )
    p.add_argument(
        "--faults",
        default=None,
        metavar="PLAN.json",
        help="inject the fault plan loaded from this JSON file "
        "(see repro.faults.save_fault_plan)",
    )
    p.add_argument(
        "--fault-rate",
        type=float,
        default=0.0,
        metavar="R",
        help="draw a seeded fault plan failing each local/global "
        "channel with probability R (ignored when --faults is given)",
    )
    p.add_argument(
        "--fault-seed",
        type=int,
        default=0,
        help="seed for the drawn fault plan (default: 0)",
    )


def _exec_opts(args) -> dict:
    """The repro.exec keyword arguments shared by all study commands."""
    return {
        "max_workers": args.workers,
        "cache_dir": args.cache_dir,
        "progress": TextReporter() if args.progress else None,
        "flow_batch": args.flow_batch,
    }


def _obs_config(args) -> ObsConfig | None:
    """The observability configuration implied by the CLI flags."""
    if not (args.obs or args.obs_out):
        return None
    return ObsConfig(window_ns=args.obs_window_ns)


def _fault_plan(args, config):
    """The fault plan implied by --faults / --fault-rate, or None."""
    if getattr(args, "faults", None):
        from repro.faults import load_fault_plan

        return load_fault_plan(args.faults)
    if getattr(args, "fault_rate", 0.0) > 0.0:
        from repro.core.runner import build_topology
        from repro.faults import random_fault_plan

        return random_fault_plan(
            build_topology(config.topology),
            args.fault_rate,
            seed=args.fault_seed,
        )
    return None


def _export_study_obs(result, args) -> None:
    """Write one telemetry file per observed cell of a grid study."""
    if args.obs_out is None:
        return
    out = Path(args.obs_out)
    written = 0
    for (app, placement, routing), run in result.runs.items():
        if run.obs is None:
            continue
        obs_export(run.obs, out / f"{app}-{placement}-{routing}.{args.obs_format}")
        written += 1
    print(f"obs: wrote {written} telemetry file(s) to {out}/", file=sys.stderr)


def _build_trace(args):
    """Build the requested app trace at the CLI's rank count and scale."""
    builder = APP_BUILDERS[args.app]
    trace = builder(num_ranks=args.ranks, seed=args.seed)
    if args.msg_scale != 1.0:
        trace = trace.scaled(args.msg_scale)
    return trace


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="dragonfly-tradeoff",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_study = sub.add_parser("study", help="placement x routing grid")
    p_study.add_argument("app", choices=sorted(APP_BUILDERS))
    _add_common(p_study)

    p_sens = sub.add_parser("sensitivity", help="message-size sweep")
    p_sens.add_argument("app", choices=sorted(APP_BUILDERS))
    _add_common(p_sens)

    p_intf = sub.add_parser("interference", help="background-traffic study")
    p_intf.add_argument("app", choices=sorted(APP_BUILDERS))
    p_intf.add_argument(
        "--pattern", choices=("uniform", "bursty"), default="uniform"
    )
    p_intf.add_argument("--bg-bytes", type=int, default=4096)
    p_intf.add_argument("--bg-interval-us", type=float, default=5.0)
    p_intf.add_argument("--bg-fanout", type=int, default=None)
    _add_common(p_intf)

    p_res = sub.add_parser(
        "resilience", help="failure-rate sweep over the grid"
    )
    p_res.add_argument("app", choices=sorted(APP_BUILDERS))
    p_res.add_argument(
        "--rates",
        default="0.02,0.05,0.1",
        metavar="R1,R2,...",
        help="comma-separated per-channel failure rates to sweep "
        "(a healthy rate-0 baseline is always included)",
    )
    p_res.add_argument(
        "--router-rate",
        type=float,
        default=0.0,
        metavar="R",
        help="per-router whole-router failure probability (default: 0)",
    )
    p_res.add_argument(
        "--out",
        default=None,
        metavar="PATH.json",
        help="write the full per-cell degradation summary as JSON",
    )
    _add_common(p_res)

    p_fid = sub.add_parser(
        "fidelity", help="flow-vs-packet cross-fidelity check"
    )
    p_fid.add_argument("app", choices=sorted(APP_BUILDERS))
    p_fid.add_argument(
        "--out",
        default=None,
        metavar="PATH.json",
        help="write the repro-fidelity/v1 report as JSON",
    )
    _add_common(p_fid)

    p_replay = sub.add_parser(
        "replay",
        help="replay a repro-dumpi trace file (.json = param comms trace)",
    )
    p_replay.add_argument("trace_file")
    p_replay.add_argument("--placement", default="cont")
    p_replay.add_argument("--routing", default="min")
    p_replay.add_argument(
        "--trace-ranks", type=int, default=None, metavar="N",
        help="rank count for bare-list JSON comms traces without a "
        "num_ranks header",
    )
    _add_common(p_replay)

    p_tt = sub.add_parser(
        "training-tradeoff",
        help="placement x routing grid for the DL training family "
        "(repro.mlcomms)",
    )
    p_tt.add_argument(
        "--apps", default="DP,PP,TP,MOE", metavar="A,B,...",
        help="synthetic training apps to run (default: DP,PP,TP,MOE; "
        "empty to study only imported traces)",
    )
    p_tt.add_argument(
        "--trace", action="append", default=[], metavar="TRACE.json",
        help="also study this imported param-style comms trace "
        "(repeatable)",
    )
    p_tt.add_argument(
        "--trace-ranks", type=int, default=None, metavar="N",
        help="rank count for imported bare-list traces without a "
        "num_ranks header",
    )
    p_tt.add_argument(
        "--out", default=None, metavar="PATH.json",
        help="write the repro-mlcomms/v1 report as JSON",
    )
    _add_common(p_tt)

    p_char = sub.add_parser("characterize", help="trace characterisation")
    p_char.add_argument("app", choices=sorted(APP_BUILDERS))
    _add_common(p_char)

    p_adv = sub.add_parser(
        "advise", help="recommend a placement/routing configuration"
    )
    p_adv.add_argument("app", choices=sorted(APP_BUILDERS))
    p_adv.add_argument(
        "--shared", action="store_true", help="network shared with other jobs"
    )
    p_adv.add_argument(
        "--bursty",
        action="store_true",
        help="bursty external traffic expected (implies --shared)",
    )
    p_adv.add_argument(
        "--funnel",
        action="store_true",
        help="run the three-tier advisor funnel (surrogate rank -> "
        "flow screen -> packet validate) instead of the rule table",
    )
    p_adv.add_argument(
        "--routing", choices=("min", "adp"), default="min",
        help="routing policy the funnel optimises for (default: min)",
    )
    p_adv.add_argument(
        "--model", default=None, metavar="MODEL.json",
        help="load a fitted repro-advisor-model/v1 surrogate",
    )
    p_adv.add_argument(
        "--train-cache", default=None, metavar="DIR",
        help="train the surrogate on the RunResults in this exec cache "
        "(built-in app traces at the current --ranks/--msg-scale)",
    )
    p_adv.add_argument(
        "--save-model", default=None, metavar="MODEL.json",
        help="save the (loaded or trained) surrogate as versioned JSON",
    )
    p_adv.add_argument(
        "--candidates-per-policy", type=int, default=1, metavar="N",
        help="seeded allocation draws per placement policy (default: 1 "
        "— the paper's 5-policy grid)",
    )
    p_adv.add_argument(
        "--screen-top", type=int, default=5, metavar="N",
        help="candidates the flow backend screens (default: 5)",
    )
    p_adv.add_argument(
        "--validate-top", type=int, default=2, metavar="N",
        help="candidates the packet backend validates (default: 2; "
        "0 recommends the flow winner directly)",
    )
    p_adv.add_argument(
        "--exhaustive", action="store_true",
        help="also flow-screen every candidate and report whether the "
        "funnel found the exhaustive optimum",
    )
    p_adv.add_argument(
        "--out", default=None, metavar="PATH.json",
        help="write the repro-advisor-funnel/v1 report as JSON",
    )
    _add_common(p_adv)

    p_cs = sub.add_parser(
        "cluster-stream",
        help="online cluster scenario over simulated hours (repro.cluster)",
    )
    p_cs.add_argument(
        "--preset", choices=sorted(_PRESETS), default="tiny",
        help="machine preset (default: tiny)",
    )
    p_cs.add_argument("--seed", type=int, default=0)
    p_cs.add_argument(
        "--duration", type=float, default=2.0, metavar="HOURS",
        help="simulated arrival window in hours (default: 2); the "
        "stream drains after arrivals stop",
    )
    p_cs.add_argument(
        "--load", type=float, default=0.6,
        help="offered machine utilisation in [0,~1] (default: 0.6)",
    )
    p_cs.add_argument(
        "--mix", default="AMG=1,CR=1,FB=1", metavar="APP=W,...",
        help="workload mix with arrival weights (default: AMG=1,CR=1,FB=1)",
    )
    p_cs.add_argument(
        "--policy", choices=SCHED_POLICIES, default="cont",
        help="placement policy per job, 'advisor' to consult "
        "repro.core.advisor per job, or 'surrogate' to consult a "
        "fitted model (needs --model) (default: cont)",
    )
    p_cs.add_argument(
        "--model", default=None, metavar="MODEL.json",
        help="fitted repro-advisor-model/v1 surrogate for "
        "--policy surrogate",
    )
    p_cs.add_argument(
        "--routing", choices=("min", "adp"), default="adp",
        help="stream-wide routing policy (default: adp)",
    )
    p_cs.add_argument(
        "--backend", choices=BACKEND_NAMES, default="flow",
        help="network model for epoch cells (default: flow)",
    )
    p_cs.add_argument(
        "--backfill", action="store_true",
        help="let later queued jobs start when the head does not fit",
    )
    p_cs.add_argument(
        "--validate-every", type=int, default=0, metavar="K",
        help="spot-check every K-th flow epoch on the packet backend "
        "(0 = off)",
    )
    p_cs.add_argument("--workers", type=int, default=1)
    p_cs.add_argument(
        "--flow-batch", type=int, default=0, metavar="N",
        help="batch flow epoch cells N at a time per executor task "
        "(results identical at any batch size; 0 = off)",
    )
    p_cs.add_argument("--cache-dir", default=None, metavar="DIR")
    p_cs.add_argument("--progress", action="store_true")
    p_cs.add_argument("--faults", default=None, metavar="PLAN.json")
    p_cs.add_argument("--fault-rate", type=float, default=0.0, metavar="R")
    p_cs.add_argument("--fault-seed", type=int, default=0)
    p_cs.add_argument(
        "--out", default=None, metavar="PATH.json",
        help="write the repro-cluster-stream/v1 document as JSON",
    )

    sub.add_parser("nomenclature", help="print Table I")

    args = parser.parse_args(argv)

    if args.command == "nomenclature":
        print(nomenclature_table())
        return 0

    config = _PRESETS[args.preset]().with_seed(args.seed)

    if (
        getattr(args, "backend", "packet") == "flow"
        and args.command != "cluster-stream"
    ):
        # cluster-stream is exempt: it supports router-fault fencing on
        # the flow backend (run_stream validates the rest itself).
        if args.obs or args.obs_out:
            parser.error("--backend flow does not support --obs telemetry")
        if args.faults or args.fault_rate > 0.0:
            parser.error("--backend flow does not support fault injection")
        if args.command == "resilience":
            parser.error("resilience requires the packet backend")

    if args.command == "study":
        trace = _build_trace(args)
        result = TradeoffStudy(
            config, {args.app: trace}, seed=args.seed, obs=_obs_config(args),
            scheduler=args.scheduler, faults=_fault_plan(args, config),
            backend=args.backend,
        ).run(verbose=True, **_exec_opts(args))
        _export_study_obs(result, args)
        print()
        print(
            format_box_table(
                result.comm_time_boxes(args.app),
                f"{args.app} communication time (Figure 3)",
            )
        )
        print()
        print(
            format_cdf_table(
                result.traffic_cdf(args.app, "local"),
                f"{args.app} local channel traffic (Figures 4-6)",
                "MB",
            )
        )
        findings = key_findings(result)[args.app]
        print(f"\nbest configuration: {findings['best']}")
        return 0

    if args.command == "sensitivity":
        trace = _build_trace(args)
        scales = PAPER_SCALES[args.app]
        sens = sensitivity_sweep(
            config, trace, scales, seed=args.seed, obs=_obs_config(args),
            scheduler=args.scheduler, faults=_fault_plan(args, config),
            backend=args.backend, **_exec_opts(args),
        )
        rel = sens.relative()
        print(
            format_series_table(
                sens.scales,
                rel,
                f"{args.app} max comm time relative to rand-adp, % (Figure 7)",
            )
        )
        return 0

    if args.command == "interference":
        trace = _build_trace(args)
        spec = BackgroundSpec(
            pattern=args.pattern,
            message_bytes=args.bg_bytes,
            interval_ns=args.bg_interval_us * 1000.0,
            fanout=args.bg_fanout,
        )
        result = interference_study(
            config, trace, spec, seed=args.seed, obs=_obs_config(args),
            scheduler=args.scheduler, faults=_fault_plan(args, config),
            backend=args.backend, **_exec_opts(args),
        )
        _export_study_obs(result, args)
        print(
            format_box_table(
                result.comm_time_boxes(args.app),
                f"{args.app} comm time under {args.pattern} background "
                "(Figures 8-10)",
            )
        )
        return 0

    if args.command == "resilience":
        from repro.core.resilience import resilience_study

        trace = _build_trace(args)
        try:
            rates = [float(r) for r in args.rates.split(",") if r.strip()]
        except ValueError:
            parser.error(f"--rates must be comma-separated floats: {args.rates!r}")
        res = resilience_study(
            config,
            {args.app: trace},
            rates,
            seed=args.seed,
            fault_seed=args.fault_seed,
            router_rate=args.router_rate,
            obs=_obs_config(args),
            scheduler=args.scheduler,
            **_exec_opts(args),
        )
        print(f"{args.app} communication-time degradation vs healthy (%)")
        labels = res.labels()
        header = f"{'rate':>6} " + " ".join(f"{lb:>10}" for lb in labels)
        print(header)
        for rate in res.rates[1:]:
            row = [f"{rate:>6g}"]
            for lb in labels:
                row.append(f"{res.degradation_pct(args.app, lb, rate):>10.2f}")
            print(" ".join(row))
        for rate in res.rates[1:]:
            policy = res.policy_degradation(args.app, rate)
            summary = ", ".join(f"{k}: {v:+.2f}%" for k, v in policy.items())
            print(f"rate {rate:g} placement-averaged degradation — {summary}")
        if args.out is not None:
            res.save_json(args.out)
            print(f"wrote {args.out}", file=sys.stderr)
        return 0

    if args.command == "fidelity":
        from repro.flow import fidelity_report

        trace = _build_trace(args)
        fid = fidelity_report(
            config,
            {args.app: trace},
            seed=args.seed,
            scheduler=args.scheduler,
            **_exec_opts(args),
        )
        print(fid.format_table())
        if args.out is not None:
            fid.save_json(args.out)
            print(f"wrote {args.out}", file=sys.stderr)
        return 0

    if args.command == "training-tradeoff":
        from repro.mlcomms import (
            TraceImportError,
            default_training_traces,
            load_comms_trace,
            training_tradeoff,
        )

        apps = tuple(
            a.strip().upper() for a in args.apps.split(",") if a.strip()
        )
        try:
            traces = (
                default_training_traces(
                    args.ranks,
                    msg_scale=args.msg_scale,
                    seed=args.seed,
                    apps=apps,
                )
                if apps
                else {}
            )
        except ValueError as exc:
            parser.error(str(exc))
        for path in args.trace:
            try:
                t = load_comms_trace(path, num_ranks=args.trace_ranks)
            except TraceImportError as exc:
                parser.error(f"{path}: {exc}")
            if args.msg_scale != 1.0:
                t = t.scaled(args.msg_scale)
            traces[t.name] = t
        if not traces:
            parser.error("nothing to study: empty --apps and no --trace")
        report = training_tradeoff(
            config,
            traces,
            seed=args.seed,
            backend=args.backend,
            scheduler=args.scheduler,
            **_exec_opts(args),
        )
        print(report.format_table())
        if args.out is not None:
            report.save_json(args.out)
            print(f"wrote {args.out}", file=sys.stderr)
        return 0

    if args.command == "replay":
        if Path(args.trace_file).suffix == ".json":
            from repro.mlcomms import TraceImportError, load_comms_trace

            try:
                trace = load_comms_trace(
                    args.trace_file, num_ranks=args.trace_ranks
                )
            except TraceImportError as exc:
                parser.error(str(exc))
        else:
            trace = load_trace(args.trace_file)
        result = run_single(
            config, trace, args.placement, args.routing, seed=args.seed,
            obs=_obs_config(args), scheduler=args.scheduler,
            faults=_fault_plan(args, config), backend=args.backend,
        )
        s = result.metrics.summary()
        for k, v in s.items():
            print(f"{k:>18}: {v:.4f}")
        if result.obs is not None and args.obs_out is not None:
            out = Path(args.obs_out)
            if out.suffix not in (".jsonl", ".csv"):
                out = out / f"{trace.name}-{args.placement}-{args.routing}.{args.obs_format}"
            obs_export(result.obs, out)
            print(f"obs: wrote telemetry to {out}", file=sys.stderr)
        return 0

    if args.command == "cluster-stream":
        from repro.cluster import run_stream, save_json

        surrogate_model = None
        if args.model is not None:
            from repro.advisor import RidgeSurrogate

            surrogate_model = RidgeSurrogate.load(args.model)
        elif args.policy == "surrogate":
            parser.error("--policy surrogate requires --model MODEL.json")

        try:
            res = run_stream(
                config,
                mix=args.mix,
                duration_s=args.duration * 3600.0,
                load=args.load,
                policy=args.policy,
                routing=args.routing,
                backend=args.backend,
                seed=args.seed,
                backfill=args.backfill,
                max_workers=args.workers,
                cache=args.cache_dir,
                progress=TextReporter() if args.progress else None,
                validate_every=args.validate_every,
                faults=_fault_plan(args, config),
                flow_batch=args.flow_batch,
                surrogate_model=surrogate_model,
            )
        except ValueError as exc:
            parser.error(str(exc))
        print(res.summary())
        if args.out is not None:
            save_json(res, args.out)
            print(f"wrote {args.out}", file=sys.stderr)
        return 0

    if args.command == "advise" and args.funnel:
        from repro.advisor import (
            RidgeSurrogate,
            suggest_placement,
            train_surrogate,
        )
        from repro.exec.cache import ResultCache

        trace = _build_trace(args)
        if args.model is not None:
            model = RidgeSurrogate.load(args.model)
            print(
                f"loaded surrogate from {args.model} "
                f"({model.n_samples} training samples)",
                file=sys.stderr,
            )
        elif args.train_cache is not None:
            traces = {}
            for app, builder in APP_BUILDERS.items():
                t = builder(num_ranks=args.ranks, seed=args.seed)
                traces[app] = (
                    t.scaled(args.msg_scale) if args.msg_scale != 1.0 else t
                )
            try:
                model, training = train_surrogate(
                    config, traces, ResultCache(args.train_cache)
                )
            except ValueError as exc:
                parser.error(str(exc))
            print(f"trained surrogate: {training.summary()}", file=sys.stderr)
        else:
            parser.error("--funnel requires --model or --train-cache")
        if args.save_model is not None:
            model.save(args.save_model)
            print(f"wrote {args.save_model}", file=sys.stderr)

        res = suggest_placement(
            config,
            trace,
            args.routing,
            model,
            per_policy=args.candidates_per_policy,
            screen_top=args.screen_top,
            validate_top=args.validate_top,
            seed=args.seed,
            cache=args.cache_dir,
            max_workers=args.workers,
            flow_batch=args.flow_batch,
            exhaustive=args.exhaustive,
        )
        print(res.format_table())
        if args.out is not None:
            res.save_json(args.out)
            print(f"wrote {args.out}", file=sys.stderr)
        return 0

    if args.command == "advise":
        from repro.core.advisor import recommend

        trace = _build_trace(args)
        rec = recommend(
            trace,
            config,
            shared_network=args.shared or args.bursty,
            bursty_neighbors=args.bursty,
        )
        print(f"{args.app}: use {rec.label}")
        print(f"  offered rate: {rec.intensity:.4f}x of one local link")
        for reason in rec.rationale:
            print(f"  - {reason}")
        return 0

    if args.command == "characterize":
        trace = _build_trace(args)
        mat = trace.communication_matrix()
        nz = mat[mat > 0]
        print(f"{args.app}: {trace.num_ranks} ranks")
        print(f"  messages:          {trace.num_messages()}")
        print(f"  total bytes:       {trace.total_bytes():,}")
        print(f"  avg load per rank: {trace.avg_message_load_per_rank():,.0f} B")
        print(f"  partner pairs:     {int((mat > 0).sum())}")
        if nz.size:
            print(f"  pair bytes min/med/max: {nz.min():,} / "
                  f"{int(float(sorted(nz)[len(nz) // 2])):,} / {nz.max():,}")
        return 0

    parser.error(f"unhandled command {args.command}")
    return 2


if __name__ == "__main__":
    sys.exit(main())
