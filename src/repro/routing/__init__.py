"""Routing mechanisms (paper Section III-C).

* :class:`MinimalRouting` — shortest path: at most one intermediate router
  inside a group, and a direct global link between groups.
* :class:`AdaptiveRouting` — UGAL-style: per packet, sample two minimal
  and two non-minimal (Valiant, via a random intermediate group) candidate
  routes and take the one with the least estimated congestion.
"""

from repro.routing.base import RoutingPolicy
from repro.routing.minimal import MinimalRouting
from repro.routing.adaptive import AdaptiveRouting
from repro.routing.paths import (
    local_hop_count,
    intra_group_links,
    enumerate_minimal_routes,
    valiant_route,
)

__all__ = [
    "RoutingPolicy",
    "MinimalRouting",
    "AdaptiveRouting",
    "local_hop_count",
    "intra_group_links",
    "enumerate_minimal_routes",
    "valiant_route",
    "make_routing",
    "ROUTING_NAMES",
]

#: Short names used in the paper's configuration nomenclature (Table I).
ROUTING_NAMES = ("min", "adp")


def make_routing(name: str, seed: int = 0) -> RoutingPolicy:
    """Construct a routing policy from its Table-I short name."""
    if name in ("min", "minimal"):
        return MinimalRouting(seed=seed)
    if name in ("adp", "adaptive"):
        return AdaptiveRouting(seed=seed)
    raise ValueError(f"unknown routing policy {name!r}")
