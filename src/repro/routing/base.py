"""Routing policy interface.

A policy maps (source router, destination node) to an ordered list of
link ids: zero or more router-to-router links followed by the
destination's terminal-out link. The fabric prepends the source
terminal-in link itself.

Policies receive the live fabric so adaptive schemes can inspect current
queue occupancy; they must not mutate fabric state.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.network.fabric import Fabric

__all__ = ["RoutingPolicy"]


class RoutingPolicy(abc.ABC):
    """Strategy deciding the path of each packet."""

    #: Short name used in configuration nomenclature ("min" / "adp").
    name: str = "?"

    @abc.abstractmethod
    def route(
        self, fabric: "Fabric", src_router: int, dst_node: int, size: int
    ) -> list[int]:
        """Links from ``src_router`` to ``dst_node`` (terminal-out last).

        ``size`` is the packet size in bytes, available to cost models.
        """

    def path_cost(self, fabric: "Fabric", links: list[int], size: int) -> float:
        """Estimated traversal time of ``links`` for a ``size``-byte packet.

        Sums, per link, the serialisation backlog already queued on it,
        this packet's own serialisation time, and the propagation latency.
        This is the congestion signal used by adaptive routing.
        """
        queued = fabric.queued_bytes
        bw = fabric.bw
        lat = fabric.lat
        cost = 0.0
        for lid in links:
            cost += (queued[lid] + size) / bw[lid] + lat[lid]
        return cost
