"""Minimal routing (paper Section III-C).

Every packet takes a minimum-hop path: inside a group at most one
intermediate router; across groups one global link directly joining the
two groups. When several minimum-hop paths exist (two grid intermediates,
or several equally-close global links) one is picked uniformly at random,
which is how Aries spreads minimal traffic — but no congestion information
is ever consulted, so hot minimal paths cannot be avoided.

The set of minimal routes per (source router, destination router) pair is
static, so it is enumerated once and cached; the per-packet work is a
single random pick.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING

from repro.engine.rng import spawn_seed
from repro.routing.base import RoutingPolicy
from repro.routing.tables import route_tables

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.network.fabric import Fabric

__all__ = ["MinimalRouting"]


class MinimalRouting(RoutingPolicy):
    """Congestion-oblivious minimum-hop routing."""

    name = "min"

    def __init__(self, seed: int = 0, max_candidates: int = 8) -> None:
        self._rng = random.Random(spawn_seed(seed, "routing", "minimal"))
        self.max_candidates = max_candidates
        self._tables = None  # memoised RouteTables of the last-seen topo

    def minimal_candidates(
        self, fabric: "Fabric", src_router: int, dst_router: int
    ) -> tuple[tuple[int, ...], ...]:
        """Cached enumeration of minimal routes for a router pair."""
        tables = self._tables
        if tables is None or tables.topo is not fabric.topo:
            tables = self._tables = route_tables(fabric.topo)
        return tables.minimal(src_router, dst_router, self.max_candidates)

    def route(
        self, fabric: "Fabric", src_router: int, dst_node: int, size: int
    ) -> list[int]:
        topo = fabric.topo
        # Direct table lookups and inline cache probes (route() runs
        # once per packet); the method calls only build misses.
        dst_router = topo._node_router[dst_node]
        tables = self._tables
        if tables is None or tables.topo is not topo:
            tables = self._tables = route_tables(topo)
        routes = tables._minimal.get((src_router, dst_router))
        if routes is None:
            routes = tables.minimal(src_router, dst_router, self.max_candidates)
        n = len(routes)
        # choice(seq) is exactly seq[_randbelow(len(seq))] — same bit
        # stream, minus the wrapper frame.
        pick = routes[0] if n == 1 else routes[self._rng._randbelow(n)]
        return [*pick, topo._terminal_out_l[dst_node]]
