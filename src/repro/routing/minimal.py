"""Minimal routing (paper Section III-C).

Every packet takes a minimum-hop path: inside a group at most one
intermediate router; across groups one global link directly joining the
two groups. When several minimum-hop paths exist (two grid intermediates,
or several equally-close global links) one is picked uniformly at random,
which is how Aries spreads minimal traffic — but no congestion information
is ever consulted, so hot minimal paths cannot be avoided.

The set of minimal routes per (source router, destination router) pair is
static, so it is enumerated once and cached; the per-packet work is a
single random pick.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING

from repro.engine.rng import spawn_seed
from repro.routing.base import RoutingPolicy
from repro.routing.tables import route_tables

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.network.fabric import Fabric

__all__ = ["MinimalRouting"]


class MinimalRouting(RoutingPolicy):
    """Congestion-oblivious minimum-hop routing."""

    name = "min"

    def __init__(self, seed: int = 0, max_candidates: int = 8) -> None:
        self._rng = random.Random(spawn_seed(seed, "routing", "minimal"))
        self.max_candidates = max_candidates

    def minimal_candidates(
        self, fabric: "Fabric", src_router: int, dst_router: int
    ) -> tuple[tuple[int, ...], ...]:
        """Cached enumeration of minimal routes for a router pair."""
        return route_tables(fabric.topo).minimal(
            src_router, dst_router, self.max_candidates
        )

    def route(
        self, fabric: "Fabric", src_router: int, dst_node: int, size: int
    ) -> list[int]:
        dst_router = fabric.topo.router_of(dst_node)
        routes = self.minimal_candidates(fabric, src_router, dst_router)
        pick = routes[0] if len(routes) == 1 else self._rng.choice(routes)
        return list(pick) + [fabric.topo.terminal_out(dst_node)]
