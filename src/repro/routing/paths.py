"""Path-construction helpers shared by the routing policies.

The Cascade group is a row/column grid with all-to-all links along each
row and column, so intra-group minimal paths have at most one intermediate
router: either ``(src.row, dst.col)`` (row-first) or ``(dst.row,
src.col)`` (column-first). Inter-group minimal paths take one global link
directly joining the two groups, plus at most two local hops on each
side. Valiant (non-minimal) paths detour through a random intermediate
group, giving at most 2+1+2+1+2 = 8 router-to-router hops — the bound
that sizes the VC count.

Hot-path note: routing runs once per packet, so the policies cache the
*enumerations* produced here per (source router, destination router) pair
and only do an O(1) random pick per packet (see
:func:`enumerate_minimal_routes`).
"""

from __future__ import annotations

import random

from repro.topology.dragonfly import Dragonfly
from repro.topology.geometry import router_coord, router_id

__all__ = [
    "local_hop_count",
    "intra_group_links",
    "enumerate_minimal_routes",
    "valiant_route",
]


def local_hop_count(topo: Dragonfly, r1: int, r2: int) -> int:
    """Number of local links on a minimal intra-group path (0, 1, or 2)."""
    if r1 == r2:
        return 0
    p = topo.params
    g1, row1, col1 = router_coord(p, r1)
    g2, row2, col2 = router_coord(p, r2)
    if g1 != g2:
        raise ValueError("routers are in different groups")
    return 1 if (row1 == row2 or col1 == col2) else 2


def intra_group_links(
    topo: Dragonfly, r1: int, r2: int, col_first: bool = False
) -> list[int]:
    """Minimal local-link path between two routers of the same group.

    When two hops are needed, ``col_first`` selects which of the two
    candidate intermediate routers is used.
    """
    if r1 == r2:
        return []
    p = topo.params
    g1, row1, col1 = router_coord(p, r1)
    g2, row2, col2 = router_coord(p, r2)
    if g1 != g2:
        raise ValueError("routers are in different groups")
    direct = topo.local_link(r1, r2)
    if direct is not None:
        return [direct]
    if col_first:
        mid = router_id(p, g1, row2, col1)
    else:
        mid = router_id(p, g1, row1, col2)
    first = topo.local_link(r1, mid)
    second = topo.local_link(mid, r2)
    assert first is not None and second is not None
    return [first, second]


def enumerate_minimal_routes(
    topo: Dragonfly, src_router: int, dst_router: int, limit: int = 8
) -> list[tuple[int, ...]]:
    """All (up to ``limit``) minimum-hop routes between two routers.

    Intra-group: the direct link, or the two one-intermediate paths.
    Inter-group: the global links joining the two groups are ranked by
    total hop count (local hops to the global port, the global hop,
    local hops from the far endpoint); each minimum-length link yields a
    route (segment orientation alternates row-first/column-first across
    candidates to diversify intermediate routers). Deterministic, so the
    result is cacheable per router pair.
    """
    if src_router == dst_router:
        return [()]
    g1 = topo.group_of_router(src_router)
    g2 = topo.group_of_router(dst_router)
    if g1 == g2:
        if local_hop_count(topo, src_router, dst_router) == 1:
            link = topo.local_link(src_router, dst_router)
            assert link is not None
            return [(link,)]
        routes = [
            tuple(intra_group_links(topo, src_router, dst_router, col_first=False)),
            tuple(intra_group_links(topo, src_router, dst_router, col_first=True)),
        ]
        return routes[:limit]

    candidates = topo.global_links(g1, g2)
    lengths = [
        local_hop_count(topo, src_router, a) + 1 + local_hop_count(topo, b, dst_router)
        for (_, a, b) in candidates
    ]
    best = min(lengths)
    routes: list[tuple[int, ...]] = []
    for i, (lid, a, b) in enumerate(candidates):
        if lengths[i] != best:
            continue
        col_first = bool(len(routes) % 2)
        routes.append(
            tuple(intra_group_links(topo, src_router, a, col_first))
            + (lid,)
            + tuple(intra_group_links(topo, b, dst_router, col_first))
        )
        if len(routes) >= limit:
            break
    return routes


def valiant_route(
    tables,
    src_router: int,
    dst_router: int,
    rng: random.Random,
) -> tuple[int, ...]:
    """A non-minimal route through a random intermediate.

    Inter-group: detour through a random *group* distinct from source and
    destination groups (classic Valiant on dragonflies), entering and
    leaving it over randomly chosen global links. Intra-group (or when
    only two groups exist): detour through a random intermediate *router*
    of the source group.

    ``tables`` is the topology's :class:`~repro.routing.tables.RouteTables`;
    assembling a detour is three cached lookups plus tuple concatenation.
    """
    # Runs twice per adaptively routed packet, so the cached-table hit
    # paths are probed inline (the method calls only build misses) and
    # the rng wrapper frames are bypassed: for a non-empty sequence,
    # ``choice(seq)`` is exactly ``seq[_randbelow(len(seq))]`` and
    # ``randrange(n)`` is exactly ``_randbelow(n)``, so the underlying
    # bit stream — and with it every sampled route — is unchanged.
    topo = tables.topo
    groups = topo._router_group
    g1 = groups[src_router]
    g2 = groups[dst_router]
    p = topo.params
    randbelow = rng._randbelow
    if g1 != g2 and p.groups > 2:
        lo, hi = (g1, g2) if g1 < g2 else (g2, g1)
        gi = randbelow(p.groups - 2)
        if gi >= lo:
            gi += 1
        if gi >= hi:
            gi += 1
        to_group = tables._to_group
        opts = to_group.get((src_router, gi))
        if opts is None:
            opts = tables.to_group(src_router, gi)
        head, entry1 = opts[randbelow(len(opts))]
        opts = to_group.get((entry1, g2))
        if opts is None:
            opts = tables.to_group(entry1, g2)
        mid, entry2 = opts[randbelow(len(opts))]
        tails = tables._intra.get((entry2, dst_router))
        if tails is None:
            tails = tables.intra(entry2, dst_router)
        tail = tails[0] if len(tails) == 1 else tails[randbelow(len(tails))]
        return head + mid + tail
    # Intra-group Valiant: random distinct intermediate router in the
    # source group (falls back to minimal when the group is too small).
    per_group = p.routers_per_group
    base = g1 * per_group
    mid_router = base + randbelow(per_group)
    if mid_router in (src_router, dst_router):
        routes = tables.minimal(src_router, dst_router)
        return routes[randbelow(len(routes))]
    heads = tables._intra.get((src_router, mid_router))
    if heads is None:
        heads = tables.intra(src_router, mid_router)
    head = heads[0] if len(heads) == 1 else heads[randbelow(len(heads))]
    tails = tables.minimal(mid_router, dst_router)
    return head + tails[randbelow(len(tails))]
