"""Cached route building blocks, shared by all routing policies.

Route construction dominates the per-packet cost of adaptive routing if
done naively (coordinate math + dict lookups per hop). All of it is
static given the topology, so this module memoises three tables:

* ``intra(r1, r2)`` — the one or two minimal local-link paths between two
  routers of a group;
* ``to_group(router, group)`` — for every global link from the router's
  group toward ``group``: the local path to its port plus the global hop,
  and the entry router on the far side;
* ``minimal(r1, r2)`` — the enumeration of minimum-hop routes.

Tables are attached to a :class:`~repro.topology.dragonfly.Dragonfly`
lazily (one instance per topology, built on demand), so repeated runs in
a study amortise the construction cost.
"""

from __future__ import annotations

from repro.topology.dragonfly import Dragonfly
from repro.topology.geometry import router_coord, router_id

__all__ = ["RouteTables", "route_tables"]

Path = tuple[int, ...]


class RouteTables:
    """Lazy per-topology route caches."""

    def __init__(self, topo: Dragonfly) -> None:
        self.topo = topo
        self._intra: dict[tuple[int, int], tuple[Path, ...]] = {}
        self._to_group: dict[tuple[int, int], tuple[tuple[Path, int], ...]] = {}
        self._minimal: dict[tuple[int, int], tuple[Path, ...]] = {}

    # ------------------------------------------------------------------
    def intra(self, r1: int, r2: int) -> tuple[Path, ...]:
        """Minimal local paths r1 -> r2 (same group): 1 or 2 variants."""
        key = (r1, r2)
        cached = self._intra.get(key)
        if cached is not None:
            return cached
        topo = self.topo
        if r1 == r2:
            variants: tuple[Path, ...] = ((),)
        else:
            direct = topo.local_link(r1, r2)
            if direct is not None:
                variants = ((direct,),)
            else:
                p = topo.params
                g, row1, col1 = router_coord(p, r1)
                g2, row2, col2 = router_coord(p, r2)
                if g != g2:
                    raise ValueError("intra() called across groups")
                built = []
                for mid in (
                    router_id(p, g, row1, col2),
                    router_id(p, g, row2, col1),
                ):
                    first = topo.local_link(r1, mid)
                    second = topo.local_link(mid, r2)
                    assert first is not None and second is not None
                    built.append((first, second))
                variants = tuple(built)
        self._intra[key] = variants
        return variants

    # ------------------------------------------------------------------
    def to_group(self, router: int, group: int) -> tuple[tuple[Path, int], ...]:
        """Ways out of ``router``'s group toward ``group``.

        Each entry is ``(path, entry_router)``: the local hops to a
        global port plus the global link itself, and the router the path
        lands on inside the target group. Segment orientation alternates
        across entries to diversify intermediate routers.
        """
        key = (router, group)
        cached = self._to_group.get(key)
        if cached is not None:
            return cached
        topo = self.topo
        g1 = topo.group_of_router(router)
        if g1 == group:
            raise ValueError("to_group() needs a different target group")
        entries = []
        for i, (lid, a, b) in enumerate(topo.global_links(g1, group)):
            variants = self.intra(router, a)
            head = variants[i % len(variants)]
            entries.append((head + (lid,), b))
        result = tuple(entries)
        self._to_group[key] = result
        return result

    # ------------------------------------------------------------------
    def minimal(self, r1: int, r2: int, limit: int = 8) -> tuple[Path, ...]:
        """Minimum-hop routes r1 -> r2 (up to ``limit`` variants)."""
        key = (r1, r2)
        cached = self._minimal.get(key)
        if cached is not None:
            return cached
        topo = self.topo
        if r1 == r2:
            routes: tuple[Path, ...] = ((),)
        else:
            g1 = topo.group_of_router(r1)
            g2 = topo.group_of_router(r2)
            if g1 == g2:
                routes = self.intra(r1, r2)[:limit]
            else:
                best = None
                scored: list[tuple[int, Path, int]] = []
                for path, entry in self.to_group(r1, g2):
                    tails = self.intra(entry, r2)
                    length = len(path) + len(tails[0])
                    scored.append((length, path, entry))
                    if best is None or length < best:
                        best = length
                built = []
                for i, (length, path, entry) in enumerate(scored):
                    if length != best:
                        continue
                    tails = self.intra(entry, r2)
                    built.append(path + tails[len(built) % len(tails)])
                    if len(built) >= limit:
                        break
                routes = tuple(built)
        self._minimal[key] = routes
        return routes


_TABLES: dict[int, RouteTables] = {}


def route_tables(topo: Dragonfly) -> RouteTables:
    """The (memoised) route tables of a topology instance."""
    tables = _TABLES.get(id(topo))
    if tables is None or tables.topo is not topo:
        tables = RouteTables(topo)
        _TABLES[id(topo)] = tables
    return tables
