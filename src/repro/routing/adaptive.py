"""Adaptive (UGAL-style) routing (paper Section III-C).

Per packet, up to four candidate routes are sampled — two minimal and two
non-minimal (Valiant detours through a random intermediate group) — and
the candidate with the lowest estimated traversal cost wins. The cost of
a route is the sum over its links of the serialisation backlog currently
queued on the link plus the packet's own serialisation time plus
propagation latency (see :meth:`RoutingPolicy.path_cost`).

Two congestion-sensing modes are provided:

* ``"local"`` (default, UGAL-L, what Aries implements): only the source
  router's own output queue toward each candidate's first hop is
  observable; its queueing delay is scaled by the candidate's hop count
  (the classic ``q x H`` comparison). Local information is cheap but
  stale for congestion deeper in the network.
* ``"path"`` (idealised UGAL-G): the queue backlog of every link on the
  candidate path is summed. Useful as an upper bound on what adaptive
  routing could achieve; ablation benches compare the two.

A small additive bias in favour of minimal routes models the minimal
preference Cray's adaptive mode implements (non-minimal is only taken
when it looks genuinely cheaper, not merely equal).
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING

from repro.engine.rng import spawn_seed
from repro.routing.base import RoutingPolicy
from repro.routing.minimal import MinimalRouting
from repro.routing.paths import valiant_route
from repro.routing.tables import route_tables

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.network.fabric import Fabric

__all__ = ["AdaptiveRouting"]


class AdaptiveRouting(RoutingPolicy):
    """Congestion-aware routing choosing among 2 minimal + 2 Valiant paths."""

    name = "adp"

    def __init__(
        self,
        seed: int = 0,
        minimal_candidates: int = 2,
        nonminimal_candidates: int = 2,
        minimal_bias_ns: float = 100.0,
        nonminimal_weight: float = 2.0,
        mode: str = "local",
    ) -> None:
        if minimal_candidates < 1:
            raise ValueError("need at least one minimal candidate")
        if nonminimal_candidates < 0:
            raise ValueError("nonminimal_candidates must be non-negative")
        if nonminimal_weight < 1.0:
            raise ValueError("nonminimal_weight must be >= 1")
        if mode not in ("local", "path"):
            raise ValueError(f"unknown congestion-sensing mode {mode!r}")
        self._rng = random.Random(spawn_seed(seed, "routing", "adaptive"))
        self._minimal = MinimalRouting(seed=seed)
        self.minimal_candidates = minimal_candidates
        self.nonminimal_candidates = nonminimal_candidates
        self.minimal_bias_ns = minimal_bias_ns
        self.nonminimal_weight = nonminimal_weight
        self.mode = mode
        self._tables = None  # memoised RouteTables of the last-seen topo
        # (path, size) -> unloaded traversal time. The cached value is
        # the exact left-to-right accumulation candidate_cost computes,
        # so adding the live queue term on top reproduces the uncached
        # float bit-for-bit (same op order). Invalidated when the policy
        # is pointed at a different fabric (bw/lat may differ).
        self._unloaded: dict[tuple, float] = {}
        self._cost_fab = None
        #: Decision counters, exposed for analysis/tests.
        self.minimal_taken = 0
        self.nonminimal_taken = 0

    def candidate_cost(self, fabric: "Fabric", path, size: int) -> float:
        """Estimated traversal time of ``path`` under the sensing mode."""
        if not path:
            return 0.0
        if self.mode == "path":
            return self.path_cost(fabric, path, size)
        # UGAL-L: unloaded traversal time plus the locally observable
        # backlog (source router's output queue) scaled by hop count.
        bw = fabric.bw
        lat = fabric.lat
        cost = 0.0
        for lid in path:
            cost += size / bw[lid] + lat[lid]
        first = path[0]
        cost += fabric.queued_bytes[first] / bw[first] * len(path)
        return cost

    def route(
        self, fabric: "Fabric", src_router: int, dst_node: int, size: int
    ) -> list[int]:
        topo = fabric.topo
        # Direct table lookups (router_of/terminal_out sans the method
        # call): route() runs once per packet.
        dst_router = topo._node_router[dst_node]
        rng = self._rng

        # Inline cache probe (route() runs once per packet); the method
        # call only builds misses.
        tables = self._tables
        if tables is None or tables.topo is not topo:
            tables = self._tables = route_tables(topo)
        candidates = tables._minimal.get((src_router, dst_router))
        if candidates is None:
            candidates = tables.minimal(
                src_router, dst_router, self._minimal.max_candidates
            )
        if len(candidates) > self.minimal_candidates:
            candidates = rng.sample(candidates, self.minimal_candidates)

        # This runs once per packet on adaptive cells, so the UGAL-L
        # cost is computed inline (keep in sync with candidate_cost) —
        # the accumulation order must stay identical, since any change
        # to the float result could flip a routing decision. The
        # congestion-independent part of each cost is memoised per
        # (path, size): the cached float is the very accumulation the
        # loop would produce, so cache hits are bit-identical.
        local_mode = self.mode == "local"
        bw = fabric.bw
        lat = fabric.lat
        queued = fabric.queued_bytes
        if fabric is not self._cost_fab:
            self._cost_fab = fabric
            self._unloaded.clear()
        unloaded = self._unloaded

        # Candidate paths are never mutated and the return below builds a
        # fresh list, so tracking winners by reference (no per-candidate
        # list() copy) is safe.
        best_path: list[int] | tuple[int, ...] | None = None
        best_cost = float("inf")
        best_is_min = True
        for path in candidates:
            if local_mode and path:
                key = (path, size)
                cost = unloaded.get(key)
                if cost is None:
                    cost = 0.0
                    for lid in path:
                        cost += size / bw[lid] + lat[lid]
                    unloaded[key] = cost
                first = path[0]
                cost += queued[first] / bw[first] * len(path)
            elif local_mode:
                cost = 0.0
            else:
                cost = self.candidate_cost(fabric, path, size)
            if cost < best_cost:
                best_cost, best_path, best_is_min = cost, path, True

        if src_router != dst_router:
            # Cray-style minimal preference: the non-minimal estimate is
            # inflated (weight) and offset (bias), so detours are taken
            # only when minimal looks substantially congested.
            weight = self.nonminimal_weight
            bias = self.minimal_bias_ns
            for _ in range(self.nonminimal_candidates):
                path = valiant_route(tables, src_router, dst_router, rng)
                if local_mode:  # Valiant detours are never empty
                    key = (path, size)
                    cost = unloaded.get(key)
                    if cost is None:
                        cost = 0.0
                        for lid in path:
                            cost += size / bw[lid] + lat[lid]
                        unloaded[key] = cost
                    first = path[0]
                    cost += queued[first] / bw[first] * len(path)
                else:
                    cost = self.candidate_cost(fabric, path, size)
                cost = cost * weight + bias
                if cost < best_cost:
                    best_cost, best_path, best_is_min = cost, path, False

        assert best_path is not None
        if best_is_min:
            self.minimal_taken += 1
        else:
            self.nonminimal_taken += 1
            if fabric.obs is not None:
                fabric.obs.on_adaptive_divert(
                    fabric.sim.now, src_router, len(best_path)
                )
        # best_path may be a cached tuple (minimal) or a fresh list
        # (Valiant); either way the caller gets its own list.
        return [*best_path, topo._terminal_out_l[dst_node]]
