"""Seeded job streams: who arrives, when, how big, how heavy.

A cluster stream is a finite list of :class:`StreamJob` submissions
drawn from a :class:`WorkloadMix` — a weighted set of
:class:`JobClass` templates (CR/FB/AMG and the synthetic patterns from
:data:`repro.apps.APP_BUILDERS`), each with its own rank-count,
message-intensity, and target-runtime distributions. Interarrival
times are Poisson (exponential gaps sized from the offered ``load``)
or trace-driven (an explicit gap sequence).

Everything is deterministic from the stream seed: the same
``(mix, duration, load, machine, seed)`` always yields byte-identical
jobs, arrival times, and traces, which is what lets the engine's
per-epoch network evaluations live in the content-addressed result
cache — a warm re-run of a stream simulates nothing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.apps import APP_BUILDERS
from repro.engine.rng import rng_stream
from repro.mpi.trace import JobTrace

__all__ = [
    "JobClass",
    "StreamJob",
    "WorkloadMix",
    "default_mix",
    "ml_mix",
    "generate_stream",
]

#: Per-app message-scale choices tuned so flow-backend epoch cells stay
#: fast while preserving the paper's intensity ordering (AMG < CR < FB
#: at full size; FB's published loads are 100 KB-2.5 MB, hence the
#: small factors).
_DEFAULT_SCALES: dict[str, tuple[float, ...]] = {
    "CR": (0.1, 0.2, 0.4),
    "FB": (0.005, 0.01, 0.02),
    "AMG": (0.5, 1.0),
    # DL training family (repro.mlcomms): generator defaults model
    # multi-MB gradient/activation exchanges, so stream scales are small
    # for the same reason FB's are.
    "DP": (0.005, 0.01, 0.02),
    "PP": (0.005, 0.01),
    "TP": (0.005, 0.01),
    "MOE": (0.002, 0.005, 0.01),
}
_FALLBACK_SCALES: tuple[float, ...] = (0.05, 0.1)


@dataclass(frozen=True)
class JobClass:
    """One application template in a workload mix.

    ``ranks`` and ``msg_scales`` are uniform-choice sets; ``service_s``
    is a uniform range for the job's *target isolated runtime* in
    simulated seconds (the engine converts it to a whole number of
    trace-block iterations once the block's isolated makespan is
    known). ``weight`` is the class's relative arrival share.
    """

    app: str
    weight: float = 1.0
    ranks: tuple[int, ...] = (4, 8, 16)
    msg_scales: tuple[float, ...] = ()
    service_s: tuple[float, float] = (120.0, 900.0)

    def __post_init__(self) -> None:
        if self.app not in APP_BUILDERS:
            raise ValueError(
                f"unknown app {self.app!r}; choose from "
                f"{sorted(APP_BUILDERS)}"
            )
        if self.weight <= 0:
            raise ValueError("class weight must be positive")
        if not self.ranks or any(r < 1 for r in self.ranks):
            raise ValueError("ranks choices must be positive")
        if any(s <= 0 for s in self.msg_scales):
            raise ValueError("msg_scales must be positive")
        lo, hi = self.service_s
        if lo <= 0 or hi < lo:
            raise ValueError("service_s must be a positive (lo, hi) range")

    @property
    def scales(self) -> tuple[float, ...]:
        """The message-scale choice set (class default when unset)."""
        if self.msg_scales:
            return self.msg_scales
        return _DEFAULT_SCALES.get(self.app, _FALLBACK_SCALES)

    @property
    def mean_ranks(self) -> float:
        return sum(self.ranks) / len(self.ranks)

    @property
    def mean_service_s(self) -> float:
        return (self.service_s[0] + self.service_s[1]) / 2.0


@dataclass(frozen=True)
class WorkloadMix:
    """A weighted set of job classes, with a canonical text label.

    The label (``"AMG=1,CR=1,FB=2"``, classes sorted by app name) is
    what enters every epoch cell's cache identity, so two mixes that
    differ in any class parameter used by default parsing never share
    cached network evaluations.
    """

    classes: tuple[JobClass, ...]

    def __post_init__(self) -> None:
        if not self.classes:
            raise ValueError("a mix needs at least one job class")
        apps = [c.app for c in self.classes]
        if len(set(apps)) != len(apps):
            raise ValueError(f"duplicate app in mix: {apps}")

    @classmethod
    def parse(cls, text: str) -> "WorkloadMix":
        """Parse ``"CR=1,FB=1,AMG=2"`` (weights optional, default 1)."""
        classes = []
        for part in text.split(","):
            part = part.strip()
            if not part:
                continue
            app, _, weight = part.partition("=")
            try:
                w = float(weight) if weight else 1.0
            except ValueError:
                raise ValueError(f"bad weight in mix entry {part!r}") from None
            classes.append(JobClass(app=app.strip(), weight=w))
        if not classes:
            raise ValueError(f"empty workload mix: {text!r}")
        return cls(tuple(sorted(classes, key=lambda c: c.app)))

    @property
    def label(self) -> str:
        return ",".join(
            f"{c.app}={c.weight:g}"
            for c in sorted(self.classes, key=lambda c: c.app)
        )

    @property
    def total_weight(self) -> float:
        return sum(c.weight for c in self.classes)

    @property
    def mean_ranks(self) -> float:
        """Arrival-weighted mean rank count."""
        return (
            sum(c.weight * c.mean_ranks for c in self.classes)
            / self.total_weight
        )

    @property
    def mean_service_s(self) -> float:
        """Arrival-weighted mean target isolated runtime."""
        return (
            sum(c.weight * c.mean_service_s for c in self.classes)
            / self.total_weight
        )


def default_mix() -> WorkloadMix:
    """The paper's three mini-apps at equal arrival shares."""
    return WorkloadMix.parse("CR=1,FB=1,AMG=1")


def ml_mix() -> WorkloadMix:
    """A training-dominated cluster: mostly DP with PP/TP/MoE minorities.

    Models the common production split — data-parallel fine-tuning jobs
    dominating arrivals, with fewer large pipeline/tensor-parallel
    pretraining jobs and the occasional MoE run.
    """
    return WorkloadMix.parse("DP=2,PP=1,TP=1,MOE=1")


@dataclass(frozen=True)
class StreamJob:
    """One submission of a cluster stream.

    ``service_s`` is the target isolated runtime; the engine rounds it
    to a whole number of trace-block iterations once the block's
    isolated makespan is measured. ``trace`` is the job's
    communication block, already built and scaled — deterministic from
    the stream seed, so its content fingerprint is stable across runs.
    """

    id: int
    app: str
    ranks: int
    arrival_s: float
    service_s: float
    msg_scale: float
    trace: JobTrace = field(repr=False, compare=False)

    @property
    def name(self) -> str:
        return f"{self.app}-{self.id}"


def generate_stream(
    mix: WorkloadMix | str,
    duration_s: float,
    load: float,
    num_nodes: int,
    seed: int = 0,
    interarrivals_s: Iterable[float] | None = None,
    max_jobs: int | None = None,
) -> list[StreamJob]:
    """Draw the deterministic job stream for one scenario.

    ``load`` is the target average machine utilisation in ``[0, ~1]``:
    the Poisson arrival rate is sized so the expected concurrent node
    demand (rate x mean ranks x mean service) equals ``load x
    num_nodes``. Actual utilisation also depends on queueing and
    interference, so treat it as an offered load, not a guarantee.

    ``interarrivals_s`` switches to trace-driven arrivals: the gaps are
    consumed verbatim (``load`` is then ignored) until ``duration_s``
    is exhausted. Rank choices larger than half the machine are
    dropped from each class's choice set (a job that monopolises the
    machine serialises the stream); a class with no feasible size
    raises.
    """
    if isinstance(mix, str):
        mix = WorkloadMix.parse(mix)
    if duration_s <= 0:
        raise ValueError("duration_s must be positive")
    if interarrivals_s is None and load <= 0:
        raise ValueError("load must be positive for Poisson arrivals")
    if num_nodes < 1:
        raise ValueError("num_nodes must be positive")

    size_cap = max(1, num_nodes // 2)
    feasible: dict[str, tuple[int, ...]] = {}
    for c in mix.classes:
        sizes = tuple(r for r in c.ranks if r <= size_cap)
        if not sizes:
            raise ValueError(
                f"class {c.app} has no rank choice <= {size_cap} "
                f"(machine has {num_nodes} nodes)"
            )
        feasible[c.app] = sizes

    gaps: Iterable[float] | None = None
    if interarrivals_s is not None:
        gaps = iter(interarrivals_s)
        mean_gap = 0.0
    else:
        # load * num_nodes = rate * E[ranks] * E[service]  (Little's law)
        rate = load * num_nodes / (mix.mean_ranks * mix.mean_service_s)
        mean_gap = 1.0 / rate

    rng = rng_stream(seed, "cluster", "stream")
    weights = [c.weight / mix.total_weight for c in mix.classes]
    jobs: list[StreamJob] = []
    t = 0.0
    while max_jobs is None or len(jobs) < max_jobs:
        if gaps is not None:
            try:
                gap = float(next(gaps))  # type: ignore[arg-type]
            except StopIteration:
                break
            if gap < 0:
                raise ValueError("interarrival gaps must be non-negative")
        else:
            gap = float(rng.exponential(mean_gap))
        t += gap
        if t > duration_s:
            break
        ci = int(rng.choice(len(mix.classes), p=weights))
        c = mix.classes[ci]
        sizes = feasible[c.app]
        ranks = int(sizes[int(rng.integers(len(sizes)))])
        scales = c.scales
        scale = float(scales[int(rng.integers(len(scales)))])
        service = float(rng.uniform(c.service_s[0], c.service_s[1]))
        job_id = len(jobs)
        trace = APP_BUILDERS[c.app](
            num_ranks=ranks, seed=seed * 1_000_003 + job_id
        )
        if scale != 1.0:
            trace = trace.scaled(scale)
        jobs.append(
            StreamJob(
                id=job_id,
                app=c.app,
                ranks=ranks,
                arrival_s=t,
                service_s=service,
                msg_scale=scale,
                trace=trace,
            )
        )
    return jobs
