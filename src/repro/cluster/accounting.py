"""Stream accounting: per-job, per-epoch, and whole-machine metrics.

The engine (:mod:`repro.cluster.engine`) emits raw records —
:class:`JobRecord` per submission, :class:`EpochRecord` per co-schedule
change, :class:`ValidationRecord` per packet spot-check — and bundles
them into a :class:`StreamResult`. This module also derives the
aggregate views the study reads: scheduling quality (wait, stretch),
interference (work-weighted slowdowns, class-pair matrices), and
machine health (utilisation timelines, fragmentation).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "EpochRecord",
    "JobRecord",
    "StreamResult",
    "ValidationRecord",
    "fragmentation_index",
    "interference_matrix",
    "utilization_timeline",
]


@dataclass
class JobRecord:
    """Lifecycle and outcome of one stream submission.

    Times are simulated seconds. ``work_s`` is the job's total isolated
    work (iterations x isolated block makespan), fixed once its
    baseline cell has run; ``slow_work_s`` accumulates the wall-clock
    simulated seconds the job actually spent on that work, so
    ``mean_slowdown`` is the work-weighted average interference
    slowdown over every epoch the job lived through.
    """

    id: int
    name: str
    app: str
    ranks: int
    arrival_s: float
    status: str = "queued"  # queued | running | completed | rejected
    start_s: float = math.nan
    finish_s: float = math.nan
    placement: str = ""
    nodes: tuple[int, ...] = ()
    service_s: float = 0.0
    iterations: int = 0
    iso_finish_ns: float = math.nan
    work_s: float = math.nan
    slow_work_s: float = 0.0
    avg_hops: float = math.nan
    bytes_sent: int = 0
    epochs: int = 0

    @property
    def wait_s(self) -> float:
        """Queue wait: start minus arrival (NaN while queued)."""
        return self.start_s - self.arrival_s

    @property
    def response_s(self) -> float:
        return self.finish_s - self.arrival_s

    @property
    def stretch(self) -> float:
        """Response time over isolated work (>= 1 for completed jobs)."""
        if not self.work_s or math.isnan(self.work_s):
            return math.nan
        return self.response_s / self.work_s

    @property
    def mean_slowdown(self) -> float:
        """Work-weighted interference slowdown across the job's epochs."""
        if not self.work_s or math.isnan(self.work_s):
            return math.nan
        done = self.work_s if self.status == "completed" else None
        if done is None:
            return math.nan
        return self.slow_work_s / done


@dataclass
class EpochRecord:
    """One interval during which the co-scheduled job set was constant."""

    index: int
    t0_s: float
    t1_s: float = math.nan
    job_ids: tuple[int, ...] = ()
    apps: tuple[str, ...] = ()
    key: str = ""  # exec-cache key of the epoch cell ("" when idle)
    status: str = "empty"  # done | cached | empty
    sim_wall_s: float = 0.0
    busy_nodes: int = 0
    slowdowns: dict[int, float] = field(default_factory=dict)
    #: Hottest single link in the epoch cell: most bytes carried and
    #: longest shared-capacity (>= 2 flows) time. The localisation
    #: trade-off lives here — contiguous placement concentrates an
    #: epoch's traffic onto few links, balancing spreads it thin.
    peak_link_bytes: int = 0
    peak_link_sat_ns: float = 0.0
    #: Simulated makespan of the epoch's merged block (ns); normalises
    #: the saturation time into a contention duty cycle.
    makespan_ns: float = 0.0

    @property
    def duration_s(self) -> float:
        return self.t1_s - self.t0_s

    @property
    def peak_link_sat_frac(self) -> float:
        """Share of the epoch block the hottest link spent oversubscribed."""
        if self.makespan_ns <= 0:
            return 0.0
        return min(self.peak_link_sat_ns / self.makespan_ns, 1.0)


@dataclass
class ValidationRecord:
    """One packet-backend spot-check of a flow epoch cell."""

    epoch_index: int
    flow_key: str
    packet_key: str
    rel_err: dict[str, float] = field(default_factory=dict)

    @property
    def max_rel_err(self) -> float:
        return max(self.rel_err.values()) if self.rel_err else math.nan


@dataclass
class StreamResult:
    """Everything one :func:`~repro.cluster.engine.run_stream` produced."""

    mix: str
    policy: str
    routing: str
    backend: str
    seed: int
    duration_s: float
    load: float
    num_nodes: int
    jobs: list[JobRecord] = field(default_factory=list)
    epochs: list[EpochRecord] = field(default_factory=list)
    validations: list[ValidationRecord] = field(default_factory=list)
    frag_samples: list[tuple[float, float]] = field(default_factory=list)
    counters: dict[str, int] = field(default_factory=dict)
    wall_s: float = 0.0
    extra: dict = field(default_factory=dict)

    # ---------------------------------------------------------------- views
    def by_status(self, status: str) -> list[JobRecord]:
        return [j for j in self.jobs if j.status == status]

    @property
    def completed(self) -> list[JobRecord]:
        return self.by_status("completed")

    @property
    def makespan_s(self) -> float:
        ends = [j.finish_s for j in self.completed]
        return max(ends) if ends else 0.0

    def heavy_jobs(self, quantile: float = 0.75) -> list[JobRecord]:
        """Completed jobs in the top ``1 - quantile`` by sent bytes."""
        done = self.completed
        if not done:
            return []
        cut = float(np.quantile([j.bytes_sent for j in done], quantile))
        return [j for j in done if j.bytes_sent >= cut]

    def heavy_epoch_peaks(self, quantile: float = 0.75) -> dict[str, float]:
        """Peak-link pressure during epochs a heavy job lived through.

        Duration-weighted mean and overall max of the per-epoch hottest
        link (bytes carried; shared-capacity saturation time; saturation
        as a fraction of the epoch block's makespan) over every closed
        epoch containing at least one heavy job. ``mean_sat_frac`` is
        the balancing half of the paper's trade-off at stream scale:
        contiguous placement piles an epoch's traffic — and the
        contention it causes — onto the few links of its partition, so
        its hottest link spends a larger share of the block
        oversubscribed; random placement spreads the same bytes so no
        single link stays contended for long (at the price of the longer
        routes the hop count records).
        """
        heavy = {j.id for j in self.heavy_jobs(quantile)}
        acc_b = acc_s = acc_f = wgt = 0.0
        max_b = 0
        max_s = max_f = 0.0
        for e in self.epochs:
            if math.isnan(e.t1_s) or e.t1_s <= e.t0_s:
                continue
            if not heavy & set(e.job_ids):
                continue
            d = e.t1_s - e.t0_s
            acc_b += e.peak_link_bytes * d
            acc_s += e.peak_link_sat_ns * d
            acc_f += e.peak_link_sat_frac * d
            wgt += d
            max_b = max(max_b, e.peak_link_bytes)
            max_s = max(max_s, e.peak_link_sat_ns)
            max_f = max(max_f, e.peak_link_sat_frac)
        if wgt <= 0:
            return {
                "mean_bytes": math.nan,
                "max_bytes": 0.0,
                "mean_sat_ms": math.nan,
                "max_sat_ms": 0.0,
                "mean_sat_frac": math.nan,
                "max_sat_frac": 0.0,
            }
        return {
            "mean_bytes": acc_b / wgt,
            "max_bytes": float(max_b),
            "mean_sat_ms": acc_s / wgt / 1e6,
            "max_sat_ms": max_s / 1e6,
            "mean_sat_frac": acc_f / wgt,
            "max_sat_frac": max_f,
        }

    # ----------------------------------------------------------- invariants
    def check_invariants(self) -> None:
        """Raise ``AssertionError`` on any bookkeeping violation.

        * conservation: submitted = completed + running + queued +
          rejected;
        * causality: arrival <= start <= finish for every started job;
        * exclusivity: within every epoch the live jobs' node sets are
          pairwise disjoint.
        """
        counts = {
            s: len(self.by_status(s))
            for s in ("completed", "running", "queued", "rejected")
        }
        total = sum(counts.values())
        if total != len(self.jobs):
            raise AssertionError(
                f"conservation violated: {counts} vs {len(self.jobs)} submitted"
            )
        by_id = {j.id: j for j in self.jobs}
        for j in self.jobs:
            if j.status in ("completed", "running"):
                if not j.start_s >= j.arrival_s:
                    raise AssertionError(f"{j.name}: started before arrival")
            if j.status == "completed" and not j.finish_s >= j.start_s:
                raise AssertionError(f"{j.name}: finished before start")
        for e in self.epochs:
            seen: set[int] = set()
            for jid in e.job_ids:
                nodes = set(by_id[jid].nodes)
                if seen & nodes:
                    raise AssertionError(
                        f"epoch {e.index}: overlapping allocations "
                        f"{sorted(seen & nodes)[:5]}"
                    )
                seen |= nodes

    # ------------------------------------------------------------- summary
    def summary(self) -> str:
        done = self.completed
        lines = [
            f"stream: mix={self.mix} policy={self.policy} "
            f"routing={self.routing} backend={self.backend} seed={self.seed}",
            f"submitted {len(self.jobs)}  completed {len(done)}  "
            f"running {len(self.by_status('running'))}  "
            f"queued {len(self.by_status('queued'))}  "
            f"rejected {len(self.by_status('rejected'))}",
        ]
        c = self.counters
        lines.append(
            f"epochs {c.get('epochs', 0)} "
            f"(cells: {c.get('cells_simulated', 0)} simulated, "
            f"{c.get('cells_cached', 0)} cached)  wall {self.wall_s:.1f}s"
        )
        if done:
            waits = np.array([j.wait_s for j in done])
            stretch = np.array([j.stretch for j in done])
            slow = np.array([j.mean_slowdown for j in done])
            hops = np.array([j.avg_hops for j in done])
            lines.append(
                f"wait mean {waits.mean():.1f}s p95 "
                f"{np.percentile(waits, 95):.1f}s | stretch median "
                f"{np.median(stretch):.2f} | slowdown mean {slow.mean():.3f} "
                f"p95 {np.percentile(slow, 95):.3f} | hops mean {hops.mean():.3f}"
            )
            heavy = self.heavy_jobs()
            if heavy:
                hs = np.array([j.mean_slowdown for j in heavy])
                peaks = self.heavy_epoch_peaks()
                lines.append(
                    f"heavy jobs ({len(heavy)}): slowdown mean {hs.mean():.3f} "
                    f"p95 {np.percentile(hs, 95):.3f} | peak-link "
                    f"{peaks['mean_bytes'] / 1e6:.2f} MB, "
                    f"saturated {peaks['mean_sat_frac']:.0%} of the time "
                    f"(max {peaks['max_sat_frac']:.0%})"
                )
        if self.validations:
            errs = [v.max_rel_err for v in self.validations]
            lines.append(
                f"packet spot-checks: {len(errs)} epochs, "
                f"max rel err {max(errs):.3f}"
            )
        return "\n".join(lines)


def fragmentation_index(free_nodes: list[int]) -> float:
    """How shattered the free pool is, in ``[0, 1)``.

    ``1 - (longest contiguous free run) / (free nodes)``: 0 when all
    free nodes form one contiguous block (or none are free), approaching
    1 as the pool splinters into single nodes. Node ids are the
    machine's natural locality order, so contiguity here is the same
    contiguity the ``cont`` placement policy exploits.
    """
    if not free_nodes:
        return 0.0
    nodes = sorted(free_nodes)
    best = run = 1
    for a, b in zip(nodes, nodes[1:]):
        run = run + 1 if b == a + 1 else 1
        best = max(best, run)
    return 1.0 - best / len(nodes)


def utilization_timeline(
    result: StreamResult,
) -> list[tuple[float, float, float]]:
    """Per-epoch machine utilisation: ``(t0_s, t1_s, fraction_busy)``."""
    out = []
    for e in result.epochs:
        if math.isnan(e.t1_s) or e.t1_s <= e.t0_s:
            continue
        out.append((e.t0_s, e.t1_s, e.busy_nodes / result.num_nodes))
    return out


def interference_matrix(
    result: StreamResult,
) -> tuple[list[str], np.ndarray]:
    """Time-weighted class-pair interference slowdowns.

    Entry ``[a][b]`` is the epoch-duration-weighted mean slowdown of
    class-``a`` jobs while at least one *other* class-``b`` job was
    co-scheduled. NaN where the pair never co-ran. The diagonal is
    self-interference (two or more jobs of the same class together).
    """
    by_id = {j.id: j for j in result.jobs}
    apps = sorted({j.app for j in result.jobs})
    idx = {a: i for i, a in enumerate(apps)}
    acc = np.zeros((len(apps), len(apps)))
    wgt = np.zeros((len(apps), len(apps)))
    for e in result.epochs:
        if math.isnan(e.t1_s):
            continue
        d = e.t1_s - e.t0_s
        if d <= 0 or len(e.job_ids) < 2:
            continue
        for jid in e.job_ids:
            slow = e.slowdowns.get(jid)
            if slow is None:
                continue
            a = idx[by_id[jid].app]
            co = {by_id[o].app for o in e.job_ids if o != jid}
            for other in co:
                b = idx[other]
                acc[a, b] += slow * d
                wgt[a, b] += d
    with np.errstate(invalid="ignore"):
        mat = np.where(wgt > 0, acc / np.maximum(wgt, 1e-300), np.nan)
    return apps, mat
