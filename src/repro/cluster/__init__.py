"""repro.cluster — online cluster scenarios over the dragonfly models.

Seeded job streams (:mod:`~repro.cluster.workload`), an FCFS+backfill
scheduler with advisor-driven placement
(:mod:`~repro.cluster.scheduler`), an epoch-based stream engine that
evaluates every co-schedule as a cached :mod:`repro.exec` cell
(:mod:`~repro.cluster.engine`), interference/utilisation accounting
(:mod:`~repro.cluster.accounting`), and the
``repro-cluster-stream/v1`` JSON export
(:mod:`~repro.cluster.export`). See DESIGN.md §S17.
"""

from repro.cluster.accounting import (
    EpochRecord,
    JobRecord,
    StreamResult,
    ValidationRecord,
    fragmentation_index,
    interference_matrix,
    utilization_timeline,
)
from repro.cluster.engine import (
    EpochSpec,
    merge_epoch_trace,
    run_stream,
    simulate_epoch,
)
from repro.cluster.export import save_json, to_doc
from repro.cluster.scheduler import (
    ADVISOR_POLICY,
    SCHED_POLICIES,
    SURROGATE_POLICY,
    ClusterScheduler,
)
from repro.cluster.workload import (
    JobClass,
    StreamJob,
    WorkloadMix,
    default_mix,
    generate_stream,
    ml_mix,
)

__all__ = [
    "ADVISOR_POLICY",
    "ClusterScheduler",
    "EpochRecord",
    "EpochSpec",
    "JobClass",
    "JobRecord",
    "SCHED_POLICIES",
    "SURROGATE_POLICY",
    "StreamJob",
    "StreamResult",
    "ValidationRecord",
    "WorkloadMix",
    "default_mix",
    "fragmentation_index",
    "generate_stream",
    "interference_matrix",
    "merge_epoch_trace",
    "ml_mix",
    "run_stream",
    "save_json",
    "simulate_epoch",
    "to_doc",
    "utilization_timeline",
]
