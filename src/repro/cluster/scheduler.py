"""FCFS (+ optional backfill) scheduling over a shared dragonfly.

The scheduler owns a :class:`~repro.placement.machine.Machine` and a
FIFO queue of :class:`~repro.cluster.workload.StreamJob` submissions.
Allocations go through the machine's job-keyed claim surface
(:meth:`~repro.placement.machine.Machine.claim_nodes` /
:meth:`~repro.placement.machine.Machine.release_job`), so
double-allocation and leaked nodes are structurally impossible — the
invariant the stream tests assert.

Placement is any policy name from :mod:`repro.placement.policies`, or
one of two advisory modes: ``"advisor"`` — per-job consultation of
:func:`repro.core.advisor.recommend` with ``shared_network=True``
(a stream is by construction a shared machine), letting the paper's
decision procedure drive an online scheduler instead of a one-shot
study — and ``"surrogate"`` — per-job consultation of a fitted
:class:`~repro.advisor.model.RidgeSurrogate`: each base policy's
allocation is *mirrored* on the current free pool (same RNG draw the
claim would make, no mutation), featurized against the job's trace,
and the policy with the lowest predicted communication time wins.
Routing stays a stream-wide setting — on a real system it is a fabric
property, not a per-job knob — but the surrogate mode needs to know it
(placement quality depends on it), so the scheduler carries it.

Backfill is conservative-lite: when the queue head does not fit, later
jobs that *do* fit may start, but only if their isolated-work estimate
says they cannot delay the head beyond the capacity it is waiting for
— we skip reservations entirely and accept the (measured, reported)
head-of-line delay instead, like the simplest EASY variants.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING

from repro.config import SimulationConfig
from repro.engine.rng import spawn_seed
from repro.placement.machine import Machine
from repro.placement.policies import PLACEMENT_NAMES

if TYPE_CHECKING:
    from repro.advisor.model import RidgeSurrogate
    from repro.cluster.workload import StreamJob

__all__ = [
    "ADVISOR_POLICY",
    "SCHED_POLICIES",
    "SURROGATE_POLICY",
    "ClusterScheduler",
]

#: Placement policy name that delegates to :func:`repro.core.advisor`.
ADVISOR_POLICY = "advisor"

#: Placement policy name that delegates to a fitted
#: :class:`~repro.advisor.model.RidgeSurrogate`.
SURROGATE_POLICY = "surrogate"

#: Every placement the scheduler accepts.
SCHED_POLICIES: tuple[str, ...] = tuple(PLACEMENT_NAMES) + (
    ADVISOR_POLICY,
    SURROGATE_POLICY,
)


class ClusterScheduler:
    """Online FCFS node scheduler with pluggable placement.

    ``stream_seed`` namespaces every allocation draw:
    ``spawn_seed(stream_seed, "claim", job.id)`` feeds the placement
    policy, so allocations are reproducible per job regardless of the
    order in which epochs are evaluated.
    """

    def __init__(
        self,
        machine: Machine,
        config: SimulationConfig,
        policy: str = "cont",
        stream_seed: int = 0,
        backfill: bool = False,
        routing: str = "adp",
        surrogate: "RidgeSurrogate | None" = None,
    ) -> None:
        if policy not in SCHED_POLICIES:
            raise ValueError(
                f"unknown scheduling policy {policy!r}; "
                f"choose from {SCHED_POLICIES}"
            )
        if policy == SURROGATE_POLICY and surrogate is None:
            raise ValueError(
                "the surrogate policy needs a fitted model "
                "(train one with repro.advisor.train_surrogate)"
            )
        self.machine = machine
        self.config = config
        self.policy = policy
        self.stream_seed = stream_seed
        self.backfill = backfill
        self.routing = routing
        self.surrogate = surrogate
        self.queue: deque[StreamJob] = deque()
        #: Healthy capacity at construction (fenced nodes excluded):
        #: jobs larger than this can never start and are rejected.
        self.capacity = machine.num_free
        self.backfilled = 0

    @property
    def num_queued(self) -> int:
        return len(self.queue)

    def submit(self, job: "StreamJob") -> bool:
        """Queue a job; returns False (rejected) if it can never fit."""
        if job.ranks > self.capacity:
            return False
        self.queue.append(job)
        return True

    def placement_for(self, job: "StreamJob") -> str:
        """The placement policy name this job will be allocated with."""
        if self.policy == ADVISOR_POLICY:
            from repro.core.advisor import recommend

            rec = recommend(job.trace, self.config, shared_network=True)
            return rec.placement
        if self.policy == SURROGATE_POLICY:
            return self._surrogate_placement(job)
        return self.policy

    def _surrogate_placement(self, job: "StreamJob") -> str:
        """Pick the base policy whose allocation the surrogate prefers.

        Each base policy's draw is mirrored with the *same* seed the
        eventual :meth:`~repro.placement.machine.Machine.claim_nodes`
        call uses (``spawn_seed(stream_seed, "claim", job.id)``), so
        the scored allocation and the committed allocation are the same
        node set. Ties break toward the earlier policy in
        :data:`~repro.placement.policies.PLACEMENT_NAMES`, keeping the
        decision deterministic.
        """
        # Imported lazily: repro.advisor imports the cluster engine for
        # its funnel tiers, so a module-level import would be circular.
        from repro.advisor.features import FeatureExtractor, mirror_allocation

        assert self.surrogate is not None
        fx = FeatureExtractor(self.config, job.trace, self.routing)
        seed = spawn_seed(self.stream_seed, "claim", job.id)
        best_name = PLACEMENT_NAMES[0]
        best_score = float("inf")
        for name in PLACEMENT_NAMES:
            nodes = mirror_allocation(
                self.machine, name, job.ranks, seed
            )
            score = float(self.surrogate.predict(fx.vector(nodes)))
            if score < best_score:
                best_name = name
                best_score = score
        return best_name

    def schedule(self) -> list[tuple["StreamJob", list[int], str]]:
        """Start every job the queue and free pool allow, FCFS order.

        Returns ``(job, nodes, placement)`` for each launch. Without
        backfill the scan stops at the first job that does not fit;
        with backfill the rest of the queue is scanned once for jobs
        that do.
        """
        launched: list[tuple[StreamJob, list[int], str]] = []
        while self.queue and self.queue[0].ranks <= self.machine.num_free:
            launched.append(self._start(self.queue.popleft()))
        if self.backfill and self.queue:
            for job in [j for j in self.queue if j.ranks <= self.machine.num_free]:
                if job.ranks <= self.machine.num_free:
                    self.queue.remove(job)
                    launched.append(self._start(job))
                    self.backfilled += 1
        return launched

    def _start(self, job: "StreamJob") -> tuple["StreamJob", list[int], str]:
        placement = self.placement_for(job)
        nodes = self.machine.claim_nodes(
            job.id,
            placement,
            job.ranks,
            seed=spawn_seed(self.stream_seed, "claim", job.id),
        )
        return job, nodes, placement

    def finish(self, job_id: int) -> list[int]:
        """Release a finished job's allocation; returns its nodes."""
        return self.machine.release_job(job_id)
