"""JSON export of cluster streams: the ``repro-cluster-stream/v1`` schema.

One document per stream, carrying scenario identity, per-job records,
per-epoch records, validation spot-checks, derived aggregates, and the
invariants block the CI smoke job gates on. Everything is plain JSON
scalars/lists so the artifact diffs cleanly and loads anywhere.
"""

from __future__ import annotations

import json
import math
from pathlib import Path

import numpy as np

from repro.cluster.accounting import (
    StreamResult,
    interference_matrix,
    utilization_timeline,
)

__all__ = ["SCHEMA", "to_doc", "save_json"]

SCHEMA = "repro-cluster-stream/v1"


def _num(x: float) -> float | None:
    """JSON-safe float: NaN/inf become null."""
    return None if (isinstance(x, float) and not math.isfinite(x)) else x


def to_doc(result: StreamResult) -> dict:
    """Serialise a :class:`StreamResult` as a schema-stamped document."""
    apps, matrix = interference_matrix(result)
    util = utilization_timeline(result)
    done = result.completed
    mean_util = 0.0
    if util:
        total = sum(t1 - t0 for t0, t1, _ in util)
        if total > 0:
            mean_util = sum((t1 - t0) * u for t0, t1, u in util) / total

    conserved = {
        s: len(result.by_status(s))
        for s in ("completed", "running", "queued", "rejected")
    }
    invariants = {
        "submitted": len(result.jobs),
        **conserved,
        "conserved": sum(conserved.values()) == len(result.jobs),
        "no_double_allocation": True,  # check_invariants raised otherwise
        "warm_rerun_ready": result.counters.get("cells_planned", 0)
        == result.counters.get("cells_simulated", 0)
        + result.counters.get("cells_cached", 0),
    }

    doc = {
        "schema": SCHEMA,
        "scenario": {
            "mix": result.mix,
            "policy": result.policy,
            "routing": result.routing,
            "backend": result.backend,
            "seed": result.seed,
            "duration_s": result.duration_s,
            "load": result.load,
            "num_nodes": result.num_nodes,
        },
        "counters": dict(result.counters),
        "wall_s": result.wall_s,
        "invariants": invariants,
        "jobs": [
            {
                "id": j.id,
                "name": j.name,
                "app": j.app,
                "ranks": j.ranks,
                "status": j.status,
                "arrival_s": j.arrival_s,
                "start_s": _num(j.start_s),
                "finish_s": _num(j.finish_s),
                "wait_s": _num(j.wait_s),
                "stretch": _num(j.stretch),
                "mean_slowdown": _num(j.mean_slowdown),
                "placement": j.placement,
                "nodes": list(j.nodes),
                "iterations": j.iterations,
                "work_s": _num(j.work_s),
                "iso_finish_ns": _num(j.iso_finish_ns),
                "avg_hops": _num(j.avg_hops),
                "bytes_sent": j.bytes_sent,
                "epochs": j.epochs,
            }
            for j in result.jobs
        ],
        "epochs": [
            {
                "index": e.index,
                "t0_s": e.t0_s,
                "t1_s": _num(e.t1_s),
                "job_ids": list(e.job_ids),
                "apps": list(e.apps),
                "key": e.key,
                "status": e.status,
                "busy_nodes": e.busy_nodes,
                "slowdowns": {str(k): v for k, v in e.slowdowns.items()},
                "peak_link_bytes": e.peak_link_bytes,
                "peak_link_sat_ns": e.peak_link_sat_ns,
                "makespan_ns": e.makespan_ns,
                "peak_link_sat_frac": e.peak_link_sat_frac,
            }
            for e in result.epochs
        ],
        "validations": [
            {
                "epoch_index": v.epoch_index,
                "flow_key": v.flow_key,
                "packet_key": v.packet_key,
                "rel_err": dict(v.rel_err),
                "max_rel_err": _num(v.max_rel_err),
            }
            for v in result.validations
        ],
        "aggregates": {
            "makespan_s": result.makespan_s,
            "mean_utilization": mean_util,
            "mean_wait_s": _num(
                float(np.mean([j.wait_s for j in done])) if done else math.nan
            ),
            "median_stretch": _num(
                float(np.median([j.stretch for j in done]))
                if done
                else math.nan
            ),
            "mean_slowdown": _num(
                float(np.mean([j.mean_slowdown for j in done]))
                if done
                else math.nan
            ),
            "mean_hops": _num(
                float(np.mean([j.avg_hops for j in done]))
                if done
                else math.nan
            ),
            "heavy_mean_slowdown": _num(
                float(np.mean([j.mean_slowdown for j in result.heavy_jobs()]))
                if result.heavy_jobs()
                else math.nan
            ),
            "heavy_peak_link": {
                k: _num(v) for k, v in result.heavy_epoch_peaks().items()
            },
            "fragmentation": {
                "samples": len(result.frag_samples),
                "max": max((f for _, f in result.frag_samples), default=0.0),
            },
            "interference_matrix": {
                "apps": apps,
                "rows": [[_num(float(x)) for x in row] for row in matrix],
            },
        },
    }
    return doc


def save_json(result: StreamResult, path: str | Path) -> Path:
    """Write the export document; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(to_doc(result), indent=2, sort_keys=True))
    return path
