"""Epoch-based cluster stream engine.

A stream of jobs arrives over simulated hours or days; an online
scheduler claims nodes; the co-scheduled jobs interfere on one shared
dragonfly. Simulating the whole stream packet-by-packet (or even
flow-by-flow) in one pass would couple every job to every other and
make the result a single monolithic, uncacheable artifact. Instead the
engine discretises the stream into **epochs** — maximal intervals
during which the running-job set is constant — and evaluates each
epoch's co-scheduled network state as one content-addressed cell on
:mod:`repro.exec`:

* an :class:`EpochSpec` (job names, rank counts, node allocations,
  stream seed, workload mix) rides in ``RunSpec.epoch`` and is part of
  the cell's identity hash, so a recurring co-schedule — common under
  steady load — is *cached*, and a warm re-run of a whole stream
  simulates nothing;
* cells within an epoch batch (the epoch snapshot, isolated baselines
  for newly started jobs, optional packet twins) are independent and
  run on the executor's process pool; results are bit-identical for
  any worker count because scheduling decisions consume only
  deterministic cell outputs.

The work model: a job's trace is one *iteration block*. When the job
first starts, an isolated cell on its own allocation measures the
block's makespan ``iso``; the job's target runtime then fixes
``iterations = round(service / iso)`` and its total isolated work.
During an epoch where the co-run block makespan is ``shared``, the job
burns wall time at slowdown ``shared / iso`` — a piecewise-constant
progress model that converts one cached network evaluation per epoch
into completion times over days of simulated time.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import math
import time
from dataclasses import dataclass

import numpy as np

from repro.cluster.accounting import (
    EpochRecord,
    JobRecord,
    StreamResult,
    ValidationRecord,
    fragmentation_index,
)
from repro.cluster.scheduler import ClusterScheduler
from repro.cluster.workload import StreamJob, WorkloadMix, generate_stream
from repro.config import SimulationConfig
from repro.core.runner import RunResult, build_topology
from repro.engine.simulator import Simulator
from repro.exec.cache import ResultCache
from repro.exec.plan import (
    DEFAULT_MAX_EVENTS,
    ExperimentPlan,
    RunSpec,
    config_digest,
    trace_fingerprint,
)
from repro.exec.pool import execute_plan
from repro.metrics.collector import RunMetrics
from repro.mpi.replay import JobResult, ReplayEngine
from repro.mpi.trace import JobTrace, RankTrace
from repro.network.fabric import Fabric
from repro.placement.machine import Machine
from repro.routing import make_routing

__all__ = ["EpochSpec", "merge_epoch_trace", "run_stream", "simulate_epoch"]

#: Floor for an epoch slowdown — guards the degenerate case of a
#: shared makespan under float noise of zero.
_MIN_SLOWDOWN = 1e-6

#: Completion-time comparison slack (simulated seconds).
_T_EPS = 1e-9


@dataclass(frozen=True)
class EpochSpec:
    """Identity of one co-scheduled network snapshot.

    ``jobs`` is ordered by job id: ``(name, num_ranks, nodes)`` per
    live job. The stream seed and mix label are included so epochs of
    *different* streams never share cache entries even if their
    snapshots coincide (the traces could still differ in content —
    ``trace_digest`` covers that — but keeping streams disjoint by
    construction makes cache forensics tractable).
    """

    jobs: tuple[tuple[str, int, tuple[int, ...]], ...]
    stream_seed: int
    mix: str

    @property
    def digest(self) -> str:
        payload = json.dumps(dataclasses.asdict(self), sort_keys=True)
        return hashlib.sha256(payload.encode()).hexdigest()


def merge_epoch_trace(
    jobs: list[tuple[str, JobTrace]], label: str
) -> JobTrace:
    """Concatenate job traces into one epoch container trace.

    :class:`~repro.mpi.trace.JobTrace` requires rank ids ``0..n-1``, so
    each job's ranks are *renumbered* into a global span — the op lists
    are shared, not copied (ops are immutable NamedTuples). The runner
    splits the container back into per-job traces by the spans recorded
    in the :class:`EpochSpec`.
    """
    ranks: list[RankTrace] = []
    for _, trace in jobs:
        for rt in trace.ranks:
            ranks.append(RankTrace(len(ranks), rt.ops))
    return JobTrace(label, ranks)


def simulate_epoch(
    config: SimulationConfig, spec: RunSpec, trace: JobTrace
) -> RunResult:
    """Cell runner for epoch snapshots (module-level: pool-picklable).

    Replays every job of ``spec.epoch`` concurrently from t=0 on one
    shared fabric (flow or packet per ``spec.backend``) and returns a
    :class:`~repro.core.runner.RunResult` whose
    ``extra["epoch_jobs"]`` carries per-job telemetry — most
    importantly each job's block makespan ``finish_ns``, which the
    stream driver turns into progress rates.

    Packet cells honour ``spec.faults`` (onsets are epoch-relative);
    the driver only ever fences *router* faults into allocations, so a
    flow cell never sees a plan.
    """
    wall_start = time.perf_counter()
    epoch: EpochSpec = spec.epoch
    if epoch is None:
        raise ValueError("simulate_epoch requires spec.epoch")
    topo = build_topology(config.topology)
    sim = Simulator(scheduler=spec.scheduler)
    fault_plan = None
    if spec.faults is not None and not spec.faults.is_empty():
        if spec.backend == "flow":
            raise ValueError("flow epoch cells cannot carry fault plans")
        fault_plan = spec.faults
        fault_plan.validate(topo)
    if spec.backend == "flow":
        from repro.flow.fabric import FlowFabric

        fabric = FlowFabric(sim, topo, config.network, spec.routing)
    else:
        if fault_plan is not None:
            from repro.faults.routing import make_fault_aware_routing

            routing = make_fault_aware_routing(spec.routing, seed=spec.seed)
        else:
            routing = make_routing(spec.routing, seed=spec.seed)
        fabric = Fabric(sim, topo, config.network, routing)

    engine = ReplayEngine(sim, fabric, compute_scale=spec.compute_scale)
    offset = 0
    placements: list[tuple[str, list[int]]] = []
    for idx, (name, num_ranks, nodes) in enumerate(epoch.jobs):
        sub = JobTrace(
            name,
            [
                RankTrace(i, rt.ops)
                for i, rt in enumerate(
                    trace.ranks[offset : offset + num_ranks]
                )
            ],
        )
        offset += num_ranks
        engine.add_job(idx, sub, list(nodes))
        placements.append((name, list(nodes)))
    if offset != trace.num_ranks:
        raise ValueError(
            f"epoch trace has {trace.num_ranks} ranks but spec spans {offset}"
        )

    if fault_plan is not None:
        from repro.faults.plan import install_plan

        install_plan(sim, fabric, fault_plan)

    engine.run(max_events=spec.max_events)

    per_job: dict[str, dict[str, float]] = {}
    parts: list[JobResult] = []
    for idx, (name, nodes) in enumerate(placements):
        jr = engine.job_result(idx)
        parts.append(jr)
        per_job[name] = {
            "ranks": float(jr.num_ranks),
            "finish_ns": float(jr.finish_time_ns.max()),
            "comm_ns": float(np.median(jr.comm_time_ns)),
            "max_comm_ns": float(jr.comm_time_ns.max()),
            "blocked_ns": float(np.median(jr.blocked_time_ns)),
            "avg_hops": float(jr.avg_hops.mean()),
            "bytes": float(jr.bytes_sent.sum()),
        }

    merged = JobResult(
        spec.app,
        np.concatenate([p.comm_time_ns for p in parts]),
        np.concatenate([p.finish_time_ns for p in parts]),
        np.concatenate([p.blocked_time_ns for p in parts]),
        np.concatenate([p.avg_hops for p in parts]),
        np.concatenate([p.bytes_sent for p in parts]),
        np.concatenate([p.bytes_recv for p in parts]),
    )
    all_nodes = [n for _, nodes in placements for n in nodes]
    metrics = RunMetrics.from_run(fabric, topo, merged, all_nodes)
    nonmin = (
        fabric.nonminimal_fraction if spec.backend == "flow" else 0.0
    )
    return RunResult(
        app=spec.app,
        placement=spec.placement,
        routing=spec.routing,
        seed=spec.seed,
        job=merged,
        metrics=metrics,
        nodes=all_nodes,
        sim_time_ns=sim.now,
        events=sim.events_run,
        nonminimal_fraction=nonmin,
        extra={"epoch_jobs": per_job},
        backend=spec.backend,
        wall_s=time.perf_counter() - wall_start,
    )


class _Running:
    """Mutable progress state of one running job."""

    __slots__ = ("job", "nodes", "iso_ns", "work_left_s", "slowdown")

    def __init__(self, job: StreamJob, nodes: list[int]) -> None:
        self.job = job
        self.nodes = nodes
        self.iso_ns = math.nan
        self.work_left_s = math.inf
        self.slowdown = 1.0

    @property
    def eta_s(self) -> float:
        return self.work_left_s * self.slowdown


def run_stream(
    config: SimulationConfig,
    mix: WorkloadMix | str = "AMG=1,CR=1,FB=1",
    duration_s: float = 7200.0,
    load: float = 0.6,
    policy: str = "cont",
    routing: str = "adp",
    backend: str = "flow",
    seed: int | None = None,
    backfill: bool = False,
    max_workers: int = 1,
    cache: ResultCache | str | None = None,
    progress=None,
    validate_every: int = 0,
    faults=None,
    max_events: int | None = DEFAULT_MAX_EVENTS,
    timeout_s: float | None = None,
    jobs: list[StreamJob] | None = None,
    flow_batch: int = 0,
    surrogate_model=None,
) -> StreamResult:
    """Drive one seeded cluster stream end to end.

    Jobs are drawn by :func:`~repro.cluster.workload.generate_stream`
    (or supplied via ``jobs``), scheduled FCFS (+``backfill``) under
    ``policy`` (a placement name, ``"advisor"``, or ``"surrogate"`` —
    the latter requires ``surrogate_model``, a fitted
    :class:`~repro.advisor.model.RidgeSurrogate`), and every epoch is
    evaluated as a cached cell on the ``backend`` network model.

    ``validate_every=k`` additionally runs every k-th non-empty flow
    epoch on the packet backend and records per-job block-makespan
    relative errors (:class:`~repro.cluster.accounting
    .ValidationRecord`) — physics spot-checks that never influence the
    stream's own dynamics.

    ``faults`` (a :class:`~repro.faults.FaultPlan`) fences nodes of
    failed routers out of the machine before any allocation, on either
    backend; link-level faults additionally require
    ``backend="packet"`` (the flow model has no fault support) and are
    installed in every epoch cell at epoch-relative onset times.

    Determinism: identical arguments yield an identical
    :class:`~repro.cluster.accounting.StreamResult` for any
    ``max_workers`` (and any ``flow_batch`` — batching flow epoch
    cells through :class:`~repro.flow.batch.BatchedFlowRunner` is pure
    scheduling), and identical epoch-cell keys across runs — a warm
    ``cache`` makes a re-run simulate zero cells.
    """
    wall_start = time.perf_counter()
    if seed is None:
        seed = config.seed
    if isinstance(mix, str):
        mix = WorkloadMix.parse(mix)
    if isinstance(cache, str):
        cache = ResultCache(cache)
    if backend not in ("packet", "flow"):
        raise ValueError(f"unknown backend {backend!r}")

    machine = Machine(config.topology)
    fault_plan = None
    if faults is not None and not faults.is_empty():
        topo = build_topology(config.topology)
        faults.validate(topo)
        if backend == "flow" and faults.link_faults:
            raise ValueError(
                "link faults require backend='packet'; the flow model "
                "only supports router fencing"
            )
        fault_plan = faults
        dead = faults.dead_nodes(topo)
        if dead:
            machine.mark_down(dead)
    #: Plan handed to epoch cells: only packet cells simulate faults.
    cell_faults = fault_plan if backend == "packet" else None

    stream = (
        sorted(jobs, key=lambda j: (j.arrival_s, j.id))
        if jobs is not None
        else generate_stream(mix, duration_s, load, machine.num_free, seed)
    )
    sched = ClusterScheduler(
        machine,
        config,
        policy=policy,
        stream_seed=seed,
        backfill=backfill,
        routing=routing,
        surrogate=surrogate_model,
    )
    cfg_digest = config_digest(config)

    result = StreamResult(
        mix=mix.label,
        policy=policy,
        routing=routing,
        backend=backend,
        seed=seed,
        duration_s=duration_s,
        load=load,
        num_nodes=machine.num_free,
    )
    records: dict[int, JobRecord] = {}
    for j in stream:
        records[j.id] = JobRecord(
            id=j.id,
            name=j.name,
            app=j.app,
            ranks=j.ranks,
            arrival_s=j.arrival_s,
            service_s=j.service_s,
            bytes_sent=j.trace.total_bytes(),
        )
        result.jobs.append(records[j.id])

    running: dict[int, _Running] = {}
    counters = {
        "epochs": 0,
        "epochs_nonempty": 0,
        "cells_planned": 0,
        "cells_simulated": 0,
        "cells_cached": 0,
        "backfilled": 0,
    }

    def _close_epoch(t: float) -> None:
        if result.epochs and math.isnan(result.epochs[-1].t1_s):
            last = result.epochs[-1]
            last.t1_s = t
            dur = t - last.t0_s
            # Every job in the epoch's slowdown map ran for the whole
            # interval (epochs close exactly at running-set changes).
            for jid in last.slowdowns:
                records[jid].slow_work_s += dur
                records[jid].epochs += 1

    def _evaluate(now: float, new_ids: list[int]) -> None:
        """Run the epoch batch for the current running set."""
        entries = sorted(running.items())
        epoch = EpochSpec(
            jobs=tuple(
                (r.job.name, r.job.ranks, tuple(r.nodes))
                for _, r in entries
            ),
            stream_seed=seed,
            mix=mix.label,
        )
        merged = merge_epoch_trace(
            [(r.job.name, r.job.trace) for _, r in entries],
            f"epoch:{epoch.digest[:16]}",
        )
        traces = {merged.name: merged}
        tdigest = trace_fingerprint(merged)

        def _cell(ep: EpochSpec, app: str, td: str, be: str) -> RunSpec:
            return RunSpec(
                app=app,
                placement=policy,
                routing=routing,
                seed=seed,
                config_digest=cfg_digest,
                trace_digest=td,
                max_events=max_events,
                faults=cell_faults if be == "packet" else None,
                backend=be,
                epoch=ep,
            )

        specs = [_cell(epoch, merged.name, tdigest, backend)]
        iso_index: dict[int, int] = {}
        for jid in new_ids:
            r = running[jid]
            iso = EpochSpec(
                jobs=((r.job.name, r.job.ranks, tuple(r.nodes)),),
                stream_seed=seed,
                mix=mix.label,
            )
            iso_trace = merge_epoch_trace(
                [(r.job.name, r.job.trace)], f"iso:{iso.digest[:16]}"
            )
            traces[iso_trace.name] = iso_trace
            iso_index[jid] = len(specs)
            specs.append(
                _cell(iso, iso_trace.name, trace_fingerprint(iso_trace), backend)
            )
        validate = (
            backend == "flow"
            and validate_every > 0
            and counters["epochs_nonempty"] % validate_every == 0
        )
        if validate:
            specs.append(_cell(epoch, merged.name, tdigest, "packet"))

        plan = ExperimentPlan(
            config=config, specs=tuple(specs), traces=traces
        )
        report = execute_plan(
            plan,
            max_workers=max_workers,
            cache=cache,
            progress=progress,
            timeout_s=timeout_s,
            runner=simulate_epoch,
            strict=True,
            flow_batch=flow_batch,
        )
        counters["cells_planned"] += report.planned
        counters["cells_simulated"] += report.done
        counters["cells_cached"] += report.cached

        # Isolated baselines first: they fix iterations and total work.
        for jid, si in iso_index.items():
            r = running[jid]
            out = report.outcomes[si].result
            assert out is not None
            iso_ns = out.extra["epoch_jobs"][r.job.name]["finish_ns"]
            r.iso_ns = max(iso_ns, 1.0)
            rec = records[jid]
            rec.iso_finish_ns = r.iso_ns
            rec.iterations = max(
                1, round(r.job.service_s * 1e9 / r.iso_ns)
            )
            rec.work_s = rec.iterations * r.iso_ns / 1e9
            rec.avg_hops = out.extra["epoch_jobs"][r.job.name]["avg_hops"]
            r.work_left_s = rec.work_s

        shared = report.outcomes[0].result
        assert shared is not None
        slowdowns: dict[int, float] = {}
        for jid, r in entries:
            fin = shared.extra["epoch_jobs"][r.job.name]["finish_ns"]
            r.slowdown = max(fin / r.iso_ns, _MIN_SLOWDOWN)
            slowdowns[jid] = r.slowdown

        m = shared.metrics
        peak_bytes = max(
            (
                int(a.max())
                for a in (m.local_traffic_bytes, m.global_traffic_bytes)
                if a.size
            ),
            default=0,
        )
        peak_sat_ns = max(
            (float(a.max()) for a in (m.local_sat_ns, m.global_sat_ns) if a.size),
            default=0.0,
        )
        makespan_ns = max(
            (v["finish_ns"] for v in shared.extra["epoch_jobs"].values()),
            default=0.0,
        )

        counters["epochs_nonempty"] += 1
        result.epochs.append(
            EpochRecord(
                index=counters["epochs"],
                t0_s=now,
                job_ids=tuple(jid for jid, _ in entries),
                apps=tuple(r.job.app for _, r in entries),
                key=specs[0].key,
                status=report.outcomes[0].status,
                sim_wall_s=report.wall_s,
                busy_nodes=sum(r.job.ranks for _, r in entries),
                slowdowns=slowdowns,
                peak_link_bytes=peak_bytes,
                peak_link_sat_ns=peak_sat_ns,
                makespan_ns=makespan_ns,
            )
        )
        if validate:
            twin = report.outcomes[-1].result
            assert twin is not None
            rel = {}
            for _, r in entries:
                f = shared.extra["epoch_jobs"][r.job.name]["finish_ns"]
                p = twin.extra["epoch_jobs"][r.job.name]["finish_ns"]
                rel[r.job.name] = abs(f - p) / max(p, 1.0)
            result.validations.append(
                ValidationRecord(
                    epoch_index=counters["epochs"],
                    flow_key=specs[0].key,
                    packet_key=specs[-1].key,
                    rel_err=rel,
                )
            )
        counters["epochs"] += 1

    # ------------------------------------------------------------------
    # event loop: completions and arrivals drive epoch transitions
    # ------------------------------------------------------------------
    now = 0.0
    arr_i = 0
    while running or sched.queue or arr_i < len(stream):
        t_arr = stream[arr_i].arrival_s if arr_i < len(stream) else math.inf
        t_fin = math.inf
        if running:
            t_fin = min(now + r.eta_s for r in running.values())
        t_next = min(t_arr, t_fin)
        if math.isinf(t_next):
            raise RuntimeError(
                "stream wedged: queued jobs cannot start on an idle machine"
            )
        # Burn progress over [now, t_next] at current epoch slowdowns.
        elapsed = t_next - now
        if elapsed > 0:
            for r in running.values():
                r.work_left_s -= elapsed / r.slowdown
        now = t_next

        changed = False
        finishing = [
            jid
            for jid, r in running.items()
            if r.work_left_s <= _T_EPS * max(1.0, records[jid].work_s)
        ]
        for jid in sorted(finishing):
            sched.finish(jid)
            rec = records[jid]
            rec.status = "completed"
            rec.finish_s = now
            del running[jid]
            changed = True
        while arr_i < len(stream) and stream[arr_i].arrival_s <= now + _T_EPS:
            job = stream[arr_i]
            arr_i += 1
            if not sched.submit(job):
                records[job.id].status = "rejected"
        launched = sched.schedule()
        if launched:
            result.frag_samples.append(
                (now, fragmentation_index(machine.free_nodes()))
            )
        new_ids: list[int] = []
        for job, nodes, placement in launched:
            rec = records[job.id]
            rec.status = "running"
            rec.start_s = now
            rec.placement = placement
            rec.nodes = tuple(nodes)
            running[job.id] = _Running(job, nodes)
            new_ids.append(job.id)
            changed = True

        if changed:
            _close_epoch(now)
            if running:
                _evaluate(now, new_ids)
            else:
                result.epochs.append(
                    EpochRecord(index=counters["epochs"], t0_s=now)
                )
                counters["epochs"] += 1
    _close_epoch(now)

    counters["backfilled"] = sched.backfilled
    result.counters = counters
    result.wall_s = time.perf_counter() - wall_start
    result.check_invariants()
    return result
