"""Statistical helpers reproducing the paper's plot data.

The paper presents channel traffic and saturation as "percentage of
channels vs. amount" CDFs (Figures 4-6, 8-10), communication times as
five-number box plots (Figure 3), and message load over time as a
per-rank average timeline (Figure 2 bottom row).
"""

from __future__ import annotations

from typing import NamedTuple, Sequence

import numpy as np

__all__ = [
    "cdf",
    "BoxStats",
    "box_stats",
    "load_timeline",
    "percent_improvement",
]


def cdf(values: Sequence[float] | np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Empirical CDF as plotted in the paper.

    Returns ``(x, pct)`` where ``pct[i]`` is the percentage of values
    that are <= ``x[i]``; x is sorted ascending. Empty input yields two
    empty arrays.
    """
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        return np.array([]), np.array([])
    x = np.sort(arr)
    pct = 100.0 * np.arange(1, x.size + 1) / x.size
    return x, pct


class BoxStats(NamedTuple):
    """The five data points of each Figure-3 box."""

    minimum: float
    q1: float
    median: float
    q3: float
    maximum: float

    @classmethod
    def empty(cls) -> "BoxStats":
        return cls(float("nan"), float("nan"), float("nan"), float("nan"), float("nan"))

    def scaled(self, factor: float) -> "BoxStats":
        return BoxStats(*(v * factor for v in self))


def box_stats(values: Sequence[float] | np.ndarray) -> BoxStats:
    """Five-number summary (min, Q1, median, Q3, max)."""
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        return BoxStats.empty()
    q = np.percentile(arr, [0, 25, 50, 75, 100])
    return BoxStats(*map(float, q))


def load_timeline(
    send_events: Sequence[tuple[float, int, int]],
    num_ranks: int,
    num_bins: int = 50,
    t_end: float | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Average message load per rank over time (Figure 2 bottom row).

    ``send_events`` is the replay engine's ``(time_ns, rank, bytes)``
    record. Returns ``(bin_centers_ns, bytes_per_rank)``.
    """
    if num_ranks < 1:
        raise ValueError("num_ranks must be positive")
    if num_bins < 1:
        raise ValueError("num_bins must be positive")
    if not send_events:
        return np.array([]), np.array([])
    times = np.asarray([e[0] for e in send_events], dtype=np.float64)
    sizes = np.asarray([e[2] for e in send_events], dtype=np.float64)
    end = t_end if t_end is not None else float(times.max()) + 1.0
    edges = np.linspace(0.0, end, num_bins + 1)
    totals, _ = np.histogram(times, bins=edges, weights=sizes)
    centers = (edges[:-1] + edges[1:]) / 2.0
    return centers, totals / num_ranks


def percent_improvement(baseline: float, improved: float) -> float:
    """How much smaller ``improved`` is than ``baseline``, in percent.

    Matches the paper's phrasing "X% improvement in communication time
    compared with Y": positive when ``improved < baseline``.
    """
    if baseline <= 0:
        raise ValueError("baseline must be positive")
    return 100.0 * (baseline - improved) / baseline
