"""Time-resolved network metrics sampled into fixed-width windows.

:class:`TimeSeriesMetrics` is the frozen output of one observed run
(see :mod:`repro.obs`): per-link, per-window counters plus a structured
congestion-event trace. It is the windowed counterpart of
:class:`~repro.metrics.collector.RunMetrics` and is what the paper's
time-resolved figures (per-channel traffic and link-saturation onset,
Figs. 4-6) are derived from.

Accounting contract (enforced by the invariant test suite):

* ``bytes_fwd`` windows are deltas of an int64 cumulative counter, so
  they telescope **exactly**: ``bytes_fwd.sum(axis=0)`` equals the
  fabric's end-of-run ``bytes_tx`` per link, byte for byte.
* ``busy_ns`` and ``stall_ns`` are deltas of monotone float
  accumulators corrected for in-flight intervals at each window edge,
  so every window value lies in ``[0, window span]`` (up to float
  rounding) and column sums match the run aggregates to float
  precision.
* ``queue_bytes`` is an instantaneous sample at each window edge, not a
  delta.

``SCHEMA_VERSION`` identifies this layout in pickles and exports; bump
it (together with :data:`repro.exec.plan.CODE_SALT`) whenever the
layout changes, so stale cache entries and exports are never
misinterpreted.
"""

from __future__ import annotations

from typing import Iterable, NamedTuple

import numpy as np

from repro.topology.links import LinkKind

__all__ = ["CongestionEvent", "TimeSeriesMetrics", "SCHEMA_VERSION"]

#: Layout version of TimeSeriesMetrics pickles and exports.
SCHEMA_VERSION = 1


class CongestionEvent(NamedTuple):
    """One structured entry of the congestion trace.

    ``kind`` is one of ``"stall_onset"`` / ``"stall_clear"`` (a link's
    credit-stall interval opening / closing; ``value`` is the interval
    length on clear), ``"buffer_full"`` (a head packet could not obtain
    downstream VC buffer space; ``value`` is the buffer occupancy),
    ``"adaptive_divert"`` (adaptive routing chose a non-minimal path;
    ``link`` holds the deciding source *router* and ``value`` the chosen
    path length), ``"fault"`` (a link fault landed; ``value`` is the
    bandwidth scale, 0 for a dead link), or ``"reroute"`` (a packet was
    re-routed around a dead channel; ``link`` is the new next hop and
    ``value`` the remaining route length).
    """

    t_ns: float
    kind: str
    link: int
    vc: int
    value: float


class TimeSeriesMetrics:
    """Windowed per-link network state for one simulated run.

    Arrays are shaped ``(num_windows, num_links)`` unless noted. The
    final window may be partial (it closes at the simulation's stop
    time); consult ``edges`` for actual window spans.
    """

    def __init__(
        self,
        window_ns: float,
        edges: np.ndarray,
        bytes_fwd: np.ndarray,
        busy_ns: np.ndarray,
        stall_ns: np.ndarray,
        queue_bytes: np.ndarray,
        link_kind: np.ndarray,
        link_src: np.ndarray,
        injected_packets: np.ndarray,
        delivered_packets: np.ndarray,
        injected_bytes: np.ndarray,
        delivered_bytes: np.ndarray,
        events: list[CongestionEvent] | None = None,
        events_dropped: int = 0,
    ) -> None:
        self.schema_version = SCHEMA_VERSION
        self.window_ns = float(window_ns)
        #: Window *end* times, shape ``(W,)``; window i spans
        #: ``[edges[i-1], edges[i])`` with ``edges[-1-...]`` starting at 0.
        self.edges = edges
        self.bytes_fwd = bytes_fwd
        self.busy_ns = busy_ns
        self.stall_ns = stall_ns
        self.queue_bytes = queue_bytes
        self.link_kind = link_kind
        self.link_src = link_src
        #: Cumulative machine-wide counters sampled at each edge, ``(W,)``.
        self.injected_packets = injected_packets
        self.delivered_packets = delivered_packets
        self.injected_bytes = injected_bytes
        self.delivered_bytes = delivered_bytes
        self.events = events if events is not None else []
        #: Congestion events discarded after hitting the trace cap.
        self.events_dropped = events_dropped

    # ------------------------------------------------------------------
    # shape and selection
    # ------------------------------------------------------------------
    @property
    def num_windows(self) -> int:
        return len(self.edges)

    @property
    def num_links(self) -> int:
        return len(self.link_kind)

    def window_spans(self) -> np.ndarray:
        """Actual span of each window in ns (the last may be partial)."""
        if len(self.edges) == 0:
            return np.zeros(0)
        starts = np.concatenate(([0.0], self.edges[:-1]))
        return self.edges - starts

    def link_mask(
        self,
        kinds: Iterable[LinkKind] | None = None,
        routers: Iterable[int] | None = None,
    ) -> np.ndarray:
        """Boolean selector over links by kind and/or source router.

        ``routers`` filters on the transmitting endpoint, matching the
        "channels of the routers serving the job" convention of
        :class:`~repro.metrics.collector.RunMetrics` (note that for
        ``TERMINAL_IN`` links the source is a node id).
        """
        mask = np.ones(self.num_links, dtype=bool)
        if kinds is not None:
            mask &= np.isin(self.link_kind, [int(k) for k in kinds])
        if routers is not None:
            mask &= np.isin(self.link_src, np.asarray(list(routers)))
        return mask

    # ------------------------------------------------------------------
    # derived metrics
    # ------------------------------------------------------------------
    def link_traffic_bytes(self) -> np.ndarray:
        """Per-link total transmitted bytes, derived from windows."""
        return self.bytes_fwd.sum(axis=0)

    def link_saturation_ns(self) -> np.ndarray:
        """Per-link total saturation time, derived from windows.

        This is the windowed derivation of the paper's link *saturation
        time*; it matches the fabric's running aggregate to float
        precision (exactly, modulo rounding of the window deltas).
        """
        return self.stall_ns.sum(axis=0)

    def link_utilisation(self) -> np.ndarray:
        """Per-window, per-link serialiser utilisation in ``[0, 1]``."""
        spans = self.window_spans()
        with np.errstate(invalid="ignore", divide="ignore"):
            util = np.where(spans[:, None] > 0, self.busy_ns / spans[:, None], 0.0)
        return util

    def saturation_onset_ns(self, frac: float = 0.5) -> np.ndarray:
        """Per-link time of first window with stall fraction >= ``frac``.

        Returns the window *end* time of the first qualifying window per
        link, or ``np.inf`` for links that never reach it — the "when
        does a link saturate" quantity of the paper's analysis.
        """
        if not 0.0 < frac <= 1.0:
            raise ValueError("frac must be in (0, 1]")
        spans = self.window_spans()
        onset = np.full(self.num_links, np.inf)
        if self.num_windows == 0:
            return onset
        with np.errstate(invalid="ignore", divide="ignore"):
            hot = self.stall_ns >= frac * np.maximum(spans[:, None], 1e-300)
        for lid in np.nonzero(hot.any(axis=0))[0]:
            onset[lid] = self.edges[int(np.argmax(hot[:, lid]))]
        return onset

    def class_series(self, *kinds: LinkKind) -> dict[str, np.ndarray]:
        """Per-window sums over one link class: traffic, stall, busy, queue."""
        mask = self.link_mask(kinds=kinds)
        return {
            "bytes_fwd": self.bytes_fwd[:, mask].sum(axis=1),
            "stall_ns": self.stall_ns[:, mask].sum(axis=1),
            "busy_ns": self.busy_ns[:, mask].sum(axis=1),
            "queue_bytes": self.queue_bytes[:, mask].sum(axis=1),
        }

    def in_flight_packets(self) -> np.ndarray:
        """Packets injected but not yet delivered, at each window edge."""
        return self.injected_packets - self.delivered_packets

    def summary(self) -> dict[str, float]:
        """Flat scalar summary (mirrors ``RunMetrics.summary`` style)."""
        local = self.link_mask(kinds=(LinkKind.LOCAL_ROW, LinkKind.LOCAL_COL))
        glob = self.link_mask(kinds=(LinkKind.GLOBAL,))
        return {
            "windows": float(self.num_windows),
            "window_ns": self.window_ns,
            "span_ns": float(self.edges[-1]) if self.num_windows else 0.0,
            "local_traffic_mb": float(self.bytes_fwd[:, local].sum()) / 1e6,
            "global_traffic_mb": float(self.bytes_fwd[:, glob].sum()) / 1e6,
            "local_sat_ms": float(self.stall_ns[:, local].sum()) / 1e6,
            "global_sat_ms": float(self.stall_ns[:, glob].sum()) / 1e6,
            "events": float(len(self.events)),
        }
