"""Evaluation metrics (paper Section III-E).

* **Communication time** — per-rank time completing all message
  exchanging operations (from the replay engine).
* **Average hops** — per-rank mean router-to-router hops of its packets.
* **Network traffic** — bytes through the local and global channels of
  the routers serving the job's nodes.
* **Link saturation time** — accumulated time a channel was stalled with
  queued packets but exhausted downstream buffers.

Aggregates live in :class:`RunMetrics`; the time-resolved windowed view
produced by :mod:`repro.obs` lives in :class:`TimeSeriesMetrics`.
"""

from repro.metrics.collector import RunMetrics
from repro.metrics.timeseries import CongestionEvent, TimeSeriesMetrics
from repro.metrics.analysis import (
    BoxStats,
    box_stats,
    cdf,
    load_timeline,
    percent_improvement,
)

__all__ = [
    "CongestionEvent",
    "RunMetrics",
    "TimeSeriesMetrics",
    "BoxStats",
    "box_stats",
    "cdf",
    "load_timeline",
    "percent_improvement",
]
