"""Per-run metric extraction.

Channel-level metrics follow the paper's Figure 8 caption: "the traffic
distribution on local and global channels of the routers that serve the
nodes assigned to the target application" — i.e. the outgoing local and
global links of the job's routers, whether or not the job itself sent the
bytes (so background interference shows up, Section IV-C).
"""

from __future__ import annotations

import numpy as np

from repro.mpi.replay import JobResult
from repro.network.fabric import Fabric
from repro.topology.dragonfly import Dragonfly
from repro.topology.links import LinkKind

__all__ = ["RunMetrics"]


class RunMetrics:
    """Network + communication metrics for one simulated run."""

    def __init__(
        self,
        comm_time_ns: np.ndarray,
        avg_hops: np.ndarray,
        local_traffic_bytes: np.ndarray,
        global_traffic_bytes: np.ndarray,
        local_sat_ns: np.ndarray,
        global_sat_ns: np.ndarray,
    ) -> None:
        self.comm_time_ns = comm_time_ns
        self.avg_hops = avg_hops
        self.local_traffic_bytes = local_traffic_bytes
        self.global_traffic_bytes = global_traffic_bytes
        self.local_sat_ns = local_sat_ns
        self.global_sat_ns = global_sat_ns

    @classmethod
    def from_run(
        cls,
        fabric: Fabric,
        topo: Dragonfly,
        job: JobResult,
        nodes: list[int],
    ) -> "RunMetrics":
        """Extract metrics for the job placed on ``nodes``."""
        routers = np.unique([topo.router_of(n) for n in nodes])
        kind = topo.links.kind
        src = topo.links.src
        assert kind is not None and src is not None

        bytes_tx = np.asarray(fabric.bytes_tx, dtype=np.int64)
        sat_ns = np.asarray(fabric.sat_ns, dtype=np.float64)

        serving = np.isin(src, routers)
        local_mask = (
            (kind == LinkKind.LOCAL_ROW) | (kind == LinkKind.LOCAL_COL)
        ) & serving
        global_mask = (kind == LinkKind.GLOBAL) & serving

        return cls(
            comm_time_ns=job.comm_time_ns.copy(),
            avg_hops=job.avg_hops.copy(),
            local_traffic_bytes=bytes_tx[local_mask],
            global_traffic_bytes=bytes_tx[global_mask],
            local_sat_ns=sat_ns[local_mask],
            global_sat_ns=sat_ns[global_mask],
        )

    # convenience aggregates ------------------------------------------
    @property
    def max_comm_time_ns(self) -> float:
        return float(self.comm_time_ns.max())

    @property
    def median_comm_time_ns(self) -> float:
        return float(np.median(self.comm_time_ns))

    @property
    def mean_hops(self) -> float:
        return float(self.avg_hops.mean())

    @property
    def total_local_traffic(self) -> int:
        return int(self.local_traffic_bytes.sum())

    @property
    def total_global_traffic(self) -> int:
        return int(self.global_traffic_bytes.sum())

    @property
    def total_local_sat_ns(self) -> float:
        return float(self.local_sat_ns.sum())

    @property
    def total_global_sat_ns(self) -> float:
        return float(self.global_sat_ns.sum())

    def summary(self) -> dict[str, float]:
        """Flat scalar summary (used by reports and tests)."""
        return {
            "max_comm_ms": self.max_comm_time_ns / 1e6,
            "median_comm_ms": self.median_comm_time_ns / 1e6,
            "mean_hops": self.mean_hops,
            "local_traffic_mb": self.total_local_traffic / 1e6,
            "global_traffic_mb": self.total_global_traffic / 1e6,
            "local_sat_ms": self.total_local_sat_ns / 1e6,
            "global_sat_ms": self.total_global_sat_ns / 1e6,
        }
