"""The training-job trade-off study: the paper's grid on ML traffic.

The paper answers "localize or balance?" for DOE mini-apps;
:func:`training_tradeoff` reruns the same 5-placement x 2-routing grid
on the DL training family (:mod:`repro.mlcomms.generators` and/or
imported comms traces) and exports a versioned ``repro-mlcomms/v1``
report: per-cell summaries, a placement winner per (app, routing) with
its margin over the worst placement, and the resulting localize/balance
leaning per app. CLI: ``dragonfly-tradeoff training-tradeoff``; CI's
``mlcomms-smoke`` job gates on non-empty per-routing winners.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable, Mapping

from repro.config import SimulationConfig
from repro.core.study import StudyResult, TradeoffStudy
from repro.metrics.analysis import percent_improvement
from repro.mlcomms.generators import (
    dp_allreduce_trace,
    moe_alltoall_trace,
    pp_1f1b_trace,
    tp_layer_trace,
)
from repro.mpi.trace import JobTrace
from repro.placement.policies import PLACEMENT_NAMES
from repro.routing import ROUTING_NAMES

__all__ = [
    "SCHEMA",
    "DEFAULT_APPS",
    "TrainingReport",
    "default_training_traces",
    "training_tradeoff",
]

#: Versioned export schema.
SCHEMA = "repro-mlcomms/v1"

#: The synthetic training family, in report order.
DEFAULT_APPS = ("DP", "PP", "TP", "MOE")

#: Placement-policy leaning: which side of the paper's trade-off each
#: placement represents (contiguous variants localize, scattering
#: variants balance).
_PLACEMENT_LEANING = {
    "cont": "localize",
    "cab": "localize",
    "chas": "localize",
    "rotr": "balance",
    "rand": "balance",
}


def default_training_traces(
    num_ranks: int,
    msg_scale: float = 1.0,
    seed: int = 0,
    apps: Iterable[str] = DEFAULT_APPS,
) -> dict[str, JobTrace]:
    """The synthetic training jobs at a common rank count and scale."""
    builders = {
        "DP": dp_allreduce_trace,
        "PP": pp_1f1b_trace,
        "TP": tp_layer_trace,
        "MOE": moe_alltoall_trace,
    }
    traces: dict[str, JobTrace] = {}
    for app in apps:
        try:
            builder = builders[app.upper()]
        except KeyError:
            raise ValueError(
                f"unknown training app {app!r} (choose from {DEFAULT_APPS})"
            ) from None
        trace = builder(num_ranks=num_ranks, seed=seed)
        if msg_scale != 1.0:
            trace = trace.scaled(msg_scale)
        traces[trace.name] = trace
    return traces


@dataclass
class TrainingReport:
    """Grid results for the training family (see :func:`training_tradeoff`)."""

    apps: tuple[str, ...]
    placements: tuple[str, ...]
    routings: tuple[str, ...]
    backend: str
    #: One record per grid cell: the scalar metric summary + wall time.
    cells: list[dict[str, Any]]
    #: ``winners[app][routing]`` -> best placement, margin, runner-up.
    winners: dict[str, dict[str, dict[str, Any]]]

    def leaning(self, app: str) -> str:
        """'localize', 'balance', or 'split' across the app's routings."""
        sides = {
            _PLACEMENT_LEANING.get(rec["placement"], "balance")
            for rec in self.winners[app].values()
        }
        return sides.pop() if len(sides) == 1 else "split"

    def to_json(self) -> dict[str, Any]:
        return {
            "schema": SCHEMA,
            "apps": list(self.apps),
            "placements": list(self.placements),
            "routings": list(self.routings),
            "backend": self.backend,
            "cells": self.cells,
            "winners": self.winners,
            "leaning": {app: self.leaning(app) for app in self.apps},
        }

    def save_json(self, path: str | Path) -> None:
        with open(path, "w") as fh:
            json.dump(self.to_json(), fh, indent=2, sort_keys=True)
            fh.write("\n")

    def format_table(self) -> str:
        """Human-readable summary for the CLI."""
        lines = ["training-job placement x routing trade-off", "=" * 60]
        for app in self.apps:
            for routing in self.routings:
                rec = self.winners[app][routing]
                lines.append(
                    f"{app:>4} {routing:<8} best={rec['placement']:<5} "
                    f"median={rec['median_ms']:8.3f} ms "
                    f"(+{rec['improvement_pct']:5.1f}% vs worst "
                    f"{rec['worst_placement']})"
                )
            lines.append(f"{app:>4} leaning: {self.leaning(app)}")
        lines.append("-" * 60)
        return "\n".join(lines)


def training_tradeoff(
    config: SimulationConfig,
    traces: Mapping[str, JobTrace] | Iterable[JobTrace] | None = None,
    *,
    num_ranks: int = 8,
    msg_scale: float = 1.0,
    apps: Iterable[str] = DEFAULT_APPS,
    placements: tuple[str, ...] = PLACEMENT_NAMES,
    routings: tuple[str, ...] = ROUTING_NAMES,
    seed: int = 0,
    backend: str = "flow",
    scheduler: str = "heap",
    max_workers: int = 1,
    cache_dir: Any = None,
    progress: Any = None,
    flow_batch: int = 0,
) -> TrainingReport:
    """Run the placement x routing grid on training jobs.

    With ``traces=None`` the synthetic family (``apps``) is generated at
    ``num_ranks``/``msg_scale``/``seed``; pass traces (e.g. from
    :func:`repro.mlcomms.traceio.load_comms_trace`) to study imported
    jobs instead. Defaults to the flow backend — training grids are
    bandwidth-dominated, exactly where the fluid model is strong — but
    ``backend="packet"`` runs the exact engine unchanged.
    """
    if traces is None:
        traces = default_training_traces(
            num_ranks, msg_scale=msg_scale, seed=seed, apps=apps
        )
    result: StudyResult = TradeoffStudy(
        config,
        traces,
        placements=placements,
        routings=routings,
        seed=seed,
        scheduler=scheduler,
        backend=backend,
    ).run(
        max_workers=max_workers,
        cache_dir=cache_dir,
        progress=progress,
        flow_batch=flow_batch,
    )

    cells: list[dict[str, Any]] = []
    for app in result.apps:
        for placement in placements:
            for routing in routings:
                run = result.runs[(app, placement, routing)]
                cells.append(
                    {
                        "app": app,
                        "placement": placement,
                        "routing": routing,
                        "summary": run.metrics.summary(),
                        "wall_s": run.wall_s,
                    }
                )

    winners: dict[str, dict[str, dict[str, Any]]] = {}
    for app in result.apps:
        winners[app] = {}
        for routing in routings:
            scores = {
                p: result.runs[(app, p, routing)].metrics.median_comm_time_ns
                for p in placements
            }
            order = sorted(scores, key=lambda p: scores[p])
            best, worst = order[0], order[-1]
            winners[app][routing] = {
                "placement": best,
                "median_ms": scores[best] / 1e6,
                "runner_up": order[1] if len(order) > 1 else best,
                "worst_placement": worst,
                "improvement_pct": percent_improvement(
                    scores[worst], scores[best]
                ),
            }

    return TrainingReport(
        apps=result.apps,
        placements=tuple(placements),
        routings=tuple(routings),
        backend=backend,
        cells=cells,
        winners=winners,
    )
