"""Seeded synthetic DL-training communication generators (DESIGN.md §S21).

Each generator emits the per-iteration communication skeleton of one
distributed-training parallelism style as a balanced, replayable
:class:`~repro.mpi.trace.JobTrace` — the same contract as the mini-app
generators in :mod:`repro.apps` — so ML jobs drop into every driver
(``TradeoffStudy``, cluster streams, flow/packet backends, advisor)
unchanged:

* :func:`dp_allreduce_trace` — data parallel: per-iteration gradient
  all-reduce over buckets (ring by default, recursive doubling via
  ``algo="rd"``); bulk-synchronous, bandwidth-dominated.
* :func:`pp_1f1b_trace` — pipeline parallel: stage-to-stage activation
  and gradient point-to-points under the 1F1B schedule (warmup /
  steady one-forward-one-backward / cooldown); a pure chain pattern,
  maximally localisable.
* :func:`tp_layer_trace` — tensor parallel: per-layer allgather on the
  forward pass and reduce-scatter on the backward (Megatron-style
  sequence-parallel exchange); many small latency-bound collectives.
* :func:`moe_alltoall_trace` — MoE/DLRM: per-layer token dispatch and
  combine as skewed all-to-alls plus an iteration-end gradient
  all-reduce; the adversarial global-traffic member of the family.

Message sizes carry a mild deterministic :func:`pair_jitter` so
placements cannot exploit exact symmetry; all randomness is derived
from ``seed`` and structural keys, making every trace bit-identical
across runs, schedulers, and worker counts. Iteration loads land in
``meta["phase_profile"]`` with ``iter{k}/...`` labels so the advisor's
``characterize()`` sees the training periodicity.
"""

from __future__ import annotations

from repro.apps.patterns import pair_jitter
from repro.mpi import collectives
from repro.mpi.trace import JobTrace, RankTrace

__all__ = [
    "dp_allreduce_trace",
    "pp_1f1b_trace",
    "tp_layer_trace",
    "moe_alltoall_trace",
]

# Tag block per (iteration, phase, slot): wide enough for any expansion
# used here (ring all-reduce needs 2N-2 tags plus per-peer offsets).
_TAG_BLOCK = 4096


def _tag(iteration: int, phase: int, slot: int = 0) -> int:
    """Disjoint tag base per (iteration, phase, slot) triple."""
    return ((iteration * 16 + phase) * 4096 + slot) * _TAG_BLOCK


def dp_allreduce_trace(
    num_ranks: int,
    iterations: int = 2,
    model_bytes: int = 4_194_304,
    buckets: int = 4,
    algo: str = "ring",
    compute_ns: float = 50_000.0,
    seed: int = 0,
) -> JobTrace:
    """Data-parallel training: per-iteration bucketed gradient all-reduce.

    The ``model_bytes`` gradient is split into ``buckets`` roughly equal
    buckets (DDP-style), each all-reduced as it "becomes ready" after a
    compute gap. ``algo`` picks the ring (bandwidth-optimal, the ML
    default) or recursive-doubling expansion.
    """
    if num_ranks < 2:
        raise ValueError("need at least 2 ranks")
    if iterations < 1 or buckets < 1:
        raise ValueError("need at least one iteration and one bucket")
    if algo not in ("ring", "rd"):
        raise ValueError(f"unknown all-reduce algo {algo!r}")
    if model_bytes < buckets:
        raise ValueError("model_bytes must be >= buckets")
    reduce = (
        collectives.allreduce_ring if algo == "ring" else collectives.allreduce
    )
    base = model_bytes // buckets
    ranks = [RankTrace(r) for r in range(num_ranks)]
    profile = []
    for it in range(iterations):
        start = sum(rt.bytes_sent() for rt in ranks)
        for b in range(buckets):
            size = round(base * pair_jitter(seed, "dp", it, b))
            for rt in ranks:
                rt.compute(compute_ns / buckets)
                reduce(rt, num_ranks, size, _tag(it, b))
        for rt in ranks:
            rt.barrier()
        total = sum(rt.bytes_sent() for rt in ranks) - start
        profile.append((f"iter{it}/allreduce", total / num_ranks))
    return JobTrace(
        "DP",
        ranks,
        meta={
            "app": "dp-allreduce",
            "family": "mlcomms",
            "algo": algo,
            "iterations": iterations,
            "phase_profile": profile,
            "seed": seed,
        },
    )


def pp_1f1b_trace(
    num_ranks: int,
    iterations: int = 2,
    microbatches: int | None = None,
    activation_bytes: int = 1_048_576,
    compute_ns: float = 20_000.0,
    seed: int = 0,
) -> JobTrace:
    """Pipeline-parallel training under the 1F1B schedule.

    Each rank is one pipeline stage; activations flow down the chain on
    forward passes and gradients back up on backward passes. Every stage
    runs the classic warmup (fill the pipeline), steady one-forward-one-
    backward, and cooldown (drain) sequence. ``microbatches`` defaults
    to ``2 * num_ranks`` (a full pipeline plus steady state).
    """
    if num_ranks < 2:
        raise ValueError("need at least 2 ranks (pipeline stages)")
    if iterations < 1:
        raise ValueError("need at least one iteration")
    if microbatches is None:
        microbatches = 2 * num_ranks
    if microbatches < num_ranks:
        raise ValueError("need at least one microbatch per stage")
    stages = num_ranks
    ranks = [RankTrace(r) for r in range(num_ranks)]

    def size(it: int, mb: int, kind: str) -> int:
        return round(activation_bytes * pair_jitter(seed, "pp", it, mb, kind))

    for it in range(iterations):
        for rt in ranks:
            s = rt.rank
            warmup = min(stages - 1 - s, microbatches)

            def forward(mb: int) -> None:
                if s > 0:
                    rt.recv(s - 1, size(it, mb, "act"), _tag(it, 0, 0) + mb)
                rt.compute(compute_ns)
                if s < stages - 1:
                    rt.isend(
                        s + 1, size(it, mb, "act"), _tag(it, 0, 0) + mb, req=mb
                    )

            def backward(mb: int) -> None:
                if s < stages - 1:
                    rt.recv(s + 1, size(it, mb, "grad"), _tag(it, 1, 0) + mb)
                rt.compute(compute_ns)
                if s > 0:
                    rt.isend(
                        s - 1, size(it, mb, "grad"), _tag(it, 1, 0) + mb, req=mb
                    )

            for mb in range(warmup):
                forward(mb)
            for k in range(microbatches - warmup):
                forward(warmup + k)
                backward(k)
            for mb in range(microbatches - warmup, microbatches):
                backward(mb)
            rt.waitall()
        for rt in ranks:
            rt.barrier()
    boundary = 2 * activation_bytes * microbatches * (stages - 1) / stages
    return JobTrace(
        "PP",
        ranks,
        meta={
            "app": "pp-1f1b",
            "family": "mlcomms",
            "iterations": iterations,
            "microbatches": microbatches,
            "phase_profile": [
                (f"iter{it}/1f1b", boundary) for it in range(iterations)
            ],
            "seed": seed,
        },
    )


def tp_layer_trace(
    num_ranks: int,
    iterations: int = 2,
    layers: int = 4,
    hidden_bytes: int = 2_097_152,
    compute_ns: float = 10_000.0,
    seed: int = 0,
) -> JobTrace:
    """Tensor-parallel training: per-layer allgather / reduce-scatter.

    The Megatron sequence-parallel exchange: each of ``layers`` layers
    allgathers a ``hidden_bytes`` activation shard on the forward pass
    and reduce-scatters the matching gradient on the backward pass (in
    reverse layer order). Many small, latency-sensitive collectives per
    iteration — the opposite end of the spectrum from DP's few large
    all-reduces.
    """
    if num_ranks < 2:
        raise ValueError("need at least 2 ranks")
    if iterations < 1 or layers < 1:
        raise ValueError("need at least one iteration and one layer")
    shard = max(1, hidden_bytes // num_ranks)
    ranks = [RankTrace(r) for r in range(num_ranks)]
    profile = []
    for it in range(iterations):
        start = sum(rt.bytes_sent() for rt in ranks)
        for layer in range(layers):
            size = round(shard * pair_jitter(seed, "tp", it, layer))
            for rt in ranks:
                rt.compute(compute_ns)
                collectives.allgather_ring(
                    rt, num_ranks, size, _tag(it, 0, layer)
                )
        for layer in reversed(range(layers)):
            size = round(
                shard * num_ranks * pair_jitter(seed, "tp", it, layer)
            )
            for rt in ranks:
                rt.compute(compute_ns)
                collectives.reduce_scatter_ring(
                    rt, num_ranks, size, _tag(it, 1, layer)
                )
        for rt in ranks:
            rt.barrier()
        total = sum(rt.bytes_sent() for rt in ranks) - start
        profile.append((f"iter{it}/layers", total / num_ranks))
    return JobTrace(
        "TP",
        ranks,
        meta={
            "app": "tp-layer",
            "family": "mlcomms",
            "iterations": iterations,
            "layers": layers,
            "phase_profile": profile,
            "seed": seed,
        },
    )


def moe_alltoall_trace(
    num_ranks: int,
    iterations: int = 2,
    layers: int = 2,
    token_bytes: int = 262_144,
    allreduce_bytes: int = 524_288,
    compute_ns: float = 30_000.0,
    seed: int = 0,
) -> JobTrace:
    """MoE/DLRM training: skewed token all-to-alls plus gradient sync.

    Each of ``layers`` expert layers dispatches tokens with a directional
    all-to-all (per-pair sizes jittered ±40% — expert routing is never
    uniform) and combines results with the exact reverse exchange.
    Iterations end with a dense-parameter ring all-reduce. The global,
    skewed traffic makes this the family's adversarial pattern for
    localising placements.
    """
    if num_ranks < 2:
        raise ValueError("need at least 2 ranks")
    if iterations < 1 or layers < 1:
        raise ValueError("need at least one iteration and one layer")

    def pair_size(it: int, layer: int, src: int, dst: int) -> int:
        # Directional: tokens i->j need not match j->i (expert skew).
        return round(
            token_bytes
            * pair_jitter(seed, "moe", it, layer, src, dst, lo=0.6, hi=1.4)
        )

    ranks = [RankTrace(r) for r in range(num_ranks)]
    profile = []
    for it in range(iterations):
        start = sum(rt.bytes_sent() for rt in ranks)
        for layer in range(layers):
            for phase, flip in (("dispatch", False), ("combine", True)):
                tag = _tag(it, 0 if not flip else 1, layer)
                for rt in ranks:
                    rt.compute(compute_ns)
                    me = rt.rank
                    req = 0
                    for peer in range(num_ranks):
                        if peer == me:
                            continue
                        # Combine reverses dispatch: j returns i's tokens.
                        out = (
                            pair_size(it, layer, peer, me)
                            if flip
                            else pair_size(it, layer, me, peer)
                        )
                        inc = (
                            pair_size(it, layer, me, peer)
                            if flip
                            else pair_size(it, layer, peer, me)
                        )
                        rt.irecv(peer, inc, tag + peer, req=req)
                        rt.isend(peer, out, tag + me, req=req + 1)
                        req += 2
                    rt.waitall()
        for rt in ranks:
            collectives.allreduce_ring(
                rt, num_ranks, allreduce_bytes, _tag(it, 2, 0)
            )
            rt.barrier()
        total = sum(rt.bytes_sent() for rt in ranks) - start
        profile.append((f"iter{it}/experts", total / num_ranks))
    return JobTrace(
        "MOE",
        ranks,
        meta={
            "app": "moe-alltoall",
            "family": "mlcomms",
            "iterations": iterations,
            "layers": layers,
            "phase_profile": profile,
            "seed": seed,
        },
    )
