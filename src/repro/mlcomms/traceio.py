"""param-style JSON comms-trace importer (DESIGN.md §S21).

Meta's `param <https://github.com/facebookresearch/param>`_ benchmark
suite records the collective sequence of a training job as JSON records
— a ``comms`` name, an ``in_msg_size`` (an element count when ``dtype``
is present, raw bytes otherwise), and ``marker`` records delimiting
training iterations — and its ``commsTraceReplay`` tool replays them
against a live fabric. This module accepts that record shape and lowers
it onto :class:`~repro.mpi.trace.RankTrace` operation lists via the
point-to-point collective expansions in :mod:`repro.mpi.collectives`,
so an imported trace drops into every driver in the repository
(``TradeoffStudy``, cluster streams, flow/packet backends, the advisor)
exactly like a generated mini-app job.

Document shapes accepted by :func:`parse_comms_trace`:

* an object — ``{"name": ..., "num_ranks": N, "trace": [records...]}``
  (``world_size`` is accepted as an alias for ``num_ranks``);
* a bare list of records, with ``num_ranks`` supplied by the caller
  (param's native per-rank trace files are bare lists).

Record shapes:

* collective — ``{"comms": <name>, "in_msg_size": <int>, ...}`` with
  optional ``dtype`` (sizes become ``in_msg_size * element_width``),
  ``root`` (broadcast only) and ``algo`` (``all_reduce`` only:
  ``"ring"``, the ML default, or ``"rd"`` recursive doubling);
* marker — ``{"marker": <label>}``: closes the current training
  iteration (lowered to a barrier; iteration loads land in
  ``meta["phase_profile"]``);
* compute — ``{"compute_ns": <float>}``: a compute gap on every rank.

Every malformed record — wrong type, missing/negative sizes, unknown
collective or dtype, out-of-range root — raises
:class:`TraceImportError` carrying the zero-based record index; a
truncated or non-JSON file raises it with ``index=None``. A bare
``KeyError``/``TypeError`` escaping the importer is a bug (the fuzz
suite enforces this).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Callable

from repro.mpi import collectives
from repro.mpi.trace import JobTrace, RankTrace

__all__ = [
    "COMM_NAMES",
    "DTYPE_WIDTHS",
    "TraceImportError",
    "load_comms_trace",
    "parse_comms_trace",
]

#: Element widths for the ``dtype`` field (param records sizes in
#: elements; without a dtype, ``in_msg_size`` is taken as raw bytes).
DTYPE_WIDTHS = {
    "float64": 8,
    "double": 8,
    "int64": 8,
    "long": 8,
    "float32": 4,
    "float": 4,
    "int32": 4,
    "int": 4,
    "float16": 2,
    "half": 2,
    "bfloat16": 2,
    "int8": 1,
    "uint8": 1,
    "byte": 1,
    "bool": 1,
}

#: Canonical collective names (after :func:`_canon` normalisation).
COMM_NAMES = (
    "all_reduce",
    "all_to_all",
    "all_gather",
    "reduce_scatter",
    "broadcast",
    "barrier",
    "wait",
)

#: Aliases seen in param traces, mapped to canonical names. Keys are
#: pre-normalised (lower-case, separators stripped).
_ALIASES = {
    "allreduce": "all_reduce",
    "alltoall": "all_to_all",
    "alltoallv": "all_to_all",
    "alltoallbase": "all_to_all",
    "alltoallsingle": "all_to_all",
    "allgather": "all_gather",
    "allgatherbase": "all_gather",
    "allgatherv": "all_gather",
    "reducescatter": "reduce_scatter",
    "reducescatterbase": "reduce_scatter",
    "broadcast": "broadcast",
    "bcast": "broadcast",
    "barrier": "barrier",
    "wait": "wait",
    "waitall": "wait",
}

#: All-reduce algorithm choices (``algo`` field).
_ALLREDUCE_ALGOS = ("ring", "rd")


class TraceImportError(ValueError):
    """A comms-trace document or record failed validation.

    ``index`` is the zero-based index of the offending record, or
    ``None`` for document-level problems (bad JSON, missing headers).
    """

    def __init__(self, message: str, index: int | None = None) -> None:
        prefix = f"record {index}: " if index is not None else ""
        super().__init__(prefix + message)
        self.index = index


def _canon(name: str) -> str:
    """Normalise a collective name the way param's resolver does."""
    return name.lower().replace("_", "").replace("-", "").replace(" ", "")


def _record_int(
    record: dict, key: str, index: int, minimum: int = 0
) -> int:
    """Fetch a validated integer field from a record."""
    if key not in record:
        raise TraceImportError(f"missing required field {key!r}", index)
    value = record[key]
    # bool is an int subclass; a JSON `true` size is malformed, not 1.
    if isinstance(value, bool) or not isinstance(value, int):
        raise TraceImportError(
            f"field {key!r} must be an integer, got {value!r}", index
        )
    if value < minimum:
        raise TraceImportError(
            f"field {key!r} must be >= {minimum}, got {value}", index
        )
    return value


def _record_bytes(record: dict, index: int) -> int:
    """``in_msg_size`` scaled by the optional ``dtype`` width."""
    size = _record_int(record, "in_msg_size", index, minimum=1)
    dtype = record.get("dtype")
    if dtype is None:
        return size
    if not isinstance(dtype, str):
        raise TraceImportError(f"dtype must be a string, got {dtype!r}", index)
    try:
        width = DTYPE_WIDTHS[dtype.lower()]
    except KeyError:
        raise TraceImportError(
            f"unknown dtype {dtype!r} (known: {sorted(set(DTYPE_WIDTHS))})",
            index,
        ) from None
    return size * width


def parse_comms_trace(
    doc: Any,
    num_ranks: int | None = None,
    name: str | None = None,
) -> JobTrace:
    """Lower a parsed comms-trace document onto a :class:`JobTrace`.

    ``doc`` is either the object form (carrying ``num_ranks`` and
    ``trace``) or a bare record list (``num_ranks`` must then be passed
    explicitly). Caller arguments override document headers.
    """
    records, doc_ranks, doc_name = _split_document(doc)
    if num_ranks is None:
        num_ranks = doc_ranks
    if num_ranks is None:
        raise TraceImportError(
            "num_ranks missing: pass it explicitly or use the object "
            "form with a num_ranks/world_size header"
        )
    if isinstance(num_ranks, bool) or not isinstance(num_ranks, int):
        raise TraceImportError(f"num_ranks must be an integer, got {num_ranks!r}")
    if num_ranks < 2:
        raise TraceImportError(f"num_ranks must be >= 2, got {num_ranks}")
    if name is None:
        name = doc_name if doc_name is not None else "COMMS"

    ranks = [RankTrace(r) for r in range(num_ranks)]
    # Tag stride per record: alltoall consumes next_pow2(N) tags and the
    # ring all-reduce 2N-2, so 4x the pow2 ceiling never collides.
    stride = 4 * _next_pow2(num_ranks)
    profile: list[tuple[str, float]] = []
    iterations = 0
    collectives_count = 0
    prev_bytes = 0

    def _close_iteration() -> None:
        nonlocal iterations, prev_bytes
        total = sum(rt.bytes_sent() for rt in ranks)
        delta = total - prev_bytes
        if delta <= 0:
            return  # empty iteration: nothing for the load profile
        profile.append((f"iter{iterations}", delta / num_ranks))
        prev_bytes = total
        iterations += 1
        for rt in ranks:
            rt.barrier()

    for index, record in enumerate(records):
        if not isinstance(record, dict):
            raise TraceImportError(
                f"record must be an object, got {type(record).__name__}",
                index,
            )
        if "marker" in record:
            marker = record["marker"]
            if not isinstance(marker, str):
                raise TraceImportError(
                    f"marker must be a string label, got {marker!r}", index
                )
            _close_iteration()
            continue
        if "compute_ns" in record:
            gap = record["compute_ns"]
            if isinstance(gap, bool) or not isinstance(gap, (int, float)):
                raise TraceImportError(
                    f"compute_ns must be a number, got {gap!r}", index
                )
            if gap < 0:
                raise TraceImportError(
                    f"compute_ns must be >= 0, got {gap}", index
                )
            for rt in ranks:
                rt.compute(float(gap))
            continue
        comms = record.get("comms")
        if comms is None:
            raise TraceImportError(
                "record carries neither 'comms', 'marker' nor "
                f"'compute_ns' (keys: {sorted(record)})",
                index,
            )
        if not isinstance(comms, str):
            raise TraceImportError(
                f"'comms' must be a string, got {comms!r}", index
            )
        try:
            op = _ALIASES[_canon(comms)]
        except KeyError:
            raise TraceImportError(
                f"unknown collective {comms!r} "
                f"(known: {', '.join(COMM_NAMES)})",
                index,
            ) from None
        _expand(op, record, index, ranks, num_ranks, stride * (index + 1))
        if op not in ("wait", "barrier"):
            collectives_count += 1

    # A trailing un-markered span still counts as one iteration.
    _close_iteration()

    job = JobTrace(
        name,
        ranks,
        meta={
            "app": "comms-trace",
            "family": "mlcomms",
            "iterations": iterations,
            "records": len(records),
            "collectives": collectives_count,
            "phase_profile": profile,
        },
    )
    try:
        job.validate()
    except ValueError as exc:  # pragma: no cover - expansion invariant
        raise TraceImportError(f"imported trace is unbalanced: {exc}") from exc
    return job


def _expand(
    op: str,
    record: dict,
    index: int,
    ranks: list[RankTrace],
    num_ranks: int,
    tag: int,
) -> None:
    """Append one collective record's expansion to every rank."""
    if op == "wait":
        return  # replay matching is handled by the expansions themselves
    if op == "barrier":
        for rt in ranks:
            rt.barrier()
        return
    size = _record_bytes(record, index)
    fill: Callable[[RankTrace], None]
    if op == "all_reduce":
        algo = record.get("algo", "ring")
        if algo not in _ALLREDUCE_ALGOS:
            raise TraceImportError(
                f"unknown all_reduce algo {algo!r} "
                f"(choose from {_ALLREDUCE_ALGOS})",
                index,
            )
        if algo == "ring":
            def fill(rt: RankTrace) -> None:
                collectives.allreduce_ring(rt, num_ranks, size, tag)
        else:
            def fill(rt: RankTrace) -> None:
                collectives.allreduce(rt, num_ranks, size, tag)
    elif op == "all_to_all":
        # param records the total send-buffer size; each peer gets an
        # equal slice, mirroring all_to_all_single semantics.
        per_peer = max(1, size // num_ranks)

        def fill(rt: RankTrace) -> None:
            collectives.alltoall(rt, num_ranks, per_peer, tag)
    elif op == "all_gather":
        def fill(rt: RankTrace) -> None:
            collectives.allgather_ring(rt, num_ranks, size, tag)
    elif op == "reduce_scatter":
        def fill(rt: RankTrace) -> None:
            collectives.reduce_scatter_ring(rt, num_ranks, size, tag)
    else:  # broadcast
        root = 0
        if "root" in record:
            root = _record_int(record, "root", index)
            if root >= num_ranks:
                raise TraceImportError(
                    f"root {root} out of range for {num_ranks} ranks", index
                )

        def fill(rt: RankTrace) -> None:
            collectives.bcast_binomial(rt, num_ranks, size, tag, root=root)

    for rt in ranks:
        fill(rt)


def _split_document(doc: Any) -> tuple[list, int | None, str | None]:
    """Normalise the two accepted document shapes to (records, n, name)."""
    if isinstance(doc, list):
        return doc, None, None
    if isinstance(doc, dict):
        ranks = doc.get("num_ranks", doc.get("world_size"))
        name = doc.get("name")
        if name is not None and not isinstance(name, str):
            raise TraceImportError(f"name must be a string, got {name!r}")
        trace = doc.get("trace")
        if trace is None:
            raise TraceImportError(
                "object form needs a 'trace' list of records "
                f"(keys: {sorted(doc)})"
            )
        if not isinstance(trace, list):
            raise TraceImportError(
                f"'trace' must be a list, got {type(trace).__name__}"
            )
        return trace, ranks, name
    raise TraceImportError(
        "document must be a record list or an object with a 'trace' "
        f"list, got {type(doc).__name__}"
    )


def load_comms_trace(
    path: str | Path,
    num_ranks: int | None = None,
    name: str | None = None,
) -> JobTrace:
    """Read and lower a JSON comms-trace file.

    The job name defaults to the file stem; a truncated or non-JSON
    file raises :class:`TraceImportError` (``index=None``).
    """
    p = Path(path)
    try:
        text = p.read_text()
    except OSError as exc:
        raise TraceImportError(f"cannot read {p}: {exc}") from exc
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as exc:
        raise TraceImportError(f"{p} is not valid JSON: {exc}") from exc
    if name is None and not isinstance(doc, dict):
        name = p.stem
    elif name is None and isinstance(doc, dict) and "name" not in doc:
        name = p.stem
    return parse_comms_trace(doc, num_ranks=num_ranks, name=name)


def _next_pow2(n: int) -> int:
    p = 1
    while p < n:
        p <<= 1
    return p
