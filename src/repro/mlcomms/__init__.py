"""DL training workloads as a first-class app family (DESIGN.md §S21).

Three pieces:

* :mod:`repro.mlcomms.traceio` — param/commsTraceReplay-style JSON
  comms-trace import, lowered onto replayable ``JobTrace`` objects;
* :mod:`repro.mlcomms.generators` — seeded synthetic DP / PP / TP /
  MoE training-job generators (registered in ``repro.apps.APP_BUILDERS``
  as ``DP``/``PP``/``TP``/``MOE``);
* :mod:`repro.mlcomms.study` — the ``training_tradeoff`` grid study and
  its ``repro-mlcomms/v1`` report.
"""

from repro.mlcomms.generators import (
    dp_allreduce_trace,
    moe_alltoall_trace,
    pp_1f1b_trace,
    tp_layer_trace,
)
from repro.mlcomms.study import (
    DEFAULT_APPS,
    SCHEMA,
    TrainingReport,
    default_training_traces,
    training_tradeoff,
)
from repro.mlcomms.traceio import (
    TraceImportError,
    load_comms_trace,
    parse_comms_trace,
)

__all__ = [
    "DEFAULT_APPS",
    "SCHEMA",
    "TraceImportError",
    "TrainingReport",
    "default_training_traces",
    "dp_allreduce_trace",
    "load_comms_trace",
    "moe_alltoall_trace",
    "parse_comms_trace",
    "pp_1f1b_trace",
    "tp_layer_trace",
    "training_tradeoff",
]
