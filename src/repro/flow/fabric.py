"""Fluid (flow-level) network model, duck-typing the packet fabric.

Instead of simulating individual packets, every injected
:class:`~repro.network.packet.Message` becomes a *flow*: a remaining
byte count draining over one or more weighted link sets. Flows from one
source node serialise (the packet fabric enqueues a message's packets
FIFO on the terminal-in link, so later messages wait for earlier ones);
across nodes, concurrent rates are the weighted max-min fair allocation
(progressive filling): grow a uniform base rate, freeze every unit
crossing the first link to saturate, and repeat on the residual network
until all units are frozen.

Routing maps onto flows per policy:

* ``min`` — one *unit* whose links carry the expectation of uniform
  random candidate choice (weight ``1/n`` per minimal candidate), so a
  message of ``S`` wire bytes deposits ``w * S`` bytes on every link of
  weight ``w``.
* ``adp`` — one unit per candidate path. Minimal candidates are always
  included; a Valiant candidate is included only when the packet
  policy's own UGAL-L cost rule (first-link backlog scaled by hop
  count, non-minimal cost inflated and biased) says the detour looks
  cheaper at injection time. Each unit then gets its own max-min rate
  and the message drains at their *sum* — the fluid limit of a message
  whose packets spill onto every port that has capacity, which is where
  adaptive routing's drain-rate advantage (and its extra traffic)
  comes from.

Rates are re-solved only when the flow set changes — NIC-idle
injections (coalesced to the
:attr:`~repro.flow.routes.FlowParams.epoch_ns` grid), queued-flow
starts, and completions — so simulated cost scales with the number of
*messages*, not packets or hops.

Event semantics mirror the packet fabric so the replay engine works
unchanged:

* ``on_injected`` fires when the flow drains (its last byte leaves the
  source NIC — the analogue of the last packet crossing terminal-in);
* ``on_delivered`` fires one byte-weighted path latency later, with
  ``hop_sum``/``num_packets`` filled so per-rank hop metrics match the
  packet model's accounting (``route_len - 2`` per packet, fractional
  here because a flow's bytes spread over candidates of different
  lengths);
* per-link ``bytes_tx`` accumulates bytes as flows drain, and
  ``sat_ns`` accumulates the time a link spends as a *contended*
  max-min bottleneck — the fluid analogue of the packet model's
  buffers-exhausted stall time.

All wake-ups are ordinary ``(time, seq)`` simulator events, so results
are bit-identical across schedulers and worker counts, exactly like the
packet backend.
"""

from __future__ import annotations

import math
import os
from collections import deque

from repro.config import NetworkParams
from repro.engine.simulator import Simulator
from repro.flow.routes import FlowParams, flow_route_model
from repro.flow.solver import DEFAULT_SOLVER, get_solver
from repro.network.packet import Message
from repro.topology.dragonfly import Dragonfly

__all__ = [
    "FABRIC_NAMES",
    "DEFAULT_FABRIC",
    "FlowFabric",
    "make_flow_fabric",
]

#: Valid values of the fabric knob (``REPRO_FLOW_FABRIC`` / the
#: ``make_flow_fabric(fabric=...)`` argument).
FABRIC_NAMES = ("object", "array")

#: Production default. The object fabric remains available as the
#: frozen differential reference (pair it with
#: ``REPRO_FLOW_SOLVER=scalar`` for the fully scalar historical path).
DEFAULT_FABRIC = "array"

#: A flow is complete once its residual drops below half a byte — far
#: above float residue at any realistic rate, far below one packet.
_DONE_BYTES = 0.5


def make_flow_fabric(
    sim: Simulator,
    topo: Dragonfly,
    net: NetworkParams,
    routing: str,
    params: FlowParams | None = None,
    solver: str | None = None,
    fabric: str | None = None,
):
    """Build the selected flow-fabric implementation.

    ``fabric`` falls back to the ``REPRO_FLOW_FABRIC`` environment
    knob, then :data:`DEFAULT_FABRIC`. Like the solver knob it is a
    pure performance choice — the implementations agree to relative
    error far below ``1e-9`` (see the differential harness) — so it is
    NOT part of the exec cache identity;
    :data:`~repro.exec.plan.CODE_SALT` was bumped when the default
    flipped to ``array``.
    """
    if fabric is None:
        fabric = os.environ.get("REPRO_FLOW_FABRIC") or DEFAULT_FABRIC
    if fabric == "object":
        return FlowFabric(sim, topo, net, routing, params, solver)
    if fabric == "array":
        from repro.flow.fabric_array import ArrayFlowFabric

        return ArrayFlowFabric(sim, topo, net, routing, params, solver)
    raise ValueError(
        f"unknown flow fabric {fabric!r}; expected one of {FABRIC_NAMES}"
    )


class _Unit:
    """One schedulable path bundle of a flow.

    ``min`` flows have a single unit with fractional link weights (the
    candidate expectation); ``adp`` flows have one unit per taken
    candidate, each at weight 1. The solver hands every unit its own
    max-min rate.
    """

    __slots__ = ("links", "hops", "lat_ns", "nonmin", "rate", "load_left")

    def __init__(
        self,
        links: tuple[tuple[int, float], ...],
        hops: float,
        lat_ns: float,
        nonmin: float,
    ) -> None:
        self.links = links
        self.hops = hops
        self.lat_ns = lat_ns
        self.nonmin = nonmin
        self.rate = 0.0
        #: Bytes of the pending-load ledger still attributed to this
        #: unit (reconciled at flow completion, see ``_finish``).
        self.load_left = 0.0


class _Flow:
    """One draining message."""

    __slots__ = (
        "msg",
        "units",
        "remaining",
        "rate",
        "hop_bytes",
        "lat_bytes",
        "nonmin_bytes",
    )

    def __init__(self, msg: Message, units: list[_Unit]) -> None:
        self.msg = msg
        self.units = units
        self.remaining = float(msg.wire_size)
        self.rate = 0.0
        #: Byte-weighted accumulators of what the flow's bytes actually
        #: traversed, filled in as the flow drains.
        self.hop_bytes = 0.0
        self.lat_bytes = 0.0
        self.nonmin_bytes = 0.0


class FlowFabric:
    """Flow-level network: topology + max-min sharing + static routing.

    Implements the attribute/method surface of
    :class:`~repro.network.fabric.Fabric` that the replay engine,
    metric extraction, and background injectors rely on (``inject``,
    ``drain_saturation``, ``bytes_tx``, ``sat_ns``, counters), so
    ``run_single(backend="flow")`` is a drop-in swap.
    """

    def __init__(
        self,
        sim: Simulator,
        topo: Dragonfly,
        net: NetworkParams,
        routing: str,
        params: FlowParams | None = None,
        solver: str | None = None,
    ) -> None:
        self.sim = sim
        self.topo = topo
        self.net = net
        self.params = params if params is not None else FlowParams()
        self.routes = flow_route_model(topo, net, routing, self.params)
        # Max-min solver selection: explicit argument, then the
        # REPRO_FLOW_SOLVER environment knob, then the default. A pure
        # performance knob (scalar and vector agree to rel err far
        # below 1e-9), so it is NOT part of the exec cache identity.
        if solver is None:
            solver = os.environ.get("REPRO_FLOW_SOLVER") or DEFAULT_SOLVER
        self.solver = solver
        self._solve_fn = get_solver(solver)

        n_links = topo.num_links
        bw_arr, lat_arr, _buf = topo.link_profiles(net)
        self.bw: list[float] = bw_arr.tolist()
        self.lat: list[float] = (lat_arr + net.router_delay_ns).tolist()

        #: Per-link transmitted bytes (ints, finalised from the float
        #: accumulator by :meth:`drain_saturation`).
        self.bytes_tx: list[int] = [0] * n_links
        self._tx: list[float] = [0.0] * n_links
        #: Per-link accumulated bottleneck (saturation-proxy) time, ns.
        self.sat_ns: list[float] = [0.0] * n_links
        #: Unused by the fluid model; present for fabric duck-typing.
        self.queued_bytes: list[int] = [0] * n_links
        #: Per-link pending bytes (injected, not yet transmitted) — the
        #: fluid analogue of the packet fabric's ``queued_bytes``, fed
        #: to the UGAL cost rule on adaptive cells.
        self._load: list[float] = [0.0] * n_links
        self._adaptive = routing == "adp"

        self.packets_injected = 0
        self.packets_delivered = 0
        self.messages_delivered = 0
        self.bytes_injected = 0
        self.bytes_delivered = 0
        self.faults_applied = 0
        self.packets_rerouted = 0
        #: Observability is a packet-backend feature; always ``None``.
        self.obs = None

        self._active: list[_Flow] = []
        self._pending: list[_Flow] = []
        #: Per-source-node FIFO of flows waiting for the NIC. The packet
        #: fabric enqueues a message's packets on the terminal-in link
        #: in injection order, so concurrent messages from one node
        #: *serialise* at the NIC; the fluid model mirrors that — one
        #: draining flow per source node, successors start the instant
        #: the predecessor's last byte leaves.
        self._nic_queue: dict[int, deque[_Flow]] = {}
        self._nic_busy: set[int] = set()
        self._saturated: list[int] = []
        self._last_t = 0.0
        self._in_update = False
        #: Wake arming: only the latest generation's event updates state.
        self._gen = 0
        self._wake_time = math.inf
        self._nonmin_bytes = 0.0
        self._routed_bytes = 0.0

    # ------------------------------------------------------------------
    # public API (fabric duck-type)
    # ------------------------------------------------------------------
    def inject(self, msg: Message) -> None:
        """Admit a message as a flow at the current simulated time."""
        now = self.sim.now
        msg.inject_time = now
        size = msg.wire_size
        if self._adaptive:
            units = self._adaptive_units(msg.src_node, msg.dst_node, size)
        else:
            entry = self.routes.entry(msg.src_node, msg.dst_node)
            units = [
                _Unit(
                    entry.links,
                    entry.rr_hops,
                    entry.latency_ns,
                    entry.nonmin_fraction,
                )
            ]
        msg.num_packets = -(-size // self.net.packet_size)
        self.bytes_injected += size
        self.packets_injected += msg.num_packets
        self._routed_bytes += size
        # Pending-load ledger: until the split across units is realised
        # by actual draining, attribute an even share to each.
        load = self._load
        share = size / len(units)
        for unit in units:
            unit.load_left = share
            for lid, w in unit.links:
                load[lid] += w * share
        flow = _Flow(msg, units)
        src = msg.src_node
        if src in self._nic_busy:
            self._nic_queue.setdefault(src, deque()).append(flow)
            return
        self._nic_busy.add(src)
        self._pending.append(flow)
        if not self._in_update:
            self._request_wake(self._admission_time(now))

    def drain_saturation(self) -> None:
        """Settle progress to now and finalise the integer byte counters."""
        self._settle(self.sim.now)
        tx = self._tx
        bytes_tx = self.bytes_tx
        for lid, moved in enumerate(tx):
            bytes_tx[lid] = round(moved)

    @property
    def nonminimal_fraction(self) -> float:
        """Byte-weighted non-minimal fraction over all injected bytes.

        The fluid analogue of the packet model's per-packet decision
        ratio: the share of wire bytes that actually travelled a
        Valiant unit.
        """
        if self._routed_bytes <= 0.0:
            return 0.0
        return self._nonmin_bytes / self._routed_bytes

    # ------------------------------------------------------------------
    # adaptive unit selection
    # ------------------------------------------------------------------
    def _adaptive_units(
        self, src_node: int, dst_node: int, size: int
    ) -> list[_Unit]:
        """One unit per candidate the UGAL-L spill emulation takes.

        :meth:`~repro.flow.routes.FlowRouteModel.spill` replays the
        packet policy's per-packet decision loop against the fabric's
        pending-byte ledger (plus the message's own emulated first-hop
        backlog); every candidate that captures at least one
        packet-sized quantum becomes a unit. The max-min solver then
        rates the units independently and the flow drains at their sum
        — the fluid limit of packets spilling onto every port that has
        capacity.
        """
        entries = self.routes.spill(src_node, dst_node, size, self._load)
        return [
            _Unit(e.links, e.rr_hops, e.latency_ns, e.nonmin_fraction)
            for e in entries
        ]

    # ------------------------------------------------------------------
    # wake scheduling
    # ------------------------------------------------------------------
    def _admission_time(self, now: float) -> float:
        epoch = self.params.epoch_ns
        if epoch <= 0.0:
            return now
        return max(now, math.ceil(now / epoch - 1e-9) * epoch)

    def _request_wake(self, t: float) -> None:
        if t >= self._wake_time:
            return
        self._gen += 1
        self._wake_time = t
        self.sim.at(t, self._wake, self._gen)

    def _wake(self, gen: int) -> None:
        if gen != self._gen:
            return  # superseded by an earlier re-arm
        self._wake_time = math.inf
        self._update()

    # ------------------------------------------------------------------
    # fluid dynamics
    # ------------------------------------------------------------------
    def _settle(self, now: float) -> None:
        """Integrate flow progress (and bottleneck time) up to ``now``."""
        dt = now - self._last_t
        self._last_t = now
        if dt <= 0.0:
            return
        if self._active:
            tx = self._tx
            load = self._load
            for f in self._active:
                rate = f.rate
                if rate <= 0.0:
                    continue
                raw = rate * dt
                scale = 1.0
                if raw > f.remaining:
                    scale = f.remaining / raw
                f.remaining -= raw * scale
                for unit in f.units:
                    moved = unit.rate * dt * scale
                    if moved <= 0.0:
                        continue
                    # The ledger decrement is capped by the unit's
                    # attributed share (even split at inject): a unit
                    # draining more than its share must not push the
                    # pending count negative — the slow units' leftover
                    # is reconciled at flow finish instead.
                    if moved < unit.load_left:
                        dec = moved
                        unit.load_left -= moved
                    else:
                        dec = unit.load_left
                        unit.load_left = 0.0
                    for lid, w in unit.links:
                        tx[lid] += w * moved
                        load[lid] -= w * dec
                    f.hop_bytes += unit.hops * moved
                    f.lat_bytes += unit.lat_ns * moved
                    if unit.nonmin:
                        f.nonmin_bytes += unit.nonmin * moved
            sat = self.sat_ns
            for lid in self._saturated:
                sat[lid] += dt

    def _update(self) -> None:
        """Settle, fire completions, admit arrivals, re-solve, re-arm."""
        self._in_update = True
        try:
            now = self.sim.now
            self._settle(now)

            finished = [f for f in self._active if f.remaining < _DONE_BYTES]
            if finished:
                self._active = [
                    f for f in self._active if f.remaining >= _DONE_BYTES
                ]
                for f in finished:
                    self._finish(f, now)

            # Completion callbacks may inject follow-on messages; admit
            # everything pending in arrival order before solving.
            while self._pending:
                batch = self._pending
                self._pending = []
                self._active.extend(batch)

            self._solve()

            nxt = math.inf
            for f in self._active:
                if f.rate > 0.0:
                    t = now + f.remaining / f.rate
                    if t < nxt:
                        nxt = t
            if nxt < math.inf:
                if nxt <= now:
                    # Float collapse: at huge simulated times a short
                    # drain interval can round to ``now + dt == now``,
                    # and a wake at the same timestamp re-arms forever
                    # (``_settle`` sees dt == 0, nothing progresses).
                    # Bump one ulp: the collapse implies the drain time
                    # is below ulp/2, so one ulp of progress at the
                    # flow's rate over-covers its residual and the
                    # ``_settle`` cap finishes it exactly.
                    nxt = math.nextafter(now, math.inf)
                self._request_wake(nxt)
        finally:
            self._in_update = False

    def _finish(self, f: _Flow, now: float) -> None:
        """The flow drained: last byte has left the source NIC."""
        msg = f.msg
        # Reconcile the pending-load ledger: whatever even-share guess
        # was not realised by actual draining comes off now.
        load = self._load
        for unit in f.units:
            left = unit.load_left
            if left > 0.0:
                unit.load_left = 0.0
                for lid, w in unit.links:
                    load[lid] -= w * left
        src = msg.src_node
        queue = self._nic_queue.get(src)
        if queue:
            # The NIC turns around instantly: the successor starts at
            # the predecessor's exact finish time (no epoch rounding),
            # picked up by the admission loop of this same update.
            self._pending.append(queue.popleft())
        else:
            self._nic_busy.discard(src)
        msg.injected_time = now
        if msg.on_injected is not None:
            msg.on_injected(msg, now)
        # Path latency is strictly positive (terminal latency + router
        # delay), so delivery is totally ordered after injection.
        wire = float(msg.wire_size)
        latency = f.lat_bytes / wire if wire > 0.0 else 0.0
        self.sim.at(now + latency, self._deliver, f)

    def _deliver(self, f: _Flow) -> None:
        msg = f.msg
        now = self.sim.now
        size = msg.wire_size
        wire = float(size)
        msg.arrived_bytes = size
        msg.hop_sum = (f.hop_bytes / wire) * msg.num_packets
        msg.delivered_time = now
        self.packets_delivered += msg.num_packets
        self.bytes_delivered += size
        self.messages_delivered += 1
        self._nonmin_bytes += f.nonmin_bytes
        if msg.on_delivered is not None:
            msg.on_delivered(msg, now)

    def _solve(self) -> None:
        """Weighted max-min rates for the active units (progressive
        filling), delegated to the selected implementation in
        :mod:`repro.flow.solver`.
        """
        self._saturated = self._solve_fn(self._active, self.bw)
