"""Cross-fidelity validation: flow backend vs. the exact packet engine.

The flow model is only useful if it preserves the paper's *conclusions*
— which placement/routing configuration wins — at a fraction of the
cost. :func:`fidelity_report` runs matched packet and flow grids over
the same traces/placements/routings/seed and reports, per cell, the
relative error of every scalar summary metric, plus the load-bearing
checks:

* **rank agreement** per (app, routing): Kendall's tau between the two
  backends' placement orderings by median communication time, and
  whether the top-1 (best) placement agrees;
* **measured speedup**: summed per-cell wall-clock
  (:attr:`~repro.core.runner.RunResult.wall_s`) packet / flow.

The report exports as versioned ``repro-fidelity/v1`` JSON (CLI:
``dragonfly-tradeoff fidelity``); CI's ``flow-smoke`` job gates on
top-1 agreement and the speedup floor.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Iterable, Mapping, Sequence

from repro.config import SimulationConfig
from repro.core.study import StudyResult, TradeoffStudy
from repro.mpi.trace import JobTrace
from repro.placement.policies import PLACEMENT_NAMES
from repro.routing import ROUTING_NAMES

__all__ = ["SCHEMA", "FidelityReport", "fidelity_report", "kendall_tau"]

#: Versioned export schema.
SCHEMA = "repro-fidelity/v1"

#: Summary metrics compared per cell (keys of ``RunMetrics.summary()``).
METRIC_KEYS = (
    "max_comm_ms",
    "median_comm_ms",
    "mean_hops",
    "local_traffic_mb",
    "global_traffic_mb",
    "local_sat_ms",
    "global_sat_ms",
)


def kendall_tau(a: Sequence[float], b: Sequence[float]) -> float:
    """Kendall's tau-a between two aligned score vectors.

    ``+1`` means identical orderings, ``-1`` fully reversed; tied pairs
    count zero. Hand-rolled (O(n^2)) because n is a handful of
    placements and scipy must stay optional here.
    """
    if len(a) != len(b):
        raise ValueError("score vectors must be the same length")
    n = len(a)
    if n < 2:
        return 1.0
    s = 0
    for i in range(n):
        for j in range(i + 1, n):
            x = (a[i] > a[j]) - (a[i] < a[j])
            y = (b[i] > b[j]) - (b[i] < b[j])
            s += x * y
    return s / (n * (n - 1) / 2)


def _rel_err(packet: float, flow: float) -> float | None:
    """Signed relative error, ``None`` when the reference is zero."""
    if packet == 0.0:
        return None if flow != 0.0 else 0.0
    return (flow - packet) / packet


@dataclass
class FidelityReport:
    """Matched packet/flow grid comparison (see :func:`fidelity_report`)."""

    apps: tuple[str, ...]
    placements: tuple[str, ...]
    routings: tuple[str, ...]
    #: One record per grid cell: per-backend summaries, per-metric
    #: relative errors, and per-backend wall seconds.
    cells: list[dict[str, Any]]
    #: ``rank[app][routing]`` -> tau / top-1 agreement record.
    rank: dict[str, dict[str, dict[str, Any]]]
    packet_wall_s: float
    flow_wall_s: float

    @property
    def speedup(self) -> float:
        """Measured flow-vs-packet speedup on the matched cells."""
        if self.flow_wall_s <= 0.0:
            return float("inf")
        return self.packet_wall_s / self.flow_wall_s

    def top1_agreement(self) -> bool:
        """True iff the best placement agrees for every (app, routing)."""
        return all(
            rec["top1_agree"]
            for by_routing in self.rank.values()
            for rec in by_routing.values()
        )

    def metric_errors(self) -> dict[str, dict[str, float]]:
        """Mean/max absolute relative error per summary metric."""
        out: dict[str, dict[str, float]] = {}
        for key in METRIC_KEYS:
            errs = [
                abs(cell["rel_err"][key])
                for cell in self.cells
                if cell["rel_err"][key] is not None
            ]
            if errs:
                out[key] = {
                    "mean_abs": sum(errs) / len(errs),
                    "max_abs": max(errs),
                }
        return out

    def to_json(self) -> dict[str, Any]:
        return {
            "schema": SCHEMA,
            "apps": list(self.apps),
            "placements": list(self.placements),
            "routings": list(self.routings),
            "cells": self.cells,
            "rank": self.rank,
            "metric_errors": self.metric_errors(),
            "packet_wall_s": self.packet_wall_s,
            "flow_wall_s": self.flow_wall_s,
            "speedup": self.speedup,
            "top1_agreement": self.top1_agreement(),
        }

    def save_json(self, path: Any) -> None:
        with open(path, "w") as fh:
            json.dump(self.to_json(), fh, indent=2, sort_keys=True)
            fh.write("\n")

    def format_table(self) -> str:
        """Human-readable summary for the CLI."""
        lines = ["flow-vs-packet fidelity", "=" * 55]
        for app in self.apps:
            for routing in self.routings:
                rec = self.rank[app][routing]
                agree = "agree" if rec["top1_agree"] else "DISAGREE"
                lines.append(
                    f"{app} {routing}: tau={rec['kendall_tau']:+.2f} "
                    f"top-1 {agree} "
                    f"(packet={rec['top1_packet']}, flow={rec['top1_flow']})"
                )
        lines.append("-" * 55)
        for key, err in self.metric_errors().items():
            lines.append(
                f"{key:>18}: mean |rel err| {100 * err['mean_abs']:6.1f}%  "
                f"max {100 * err['max_abs']:6.1f}%"
            )
        lines.append("-" * 55)
        lines.append(
            f"wall: packet {self.packet_wall_s:.2f}s, "
            f"flow {self.flow_wall_s:.2f}s -> speedup {self.speedup:.1f}x"
        )
        return "\n".join(lines)


def fidelity_report(
    config: SimulationConfig,
    traces: Mapping[str, JobTrace] | Iterable[JobTrace],
    placements: tuple[str, ...] = PLACEMENT_NAMES,
    routings: tuple[str, ...] = ROUTING_NAMES,
    seed: int = 0,
    compute_scale: float = 0.0,
    scheduler: str = "heap",
    max_workers: int = 1,
    cache_dir: Any = None,
    progress: Any = None,
    flow_batch: int = 0,
) -> FidelityReport:
    """Run matched packet and flow grids and compare them.

    Identical inputs go to both backends; only ``backend`` differs, so
    every per-cell difference is attributable to the fluid
    approximation. Note cached cells report their *originally measured*
    ``wall_s`` — run without ``cache_dir`` when the speedup number
    matters.
    """
    results: dict[str, StudyResult] = {}
    for backend in ("packet", "flow"):
        results[backend] = TradeoffStudy(
            config,
            traces if isinstance(traces, Mapping) else {
                t.name: t for t in traces
            },
            placements=placements,
            routings=routings,
            seed=seed,
            compute_scale=compute_scale,
            scheduler=scheduler,
            backend=backend,
        ).run(
            max_workers=max_workers, cache_dir=cache_dir,
            progress=progress, flow_batch=flow_batch,
        )
    packet, flow = results["packet"], results["flow"]

    cells: list[dict[str, Any]] = []
    packet_wall = 0.0
    flow_wall = 0.0
    for app in packet.apps:
        for placement in placements:
            for routing in routings:
                pr = packet.runs[(app, placement, routing)]
                fr = flow.runs[(app, placement, routing)]
                ps = pr.metrics.summary()
                fs = fr.metrics.summary()
                cells.append(
                    {
                        "app": app,
                        "placement": placement,
                        "routing": routing,
                        "packet": ps,
                        "flow": fs,
                        "rel_err": {
                            k: _rel_err(ps[k], fs[k]) for k in METRIC_KEYS
                        },
                        "packet_wall_s": pr.wall_s,
                        "flow_wall_s": fr.wall_s,
                    }
                )
                packet_wall += pr.wall_s
                flow_wall += fr.wall_s

    rank: dict[str, dict[str, dict[str, Any]]] = {}
    for app in packet.apps:
        rank[app] = {}
        for routing in routings:
            p_scores = [
                packet.runs[(app, p, routing)].metrics.median_comm_time_ns
                for p in placements
            ]
            f_scores = [
                flow.runs[(app, p, routing)].metrics.median_comm_time_ns
                for p in placements
            ]
            p_best = placements[p_scores.index(min(p_scores))]
            f_best = placements[f_scores.index(min(f_scores))]
            rank[app][routing] = {
                "kendall_tau": kendall_tau(p_scores, f_scores),
                "top1_packet": p_best,
                "top1_flow": f_best,
                "top1_agree": p_best == f_best,
            }

    return FidelityReport(
        apps=packet.apps,
        placements=tuple(placements),
        routings=tuple(routings),
        cells=cells,
        rank=rank,
        packet_wall_s=packet_wall,
        flow_wall_s=flow_wall,
    )
