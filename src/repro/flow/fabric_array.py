"""Array-state flow fabric: the vectorized production twin of
:class:`~repro.flow.fabric.FlowFabric`.

Same fluid model, same event semantics, same metric surface — but the
per-flow/per-unit object graph is replaced by slot-indexed parallel
state plus an *incremental* unit→link CSR, so the per-update cost no
longer rebuilds the incidence from ``_Unit`` objects on every solve:

* Per-link state (``_tx``/``_load``/``sat_ns``) lives in numpy arrays;
  ledger and byte scatter run as fancy-index accumulation over each
  unit's pre-built ``(cols, wgts)`` columns (from
  :meth:`~repro.flow.routes.FlowRouteModel.entry_arrays`), or as one
  ``np.subtract.at`` over the live CSR rows when the active set is
  large.
* Link aggregates (weight sum, unit count, user lists, distinct-flow
  crossings) are maintained at admission/finish, so a solve starts
  from dict copies instead of an O(active nnz) rebuild.
* The CSR itself (``cols``/``wgts``/owning unit/live mask) is appended
  at admission and tombstoned at finish, with amortised compaction
  once dead columns outnumber live ones — solve and settle above the
  adaptive dispatch floor run bincount/scatter over it directly.
* Transmitted-byte and hop/latency/nonmin accounting is *deferred*:
  settle accumulates one scalar (bytes moved) per unit, and the
  per-link scatter happens once at flow finish (and at
  :meth:`drain_saturation`) instead of every settle interval.
* Updates that change nothing skip the solve outright; a membership
  delta whose links are disjoint from every staying flow keeps the
  staying rates (max-min allocations are component-local) and solves
  only the admitted flows against full capacity.

Equivalence contract (enforced by the differential harness in
``tests/integration/test_flow_batch_equivalence.py``): the pending-load
ledger — the only state that feeds a *discrete* decision, the UGAL
spill emulation — evolves bit-identically to the reference fabric
(same per-element operations in the same order), so adaptive unit
selection is exact; rates, saturation clocks, and byte counters agree
to relative error far below ``1e-9``, differing only in float
accumulation order (deferred flushes reassociate ``w*(m1+m2)`` vs
``w*m1 + w*m2``; incremental weight aggregates carry subtraction
residue a from-scratch rebuild would not). Within one fabric choice,
results remain bit-identical across schedulers and worker counts: all
bookkeeping is driven by the simulator's total ``(time, seq)`` order.

The fabric knob (``REPRO_FLOW_FABRIC`` / ``fabric=`` on
:func:`~repro.flow.fabric.make_flow_fabric`) is a pure performance
knob, excluded from the exec cache identity exactly like the solver
knob; :data:`~repro.exec.plan.CODE_SALT` was bumped when the default
flipped to ``array``.
"""

from __future__ import annotations

import math
from collections import deque

import numpy as np

from repro.config import NetworkParams
from repro.engine.simulator import Simulator
from repro.flow.routes import FlowParams, flow_route_model
from repro.flow.solver import SAT_RTOL, VECTOR_MIN_UNITS, _BOTTLENECK_RTOL, _W_EPS
from repro.network.packet import Message
from repro.topology.dragonfly import Dragonfly

__all__ = ["ArrayFlowFabric"]

#: Completion threshold, identical to the object fabric.
_DONE_BYTES = 0.5


class ArrayFlowFabric:
    """Flow-level network over slot-indexed array state.

    Duck-types :class:`~repro.flow.fabric.FlowFabric` (same
    constructor shape, same public counters/methods), so
    ``run_single(backend="flow")`` can swap it in behind
    :func:`~repro.flow.fabric.make_flow_fabric`.
    """

    def __init__(
        self,
        sim: Simulator,
        topo: Dragonfly,
        net: NetworkParams,
        routing: str,
        params: FlowParams | None = None,
        solver: str | None = None,
        vec_min_units: int = VECTOR_MIN_UNITS,
    ) -> None:
        self.sim = sim
        self.topo = topo
        self.net = net
        self.params = params if params is not None else FlowParams()
        self.routes = flow_route_model(topo, net, routing, self.params)
        #: Kept for surface parity with the object fabric; the array
        #: fabric's solve is built in (incremental small path + CSR
        #: large path), so the solver knob has no effect here.
        self.solver = solver
        #: Adaptive dispatch floor for the CSR settle/solve paths; the
        #: same break-even as the standalone vector solver. Tests pin
        #: it to 0 to force the vector paths at every size.
        self._vec_min = vec_min_units

        n_links = topo.num_links
        self._n_links = n_links
        bw_arr, lat_arr, _buf = topo.link_profiles(net)
        self._bw_np = np.asarray(bw_arr, dtype=np.float64)
        self.bw: list[float] = bw_arr.tolist()
        self.lat: list[float] = (lat_arr + net.router_delay_ns).tolist()
        #: Per-link fill thresholds, hoisted out of the solve setup
        #: (same products the scalar solver computes per round).
        self._bw_btol: list[float] = [
            b * _BOTTLENECK_RTOL for b in self.bw
        ]
        self._bw_stol: list[float] = [b * SAT_RTOL for b in self.bw]

        self.bytes_tx: list[int] = [0] * n_links
        #: Deferred float byte counters, flushed per flow. Plain lists:
        #: the hot paths touch a handful of links per unit, where a
        #: Python indexed loop beats numpy's per-call dispatch by ~5x
        #: (the CSR paths go vectorized only past ``vec_min_units``).
        self._tx: list[float] = [0.0] * n_links
        self.sat_ns: list[float] = [0.0] * n_links
        self.queued_bytes: list[int] = [0] * n_links
        #: Pending-byte ledger (UGAL input). Only maintained on
        #: adaptive cells — ``min`` routing never reads it, so the
        #: bookkeeping is skipped wholesale there.
        self._load: list[float] = [0.0] * n_links
        self._adaptive = routing == "adp"

        self.packets_injected = 0
        self.packets_delivered = 0
        self.messages_delivered = 0
        self.bytes_injected = 0
        self.bytes_delivered = 0
        self.faults_applied = 0
        self.packets_rerouted = 0
        self.obs = None

        # --- slot-indexed flow state (slots are append-only) ---------
        self._f_msg: list[Message | None] = []
        self._f_units: list[tuple[int, ...]] = []
        self._f_remaining: list[float] = []
        self._f_rate: list[float] = []
        self._f_hop_b: list[float] = []
        self._f_lat_b: list[float] = []
        self._f_nonmin_b: list[float] = []
        #: Distinct link ids the flow crosses (for the crossings
        #: aggregate and the disjoint-delta check).
        self._f_links: list[tuple[int, ...]] = []

        # --- slot-indexed unit state ---------------------------------
        self._u_cols: list = []  # np.intp columns (shared, read-only)
        self._u_wgts: list = []  # np.float64 weights (shared)
        self._u_links: list[tuple[tuple[int, float], ...]] = []
        self._u_hops: list[float] = []
        self._u_lat: list[float] = []
        self._u_nonmin: list[float] = []
        self._u_rate: list[float] = []
        #: Deferred byte counter: bytes this unit moved since its last
        #: flush (finish or drain_saturation).
        self._u_moved: list[float] = []
        #: Pending-ledger share still attributed to this unit.
        self._u_left: list[float] = []
        #: ``(start, end)`` span of the unit's columns in the CSR.
        self._u_span: list[tuple[int, int]] = []

        # --- incremental link aggregates (admitted units only) -------
        #: link -> one flat record holding both the maintained
        #: aggregates and the solve's per-call scratch fields, so a
        #: solve resets three slots per link instead of rebuilding a
        #: copy, and insert/finish/solve all pay a single dict probe:
        #:   [0] fill weight (scratch)   [1] fill residual (scratch)
        #:   [2] bw * bottleneck_rtol    [3] fill count (scratch)
        #:   [4] lid                     [5] bw * sat_rtol
        #:   [6] sat flagged (scratch)   [7] weight sum (maintained)
        #:   [8] bw                      [9] unit count (maintained)
        #:   [10] user unit slots as an insertion-ordered set (dict
        #:        keys -> None), so finish removes in O(1).
        self._lrec: dict[int, list] = {}
        self._lx: dict[int, int] = {}  # link -> distinct-flow crossings

        # --- incremental CSR (admitted units' columns) ---------------
        cap0 = 256
        self._csr_cols = np.empty(cap0, dtype=np.intp)
        self._csr_wgts = np.empty(cap0, dtype=np.float64)
        self._csr_unit = np.empty(cap0, dtype=np.intp)
        self._csr_live = np.zeros(cap0, dtype=bool)
        self._csr_n = 0
        self._csr_dead = 0

        # uslot-indexed numpy scratch for the large paths (grown with
        # the slot count; contents are transient per call).
        self._scr_f8 = np.zeros(cap0, dtype=np.float64)
        self._scr_ip = np.zeros(cap0, dtype=np.intp)
        #: link-id -> active-local index scratch for the large solve
        #: (only entries for currently crossed links are ever read).
        self._scr_link = np.zeros(n_links, dtype=np.intp)

        self._act_flows: list[int] = []
        self._act_units: list[int] = []
        self._pending: list[int] = []
        self._nic_queue: dict[int, deque[int]] = {}
        self._nic_busy: set[int] = set()
        self._saturated: list[int] = []
        self._sat_set: set[int] = set()
        self._last_t = 0.0
        self._in_update = False
        self._gen = 0
        self._wake_time = math.inf
        self._nonmin_bytes = 0.0
        self._routed_bytes = 0.0

    # ------------------------------------------------------------------
    # public API (fabric duck-type)
    # ------------------------------------------------------------------
    def inject(self, msg: Message) -> None:
        """Admit a message as a flow at the current simulated time."""
        now = self.sim.now
        msg.inject_time = now
        size = msg.wire_size
        routes = self.routes
        if self._adaptive:
            entries = routes.spill_fast(
                msg.src_node, msg.dst_node, size, self._load
            )
        else:
            entries = (routes.entry(msg.src_node, msg.dst_node),)
        msg.num_packets = -(-size // self.net.packet_size)
        self.bytes_injected += size
        self.packets_injected += msg.num_packets
        self._routed_bytes += size

        share = size / len(entries)
        uslots = []
        load = self._load
        adaptive = self._adaptive
        lid_seen: set[int] = set()
        for e in entries:
            cols, wgts, lids = routes.entry_arrays(e)
            us = len(self._u_cols)
            self._u_cols.append(cols)
            self._u_wgts.append(wgts)
            self._u_links.append(e.links)
            self._u_hops.append(e.rr_hops)
            self._u_lat.append(e.latency_ns)
            self._u_nonmin.append(e.nonmin_fraction)
            self._u_rate.append(0.0)
            self._u_moved.append(0.0)
            self._u_left.append(share)
            self._u_span.append((0, 0))
            uslots.append(us)
            lid_seen.update(lids)
            if adaptive:
                # Same per-element ledger add as the object fabric's
                # unit loop — this feeds UGAL and must stay bit-exact.
                for lid, w in e.links:
                    load[lid] += w * share
        if len(self._u_cols) > len(self._scr_f8):
            grow = max(len(self._u_cols), 2 * len(self._scr_f8))
            self._scr_f8 = np.zeros(grow, dtype=np.float64)
            self._scr_ip = np.zeros(grow, dtype=np.intp)

        fs = len(self._f_msg)
        self._f_msg.append(msg)
        self._f_units.append(tuple(uslots))
        self._f_remaining.append(float(size))
        self._f_rate.append(0.0)
        self._f_hop_b.append(0.0)
        self._f_lat_b.append(0.0)
        self._f_nonmin_b.append(0.0)
        self._f_links.append(tuple(lid_seen))

        src = msg.src_node
        if src in self._nic_busy:
            self._nic_queue.setdefault(src, deque()).append(fs)
            return
        self._nic_busy.add(src)
        self._pending.append(fs)
        if not self._in_update:
            self._request_wake(self._admission_time(now))

    def drain_saturation(self) -> None:
        """Settle progress to now and finalise the integer byte counters."""
        self._settle(self.sim.now)
        # Flush every active unit's deferred bytes so _tx is complete.
        for fs in self._act_flows:
            self._flush(fs)
        self.bytes_tx = (
            np.rint(np.asarray(self._tx)).astype(np.int64).tolist()
        )

    @property
    def nonminimal_fraction(self) -> float:
        """Byte-weighted non-minimal fraction over all injected bytes."""
        if self._routed_bytes <= 0.0:
            return 0.0
        return self._nonmin_bytes / self._routed_bytes

    # ------------------------------------------------------------------
    # wake scheduling (identical to the object fabric)
    # ------------------------------------------------------------------
    def _admission_time(self, now: float) -> float:
        epoch = self.params.epoch_ns
        if epoch <= 0.0:
            return now
        return max(now, math.ceil(now / epoch - 1e-9) * epoch)

    def _request_wake(self, t: float) -> None:
        if t >= self._wake_time:
            return
        self._gen += 1
        self._wake_time = t
        self.sim.at(t, self._wake, self._gen)

    def _wake(self, gen: int) -> None:
        if gen != self._gen:
            return  # superseded by an earlier re-arm
        self._wake_time = math.inf
        self._update()

    # ------------------------------------------------------------------
    # fluid dynamics
    # ------------------------------------------------------------------
    def _flush(self, fs: int) -> None:
        """Scatter a flow's deferred per-unit bytes into the link and
        hop/latency/nonmin accumulators (idempotent)."""
        u_moved = self._u_moved
        u_links = self._u_links
        tx = self._tx
        hop_b = self._f_hop_b[fs]
        lat_b = self._f_lat_b[fs]
        nm_b = self._f_nonmin_b[fs]
        for us in self._f_units[fs]:
            m = u_moved[us]
            if m == 0.0:
                continue
            u_moved[us] = 0.0
            for lid, w in u_links[us]:
                tx[lid] += w * m
            hop_b += self._u_hops[us] * m
            lat_b += self._u_lat[us] * m
            nm = self._u_nonmin[us]
            if nm:
                nm_b += nm * m
        self._f_hop_b[fs] = hop_b
        self._f_lat_b[fs] = lat_b
        self._f_nonmin_b[fs] = nm_b

    def _settle(self, now: float) -> None:
        """Integrate flow progress (and bottleneck time) up to ``now``.

        Per-element arithmetic matches the object fabric exactly:
        ``remaining -= raw * scale`` with ``scale = remaining / raw``
        when capped, the ledger decrement capped by the unit's
        attributed share. Byte movement is accumulated per unit and
        flushed later (see :meth:`_flush`).
        """
        dt = now - self._last_t
        self._last_t = now
        if dt <= 0.0:
            return
        act = self._act_flows
        if act:
            if self._adaptive and len(self._act_units) >= self._vec_min:
                self._settle_vec(dt)
            else:
                f_rate = self._f_rate
                f_rem = self._f_remaining
                f_units = self._f_units
                u_rate = self._u_rate
                u_moved = self._u_moved
                u_left = self._u_left
                u_links = self._u_links
                adaptive = self._adaptive
                load = self._load
                for fs in act:
                    rate = f_rate[fs]
                    if rate <= 0.0:
                        continue
                    raw = rate * dt
                    rem = f_rem[fs]
                    scale = 1.0
                    if raw > rem:
                        scale = rem / raw
                    f_rem[fs] = rem - raw * scale
                    for us in f_units[fs]:
                        moved = u_rate[us] * dt * scale
                        if moved <= 0.0:
                            continue
                        u_moved[us] += moved
                        if adaptive:
                            left = u_left[us]
                            if moved < left:
                                dec = moved
                                u_left[us] = left - moved
                            else:
                                dec = left
                                u_left[us] = 0.0
                            if dec != 0.0:
                                for lid, w in u_links[us]:
                                    load[lid] -= w * dec
            if self._saturated:
                sat_ns = self.sat_ns
                for lid in self._saturated:
                    sat_ns[lid] += dt

    def _settle_vec(self, dt: float) -> None:
        """Vectorized settle: gather rates, cap per flow, scatter the
        capped ledger decrement over the live CSR in one
        ``np.subtract.at``.

        ``subtract.at`` applies its operands sequentially in column
        order; live CSR columns sit in admission order (appends at
        admit, whole-unit tombstones at finish, order-preserving
        compaction), which is exactly the unit-by-unit order of the
        object fabric's settle loop — so the ledger stays bit-exact.
        """
        act = self._act_flows
        act_u = self._act_units
        n_f = len(act)
        n_u = len(act_u)
        f_rate = self._f_rate
        f_rem = self._f_remaining
        rate_f = np.fromiter((f_rate[fs] for fs in act), np.float64, n_f)
        rem_f = np.fromiter((f_rem[fs] for fs in act), np.float64, n_f)
        raw = rate_f * dt
        capped = raw > rem_f
        scale_f = np.where(capped, rem_f / np.where(raw > 0.0, raw, 1.0), 1.0)
        # Guard rate<=0 rows: the scalar loop skips them before the cap.
        scale_f[rate_f <= 0.0] = 0.0
        rem_new = rem_f - raw * scale_f
        for i, fs in enumerate(act):
            if rate_f[i] > 0.0:
                f_rem[fs] = rem_new[i]

        # Per-unit moved bytes and capped ledger decrement.
        u_rate = self._u_rate
        u_left = self._u_left
        u_moved = self._u_moved
        f_units = self._f_units
        # unit -> owning active-flow row
        uscale = np.empty(n_u, dtype=np.float64)
        k = 0
        for i, fs in enumerate(act):
            s = scale_f[i]
            for _us in f_units[fs]:
                uscale[k] = s
                k += 1
        rate_u = np.fromiter((u_rate[us] for us in act_u), np.float64, n_u)
        left_u = np.fromiter((u_left[us] for us in act_u), np.float64, n_u)
        moved = rate_u * dt * uscale
        pos = moved > 0.0
        moved[~pos] = 0.0
        take = pos & (moved < left_u)
        dec = np.where(take, moved, np.where(pos, left_u, 0.0))
        left_new = np.where(take, left_u - moved, np.where(pos, 0.0, left_u))
        for i, us in enumerate(act_u):
            if pos[i]:
                u_moved[us] += moved[i]
                u_left[us] = left_new[i]

        # Scatter dec over the live CSR (admission order, sequential).
        # ``subtract.at`` on a faithful copy of the list ledger keeps
        # the per-element op order — and the float values — bit-exact
        # with the scalar loop; the round-trip through float64 is the
        # identity.
        scr = self._scr_f8
        scr[np.fromiter(act_u, np.intp, n_u)] = dec
        n = self._csr_n
        live = np.nonzero(self._csr_live[:n])[0]
        cols = self._csr_cols[live]
        vals = self._csr_wgts[live] * scr[self._csr_unit[live]]
        ld = np.asarray(self._load)
        np.subtract.at(ld, cols, vals)
        self._load = ld.tolist()

    def _update(self) -> None:
        """Settle, fire completions, admit arrivals, re-solve, re-arm."""
        self._in_update = True
        try:
            now = self.sim.now
            self._settle(now)

            f_rem = self._f_remaining
            finished = [
                fs for fs in self._act_flows if f_rem[fs] < _DONE_BYTES
            ]
            departed: set[int] = set()
            if finished:
                self._act_flows = [
                    fs for fs in self._act_flows if f_rem[fs] >= _DONE_BYTES
                ]
                for fs in finished:
                    self._finish(fs, now, departed)

            # Completion callbacks may inject follow-on messages; admit
            # everything pending in arrival order before solving.
            admitted: list[int] = []
            while self._pending:
                batch = self._pending
                self._pending = []
                admitted.extend(batch)
                self._act_flows.extend(batch)

            if finished or admitted:
                self._apply_delta(finished, admitted, departed)

            nxt = math.inf
            f_rate = self._f_rate
            for fs in self._act_flows:
                rate = f_rate[fs]
                if rate > 0.0:
                    t = now + f_rem[fs] / rate
                    if t < nxt:
                        nxt = t
            if nxt < math.inf:
                if nxt <= now:
                    # Float collapse at huge timestamps: bump one ulp so
                    # the wake makes progress (see the object fabric).
                    nxt = math.nextafter(now, math.inf)
                self._request_wake(nxt)
        finally:
            self._in_update = False

    def _apply_delta(
        self, finished: list[int], admitted: list[int], departed: set[int]
    ) -> None:
        """Fold a membership delta into the aggregates/CSR and re-rate.

        The staying flows keep their rates when every departed and
        admitted link is disjoint from them (max-min allocations are
        component-local); only the admitted component is then solved,
        against full capacity. Any overlap falls back to a full solve.
        """
        lrec = self._lrec
        # Departed links still crossed by a staying flow couple the
        # delta to the stay set; links nobody crosses any more leave
        # the saturated set (they are no longer in the solve at all).
        delta_shared = False
        for lid in departed:
            if lid in lrec:
                delta_shared = True
            elif lid in self._sat_set:
                self._sat_set.discard(lid)
                self._saturated.remove(lid)
        if not delta_shared:
            f_links = self._f_links
            for fs in admitted:
                for lid in f_links[fs]:
                    if lid in lrec:
                        delta_shared = True
                        break
                if delta_shared:
                    break
        for fs in admitted:
            self._insert(fs)
        f_units = self._f_units
        self._act_units = [
            us for fs in self._act_flows for us in f_units[fs]
        ]

        if not self._act_flows:
            self._set_saturated([])
            return
        if not delta_shared:
            if admitted:
                self._solve_subset(admitted)
            return
        if len(self._act_units) >= self._vec_min:
            self._solve_large()
        else:
            self._solve_small()

    def _insert(self, fs: int) -> None:
        """Add an admitted flow's units to the aggregates and CSR."""
        lrec = self._lrec
        btol = self._bw_btol
        stol = self._bw_stol
        bw = self.bw
        u_links = self._u_links
        for us in self._f_units[fs]:
            for lid, w in u_links[us]:
                rec = lrec.get(lid)
                if rec is not None:
                    rec[7] += w
                    rec[9] += 1
                    rec[10][us] = None
                else:
                    lrec[lid] = [
                        0.0, 0.0, btol[lid], 0, lid, stol[lid],
                        False, w, bw[lid], 1, {us: None},
                    ]
            self._csr_append(us)
        lx = self._lx
        for lid in self._f_links[fs]:
            lx[lid] = lx.get(lid, 0) + 1

    def _csr_append(self, us: int) -> None:
        cols = self._u_cols[us]
        k = len(cols)
        n = self._csr_n
        cap = len(self._csr_cols)
        if n + k > cap:
            new_cap = max(n + k, 2 * cap)
            for name in ("_csr_cols", "_csr_wgts", "_csr_unit", "_csr_live"):
                old = getattr(self, name)
                buf = np.zeros(new_cap, dtype=old.dtype)
                buf[:n] = old[:n]
                setattr(self, name, buf)
        self._csr_cols[n : n + k] = cols
        self._csr_wgts[n : n + k] = self._u_wgts[us]
        self._csr_unit[n : n + k] = us
        self._csr_live[n : n + k] = True
        self._u_span[us] = (n, n + k)
        self._csr_n = n + k

    def _csr_compact(self) -> None:
        """Drop tombstoned columns, preserving admission order."""
        n = self._csr_n
        live = self._csr_live[:n]
        m = int(np.count_nonzero(live))
        self._csr_cols[:m] = self._csr_cols[:n][live]
        self._csr_wgts[:m] = self._csr_wgts[:n][live]
        unit = self._csr_unit[:n][live]
        self._csr_unit[:m] = unit
        self._csr_live[:m] = True
        self._csr_live[m:n] = False
        self._csr_n = m
        self._csr_dead = 0
        # Re-derive the per-unit spans from the compacted run bounds.
        if m:
            bounds = np.flatnonzero(np.diff(unit)) + 1
            starts = [0, *bounds.tolist()]
            ends = [*bounds.tolist(), m]
            u_span = self._u_span
            for s, e in zip(starts, ends):
                u_span[int(unit[s])] = (s, e)

    def _finish(self, fs: int, now: float, departed: set[int]) -> None:
        """The flow drained: last byte has left the source NIC."""
        msg = self._f_msg[fs]
        assert msg is not None
        self._flush(fs)
        u_left = self._u_left
        u_links = self._u_links
        f_units = self._f_units[fs]
        if self._adaptive:
            # Ledger reconciliation — same per-element op order as the
            # object fabric's unit loop (bit-exact, feeds UGAL).
            load = self._load
            for us in f_units:
                left = u_left[us]
                if left > 0.0:
                    u_left[us] = 0.0
                    for lid, w in u_links[us]:
                        load[lid] -= w * left
        lrec = self._lrec
        for us in f_units:
            for lid, w in u_links[us]:
                rec = lrec[lid]
                c = rec[9] - 1
                if c == 0:
                    del lrec[lid]
                else:
                    rec[9] = c
                    rec[7] -= w
                    del rec[10][us]
            s, e = self._u_span[us]
            self._csr_live[s:e] = False
            self._csr_dead += e - s
        lx = self._lx
        for lid in self._f_links[fs]:
            x = lx[lid] - 1
            if x == 0:
                del lx[lid]
            else:
                lx[lid] = x
            departed.add(lid)
        # Compact when the dead majority is also big enough to be worth
        # the pass — at tiny occupancies the dead>live rule alone would
        # thrash a compaction on nearly every finish.
        dead = self._csr_dead
        if dead > 128 and dead > self._csr_n - dead:
            self._csr_compact()

        src = msg.src_node
        queue = self._nic_queue.get(src)
        if queue:
            # Instant NIC turnaround: the successor starts at the exact
            # finish time, picked up by this update's admission loop.
            self._pending.append(queue.popleft())
        else:
            self._nic_busy.discard(src)
        msg.injected_time = now
        if msg.on_injected is not None:
            msg.on_injected(msg, now)
        wire = float(msg.wire_size)
        latency = self._f_lat_b[fs] / wire if wire > 0.0 else 0.0
        self.sim.at(now + latency, self._deliver, fs)

    def _deliver(self, fs: int) -> None:
        msg = self._f_msg[fs]
        assert msg is not None
        now = self.sim.now
        size = msg.wire_size
        wire = float(size)
        msg.arrived_bytes = size
        msg.hop_sum = (self._f_hop_b[fs] / wire) * msg.num_packets
        msg.delivered_time = now
        self.packets_delivered += msg.num_packets
        self.bytes_delivered += size
        self.messages_delivered += 1
        self._nonmin_bytes += self._f_nonmin_b[fs]
        self._f_msg[fs] = None  # release the message reference
        if msg.on_delivered is not None:
            msg.on_delivered(msg, now)

    # ------------------------------------------------------------------
    # max-min solve (incremental)
    # ------------------------------------------------------------------
    def _set_saturated(self, sat: list[int]) -> None:
        self._saturated = sat
        self._sat_set = set(sat)

    def _solve_small(self) -> None:
        """Progressive filling from copies of the maintained aggregates
        (the incremental twin of ``solve_scalar``).

        Per-link fill state lives in the maintained ``_lrec`` records
        (see ``__init__``): a solve resets the three scratch slots
        from the maintained aggregates instead of rebuilding dict
        copies, and works down one ``alive`` list that is compacted
        once retired links dominate it — later rounds scan only links
        still in play, and the inner passes do list indexing instead
        of three dict probes per link. The arithmetic (values,
        per-element order) is identical to the plain dict fill, so
        results are bit-equal."""
        act_units = self._act_units
        u_rate = self._u_rate
        u_links = self._u_links
        for us in act_units:
            u_rate[us] = -1.0  # sentinel: not yet frozen
        n_unfrozen = len(act_units)
        recs = self._lrec
        alive = list(recs.values())
        for rec in alive:
            rec[0] = rec[7]
            rec[1] = rec[8]
            rec[3] = rec[9]
            rec[6] = False

        base = 0.0
        n_dead = 0
        # Links whose residual ever dropped to the saturation band;
        # residuals are monotone during the fill, so collecting them at
        # first crossing is equivalent to the final-residual scan (the
        # saturation band is wider than the bottleneck band).
        sat_cand: list[list] = []
        while n_unfrozen:
            step = math.inf
            for rec in alive:
                wsum = rec[0]
                if wsum > _W_EPS:
                    t = rec[1] / wsum
                    if t < step:
                        step = t
            if step is math.inf:  # pragma: no cover - defensive
                break
            base += step
            bottleneck: list[list] = []
            for rec in alive:
                wsum = rec[0]
                if wsum > _W_EPS:
                    r = rec[1] - wsum * step
                    rec[1] = r
                    if r <= rec[5]:
                        if not rec[6]:
                            rec[6] = True
                            sat_cand.append(rec)
                        if r <= rec[2]:
                            bottleneck.append(rec)
            progressed = False
            for rec in bottleneck:
                for us in rec[10]:
                    if u_rate[us] < 0.0:
                        u_rate[us] = base
                        n_unfrozen -= 1
                        progressed = True
                        for l2, w2 in u_links[us]:
                            r2 = recs[l2]
                            r2[0] -= w2
                            c = r2[3] - 1
                            r2[3] = c
                            if c == 0:
                                # Retire by count, not float residue
                                # (see solve_scalar).
                                r2[0] = 0.0
                                n_dead += 1
            if not progressed:  # pragma: no cover - defensive
                break
            # Retired links (weight zeroed by count) can never re-gain
            # weight; once they are the majority, compact them out so
            # later rounds scan only links still in play. Rebuilding
            # every round would append each survivor per round — worse
            # than the scans it saves when attrition is slow.
            if n_dead * 2 > len(alive):
                alive = [rec for rec in alive if rec[0] > _W_EPS]
                n_dead = 0
        f_rate = self._f_rate
        f_units = self._f_units
        for fs in self._act_flows:
            rate = 0.0
            for us in f_units[fs]:
                r = u_rate[us]
                if r < 0.0:  # pragma: no cover - defensive
                    u_rate[us] = r = base
                rate += r
            f_rate[fs] = rate

        lx = self._lx
        sat = [rec[4] for rec in sat_cand if lx[rec[4]] >= 2]
        sat.sort()
        self._set_saturated(sat)

    def _solve_subset(self, admitted: list[int]) -> None:
        """Rate only the admitted flows (their links are disjoint from
        every staying flow, so the staying allocation is untouched).

        Newly saturated links are merged into the existing saturated
        set — disjointness guarantees no collision."""
        u_rate = self._u_rate
        u_links = self._u_links
        f_units = self._f_units
        weight: dict[int, float] = {}
        count: dict[int, int] = {}
        users: dict[int, list[int]] = {}
        crossings: dict[int, int] = {}
        n_unfrozen = 0
        for fs in admitted:
            seen: set[int] = set()
            for us in f_units[fs]:
                u_rate[us] = -1.0
                n_unfrozen += 1
                for lid, w in u_links[us]:
                    if lid in weight:
                        weight[lid] += w
                        count[lid] += 1
                        users[lid].append(us)
                    else:
                        weight[lid] = w
                        count[lid] = 1
                        users[lid] = [us]
                    if lid not in seen:
                        seen.add(lid)
                        crossings[lid] = crossings.get(lid, 0) + 1
        bw = self.bw
        link_ids = list(weight)
        residual = {lid: bw[lid] for lid in link_ids}

        base = 0.0
        while n_unfrozen:
            step = math.inf
            for lid in link_ids:
                wsum = weight[lid]
                if wsum > _W_EPS:
                    t = residual[lid] / wsum
                    if t < step:
                        step = t
            if step is math.inf:  # pragma: no cover - defensive
                break
            base += step
            bottleneck = []
            for lid in link_ids:
                wsum = weight[lid]
                if wsum > _W_EPS:
                    r = residual[lid] - wsum * step
                    residual[lid] = r
                    if r <= bw[lid] * _BOTTLENECK_RTOL:
                        bottleneck.append(lid)
            progressed = False
            for lid in bottleneck:
                for us in users[lid]:
                    if u_rate[us] < 0.0:
                        u_rate[us] = base
                        n_unfrozen -= 1
                        progressed = True
                        for l2, w2 in u_links[us]:
                            weight[l2] -= w2
                            c = count[l2] - 1
                            count[l2] = c
                            if c == 0:
                                weight[l2] = 0.0
            if not progressed:  # pragma: no cover - defensive
                break
        f_rate = self._f_rate
        for fs in admitted:
            rate = 0.0
            for us in f_units[fs]:
                r = u_rate[us]
                if r < 0.0:  # pragma: no cover - defensive
                    u_rate[us] = r = base
                rate += r
            f_rate[fs] = rate

        new_sat = [
            lid
            for lid in residual
            if crossings[lid] >= 2 and residual[lid] <= bw[lid] * SAT_RTOL
        ]
        if new_sat:
            self._set_saturated(sorted(self._saturated + new_sat))

    def _solve_large(self) -> None:
        """Vectorized progressive filling over the live CSR (the
        incremental twin of ``solve_vector``, in global link space)."""
        act_units = self._act_units
        n_act = len(act_units)
        au = np.fromiter(act_units, np.intp, n_act)
        if n_act == 1:
            # Closed form: one round, and a lone flow is never a
            # *contended* bottleneck.
            us = act_units[0]
            best = math.inf
            bw = self.bw
            for lid, w in self._u_links[us]:
                if w > _W_EPS:
                    t = bw[lid] / w
                    if t < best:
                        best = t
            self._u_rate[us] = 0.0 if best is math.inf else best
            fs = self._act_flows[0]
            self._f_rate[fs] = self._u_rate[us]
            self._set_saturated([])
            return

        n = self._csr_n
        live = np.nonzero(self._csr_live[:n])[0]
        cols = self._csr_cols[live]
        wgts = self._csr_wgts[live]
        loc = self._scr_ip
        loc[au] = np.arange(n_act, dtype=np.intp)
        rows = loc[self._csr_unit[live]]

        # Work in *active-local* link space: per-round arrays span only
        # the links currently crossed (``_lrec`` keys, admission order),
        # not the whole topology — the bincounts keep the same
        # accumulation order (CSR order), so the fill is bit-equal to
        # the global-space version.
        uniq = np.fromiter(self._lrec, np.intp, len(self._lrec))
        n_loc = len(uniq)
        lmap = self._scr_link
        lmap[uniq] = np.arange(n_loc, dtype=np.intp)
        lcols = lmap[cols]
        cap = self._bw_np[uniq]
        weight = np.bincount(lcols, weights=wgts, minlength=n_loc)
        count = np.bincount(lcols, minlength=n_loc)
        residual = cap.copy()
        rates = np.full(n_act, -1.0)
        unfrozen = np.ones(n_act, dtype=bool)

        base = 0.0
        while unfrozen.any():
            shared = weight > _W_EPS
            if not shared.any():  # pragma: no cover - defensive
                break
            step = float(np.min(residual[shared] / weight[shared]))
            if not math.isfinite(step):  # pragma: no cover - defensive
                break
            base += step
            residual[shared] = residual[shared] - weight[shared] * step
            bottleneck = shared & (residual <= cap * _BOTTLENECK_RTOL)
            if not bottleneck.any():  # pragma: no cover - defensive
                break
            hits = np.bincount(
                rows, weights=bottleneck[lcols], minlength=n_act
            ) > 0.0
            newly = unfrozen & hits
            if not newly.any():  # pragma: no cover - defensive
                break
            rates[newly] = base
            unfrozen &= ~newly
            sel = newly[rows]
            weight = weight - np.bincount(
                lcols[sel], weights=wgts[sel], minlength=n_loc
            )
            count = count - np.bincount(lcols[sel], minlength=n_loc)
            weight[count == 0] = 0.0

        u_rate = self._u_rate
        for i in range(n_act):
            r = rates[i]
            u_rate[act_units[i]] = base if r < 0.0 else float(r)
        f_rate = self._f_rate
        f_units = self._f_units
        for fs in self._act_flows:
            rate = 0.0
            for us in f_units[fs]:
                rate += u_rate[us]
            f_rate[fs] = rate

        lx = self._lx
        sat_loc = np.nonzero(residual <= cap * SAT_RTOL)[0]
        sat = sorted(
            lid for lid in map(int, uniq[sat_loc]) if lx[lid] >= 2
        )
        self._set_saturated(sat)
