"""Batched execution of independent flow-backend cells.

A flow-backend grid cell spends a measurable slice of its wall time on
per-cell fixed costs: task submission/IPC in the process pool, and the
first-touch warming of the shared :func:`~repro.flow.routes
.flow_route_model` memos (entry tables, candidate sets, spill results).
:class:`BatchedFlowRunner` amortizes both by solving many independent
cells inside one worker task: the route models for every routing in the
batch are warmed once up front, then each cell runs against the warm
memos with no further IPC until the whole batch returns.

Batching is pure scheduling — cell *results* are untouched. Each cell
is still keyed, cached, retried, and reported individually by
:func:`repro.exec.pool.execute_plan` (its ``flow_batch`` argument is
the user-facing knob; the batch size is deliberately **excluded** from
the exec cache identity), and a cell that raises inside a batch is
isolated to an error payload so its batch-mates still land. The
differential harness in ``tests/integration/test_flow_batch_equivalence
.py`` asserts batched results are *bit-identical* to serial ones.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Iterable, Sequence

from repro.flow.routes import flow_route_model

__all__ = ["BatchedFlowRunner", "run_flow_batch"]

#: Per-cell payloads crossing the worker boundary: ``("ok", RunResult,
#: wall_s)`` or ``("err", repr(exc), wall_s)``.
CellPayload = tuple[str, Any, float]


class BatchedFlowRunner:
    """Run many independent flow cells with shared route-model reuse.

    ``runner`` is the per-cell function ``(config, spec, trace) ->
    RunResult`` (defaults to :func:`repro.exec.pool.simulate_spec`,
    resolved lazily to keep this module import-light inside workers).
    """

    def __init__(self, config, runner: Callable | None = None) -> None:
        if runner is None:
            from repro.exec.pool import simulate_spec

            runner = simulate_spec
        self.config = config
        self.runner = runner
        #: Distinct route models warmed by the last :meth:`prewarm`.
        self.models_warmed = 0
        self._models: list[Any] = []

    def prewarm(self, specs: Iterable[Any]) -> int:
        """Touch the shared route model for every distinct
        (routing, flow params) combination in ``specs``.

        Warming is a pure speed-up: :func:`flow_route_model` memoises on
        (topology, network, routing, params), so the per-cell fabrics
        constructed later find their entry/candidate/spill memos hot.
        The spec's own ``flow_params`` ride along — a cell with
        non-default params must warm *its* model, not the default one.
        When the ``REPRO_FLOW_MODEL_CACHE`` knob is set the models also
        load their persisted memos from disk (inside
        :func:`flow_route_model`), and the warmed models are kept so
        :meth:`save_models` can persist them after the batch.
        Returns the number of distinct models touched.
        """
        from repro.core.runner import build_topology

        topo = build_topology(self.config.topology)
        seen: dict[tuple[str, Any], Any] = {}
        for spec in specs:
            params = getattr(spec, "flow_params", None)
            key = (spec.routing, params)
            if key not in seen:
                seen[key] = flow_route_model(
                    topo, self.config.network, spec.routing, params
                )
        self._models = list(seen.values())
        self.models_warmed = len(seen)
        return self.models_warmed

    def save_models(self) -> int:
        """Persist the prewarmed models to the disk cache (no-op when
        the ``REPRO_FLOW_MODEL_CACHE`` knob is unset or the digests
        already exist). Returns the number of files written."""
        from repro.flow import modelcache

        return sum(modelcache.save_from(m) for m in self._models)

    def run_cell(self, spec, trace):
        """Solve one cell exactly as the unbatched path would."""
        return self.runner(self.config, spec, trace)

    def run_batch(
        self,
        items: Sequence[tuple[Any, Any]],
        timeout_s: float | None = None,
        keep_sends: bool = True,
    ) -> list[CellPayload]:
        """Solve every ``(spec, trace)`` item, isolating per-cell errors.

        Returns one :data:`CellPayload` per item, in item order. A cell
        that raises (including a ``SIGALRM``-enforced
        :class:`~repro.exec.pool.CellTimeout`) becomes an ``"err"``
        payload without disturbing its batch-mates, so the executor can
        retry exactly the failed cells. ``keep_sends=False`` slims the
        optional ``job.send_events`` payload before the batch crosses a
        process boundary, mirroring the unbatched IPC policy.
        """
        from repro.exec.pool import _call_with_timeout

        self.prewarm(spec for spec, _ in items)
        payloads: list[CellPayload] = []
        for spec, trace in items:
            start = time.perf_counter()
            try:
                result = _call_with_timeout(
                    self.run_cell, (spec, trace), timeout_s
                )
            except Exception as exc:  # noqa: BLE001 — cell isolation
                payloads.append(
                    ("err", repr(exc), time.perf_counter() - start)
                )
                continue
            if not keep_sends and getattr(result, "job", None) is not None:
                result.job.send_events = None
            payloads.append(("ok", result, time.perf_counter() - start))
        self.save_models()
        return payloads


def run_flow_batch(
    runner: Callable | None,
    config,
    items: Sequence[tuple[Any, Any]],
    timeout_s: float | None = None,
    keep_sends: bool = True,
) -> list[CellPayload]:
    """Module-level batch entry point (what pool workers execute)."""
    batch = BatchedFlowRunner(config, runner=runner)
    return batch.run_batch(items, timeout_s=timeout_s, keep_sends=keep_sends)
