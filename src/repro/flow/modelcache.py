"""Cross-process route-model reuse: a disk-backed prewarm cache.

A :class:`~repro.flow.routes.FlowRouteModel` is a pure function of
``(topology params, network params, routing, FlowParams)``, append-only
after construction, and expensive to warm: the entry/candidate/spill
memos are derived lazily per (src, dst) pair, so every *process* that
simulates the same configuration used to re-derive the exact same
structures (pool workers are the worst case — each worker pays the
full warm-up for every distinct model it touches).

This module persists those memos, keyed by a content digest of the
model's defining inputs. The cache stores *derived, deterministic*
state only — loading a warm model changes speed, never results — so it
sits outside the exec result-cache identity, like the solver and
fabric knobs.

Enablement is opt-in via the ``REPRO_FLOW_MODEL_CACHE`` environment
variable (a directory path): :func:`~repro.flow.routes.flow_route_model`
calls :func:`load_into` on every newly constructed model when the knob
is set, and the batched runner / pool workers call :func:`save_from`
after simulating. Writes are atomic (temp file + ``os.replace``) so
concurrent workers can race on the same digest safely; corrupt or
unreadable files are treated as misses and counted in :func:`stats`.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
import tempfile
from pathlib import Path
from typing import Any

__all__ = [
    "MODEL_CACHE_SCHEMA",
    "MODEL_CACHE_ENV",
    "cache_dir",
    "model_digest",
    "load_into",
    "save_from",
    "stats",
    "reset_stats",
]

#: Versioned payload schema, part of the digest: bump it whenever the
#: pickled memo layout changes and old files silently become misses.
MODEL_CACHE_SCHEMA = "repro-flow-model/v1"

#: Environment knob: a directory to persist warm route models under.
MODEL_CACHE_ENV = "REPRO_FLOW_MODEL_CACHE"

#: Memo dict attributes persisted per model. ``_entry_arrays`` is
#: deliberately absent — it is keyed by process-local ``id()``.
_MEMO_ATTRS = (
    "_cache",
    "_cand_cache",
    "_scoring",
    "_idle_spill",
    "_fast_scoring",
)

_stats = {"hits": 0, "misses": 0, "saves": 0, "errors": 0}


def stats() -> dict[str, int]:
    """A copy of this process's cache counters."""
    return dict(_stats)


def reset_stats() -> None:
    for k in _stats:
        _stats[k] = 0


def cache_dir() -> Path | None:
    """The configured cache directory, or ``None`` when disabled."""
    path = os.environ.get(MODEL_CACHE_ENV)
    return Path(path) if path else None


def model_digest(model: Any) -> str:
    """Content digest of the inputs that define a route model."""
    payload = {
        "schema": MODEL_CACHE_SCHEMA,
        "topology": dataclasses.asdict(model.topo.params),
        "net": dataclasses.asdict(model.net),
        "routing": model.routing,
        "params": dataclasses.asdict(model.params),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def _path_for(base: Path, digest: str) -> Path:
    return base / f"model-{digest[:32]}.pkl"


def load_into(model: Any) -> bool:
    """Merge a persisted model's memos into ``model``; True on a hit.

    Merging (``dict.update``) rather than replacing keeps anything the
    model already derived; identical keys map to equal values by
    determinism of the derivation.
    """
    base = cache_dir()
    if base is None:
        return False
    path = _path_for(base, model_digest(model))
    try:
        with open(path, "rb") as fh:
            memos = pickle.load(fh)
        for attr in _MEMO_ATTRS:
            getattr(model, attr).update(memos[attr])
    except FileNotFoundError:
        _stats["misses"] += 1
        return False
    except Exception:
        # Corrupt/truncated/incompatible file: a miss, not a failure.
        _stats["errors"] += 1
        _stats["misses"] += 1
        return False
    _stats["hits"] += 1
    return True


def save_from(model: Any, force: bool = False) -> bool:
    """Persist ``model``'s memos; True when a file was written.

    Skips the write when the digest already exists (unless ``force``) —
    models are append-only, so the first writer's warm set is
    representative and later workloads only re-add what they touch.
    The write is atomic, so racing workers are safe.
    """
    base = cache_dir()
    if base is None:
        return False
    path = _path_for(base, model_digest(model))
    if path.exists() and not force:
        return False
    try:
        base.mkdir(parents=True, exist_ok=True)
        memos = {attr: getattr(model, attr) for attr in _MEMO_ATTRS}
        fd, tmp = tempfile.mkstemp(dir=base, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(memos, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
    except Exception:
        _stats["errors"] += 1
        return False
    _stats["saves"] += 1
    return True
