"""Flow-level (fluid) simulation backend with cross-fidelity validation.

``repro.flow`` trades packet-level exactness for orders-of-magnitude
cheaper cells: messages drain as weighted max-min fair flows over the
same topology, placements, and routing path logic as the packet engine,
producing the same :class:`~repro.core.runner.RunResult` metrics. Select
it with ``run_single(..., backend="flow")`` (or ``--backend flow`` on
the CLI); validate it against the exact engine with
:func:`~repro.flow.fidelity.fidelity_report`.
"""

from repro.flow.batch import BatchedFlowRunner, run_flow_batch
from repro.flow.fabric import (
    DEFAULT_FABRIC,
    FABRIC_NAMES,
    FlowFabric,
    make_flow_fabric,
)
from repro.flow.fabric_array import ArrayFlowFabric
from repro.flow.fidelity import FidelityReport, fidelity_report, kendall_tau
from repro.flow.routes import (
    BACKEND_NAMES,
    FlowEntry,
    FlowParams,
    FlowRouteModel,
)
from repro.flow.solver import (
    DEFAULT_SOLVER,
    SOLVER_NAMES,
    get_solver,
    solve_scalar,
    solve_vector,
)

__all__ = [
    "ArrayFlowFabric",
    "BACKEND_NAMES",
    "BatchedFlowRunner",
    "DEFAULT_FABRIC",
    "DEFAULT_SOLVER",
    "FABRIC_NAMES",
    "FlowFabric",
    "FlowEntry",
    "FlowParams",
    "FlowRouteModel",
    "FidelityReport",
    "SOLVER_NAMES",
    "fidelity_report",
    "get_solver",
    "kendall_tau",
    "make_flow_fabric",
    "run_flow_batch",
    "solve_scalar",
    "solve_vector",
]
