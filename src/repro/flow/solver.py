"""Weighted max-min progressive-filling solvers for the flow fabric.

Two interchangeable implementations of the rate-allocation step behind
:meth:`~repro.flow.fabric.FlowFabric._solve`:

* :func:`solve_scalar` — the historical pure-Python loop, extracted
  from the fabric as the reference the differential harness measures
  against. One deliberate deviation from the original: links are
  retired by an integer unfrozen-user *count* instead of by their
  floating-point weight draining below ``_W_EPS``. The original could
  leave ~1e-16 of residue on an emptied link after unit-by-unit
  cancellation, keeping it "shared" at residual 0 and tripping the
  defensive no-progress break — freezing the tail of the allocation at
  a premature base rate (found by this harness; both solvers carry the
  same fix, and the property suite's bottleneck-condition test guards
  it).
* :func:`solve_vector` — the same algorithm restructured over numpy
  arrays: the flow–link incidence is assembled once per solve in
  CSR-like form (``indptr`` + per-nonzero link index/weight columns),
  and each filling round detects every bottleneck link and freezes
  every affected unit with vectorized reductions instead of per-link
  Python loops.

Both compute the same allocation: grow a uniform base rate across all
unfrozen units, freeze every unit crossing the first link(s) to
saturate, remove their weight, and repeat on the residual network. The
implementations differ only in floating-point *accumulation order*
(the vector path subtracts a round's frozen weight as one batched sum,
the scalar path unit by unit), so results agree to relative error far
below ``1e-9`` but are not guaranteed bit-identical — which is why the
solver choice is a pure performance knob excluded from the exec cache
identity, while :data:`~repro.exec.plan.CODE_SALT` was bumped when the
default flipped to ``vector``.

Contract shared by both solvers: given the active flows and the global
per-link capacity table, set ``unit.rate`` on every unit and ``f.rate``
(the sum of its units) on every flow, and return the sorted global link
ids that are *contended bottlenecks* — allocated to capacity with two
or more distinct flows crossing — which is the fabric's saturation
proxy.
"""

from __future__ import annotations

import math
from typing import Any, Sequence

import numpy as np

__all__ = [
    "SOLVER_NAMES",
    "DEFAULT_SOLVER",
    "SAT_RTOL",
    "get_solver",
    "solve_scalar",
    "solve_vector",
]

#: Valid values of the solver knob (``REPRO_FLOW_SOLVER`` / the
#: ``FlowFabric(solver=...)`` argument).
SOLVER_NAMES = ("scalar", "vector")

#: Production default. The scalar loop remains available as the frozen
#: differential reference.
DEFAULT_SOLVER = "vector"

#: Relative tolerance for "this link is saturated" in the solvers and
#: the fabric's saturation clock.
SAT_RTOL = 1e-9

#: A link whose unfrozen weight falls below this is no longer shared.
_W_EPS = 1e-15

#: Bottleneck detection tolerance (relative to link capacity): after a
#: filling round the binding link's residual is exact-zero up to one
#: division/multiply rounding, far inside this band.
_BOTTLENECK_RTOL = 1e-12


def solve_scalar(flows: Sequence[Any], bw: Sequence[float]) -> list[int]:
    """Reference progressive filling (the historical in-fabric loop).

    Deterministic: link maps iterate in first-touch order, which is
    fixed by flow admission order, itself fixed by the simulator's
    total event order.
    """
    saturated: list[int] = []
    if not flows:
        return saturated

    weight: dict[int, float] = {}
    count: dict[int, int] = {}
    crossings: dict[int, int] = {}
    last_flow: dict[int, int] = {}
    users: dict[int, list[Any]] = {}
    n_unfrozen = 0
    for fi, f in enumerate(flows):
        for unit in f.units:
            unit.rate = -1.0  # sentinel: not yet frozen
            n_unfrozen += 1
            for lid, w in unit.links:
                if lid in weight:
                    weight[lid] += w
                    count[lid] += 1
                    users[lid].append(unit)
                else:
                    weight[lid] = w
                    count[lid] = 1
                    users[lid] = [unit]
                # Count distinct *flows* per link (units of one flow
                # sharing its terminals are not contention).
                if last_flow.get(lid) != fi:
                    last_flow[lid] = fi
                    crossings[lid] = crossings.get(lid, 0) + 1
    link_ids = list(weight)
    residual = {lid: bw[lid] for lid in link_ids}

    base = 0.0
    while n_unfrozen:
        step = math.inf
        for lid in link_ids:
            wsum = weight[lid]
            if wsum > _W_EPS:
                t = residual[lid] / wsum
                if t < step:
                    step = t
        if step is math.inf:  # pragma: no cover - defensive
            break
        base += step
        bottleneck: list[int] = []
        for lid in link_ids:
            wsum = weight[lid]
            if wsum > _W_EPS:
                r = residual[lid] - wsum * step
                residual[lid] = r
                if r <= bw[lid] * _BOTTLENECK_RTOL:
                    bottleneck.append(lid)
        progressed = False
        for lid in bottleneck:
            for unit in users[lid]:
                if unit.rate < 0.0:
                    unit.rate = base
                    n_unfrozen -= 1
                    progressed = True
                    for l2, w2 in unit.links:
                        weight[l2] -= w2
                        count[l2] -= 1
                        if count[l2] == 0:
                            # Retire by user count, not float residue:
                            # unit-by-unit subtraction can leave ~1e-16
                            # on an emptied link, which would keep it
                            # "shared" with residual 0 and stall the
                            # fill at a premature base rate.
                            weight[l2] = 0.0
        if not progressed:  # pragma: no cover - defensive
            break
    for f in flows:
        rate = 0.0
        for unit in f.units:
            if unit.rate < 0.0:  # pragma: no cover - defensive
                unit.rate = base
            rate += unit.rate
        f.rate = rate

    # Saturation proxy: a link counts as saturated only while it is a
    # contended bottleneck — allocated to capacity with two or more
    # flows competing for it. A lone flow pinned at its own bottleneck
    # is healthy progress, not congestion (the packet model's buffers
    # never fill there either).
    for lid in sorted(residual):
        if crossings[lid] >= 2 and residual[lid] <= bw[lid] * SAT_RTOL:
            saturated.append(lid)
    return saturated


#: Adaptive-dispatch floor for the numpy path: measured break-even on
#: random instances is ~128 units (x86_64, numpy 2.x); below it the
#: scalar loop is strictly faster (up to 5x at typical grid sizes of
#: 4-30 units), so :func:`solve_vector` delegates small solves to
#: :func:`solve_scalar`. Delegated solves are *bit-identical* to the
#: reference by construction; the differential harness forces the numpy
#: path with ``min_units=0`` to test it at every size.
VECTOR_MIN_UNITS = 96


def solve_vector(
    flows: Sequence[Any],
    bw: Sequence[float],
    min_units: int = VECTOR_MIN_UNITS,
) -> list[int]:
    """Vectorized progressive filling over a CSR-like incidence.

    Same allocation as :func:`solve_scalar` up to floating-point
    accumulation order (see module docstring); per-round bottleneck
    detection and unit freezing run as numpy reductions. Instances
    below ``min_units`` total units dispatch to the scalar loop, which
    is faster there (see :data:`VECTOR_MIN_UNITS`).
    """
    saturated: list[int] = []
    if not flows:
        return saturated
    if min_units > 1:
        n = 0
        for f in flows:
            n += len(f.units)
            if n >= min_units:
                break
        if n < min_units:
            return solve_scalar(flows, bw)

    # --- assembly: units, compacted links, CSR incidence --------------
    units: list[Any] = []
    lid_of: dict[int, int] = {}  # global link id -> compact column
    glids: list[int] = []
    crossings: list[int] = []
    last_flow: list[int] = []
    cols: list[int] = []
    wvals: list[float] = []
    indptr: list[int] = [0]
    for fi, f in enumerate(flows):
        for unit in f.units:
            units.append(unit)
            for lid, w in unit.links:
                li = lid_of.get(lid)
                if li is None:
                    li = len(glids)
                    lid_of[lid] = li
                    glids.append(lid)
                    crossings.append(0)
                    last_flow.append(-1)
                cols.append(li)
                wvals.append(w)
                if last_flow[li] != fi:
                    last_flow[li] = fi
                    crossings[li] += 1
            indptr.append(len(cols))

    n_units = len(units)
    if n_units == 1:
        # Closed form, exact: one filling round, step = min(bw/w), and a
        # single flow can never make a link a *contended* bottleneck.
        unit = units[0]
        best = math.inf
        for lid, w in unit.links:
            if w > _W_EPS:
                t = bw[lid] / w
                if t < best:
                    best = t
        unit.rate = 0.0 if best is math.inf else best
        flows[0].rate = unit.rate
        return saturated

    n_links = len(glids)
    col = np.asarray(cols, dtype=np.intp)
    wgt = np.asarray(wvals, dtype=np.float64)
    ptr = np.asarray(indptr, dtype=np.intp)
    row_unit = np.repeat(np.arange(n_units, dtype=np.intp), np.diff(ptr))
    cap = np.asarray([bw[g] for g in glids], dtype=np.float64)

    weight = np.bincount(col, weights=wgt, minlength=n_links)
    count = np.bincount(col, minlength=n_links)
    residual = cap.copy()
    rates = np.full(n_units, -1.0)
    unfrozen = np.ones(n_units, dtype=bool)

    base = 0.0
    while unfrozen.any():
        shared = weight > _W_EPS
        if not shared.any():  # pragma: no cover - defensive
            break
        step = float(np.min(residual[shared] / weight[shared]))
        if not math.isfinite(step):  # pragma: no cover - defensive
            break
        base += step
        residual[shared] = residual[shared] - weight[shared] * step
        bottleneck = shared & (residual <= cap * _BOTTLENECK_RTOL)
        if not bottleneck.any():  # pragma: no cover - defensive
            break
        # A unit freezes when any of its links hit a bottleneck.
        hits = np.bitwise_or.reduceat(bottleneck[col], ptr[:-1])
        newly = unfrozen & hits
        if not newly.any():  # pragma: no cover - defensive
            break
        rates[newly] = base
        unfrozen &= ~newly
        sel = newly[row_unit]
        weight = weight - np.bincount(
            col[sel], weights=wgt[sel], minlength=n_links
        )
        count = count - np.bincount(col[sel], minlength=n_links)
        # Retire emptied links exactly (see the scalar loop's note on
        # float residue after cancellation).
        weight[count == 0] = 0.0

    for k, unit in enumerate(units):
        r = rates[k]
        unit.rate = base if r < 0.0 else float(r)
    for f in flows:
        rate = 0.0
        for unit in f.units:
            rate += unit.rate
        f.rate = rate

    for li in range(n_links):
        if crossings[li] >= 2 and residual[li] <= cap[li] * SAT_RTOL:
            saturated.append(glids[li])
    saturated.sort()
    return saturated


_SOLVERS = {"scalar": solve_scalar, "vector": solve_vector}


def get_solver(name: str) -> Any:
    """Resolve a solver name to its implementation."""
    try:
        return _SOLVERS[name]
    except KeyError:
        raise ValueError(
            f"unknown flow solver {name!r}; expected one of {SOLVER_NAMES}"
        ) from None
