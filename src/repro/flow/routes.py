"""Deterministic path/weight model for the flow-level backend.

The packet backend routes every packet individually: minimal routing
picks one of up to eight minimum-hop candidates uniformly at random,
and adaptive (UGAL-L) weighs sampled minimal against sampled Valiant
candidates per packet. The flow backend replaces the per-packet
machinery with per-*message* equivalents:

* ``min``: each (source node, destination node) pair maps to a fixed
  aggregate — weight ``1/n`` on each of the ``n`` minimal candidates —
  exactly the uniform random spread of
  :class:`~repro.routing.minimal.MinimalRouting`, in expectation. A
  message of ``S`` wire bytes deposits ``w * S`` bytes on every link of
  weight ``w``.
* ``adp``: per pair, a fixed *candidate set* (all minimal candidates
  plus a bounded deterministic Valiant set) is enumerated once; at each
  message injection the fabric scores the candidates with the packet
  model's own UGAL-L rule — unloaded traversal time plus the first
  link's backlog scaled by hop count, Valiant costs inflated by
  :attr:`FlowParams.nonminimal_weight` and offset by
  :attr:`FlowParams.minimal_bias_ns` — and the whole message follows
  the winner. The decision is per message instead of per packet (a
  documented fidelity limit, DESIGN.md S16), but it preserves what the
  study measures: detours are taken exactly when minimal paths look
  congested.

Everything here is static given the topology, so entries and candidate
sets are memoised per (src_node, dst_node) pair, mirroring
:mod:`repro.routing.tables`.
"""

from __future__ import annotations

import functools
import math
import os
from dataclasses import dataclass
from typing import Any, NamedTuple

import numpy as np

from repro.config import NetworkParams
from repro.routing.tables import route_tables
from repro.topology.dragonfly import Dragonfly

__all__ = [
    "BACKEND_NAMES",
    "FlowParams",
    "FlowEntry",
    "FlowCandidate",
    "FlowRouteModel",
    "flow_route_model",
]

#: Valid values of the ``backend`` knob threaded through the drivers.
BACKEND_NAMES = ("packet", "flow")

#: Injection-emulation bound: the UGAL spill pattern stabilises within
#: a few dozen packets (the participation set stops growing once every
#: attractive port carries backlog), so longer messages reuse the
#: pattern of their first ``SPILL_QUANTA`` packets.
SPILL_QUANTA = 64


@dataclass(frozen=True)
class FlowParams:
    """Tunables of the flow-level model (DESIGN.md S16)."""

    #: Rate-solve admission grid in simulated ns: flows injected while
    #: the network is mid-epoch are admitted (and rates re-solved) at
    #: the next multiple of this grid, coalescing bursts of injections
    #: into one bottleneck solve. ``0`` solves at every injection.
    epoch_ns: float = 500.0
    #: Minimal-route enumeration bound (mirrors ``MinimalRouting``).
    max_minimal: int = 8
    #: Bound on the deterministic Valiant candidate set (intermediate
    #: groups for inter-group pairs, intermediate routers for
    #: intra-group pairs).
    max_valiant_groups: int = 4
    #: UGAL minimal preference, mirroring
    #: :class:`~repro.routing.adaptive.AdaptiveRouting`: a Valiant
    #: candidate's cost is multiplied by ``nonminimal_weight`` and
    #: offset by ``minimal_bias_ns`` before comparison.
    minimal_bias_ns: float = 100.0
    nonminimal_weight: float = 2.0

    def __post_init__(self) -> None:
        if self.epoch_ns < 0:
            raise ValueError("epoch_ns must be non-negative")
        if self.max_minimal < 1:
            raise ValueError("max_minimal must be positive")
        if self.max_valiant_groups < 1:
            raise ValueError("max_valiant_groups must be positive")
        if self.minimal_bias_ns < 0:
            raise ValueError("minimal_bias_ns must be non-negative")
        if self.nonminimal_weight < 1.0:
            raise ValueError("nonminimal_weight must be >= 1")


class FlowEntry(NamedTuple):
    """Aggregated route of one (src_node, dst_node) flow."""

    #: ``(link id, weight)`` pairs, sorted by link id. Terminal links
    #: carry weight 1 (every byte crosses them); router-to-router links
    #: carry the summed weight of the candidate paths using them.
    links: tuple[tuple[int, float], ...]
    #: Weighted end-to-end hop latency in ns (includes router delay),
    #: charged between injection completion and delivery.
    latency_ns: float
    #: Weighted router-to-router hop count (the packet model's
    #: ``route_len - 2``), per packet.
    rr_hops: float
    #: Fraction of the flow's bytes on non-minimal paths.
    nonmin_fraction: float


class FlowCandidate(NamedTuple):
    """One scoreable adaptive route: its entry plus the raw path."""

    entry: FlowEntry
    #: Router-to-router link ids, in traversal order — what the UGAL
    #: cost rule walks (terminals are common to every candidate).
    rr_path: tuple[int, ...]


class FlowRouteModel:
    """Memoised (src_node, dst_node) -> route structures."""

    def __init__(
        self,
        topo: Dragonfly,
        net: NetworkParams,
        routing: str,
        params: FlowParams | None = None,
    ) -> None:
        if routing not in ("min", "adp"):
            raise ValueError(f"unknown routing policy {routing!r}")
        self.topo = topo
        self.net = net
        self.routing = routing
        self.params = params if params is not None else FlowParams()
        self.tables = route_tables(topo)
        bw, lat, _buf = topo.link_profiles(net)
        self.bw: list[float] = bw.tolist()
        #: Per-link hop latency including the router traversal delay,
        #: matching the packet fabric's ``lat`` table.
        self.lat: list[float] = (lat + net.router_delay_ns).tolist()
        self.packet_size = net.packet_size
        self._cache: dict[tuple[int, int], FlowEntry] = {}
        self._cand_cache: dict[
            tuple[int, int], tuple[FlowCandidate, ...]
        ] = {}
        #: (src, dst, size class) -> static UGAL scoring rows.
        self._scoring: dict[
            tuple[int, int, int],
            tuple[tuple[float, int, int, FlowEntry], ...],
        ] = {}
        #: Memoised spill patterns for load-free injections (by far the
        #: common case on lightly loaded fabrics).
        self._idle_spill: dict[
            tuple[int, int, int, int], tuple[FlowEntry, ...]
        ] = {}
        #: Restructured scoring rows for the fast spill path: parallel
        #: tuples plus a compacted first-link index (see `_fast_rows`).
        self._fast_scoring: dict[tuple[int, int, int], tuple] = {}
        #: ``id(entry)`` -> (entry, link-id column, weight column) as
        #: numpy arrays, for the array fabric's scatter ops. Keyed by
        #: identity (entries are interned in the memos above, which
        #: keeps the ids alive) because hashing a links tuple per lookup
        #: would cost more than the arrays save. Never persisted to the
        #: model cache — ids are process-local.
        self._entry_arrays: dict[int, tuple[FlowEntry, Any, Any, tuple]] = {}

    def entry_arrays(self, entry: FlowEntry) -> tuple[Any, Any, tuple]:
        """``(cols, wgts, lids)`` for an entry's link set.

        ``cols``/``wgts`` are parallel numpy arrays of the entry's link
        ids and weights (for vectorized fancy-index accumulation);
        ``lids`` is the plain link-id tuple (for crossing counts).
        Memoised per entry instance.
        """
        key = id(entry)
        hit = self._entry_arrays.get(key)
        if hit is None:
            links = entry.links
            n = len(links)
            cols = np.fromiter((l for l, _ in links), dtype=np.intp, count=n)
            wgts = np.fromiter(
                (w for _, w in links), dtype=np.float64, count=n
            )
            lids = tuple(l for l, _ in links)
            hit = (entry, cols, wgts, lids)
            self._entry_arrays[key] = hit
        return hit[1], hit[2], hit[3]

    def entry(self, src_node: int, dst_node: int) -> FlowEntry:
        """The minimal aggregate entry (uniform over candidates)."""
        key = (src_node, dst_node)
        hit = self._cache.get(key)
        if hit is not None:
            return hit
        built = self._build(src_node, dst_node)
        self._cache[key] = built
        return built

    def candidates(
        self, src_node: int, dst_node: int
    ) -> tuple[FlowCandidate, ...]:
        """Adaptive candidate set: minimal paths first, then Valiant."""
        key = (src_node, dst_node)
        hit = self._cand_cache.get(key)
        if hit is not None:
            return hit
        built = self._build_candidates(src_node, dst_node)
        self._cand_cache[key] = built
        return built

    def scoring(
        self, src_node: int, dst_node: int, cost_size: int
    ) -> tuple[tuple[float, int, int, FlowEntry], ...]:
        """Static UGAL-L scoring rows for the pair's candidate set.

        One ``(unloaded cost, first link, hop count, entry)`` row per
        candidate; same-router candidates (empty path) get a sentinel
        first link of ``-1`` and cost 0, mirroring the packet policy.
        """
        key = (src_node, dst_node, cost_size)
        hit = self._scoring.get(key)
        if hit is not None:
            return hit
        bw = self.bw
        lat = self.lat
        rows: list[tuple[float, int, int, FlowEntry]] = []
        for cand in self.candidates(src_node, dst_node):
            path = cand.rr_path
            if path:
                unl = 0.0
                for lid in path:
                    unl += cost_size / bw[lid] + lat[lid]
                rows.append((unl, path[0], len(path), cand.entry))
            else:
                rows.append((0.0, -1, 0, cand.entry))
        built = tuple(rows)
        self._scoring[key] = built
        return built

    def spill(
        self,
        src_node: int,
        dst_node: int,
        size: int,
        load: list[float] | None,
    ) -> tuple[FlowEntry, ...]:
        """Candidates the packet policy's UGAL-L rule would spread onto.

        The packet fabric decides a route *per packet* against the live
        first-hop backlog, and a message's own earlier packets are part
        of that backlog: the NIC feeds packets at terminal bandwidth
        while each router port drains slower, so a long message spills
        across minimal ports and — once those back up — onto Valiant
        detours. That self-spill, not cross-flow congestion, is where
        most of adaptive routing's multipath spread comes from.

        This method replays that loop in miniature: packet-sized quanta
        are routed greedily with the packet policy's cost rule
        (unloaded traversal time plus first-link backlog scaled by hop
        count; Valiant inflated by ``nonminimal_weight`` and offset by
        ``minimal_bias_ns``), charging each quantum to its winner's
        first hop and draining every backlog at link rate for the
        quantum's NIC serialisation time. ``load`` seeds the backlog
        with the fabric's pending-byte ledger (cross-flow congestion);
        load-free injections — the common case — hit a memo.
        """
        psize = self.packet_size
        cost_size = size if size < psize else psize
        quanta = -(-size // psize)
        if quanta > SPILL_QUANTA:
            quanta = SPILL_QUANTA
        static = self.scoring(src_node, dst_node, cost_size)
        if load is not None:
            for _unl, first, _hops, _entry in static:
                if first >= 0 and load[first] != 0.0:
                    return self._emulate(src_node, static, quanta, load)
        key = (src_node, dst_node, cost_size, quanta)
        hit = self._idle_spill.get(key)
        if hit is None:
            hit = self._emulate(src_node, static, quanta, None)
            self._idle_spill[key] = hit
        return hit

    def spill_fast(
        self,
        src_node: int,
        dst_node: int,
        size: int,
        load: Any,
    ) -> tuple[FlowEntry, ...]:
        """:meth:`spill` over restructured candidate arrays.

        Same decisions, same returned entries, bit-for-bit: the quantum
        loop runs over parallel tuples with the per-candidate costs and
        drain amounts hoisted (see :meth:`_emulate_fast`), instead of
        re-deriving them from the scoring rows and a backlog dict every
        quantum. ``load`` may be any indexable byte ledger (the array
        fabric passes a plain list). Shares the idle-spill memo with
        the reference path — both produce identical tuples, which the
        differential suite asserts.
        """
        psize = self.packet_size
        cost_size = size if size < psize else psize
        quanta = -(-size // psize)
        if quanta > SPILL_QUANTA:
            quanta = SPILL_QUANTA
        rows = self._fast_rows(src_node, dst_node, cost_size)
        if load is not None:
            for lid in rows[6]:
                if load[lid] != 0.0:
                    return self._emulate_fast(src_node, rows, quanta, load)
        key = (src_node, dst_node, cost_size, quanta)
        hit = self._idle_spill.get(key)
        if hit is None:
            hit = self._emulate_fast(src_node, rows, quanta, None)
            self._idle_spill[key] = hit
        return hit

    def _fast_rows(
        self, src_node: int, dst_node: int, cost_size: int
    ) -> tuple:
        """Parallel-array form of :meth:`scoring` for the fast path.

        Candidates keep their scan order; first links are compacted to
        dense backlog slots in first-candidate order — exactly the
        insertion order the reference emulation's backlog dict ends up
        with after its first quantum scan, so drain order matches.
        """
        key = (src_node, dst_node, cost_size)
        hit = self._fast_scoring.get(key)
        if hit is not None:
            return hit
        static = self.scoring(src_node, dst_node, cost_size)
        bw = self.bw
        unls: list[float] = []
        firsts: list[int] = []
        hopss: list[int] = []
        nonmins: list[bool] = []
        entries: list[FlowEntry] = []
        fidx: list[int] = []
        uniq: dict[int, int] = {}
        for unl, first, hops, entry in static:
            unls.append(unl)
            firsts.append(first)
            hopss.append(hops)
            nonmins.append(bool(entry.nonmin_fraction))
            entries.append(entry)
            fidx.append(uniq.setdefault(first, len(uniq)) if first >= 0 else -1)
        uniq_lids = tuple(uniq)
        built = (
            tuple(unls),
            tuple(firsts),
            tuple(hopss),
            tuple(nonmins),
            tuple(entries),
            tuple(fidx),
            uniq_lids,
            tuple(bw[l] for l in uniq_lids),
            np.fromiter(uniq, dtype=np.intp, count=len(uniq)),
        )
        self._fast_scoring[key] = built
        return built

    def _emulate_fast(
        self,
        src_node: int,
        rows: tuple,
        quanta: int,
        load: Any,
    ) -> tuple[FlowEntry, ...]:
        """The :meth:`_emulate` quantum loop over candidate arrays.

        Every floating-point operation and comparison is performed in
        the reference order on the reference values, so the spill set is
        *bit-identical* to :meth:`_emulate` — the differential suite
        asserts exact equality on randomized ledgers. The reference
        initialises backlogs lazily during the first quantum's scan
        (before any deposit or drain), so hoisting the initialisation
        reads exactly one value per compact slot, in slot order.
        """
        unls, firsts, hopss, nonmins, entries, fidx, uniq_lids, uniq_bw, _ = (
            rows
        )
        n = len(unls)
        if n == 0:
            return ()
        wfac = self.params.nonminimal_weight
        bias = self.params.minimal_bias_ns
        psize = self.packet_size
        drain_dt = psize / self.bw[self.topo.terminal_in(src_node)]
        drain_amt = [drain_dt * b for b in uniq_bw]
        nb = len(uniq_lids)
        if load is not None:
            b_val = [float(load[l]) for l in uniq_lids]
        else:
            b_val = [0.0] * nb
        took = [False] * n
        n_taken = 0
        slots = range(nb)
        cands = range(n)
        for _ in range(quanta):
            best = -1
            best_cost = math.inf
            for i in cands:
                j = fidx[i]
                if j < 0:
                    cost = 0.0
                else:
                    cost = unls[i] + b_val[j] / uniq_bw[j] * hopss[i]
                    if nonmins[i]:
                        cost = cost * wfac + bias
                if cost < best_cost:
                    best_cost = cost
                    best = i
            if not took[best]:
                took[best] = True
                n_taken += 1
                if n_taken == n:
                    break
            jb = fidx[best]
            if jb < 0:
                break  # same-router: nothing ever beats the empty path
            b_val[jb] += psize
            for j in slots:
                q = b_val[j] - drain_amt[j]
                b_val[j] = q if q > 0.0 else 0.0
        return tuple(entries[i] for i in cands if took[i])

    def _emulate(
        self,
        src_node: int,
        static: tuple[tuple[float, int, int, FlowEntry], ...],
        quanta: int,
        load: list[float] | None,
    ) -> tuple[FlowEntry, ...]:
        if not static:
            # An empty candidate set has nothing to spill onto; without
            # this guard the argmin sentinel (``best = -1``) would index
            # ``static[-1]`` — an IndexError on the empty tuple.
            return ()
        bw = self.bw
        wfac = self.params.nonminimal_weight
        bias = self.params.minimal_bias_ns
        psize = self.packet_size
        drain_dt = psize / bw[self.topo.terminal_in(src_node)]
        backlog: dict[int, float] = {}
        took = [False] * len(static)
        n_taken = 0
        for _ in range(quanta):
            best = -1
            best_cost = math.inf
            for i, (unl, first, hops, entry) in enumerate(static):
                if first < 0:
                    cost = 0.0
                else:
                    q = backlog.get(first)
                    if q is None:
                        q = load[first] if load is not None else 0.0
                        backlog[first] = q
                    cost = unl + q / bw[first] * hops
                    if entry.nonmin_fraction:
                        cost = cost * wfac + bias
                if cost < best_cost:
                    best_cost = cost
                    best = i
            if not took[best]:
                took[best] = True
                n_taken += 1
                if n_taken == len(static):
                    # Every candidate already participates: further
                    # quanta only churn the backlog and cannot change
                    # the returned spill set — stop exactly here.
                    break
            first = static[best][1]
            if first < 0:
                break  # same-router: nothing ever beats the empty path
            backlog[first] += psize
            for lid in backlog:
                q = backlog[lid] - drain_dt * bw[lid]
                backlog[lid] = q if q > 0.0 else 0.0
        return tuple(
            row[3] for taken, row in zip(took, static) if taken
        )

    # ------------------------------------------------------------------
    def _build(self, src_node: int, dst_node: int) -> FlowEntry:
        topo = self.topo
        lat = self.lat
        src_r = topo.router_of(src_node)
        dst_r = topo.router_of(dst_node)
        t_in = topo.terminal_in(src_node)
        t_out = topo.terminal_out(dst_node)

        latency = lat[t_in] + lat[t_out]
        rr_hops = 0.0
        minimal = self.tables.minimal(src_r, dst_r, self.params.max_minimal)
        w = 1.0 / len(minimal)
        for path in minimal:
            latency += w * sum(lat[lid] for lid in path)
            rr_hops += w * len(path)
        # Link aggregation as one bincount over the concatenated paths.
        # bincount accumulates each bin in input order, which is the
        # path-by-path order the historical dict loop used, so the
        # weights are bit-identical to unit-by-unit accumulation (the
        # route-model whitebox suite asserts this).
        rr_links: list[tuple[int, float]] = []
        n_lids = sum(len(path) for path in minimal)
        if n_lids:
            flat = np.fromiter(
                (lid for path in minimal for lid in path),
                dtype=np.intp,
                count=n_lids,
            )
            agg_w = np.bincount(flat, weights=np.full(n_lids, w))
            nz = np.nonzero(agg_w)[0]
            rr_links = list(zip(nz.tolist(), agg_w[nz].tolist()))
        return FlowEntry(
            links=tuple(sorted([(t_in, 1.0), (t_out, 1.0)] + rr_links)),
            latency_ns=latency,
            rr_hops=rr_hops,
            nonmin_fraction=0.0,
        )

    def _build_candidates(
        self, src_node: int, dst_node: int
    ) -> tuple[FlowCandidate, ...]:
        topo = self.topo
        src_r = topo.router_of(src_node)
        dst_r = topo.router_of(dst_node)
        t_in = topo.terminal_in(src_node)
        t_out = topo.terminal_out(dst_node)

        out: list[FlowCandidate] = []

        def add(path: tuple[int, ...], nonmin: bool) -> None:
            lat = self.lat
            latency = lat[t_in] + lat[t_out]
            for lid in path:
                latency += lat[lid]
            if len(set(path)) == len(path):
                # Candidate paths are simple (no repeated link), so the
                # per-link weight is exactly 1.0 — no accumulator dict.
                rr = [(lid, 1.0) for lid in path]
            else:  # pragma: no cover — defensive vs. exotic tables
                agg: dict[int, float] = {}
                for lid in path:
                    agg[lid] = agg.get(lid, 0.0) + 1.0
                rr = list(agg.items())
            entry = FlowEntry(
                links=tuple(sorted([(t_in, 1.0), (t_out, 1.0)] + rr)),
                latency_ns=latency,
                rr_hops=float(len(path)),
                nonmin_fraction=1.0 if nonmin else 0.0,
            )
            out.append(FlowCandidate(entry=entry, rr_path=path))

        minimal = self.tables.minimal(src_r, dst_r, self.params.max_minimal)
        for path in minimal:
            add(path, nonmin=False)
        # Like the packet policy, detours are only considered between
        # distinct routers (a same-router pair has nothing to detour
        # around).
        if src_r != dst_r:
            for path in self._valiant_paths(src_r, dst_r):
                add(path, nonmin=True)
        return tuple(out)

    def _valiant_paths(
        self, src_r: int, dst_r: int
    ) -> tuple[tuple[int, ...], ...]:
        """Bounded deterministic Valiant candidate set.

        The packet model draws a random intermediate per packet — an
        intermediate *group* for inter-group pairs, an intermediate
        *router* of the source group for intra-group pairs (mirroring
        :func:`~repro.routing.paths.valiant_route`). Here up to
        :attr:`FlowParams.max_valiant_groups` intermediates are chosen
        by an even stride over the candidates, with route variants
        picked by a (src, dst)-derived index — no RNG, so the set is a
        pure function of the endpoints.
        """
        topo = self.topo
        g1 = topo.group_of_router(src_r)
        g2 = topo.group_of_router(dst_r)
        if g1 == g2:
            return self._intra_valiant_paths(src_r, dst_r, g1)
        mids = [g for g in range(topo.params.groups) if g not in (g1, g2)]
        if not mids:
            return ()
        k = self.params.max_valiant_groups
        n_mid = min(k, len(mids))
        if n_mid == 1:
            chosen = [mids[(src_r + dst_r) % len(mids)]]
        else:
            stride = {
                round(i * (len(mids) - 1) / (n_mid - 1)) for i in range(n_mid)
            }
            chosen = [mids[i] for i in sorted(stride)]
        # Fill the path budget: when there are fewer mid groups than
        # ``k`` (small topologies), emit several head/leg/tail variants
        # per mid so the candidate set still has the packet model's
        # path diversity (its random draws spread over variants too).
        per_mid = max(1, k // len(chosen))
        tables = self.tables
        variant = src_r + dst_r
        seen: set[tuple[int, ...]] = set()
        paths: list[tuple[int, ...]] = []
        for mid in chosen:
            heads = tables.to_group(src_r, mid)
            for j in range(per_mid):
                head, entry1 = heads[(variant + j) % len(heads)]
                legs = tables.to_group(entry1, g2)
                leg, entry2 = legs[(variant + j // len(heads)) % len(legs)]
                tails = tables.intra(entry2, dst_r)
                tail = tails[(variant + j) % len(tails)]
                path = head + leg + tail
                if path not in seen:
                    seen.add(path)
                    paths.append(path)
        return tuple(paths)

    def _intra_valiant_paths(
        self, src_r: int, dst_r: int, group: int
    ) -> tuple[tuple[int, ...], ...]:
        """Detours through intermediate routers of the source group."""
        per_group = self.topo.params.routers_per_group
        base = group * per_group
        mids = [
            r
            for r in range(base, base + per_group)
            if r not in (src_r, dst_r)
        ]
        if not mids:
            return ()
        k = self.params.max_valiant_groups
        n_mid = min(k, len(mids))
        if n_mid == 1:
            chosen = [mids[(src_r + dst_r) % len(mids)]]
        else:
            stride = {
                round(i * (len(mids) - 1) / (n_mid - 1)) for i in range(n_mid)
            }
            chosen = [mids[i] for i in sorted(stride)]
        per_mid = max(1, k // len(chosen))
        tables = self.tables
        variant = src_r + dst_r
        seen: set[tuple[int, ...]] = set()
        paths: list[tuple[int, ...]] = []
        for mid in chosen:
            heads = tables.intra(src_r, mid)
            for j in range(per_mid):
                head = heads[(variant + j) % len(heads)]
                tails = tables.intra(mid, dst_r)
                tail = tails[(variant + j // len(heads)) % len(tails)]
                path = head + tail
                if path not in seen:
                    seen.add(path)
                    paths.append(path)
        return tuple(paths)


def flow_route_model(
    topo: Dragonfly,
    net: NetworkParams,
    routing: str,
    params: FlowParams | None = None,
) -> FlowRouteModel:
    """Shared, memoised route model.

    A :class:`FlowRouteModel` is a pure function of its arguments and
    append-only after construction, so fabrics of different cells can
    share one instance — the entry/candidate/spill memos then warm up
    once per (topology, network, routing, params) instead of once per
    run. Memo warmth never changes results, only speed.

    When the ``REPRO_FLOW_MODEL_CACHE`` knob points at a directory, a
    newly constructed model is prewarmed from disk (see
    :mod:`repro.flow.modelcache`) — cross-process reuse of the same
    derived state the in-process lru shares within one process.
    """
    key = params if params is not None else FlowParams()
    return _shared_model(topo, net, routing, key)


@functools.lru_cache(maxsize=16)
def _shared_model(
    topo: Dragonfly,
    net: NetworkParams,
    routing: str,
    params: FlowParams,
) -> FlowRouteModel:
    model = FlowRouteModel(topo, net, routing, params)
    if os.environ.get("REPRO_FLOW_MODEL_CACHE"):
        from repro.flow import modelcache

        modelcache.load_into(model)
    return model
