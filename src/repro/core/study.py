"""The Section IV-A application study: placement x routing grid."""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.config import SimulationConfig
from repro.core.runner import RunResult
from repro.exec.plan import plan_grid
from repro.exec.pool import ExecutionReport, execute_plan
from repro.metrics.analysis import BoxStats, box_stats, cdf, percent_improvement
from repro.mpi.trace import JobTrace
from repro.placement.policies import PLACEMENT_NAMES
from repro.routing import ROUTING_NAMES

__all__ = ["TradeoffStudy", "StudyResult"]


class TradeoffStudy:
    """Runs each application alone under every placement/routing combo.

    The paper's Table I grid: 5 placements x 2 routings = 10
    configurations per application. Each application is simulated
    independently "to eliminate interference from multiple jobs sharing
    the network"; pass ``background`` to instead reproduce the Section
    IV-C interference experiments.
    """

    def __init__(
        self,
        config: SimulationConfig,
        traces: Mapping[str, JobTrace] | Iterable[JobTrace],
        placements: tuple[str, ...] = PLACEMENT_NAMES,
        routings: tuple[str, ...] = ROUTING_NAMES,
        seed: int = 0,
        compute_scale: float = 0.0,
        background=None,
        record_sends: bool = False,
        obs=None,
        scheduler: str = "heap",
        faults=None,
        backend: str = "packet",
    ) -> None:
        if not isinstance(traces, Mapping):
            traces = {t.name: t for t in traces}
        if not traces:
            raise ValueError("need at least one application trace")
        self.config = config
        self.traces = dict(traces)
        self.placements = tuple(placements)
        self.routings = tuple(routings)
        self.seed = seed
        self.compute_scale = compute_scale
        self.background = background
        self.record_sends = record_sends
        self.obs = obs
        self.scheduler = scheduler
        self.faults = faults
        self.backend = backend

    def plan(self):
        """The study as a flat :class:`~repro.exec.plan.ExperimentPlan`."""
        return plan_grid(
            self.config,
            self.traces,
            self.placements,
            self.routings,
            seed=self.seed,
            compute_scale=self.compute_scale,
            background=self.background,
            record_sends=self.record_sends,
            obs=self.obs,
            scheduler=self.scheduler,
            faults=self.faults,
            backend=self.backend,
        )

    def run(
        self,
        verbose: bool = False,
        max_workers: int = 1,
        cache_dir=None,
        progress=None,
        timeout_s: float | None = None,
        retries: int = 1,
        flow_batch: int = 0,
    ) -> "StudyResult":
        """Execute the full grid and collect results.

        The grid is planned through :mod:`repro.exec`: ``max_workers=1``
        (default) runs serially in-process exactly as before, larger
        values shard cells across a process pool; either way results
        come back in the same deterministic grid order. ``cache_dir``
        enables the disk result cache so a re-run only simulates
        changed cells; ``progress`` receives
        :class:`~repro.exec.progress.ProgressEvent` telemetry.
        ``flow_batch > 1`` batches flow-backend cells that many at a
        time per executor task (results unchanged; packet cells are
        unaffected).
        """
        plan = self.plan()
        report = execute_plan(
            plan,
            max_workers=max_workers,
            cache=cache_dir,
            progress=progress,
            timeout_s=timeout_s,
            retries=retries,
            ipc_send_events=self.record_sends,
            strict=True,
            flow_batch=flow_batch,
        )
        runs: dict[tuple[str, str, str], RunResult] = {}
        for spec, outcome in zip(plan.specs, report.outcomes):
            result = outcome.result
            runs[(spec.app, spec.placement, spec.routing)] = result
            if verbose:
                m = result.metrics
                print(
                    f"{spec.app:>4} {result.label:<9} "
                    f"median={m.median_comm_time_ns / 1e6:8.3f} ms "
                    f"max={m.max_comm_time_ns / 1e6:8.3f} ms "
                    f"hops={m.mean_hops:4.2f}"
                )
        return StudyResult(
            runs,
            tuple(self.traces),
            self.placements,
            self.routings,
            report=report,
        )


class StudyResult:
    """Results of a grid study, with figure-oriented accessors."""

    def __init__(
        self,
        runs: dict[tuple[str, str, str], RunResult],
        apps: tuple[str, ...],
        placements: tuple[str, ...],
        routings: tuple[str, ...],
        report: ExecutionReport | None = None,
    ) -> None:
        self.runs = runs
        self.apps = apps
        self.placements = placements
        self.routings = routings
        #: Execution telemetry (cached/simulated counts, wall time);
        #: ``None`` for results assembled outside ``TradeoffStudy.run``.
        self.report = report

    def labels(self) -> list[str]:
        """Configuration labels in the paper's order (min block first)."""
        return [
            f"{p}-{r}" for r in self.routings for p in self.placements
        ]

    def get(self, app: str, label: str) -> RunResult:
        placement, routing = label.rsplit("-", 1)
        return self.runs[(app, placement, routing)]

    # Figure 3 ----------------------------------------------------------
    def comm_time_boxes(self, app: str) -> dict[str, BoxStats]:
        """Per-config five-number summaries of rank comm times (ms)."""
        return {
            label: box_stats(self.get(app, label).metrics.comm_time_ns / 1e6)
            for label in self.labels()
        }

    # Figures 4-6 -------------------------------------------------------
    def hops_cdf(self, app: str) -> dict[str, tuple]:
        """Per-config CDF of per-rank average hops (Figure 4a)."""
        return {
            label: cdf(self.get(app, label).metrics.avg_hops)
            for label in self.labels()
        }

    def traffic_cdf(self, app: str, channel: str = "local") -> dict[str, tuple]:
        """Per-config CDF of channel traffic in MB (Figures 4b/5a/5c/...)."""
        out = {}
        for label in self.labels():
            m = self.get(app, label).metrics
            data = (
                m.local_traffic_bytes if channel == "local" else m.global_traffic_bytes
            )
            out[label] = cdf(data / 1e6)
        return out

    def saturation_cdf(self, app: str, channel: str = "local") -> dict[str, tuple]:
        """Per-config CDF of link saturation time in ms."""
        out = {}
        for label in self.labels():
            m = self.get(app, label).metrics
            data = m.local_sat_ns if channel == "local" else m.global_sat_ns
            out[label] = cdf(data / 1e6)
        return out

    # headline comparisons ---------------------------------------------
    def best_label(self, app: str, stat: str = "median") -> str:
        """Configuration with the lowest communication time."""
        return min(self.labels(), key=lambda lb: self._stat(app, lb, stat))

    def improvement_pct(
        self, app: str, better: str, worse: str, stat: str = "median"
    ) -> float:
        """Paper-style 'X% improvement of <better> over <worse>'."""
        return percent_improvement(
            self._stat(app, worse, stat), self._stat(app, better, stat)
        )

    def _stat(self, app: str, label: str, stat: str) -> float:
        m = self.get(app, label).metrics
        if stat == "median":
            return m.median_comm_time_ns
        if stat == "max":
            return m.max_comm_time_ns
        if stat == "mean":
            return float(m.comm_time_ns.mean())
        raise ValueError(f"unknown stat {stat!r}")
