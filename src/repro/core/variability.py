"""Run-to-run variability: the paper's motivating phenomenon, measured.

The introduction motivates the whole study with Theta's measured
run-to-run variability ("frequently 15% or greater and can be up to
100%"). This module quantifies the same phenomenon inside the
simulator: repeat a configuration across seeds (different random
placements / routing choices / background phases) and report the spread
of the application's communication time. Section IV-C's headline —
*localized communication reduces performance variation under external
interference* — becomes a measurable number here.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import SimulationConfig
from repro.core.runner import run_single
from repro.mpi.trace import JobTrace

__all__ = ["VariabilityResult", "variability_study"]


@dataclass
class VariabilityResult:
    """Spread of median comm time across seeds, per configuration."""

    app: str
    seeds: tuple[int, ...]
    #: label -> array of median comm times (ns), one per seed.
    samples: dict[str, np.ndarray]

    def cv(self, label: str) -> float:
        """Coefficient of variation (std/mean) — the variability metric."""
        s = self.samples[label]
        return float(s.std() / s.mean()) if s.mean() else 0.0

    def spread_pct(self, label: str) -> float:
        """Max-over-min spread in percent (the paper's 'up to X%')."""
        s = self.samples[label]
        return float(100.0 * (s.max() - s.min()) / s.min())

    def to_text(self) -> str:
        lines = [
            f"run-to-run variability of {self.app} over seeds {list(self.seeds)}",
            f"{'config':<10} {'mean ms':>9} {'cv':>7} {'spread':>8}",
        ]
        for label, s in self.samples.items():
            lines.append(
                f"{label:<10} {s.mean() / 1e6:>9.4f} {self.cv(label):>7.3f} "
                f"{self.spread_pct(label):>7.1f}%"
            )
        return "\n".join(lines)


def variability_study(
    config: SimulationConfig,
    trace: JobTrace,
    configs: tuple[tuple[str, str], ...] = (("cont", "min"), ("rand", "adp")),
    seeds: tuple[int, ...] = (0, 1, 2, 3, 4),
    background=None,
    compute_scale: float = 0.0,
) -> VariabilityResult:
    """Repeat each configuration across seeds and collect the spread.

    With a ``background`` spec this reproduces the Section IV-C claim
    quantitatively: compare ``cv("cont-min")`` against ``cv("rand-adp")``
    under bursty background traffic.
    """
    if len(seeds) < 2:
        raise ValueError("variability needs at least two seeds")
    samples: dict[str, list[float]] = {f"{p}-{r}": [] for p, r in configs}
    for seed in seeds:
        for placement, routing in configs:
            result = run_single(
                config,
                trace,
                placement,
                routing,
                seed=seed,
                background=background,
                compute_scale=compute_scale,
            )
            samples[f"{placement}-{routing}"].append(
                result.metrics.median_comm_time_ns
            )
    return VariabilityResult(
        trace.name,
        tuple(seeds),
        {k: np.asarray(v) for k, v in samples.items()},
    )
