"""Placement/routing advisor: the paper's findings as an algorithm.

The paper's conclusion distils the trade-off into actionable guidance:

* applications with **low message load or low exchange frequency**
  (AMG-like) benefit from *localized communication* — contiguous
  placement cuts hops, and there is no congestion to avoid;
* applications with **high message load or high exchange frequency**
  (CR/FB-like) benefit from *balanced network traffic* — random-node
  placement relieves local links;
* applications with **steady loads** favour minimal routing (no hot
  spots worth detouring around), **fluctuating/hot-spotted loads**
  favour adaptive routing;
* on a **shared machine with bursty external traffic**, localized
  configurations (contiguous + minimal) minimise performance
  *variation*, whatever the app prefers in isolation.

:func:`characterize` measures the relevant trace properties (per-rank
load, exchange frequency, temporal fluctuation, partner spread);
:func:`recommend` turns them — plus the machine's capacity and the
expected interference level — into a configuration choice with a
human-readable rationale. This operationalises the "hybrid job
placement methodology based on the application's communication
intensity" that the authors proposed in their prior work [15] and list
as future work here.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import SimulationConfig
from repro.mpi.ops import Barrier, Compute, Isend, Send, WaitAll
from repro.mpi.trace import JobTrace

__all__ = ["TraceProfile", "Recommendation", "characterize", "recommend"]


@dataclass(frozen=True)
class TraceProfile:
    """Communication characteristics that drive the trade-off."""

    num_ranks: int
    bytes_per_rank: float
    messages_per_rank: float
    mean_message_bytes: float
    #: Coefficient of variation of per-iteration load (0 = steady).
    load_fluctuation: float
    #: Mean distinct communication partners per rank.
    partners_per_rank: float
    #: Fraction of traffic to the 6 nearest rank-space neighbours.
    neighborhood_share: float
    #: Communication phases per rank (waitall/barrier-delimited).
    phases_per_rank: float
    #: Trace-recorded compute time per rank (the gaps between surges —
    #: what makes an app a "low-frequency" communicator).
    compute_ns_per_rank: float

    @property
    def bytes_per_phase(self) -> float:
        """Per-rank load of one communication phase — the intensity the
        network actually sees at an instant."""
        if self.phases_per_rank == 0:
            return self.bytes_per_rank
        return self.bytes_per_rank / self.phases_per_rank


def characterize(trace: JobTrace) -> TraceProfile:
    """Measure the trade-off-relevant properties of a job trace."""
    n = trace.num_ranks
    mat = trace.communication_matrix()
    total = float(mat.sum())
    partners = float((mat > 0).sum(axis=1).mean())

    near = 0.0
    if total > 0:
        # Offsets are bounded by the rank count: on tiny traces (n <= 3)
        # a fixed distance-3 window would index out of bounds, and the
        # wrap-around term would double-count the diagonal band.
        for d in (1, 2, 3):
            if d >= n:
                break
            near += float(np.trace(mat, offset=d) + np.trace(mat, offset=-d))
            # Periodic wrap-around neighbours.
            near += float(
                mat[np.arange(d), np.arange(d) - d].sum()
                + mat[np.arange(d) - d, np.arange(d)].sum()
            )
    neighborhood_share = near / total if total else 0.0

    messages = trace.num_messages()
    phases = 0
    compute_ns = 0.0
    for op in trace.ranks[0].ops:
        if isinstance(op, (WaitAll, Barrier)):
            phases += 1
        elif isinstance(op, Compute):
            compute_ns += op.duration_ns

    profile = trace.meta.get("phase_profile")
    if profile:
        # Group sub-phases into iterations ("iter0/...", "step3/...") so
        # CR's neighbourhood-vs-stage structure does not read as
        # temporal fluctuation — the paper's "steady vs fluctuating"
        # distinction is across iterations.
        by_iter: dict[str, float] = {}
        for label, load in profile:
            key = label.split("/")[0]
            by_iter[key] = by_iter.get(key, 0.0) + load
        loads = np.asarray(list(by_iter.values()), dtype=float)
        fluctuation = float(loads.std() / loads.mean()) if loads.mean() else 0.0
    else:
        sizes = np.asarray(
            [
                op.size
                for rt in trace.ranks
                for op in rt.ops
                if isinstance(op, (Send, Isend))
            ],
            dtype=float,
        )
        fluctuation = (
            float(sizes.std() / sizes.mean()) if sizes.size and sizes.mean() else 0.0
        )

    return TraceProfile(
        num_ranks=n,
        bytes_per_rank=total / n,
        messages_per_rank=messages / n,
        mean_message_bytes=total / messages if messages else 0.0,
        load_fluctuation=fluctuation,
        partners_per_rank=partners,
        neighborhood_share=neighborhood_share,
        phases_per_rank=float(phases),
        compute_ns_per_rank=compute_ns,
    )


@dataclass(frozen=True)
class Recommendation:
    """Configuration advice plus the reasoning behind it."""

    placement: str
    routing: str
    profile: TraceProfile
    intensity: float
    rationale: tuple[str, ...]

    @property
    def label(self) -> str:
        return f"{self.placement}-{self.routing}"


def recommend(
    trace: JobTrace,
    config: SimulationConfig,
    shared_network: bool = False,
    bursty_neighbors: bool = False,
) -> Recommendation:
    """Pick a placement/routing configuration for a job.

    ``intensity`` is the job's offered per-rank *rate* — total bytes
    divided by the trace's natural duration (its recorded compute time
    plus a 1 ms floor) — relative to a local link's bandwidth. It is
    machine-relative, so the same trace can be "light" on a fast
    machine and "heavy" on a slow one (the paper's §IV-B message-scale
    axis), and it is rate-based, so AMG's long inter-surge gaps
    correctly make it a low-frequency communicator even though each
    surge is dense.

    ``shared_network``/``bursty_neighbors`` encode §IV-C: when external
    interference is expected, localized configurations buy *stability*
    even for apps that would prefer balance in isolation.
    """
    profile = characterize(trace)
    rationale: list[str] = []

    # Offered rate (bytes/ns) over a local link's bandwidth (bytes/ns).
    duration_ns = 1e6 + profile.compute_ns_per_rank
    intensity = (profile.bytes_per_rank / duration_ns) / config.network.local_bw

    if bursty_neighbors and shared_network:
        rationale.append(
            "bursty external traffic expected: contiguous placement and "
            "minimal routing create an isolated region and minimise "
            "run-to-run variation (paper §IV-C)"
        )
        return Recommendation("cont", "min", profile, intensity, tuple(rationale))

    heavy = intensity > 0.03
    if heavy:
        placement = "rand"
        rationale.append(
            f"communication-intensive (offered rate {intensity:.3f}x of "
            "a local link): balance traffic with random-node placement "
            "(paper: CR/FB gain up to 8%/24.4%)"
        )
    else:
        placement = "cont"
        rationale.append(
            f"light communication (offered rate {intensity:.3f}x of a "
            "local link): localize with contiguous placement to cut "
            "hops (paper: AMG gains 2.3%)"
        )

    if shared_network and not heavy:
        rationale.append(
            "shared network with a light app: keep minimal routing so "
            "background traffic cannot detour through this job's "
            "routers (paper Fig 8)"
        )
        return Recommendation(placement, "min", profile, intensity, tuple(rationale))

    steady = profile.load_fluctuation < 0.5
    if heavy and not steady:
        routing = "adp"
        rationale.append(
            f"fluctuating load (cv={profile.load_fluctuation:.2f}): "
            "adaptive routing dodges transient hot spots (paper: FB "
            "prefers rand-adp at every load)"
        )
    elif heavy and steady:
        routing = "min"
        rationale.append(
            f"steady load (cv={profile.load_fluctuation:.2f}): minimal "
            "routing avoids paying extra hops for congestion that is "
            "already balanced (paper: CR prefers rand-min)"
        )
    else:
        routing = "adp"
        rationale.append(
            "localized placement concentrates traffic on few local "
            "links; adaptive routing relieves them (paper: AMG's best "
            "is cont-adp)"
        )
    return Recommendation(placement, routing, profile, intensity, tuple(rationale))
