"""The Section IV-C external-traffic study.

A synthetic job occupies every node the target application does not use
and repeatedly issues messages (uniform random or bursty pattern). The
study reruns the placement x routing grid under that background and
reports the target application's communication time and the channel
traffic of its routers (Figures 8-10); ``background_load_table``
reproduces Table II's peak background loads.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.synthetic import BurstyTraffic, UniformRandomTraffic
from repro.config import SimulationConfig
from repro.core.study import StudyResult, TradeoffStudy
from repro.mpi.trace import JobTrace
from repro.placement.policies import PLACEMENT_NAMES
from repro.routing import ROUTING_NAMES

__all__ = ["BackgroundSpec", "interference_study", "background_load_table"]


@dataclass(frozen=True)
class BackgroundSpec:
    """Parameters of the synthetic background job.

    ``pattern`` is ``"uniform"`` (each node sends one ``message_bytes``
    message to a random peer every ``interval_ns``) or ``"bursty"``
    (each node sends to ``fanout`` peers at once every ``interval_ns``;
    ``fanout=None`` means all other background nodes, the paper's
    "huge messages to all other nodes").
    """

    pattern: str
    message_bytes: int
    interval_ns: float
    fanout: int | None = None
    start_ns: float = 0.0

    def __post_init__(self) -> None:
        if self.pattern not in ("uniform", "bursty"):
            raise ValueError(f"unknown background pattern {self.pattern!r}")
        if self.message_bytes < 1:
            raise ValueError("message_bytes must be positive")
        if self.interval_ns <= 0:
            raise ValueError("interval_ns must be positive")

    def build(self, nodes: list[int], seed: int = 0):
        """Instantiate the injector for the given background nodes."""
        if self.pattern == "uniform":
            return UniformRandomTraffic(
                nodes,
                self.message_bytes,
                self.interval_ns,
                seed=seed,
                start_ns=self.start_ns,
            )
        return BurstyTraffic(
            nodes,
            self.message_bytes,
            self.interval_ns,
            fanout=self.fanout,
            seed=seed,
            start_ns=self.start_ns,
        )

    def peak_load_bytes(self, num_bg_nodes: int) -> int:
        """Table II: total message load issued per interval."""
        if self.pattern == "uniform":
            return num_bg_nodes * self.message_bytes
        fanout = self.fanout if self.fanout is not None else num_bg_nodes - 1
        fanout = min(fanout, num_bg_nodes - 1)
        return num_bg_nodes * fanout * self.message_bytes


def interference_study(
    config: SimulationConfig,
    trace: JobTrace,
    background: BackgroundSpec,
    placements: tuple[str, ...] = PLACEMENT_NAMES,
    routings: tuple[str, ...] = ROUTING_NAMES,
    seed: int = 0,
    compute_scale: float = 0.0,
    max_workers: int = 1,
    cache_dir=None,
    progress=None,
    obs=None,
    scheduler: str = "heap",
    faults=None,
    backend: str = "packet",
    flow_batch: int = 0,
) -> StudyResult:
    """Run the placement x routing grid with background traffic.

    ``max_workers``/``cache_dir``/``progress`` are forwarded to
    :meth:`TradeoffStudy.run` (and on to :mod:`repro.exec`); ``obs``
    enables per-cell time-resolved telemetry on each ``RunResult``.
    """
    study = TradeoffStudy(
        config,
        {trace.name: trace},
        placements=placements,
        routings=routings,
        seed=seed,
        compute_scale=compute_scale,
        background=background,
        obs=obs,
        scheduler=scheduler,
        faults=faults,
        backend=backend,
    )
    return study.run(
        max_workers=max_workers, cache_dir=cache_dir, progress=progress,
        flow_batch=flow_batch,
    )


def background_load_table(
    specs: dict[str, dict[str, BackgroundSpec]],
    num_bg_nodes: dict[str, int],
) -> list[tuple[str, float, float]]:
    """Table II rows: (application, uniform load MB, bursty load GB).

    ``specs[app]`` maps pattern name -> spec; ``num_bg_nodes[app]`` is
    the background job size when that application is the target.
    """
    rows = []
    for app, by_pattern in specs.items():
        n = num_bg_nodes[app]
        uniform_mb = by_pattern["uniform"].peak_load_bytes(n) / 1e6
        bursty_gb = by_pattern["bursty"].peak_load_bytes(n) / 1e9
        rows.append((app, uniform_mb, bursty_gb))
    return rows
