"""The paper's contribution: the three-step trade-off analysis.

* :func:`run_single` / :class:`RunResult` — one (application, placement,
  routing) simulation with full metrics;
* :class:`TradeoffStudy` — the Section IV-A application study over the
  placement x routing grid (Figures 3-6);
* :func:`sensitivity_sweep` — the Section IV-B communication-intensity
  sweep (Figure 7);
* :func:`interference_study` + :class:`BackgroundSpec` — the Section
  IV-C external-traffic study (Table II, Figures 8-10);
* :mod:`repro.core.report` — paper-style text rendering (Table I,
  finding extraction).
"""

from repro.core.runner import RunResult, run_single, build_topology
from repro.core.study import StudyResult, TradeoffStudy
from repro.core.sensitivity import SensitivityResult, sensitivity_sweep
from repro.core.interference import (
    BackgroundSpec,
    background_load_table,
    interference_study,
)
from repro.core.report import (
    config_label,
    key_findings,
    nomenclature_table,
    format_box_table,
)
from repro.core.advisor import (
    Recommendation,
    TraceProfile,
    characterize,
    recommend,
)
from repro.core.cluster import ClusterResult, JobSpec, run_cluster
from repro.core.resilience import ResilienceResult, resilience_study
from repro.core.variability import VariabilityResult, variability_study

__all__ = [
    "RunResult",
    "run_single",
    "build_topology",
    "StudyResult",
    "TradeoffStudy",
    "SensitivityResult",
    "sensitivity_sweep",
    "BackgroundSpec",
    "background_load_table",
    "interference_study",
    "config_label",
    "key_findings",
    "nomenclature_table",
    "format_box_table",
    "Recommendation",
    "TraceProfile",
    "characterize",
    "recommend",
    "ClusterResult",
    "JobSpec",
    "run_cluster",
    "ResilienceResult",
    "resilience_study",
    "VariabilityResult",
    "variability_study",
]
