"""Resilience study: the trade-off grid swept over failure rates.

The paper's placement x routing grid assumes a healthy fabric; this
harness asks how the trade-off shifts when channels fail. For each
failure rate in the sweep a seeded :class:`~repro.faults.FaultPlan` is
drawn (one plan per rate — every grid cell at that rate sees the *same*
degraded machine, so differences between cells are attributable to
placement/routing, not to fault sampling noise) and the full grid is
re-run. Results are reported as per-cell *degradation*: the percentage
increase of communication time over the healthy (rate 0) grid.

Adaptive routing is expected to absorb faults better than minimal —
its cost comparison steers around the survivors' congestion — which is
exactly the kind of claim this harness quantifies.
"""

from __future__ import annotations

import json
from typing import Mapping, Sequence

from repro.config import SimulationConfig
from repro.core.study import StudyResult, TradeoffStudy
from repro.mpi.trace import JobTrace
from repro.placement.policies import PLACEMENT_NAMES
from repro.routing import ROUTING_NAMES

__all__ = ["ResilienceResult", "resilience_study"]


class ResilienceResult:
    """Per-rate study results plus degradation accessors."""

    def __init__(
        self,
        rates: tuple[float, ...],
        studies: dict[float, StudyResult],
        plans: dict[float, object],
        fault_seed: int,
    ) -> None:
        self.rates = rates
        #: rate -> :class:`~repro.core.study.StudyResult`.
        self.studies = studies
        #: rate -> the :class:`~repro.faults.FaultPlan` used (rate 0
        #: maps to ``None``).
        self.plans = plans
        self.fault_seed = fault_seed

    @property
    def healthy(self) -> StudyResult:
        return self.studies[self.rates[0]]

    def labels(self) -> list[str]:
        return self.healthy.labels()

    def apps(self) -> tuple[str, ...]:
        return self.healthy.apps

    def comm_time_ns(
        self, app: str, label: str, rate: float, stat: str = "median"
    ) -> float:
        return self.studies[rate]._stat(app, label, stat)

    def degradation_pct(
        self, app: str, label: str, rate: float, stat: str = "median"
    ) -> float:
        """Communication-time increase over the healthy grid, in %."""
        healthy = self.comm_time_ns(app, label, self.rates[0], stat)
        faulted = self.comm_time_ns(app, label, rate, stat)
        return 100.0 * (faulted - healthy) / healthy

    def policy_degradation(
        self, app: str, rate: float, stat: str = "median"
    ) -> dict[str, float]:
        """Mean degradation per routing policy, averaged over placements.

        The headline comparison: how much worse each routing policy
        fares at this failure rate, placement-averaged so one pathological
        placement cannot dominate.
        """
        healthy = self.healthy
        out: dict[str, float] = {}
        for routing in healthy.routings:
            vals = [
                self.degradation_pct(app, f"{p}-{routing}", rate, stat)
                for p in healthy.placements
            ]
            out[routing] = sum(vals) / len(vals)
        return out

    def to_json(self) -> dict:
        """Export-ready summary (used by the CLI's ``--out``)."""
        healthy = self.healthy
        cells = []
        for app in healthy.apps:
            for label in healthy.labels():
                for rate in self.rates:
                    cells.append(
                        {
                            "app": app,
                            "label": label,
                            "rate": rate,
                            "median_comm_ns": self.comm_time_ns(
                                app, label, rate
                            ),
                            "degradation_pct": self.degradation_pct(
                                app, label, rate
                            ),
                        }
                    )
        plans = {
            f"{rate:g}": (plan.digest if plan is not None else None)
            for rate, plan in self.plans.items()
        }
        return {
            "schema": "repro-resilience/v1",
            "fault_seed": self.fault_seed,
            "rates": list(self.rates),
            "fault_plan_digests": plans,
            "cells": cells,
        }

    def save_json(self, path) -> None:
        with open(path, "w") as fh:
            json.dump(self.to_json(), fh, indent=2, sort_keys=True)
            fh.write("\n")


def resilience_study(
    config: SimulationConfig,
    traces: Mapping[str, JobTrace],
    rates: Sequence[float],
    placements: tuple[str, ...] = PLACEMENT_NAMES,
    routings: tuple[str, ...] = ROUTING_NAMES,
    seed: int = 0,
    fault_seed: int = 0,
    router_rate: float = 0.0,
    degraded_fraction: float = 0.0,
    compute_scale: float = 0.0,
    max_workers: int = 1,
    cache_dir=None,
    progress=None,
    obs=None,
    scheduler: str = "heap",
    backend: str = "packet",
    flow_batch: int = 0,
) -> ResilienceResult:
    """Sweep failure rate over the placement x routing grid.

    ``rates`` is the per-channel failure-probability grid; a healthy
    baseline (rate 0) is always included (and deduplicated if already
    present) because degradation is measured against it. One fault plan
    is drawn per non-zero rate from ``fault_seed`` — every cell at that
    rate shares it. Execution options are forwarded to
    :meth:`TradeoffStudy.run` per rate.
    """
    from repro.core.runner import build_topology
    from repro.faults import random_fault_plan

    swept = [float(r) for r in rates]
    if any(r < 0.0 or r > 1.0 for r in swept):
        raise ValueError("failure rates must be in [0, 1]")
    all_rates = [0.0] + sorted(r for r in set(swept) if r > 0.0)

    topo = build_topology(config.topology)
    studies: dict[float, StudyResult] = {}
    plans: dict[float, object] = {}
    for rate in all_rates:
        plan = None
        if rate > 0.0:
            plan = random_fault_plan(
                topo,
                rate,
                seed=fault_seed,
                router_rate=router_rate,
                degraded_fraction=degraded_fraction,
            )
        plans[rate] = plan
        studies[rate] = TradeoffStudy(
            config,
            traces,
            placements=placements,
            routings=routings,
            seed=seed,
            compute_scale=compute_scale,
            obs=obs,
            scheduler=scheduler,
            faults=plan,
            backend=backend,
        ).run(
            max_workers=max_workers, cache_dir=cache_dir, progress=progress,
            flow_batch=flow_batch,
        )
    return ResilienceResult(
        tuple(all_rates), studies, plans, fault_seed=fault_seed
    )
