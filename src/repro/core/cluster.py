"""Multi-job cluster workloads: real applications interfering.

Section IV-C approximates a shared machine with *synthetic* background
traffic. This module simulates the situation the paper's introduction
actually motivates — several real applications co-scheduled on one
dragonfly — which the authors list as future work ("we will study the
joint actions among applications"). Jobs are submitted with arrival
times, allocated by a placement policy as nodes allow (FCFS with
optional backfill-free queueing), replayed concurrently over one shared
fabric, and measured both for absolute communication time and for
*interference slowdown* versus an isolated run of the same job under
the same allocation.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.config import SimulationConfig
from repro.core.runner import build_topology
from repro.engine.simulator import Simulator
from repro.metrics.collector import RunMetrics
from repro.mpi.replay import JobResult, ReplayEngine
from repro.mpi.trace import JobTrace
from repro.network.fabric import Fabric
from repro.placement.machine import Machine
from repro.routing import make_routing

__all__ = ["JobSpec", "ClusterJobResult", "ClusterResult", "run_cluster"]


@dataclass(frozen=True)
class JobSpec:
    """One job submission."""

    trace: JobTrace
    placement: str = "cont"
    arrival_ns: float = 0.0

    def __post_init__(self) -> None:
        if self.arrival_ns < 0:
            raise ValueError("arrival_ns must be non-negative")


@dataclass
class ClusterJobResult:
    """Outcome of one job in the shared run."""

    spec: JobSpec
    nodes: list[int]
    start_ns: float
    job: JobResult
    metrics: RunMetrics
    isolated_comm_ns: float | None = None
    #: Host wall-clock seconds attributed to this job: its share of the
    #: shared run plus its isolated rerun (when measured). Measurement
    #: only — never part of determinism fingerprints.
    wall_s: float = 0.0

    @property
    def name(self) -> str:
        return self.spec.trace.name

    @property
    def comm_ns(self) -> float:
        return float(np.median(self.job.comm_time_ns))

    @property
    def slowdown(self) -> float:
        """Median comm time relative to the job running alone."""
        if not self.isolated_comm_ns:
            return float("nan")
        return self.comm_ns / self.isolated_comm_ns


@dataclass
class ClusterResult:
    """All jobs of a cluster run."""

    jobs: list[ClusterJobResult]
    makespan_ns: float = 0.0
    #: Host wall-clock seconds for the whole call (shared run plus any
    #: isolated reruns).
    wall_s: float = 0.0
    extra: dict = field(default_factory=dict)

    def by_name(self, name: str) -> ClusterJobResult:
        for j in self.jobs:
            if j.name == name:
                return j
        raise KeyError(name)

    def to_text(self) -> str:
        lines = [
            f"{'job':<8} {'ranks':>6} {'placement':>10} {'start ms':>9} "
            f"{'median comm ms':>15} {'slowdown':>9}"
        ]
        for j in self.jobs:
            slow = f"{j.slowdown:8.2f}x" if j.isolated_comm_ns else "      n/a"
            lines.append(
                f"{j.name:<8} {j.job.num_ranks:>6} {j.spec.placement:>10} "
                f"{j.start_ns / 1e6:>9.3f} {j.comm_ns / 1e6:>15.4f} {slow}"
            )
        lines.append(f"makespan: {self.makespan_ns / 1e6:.4f} ms")
        return "\n".join(lines)


def run_cluster(
    config: SimulationConfig,
    specs: list[JobSpec],
    routing: str = "adp",
    seed: int | None = None,
    compute_scale: float = 0.0,
    measure_isolated: bool = True,
    max_events: int | None = 100_000_000,
) -> ClusterResult:
    """Run several jobs concurrently on one shared dragonfly.

    Jobs are allocated in arrival order; a job whose placement cannot be
    satisfied raises (no queueing — the study targets interference, not
    scheduling policy). With ``measure_isolated`` each job is also run
    alone on its *same* allocation so the reported slowdown isolates
    network interference from placement quality.

    ``seed=None`` (the default) uses ``config.seed``, matching
    :func:`~repro.core.runner.run_single`.
    """
    if not specs:
        raise ValueError("need at least one job")
    if seed is None:
        seed = config.seed
    ordered = sorted(range(len(specs)), key=lambda i: specs[i].arrival_ns)

    wall_start = time.perf_counter()
    topo = build_topology(config.topology)
    machine = Machine(config.topology)
    allocations: dict[int, list[int]] = {}
    for idx in ordered:
        spec = specs[idx]
        allocations[idx] = machine.claim_nodes(
            idx, spec.placement, spec.trace.num_ranks, seed=seed + idx
        )

    # Shared run.
    sim = Simulator()
    fabric = Fabric(sim, topo, config.network, make_routing(routing, seed=seed))
    engine = ReplayEngine(sim, fabric, compute_scale=compute_scale)
    for idx, spec in enumerate(specs):
        engine.add_job(idx, spec.trace, allocations[idx], start_ns=spec.arrival_ns)
    engine.run(max_events=max_events)
    makespan = sim.now
    shared_wall = time.perf_counter() - wall_start
    # The shared run is one joint simulation; attribute its wall time
    # evenly — there is no per-job decomposition of a shared event loop.
    shared_share = shared_wall / len(specs)

    jobs: list[ClusterJobResult] = []
    for idx, spec in enumerate(specs):
        job = engine.job_result(idx)
        metrics = RunMetrics.from_run(fabric, topo, job, allocations[idx])
        jobs.append(
            ClusterJobResult(
                spec=spec,
                nodes=allocations[idx],
                start_ns=spec.arrival_ns,
                job=job,
                metrics=metrics,
                wall_s=shared_share,
            )
        )

    if measure_isolated:
        for idx, result in enumerate(jobs):
            iso_start = time.perf_counter()
            iso_sim = Simulator()
            iso_fabric = Fabric(
                iso_sim, topo, config.network, make_routing(routing, seed=seed)
            )
            iso_engine = ReplayEngine(
                iso_sim, iso_fabric, compute_scale=compute_scale
            )
            iso_engine.add_job(0, result.spec.trace, result.nodes)
            iso_engine.run(target_job=0, max_events=max_events)
            iso = iso_engine.job_result(0)
            result.isolated_comm_ns = float(np.median(iso.comm_time_ns))
            result.wall_s += time.perf_counter() - iso_start

    return ClusterResult(
        jobs=jobs,
        makespan_ns=makespan,
        wall_s=time.perf_counter() - wall_start,
    )
