"""Single-run driver: trace + placement + routing -> metrics."""

from __future__ import annotations

import functools
import time
from dataclasses import dataclass, field

from repro.config import DragonflyParams, SimulationConfig
from repro.engine.simulator import Simulator
from repro.metrics.collector import RunMetrics
from repro.metrics.timeseries import TimeSeriesMetrics
from repro.mpi.replay import JobResult, ReplayEngine
from repro.mpi.trace import JobTrace
from repro.network.fabric import Fabric
from repro.obs.recorder import ObsConfig, ObsRecorder
from repro.placement.machine import Machine
from repro.routing import make_routing
from repro.routing.adaptive import AdaptiveRouting
from repro.topology.dragonfly import Dragonfly

__all__ = ["RunResult", "run_single", "build_topology"]

#: Job id used for the target application in single-job runs.
TARGET_JOB = 0


@functools.lru_cache(maxsize=8)
def build_topology(params: DragonflyParams) -> Dragonfly:
    """Build (and memoise) the dragonfly for a parameter set.

    A :class:`Dragonfly` is immutable after construction, so sharing one
    instance across runs is safe and saves the (dominant) wiring cost
    when sweeping many configurations.
    """
    return Dragonfly(params)


@dataclass
class RunResult:
    """Everything measured in one simulation run."""

    app: str
    placement: str
    routing: str
    seed: int
    job: JobResult
    metrics: RunMetrics
    nodes: list[int]
    sim_time_ns: float
    events: int
    nonminimal_fraction: float = 0.0
    background_messages: int = 0
    extra: dict = field(default_factory=dict)
    #: Time-resolved telemetry (present when the run was observed).
    obs: TimeSeriesMetrics | None = None
    #: Simulation backend that produced this result ("packet" or "flow").
    backend: str = "packet"
    #: Host wall-clock seconds spent simulating this cell. Measurement
    #: only — never part of cache identity or determinism fingerprints.
    wall_s: float = 0.0

    @property
    def label(self) -> str:
        """Table-I style configuration label, e.g. ``cont-min``."""
        return f"{self.placement}-{self.routing}"


def run_single(
    config: SimulationConfig,
    trace: JobTrace,
    placement: str,
    routing: str,
    seed: int | None = None,
    compute_scale: float = 0.0,
    background=None,
    record_sends: bool = False,
    max_events: int | None = 50_000_000,
    obs: ObsConfig | None = None,
    scheduler: str = "heap",
    faults=None,
    backend: str = "packet",
    flow_params=None,
) -> RunResult:
    """Simulate one application under one placement/routing combination.

    ``background`` is an optional
    :class:`~repro.core.interference.BackgroundSpec`; its synthetic job
    occupies every node the placement leaves free (Section IV-C). The
    simulation stops when the target application finishes.

    ``obs`` enables time-resolved observability (see :mod:`repro.obs`):
    the returned result carries a
    :class:`~repro.metrics.timeseries.TimeSeriesMetrics` in ``.obs``.
    Observation never changes the physics — metrics are bit-identical
    with and without it.

    ``scheduler`` selects the engine's event-queue implementation
    (``"heap"`` or ``"calendar"``); a pure performance knob — results
    are bit-identical under either (see DESIGN.md S14).

    ``faults`` is an optional :class:`~repro.faults.FaultPlan` (DESIGN.md
    §S15): nodes on failed routers are fenced before placement, the
    fault-aware variants of the routing policies are substituted, and
    the plan's link faults are installed at their onset times. ``None``
    and an empty plan take the exact healthy code path, so fault-free
    results stay bit-identical to a build without fault support.

    ``backend`` selects the simulation model: ``"packet"`` (default) is
    the exact packet-level engine; ``"flow"`` is the fluid max-min model
    (:mod:`repro.flow`, DESIGN.md S16) — orders of magnitude faster,
    emitting the same metric set. Unlike ``scheduler``, the backend
    *does* change results, so it is part of the exec cache identity.
    The flow backend does not support ``obs`` or fault injection.

    ``flow_params`` is an optional
    :class:`~repro.flow.routes.FlowParams` overriding the flow
    backend's model knobs (epoch coalescing, spill emulation, Valiant
    budget); non-default values are part of the exec cache identity.
    Only meaningful with ``backend="flow"``.
    """
    wall_start = time.perf_counter()
    if backend not in ("packet", "flow"):
        raise ValueError(f"unknown backend {backend!r}")
    if flow_params is not None and backend != "flow":
        raise ValueError(
            "flow_params is only meaningful with backend='flow'"
        )
    if backend == "flow":
        if obs is not None:
            raise ValueError(
                "the flow backend does not support observability (obs); "
                "use backend='packet' for time-resolved telemetry"
            )
        if faults is not None and not faults.is_empty():
            raise ValueError(
                "the flow backend does not support fault injection; "
                "use backend='packet' for resilience studies"
            )
    if seed is None:
        seed = config.seed
    topo = build_topology(config.topology)
    machine = Machine(config.topology)
    fault_plan = None
    if faults is not None and not faults.is_empty():
        fault_plan = faults
        fault_plan.validate(topo)
        dead_nodes = fault_plan.dead_nodes(topo)
        if dead_nodes:
            machine.mark_down(dead_nodes)
    nodes = machine.allocate(placement, trace.num_ranks, seed=seed)

    sim = Simulator(scheduler=scheduler)
    routing_policy = None
    if backend == "flow":
        from repro.flow.fabric import make_flow_fabric

        fabric = make_flow_fabric(
            sim, topo, config.network, routing, params=flow_params
        )
    else:
        if fault_plan is not None:
            from repro.faults.routing import make_fault_aware_routing

            routing_policy = make_fault_aware_routing(routing, seed=seed)
        else:
            routing_policy = make_routing(routing, seed=seed)
        fabric = Fabric(sim, topo, config.network, routing_policy)
    engine = ReplayEngine(
        sim, fabric, compute_scale=compute_scale, record_sends=record_sends
    )
    engine.add_job(TARGET_JOB, trace, nodes)

    injector = None
    if background is not None:
        bg_nodes = machine.free_nodes()
        injector = background.build(bg_nodes, seed=seed)
        engine.add_injector(injector)

    recorder = None
    if obs is not None:
        recorder = ObsRecorder(sim, fabric, obs).install()

    if fault_plan is not None:
        # After the recorder install so t=0 fault onsets land in the
        # congestion trace; scheduled onsets are ordinary (time, seq)
        # events, totally ordered against packet traffic.
        from repro.faults.plan import install_plan

        install_plan(sim, fabric, fault_plan)

    engine.run(target_job=TARGET_JOB, max_events=max_events)

    job = engine.job_result(TARGET_JOB)
    metrics = RunMetrics.from_run(fabric, topo, job, nodes)
    timeseries = recorder.finalize(sim.now) if recorder is not None else None

    nonmin_frac = 0.0
    if backend == "flow":
        nonmin_frac = fabric.nonminimal_fraction
    elif isinstance(routing_policy, AdaptiveRouting):
        decided = routing_policy.minimal_taken + routing_policy.nonminimal_taken
        if decided:
            nonmin_frac = routing_policy.nonminimal_taken / decided

    extra: dict = {}
    if fault_plan is not None:
        extra["faults"] = {
            "digest": fault_plan.digest,
            "links_failed": fabric.faults_applied,
            "packets_rerouted": fabric.packets_rerouted,
            "nodes_fenced": len(fault_plan.dead_nodes(topo)),
        }

    return RunResult(
        app=trace.name,
        placement=placement,
        routing=routing,
        seed=seed,
        job=job,
        metrics=metrics,
        nodes=nodes,
        sim_time_ns=sim.now,
        events=sim.events_run,
        nonminimal_fraction=nonmin_frac,
        background_messages=injector.messages_sent if injector else 0,
        extra=extra,
        obs=timeseries,
        backend=backend,
        wall_s=time.perf_counter() - wall_start,
    )
