"""Paper-style text rendering of study results.

Everything the benchmark harness prints flows through here so that the
rows/series match the tables and figures of the paper one-to-one.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.metrics.analysis import BoxStats
from repro.placement.policies import PLACEMENT_NAMES
from repro.routing import ROUTING_NAMES

__all__ = [
    "config_label",
    "nomenclature_table",
    "format_box_table",
    "format_cdf_table",
    "format_series_table",
    "key_findings",
]

_PLACEMENT_LONG = {
    "cont": "Contiguous",
    "cab": "Random-cabinet",
    "chas": "Random-chassis",
    "rotr": "Random-router",
    "rand": "Random-node",
}
_ROUTING_LONG = {"min": "Minimal Routing", "adp": "Adaptive Routing"}


def config_label(placement: str, routing: str) -> str:
    """Table-I nomenclature, e.g. ``cont-min``."""
    return f"{placement}-{routing}"


def nomenclature_table() -> str:
    """Render Table I (nomenclature of placement/routing configs)."""
    lines = [
        "Table I: Nomenclature of Placement and Routing Configurations",
        f"{'Placement Policy':<18} {'Minimal Routing':<16} {'Adaptive Routing':<16}",
    ]
    for p in PLACEMENT_NAMES:
        row = f"{_PLACEMENT_LONG[p]:<18}"
        for r in ROUTING_NAMES:
            row += f" {config_label(p, r):<16}"
        lines.append(row)
    return "\n".join(lines)


def format_box_table(
    boxes: Mapping[str, BoxStats], title: str, unit: str = "ms"
) -> str:
    """Render Figure-3 style box data as a table (one row per config)."""
    lines = [
        title,
        f"{'config':<10} {'min':>10} {'q1':>10} {'median':>10} {'q3':>10} {'max':>10}  ({unit})",
    ]
    for label, b in boxes.items():
        lines.append(
            f"{label:<10} {b.minimum:>10.4f} {b.q1:>10.4f} {b.median:>10.4f} "
            f"{b.q3:>10.4f} {b.maximum:>10.4f}"
        )
    return "\n".join(lines)


def format_cdf_table(
    curves: Mapping[str, tuple],
    title: str,
    unit: str,
    percentiles: Sequence[float] = (50, 75, 90, 95, 99, 100),
) -> str:
    """Summarise CDF curves (Figures 4-6) at fixed channel percentiles.

    Each row gives, per config, the value below which the given
    percentage of channels fall — a faithful text rendering of the
    paper's "percentage of channels vs amount" plots.
    """
    header = f"{'config':<10}" + "".join(f" p{int(p):<3}{'':>6}" for p in percentiles)
    lines = [f"{title} (values in {unit})", header]
    for label, (x, pct) in curves.items():
        if len(x) == 0:
            lines.append(f"{label:<10} (no channels)")
            continue
        row = f"{label:<10}"
        for p in percentiles:
            idx = np.searchsorted(pct, p, side="left")
            idx = min(idx, len(x) - 1)
            row += f" {x[idx]:>9.4f}"
        lines.append(row)
    return "\n".join(lines)


def format_series_table(
    xs: Sequence[float],
    series: Mapping[str, Sequence[float]],
    title: str,
    x_name: str = "scale",
    fmt: str = "9.2f",
) -> str:
    """Render Figure-7 style series: one row per x, one column per config."""
    labels = list(series)
    header = f"{x_name:<8}" + "".join(f" {label:>10}" for label in labels)
    lines = [title, header]
    for i, x in enumerate(xs):
        row = f"{x:<8g}"
        for label in labels:
            row += f" {series[label][i]:>10.2f}"
        lines.append(row)
    return "\n".join(lines)


def key_findings(study_result) -> dict[str, dict[str, float]]:
    """Extract the paper's Section IV-A headline comparisons per app.

    For every application: the best configuration, the improvement of
    random-node over contiguous placement (same best routing), and the
    improvement of the app's preferred routing under its preferred
    placement.
    """
    out: dict[str, dict[str, float]] = {}
    for app in study_result.apps:
        best = study_result.best_label(app)
        placement, routing = best.rsplit("-", 1)
        out[app] = {
            "best": best,
            "rand_vs_cont_pct": study_result.improvement_pct(
                app, f"rand-{routing}", f"cont-{routing}"
            ),
            "cont_vs_rand_pct": study_result.improvement_pct(
                app, f"cont-{routing}", f"rand-{routing}"
            ),
        }
    return out
