"""The Section IV-B sensitivity study: varying communication intensity.

The paper scales every message of CR and FB from 1% to 2x of the
original size, and AMG from 50% to 20x, and compares the *maximum
communication time among all ranks* of the four extreme configurations
(cont/rand x min/adp), normalised to ``rand-adp`` at the same scale
(Figure 7).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.config import SimulationConfig
from repro.exec.plan import plan_sensitivity
from repro.exec.pool import execute_plan
from repro.mpi.trace import JobTrace

__all__ = ["sensitivity_sweep", "SensitivityResult", "PAPER_SCALES"]

#: The paper's message-scale grids per application.
PAPER_SCALES = {
    "CR": (0.01, 0.1, 0.3, 0.5, 1.0, 1.5, 2.0),
    "FB": (0.01, 0.1, 0.3, 0.5, 1.0, 1.5, 2.0),
    "AMG": (0.5, 1.0, 2.0, 5.0, 10.0, 20.0),
}

#: The four extreme configurations the paper sweeps.
EXTREME_CONFIGS = (
    ("cont", "min"),
    ("rand", "min"),
    ("cont", "adp"),
    ("rand", "adp"),
)


class SensitivityResult:
    """Max-comm-time series per configuration over message scales."""

    def __init__(
        self,
        app: str,
        scales: tuple[float, ...],
        max_comm_ns: dict[str, np.ndarray],
        baseline: str,
        obs: dict[tuple[str, str], object] | None = None,
    ) -> None:
        self.app = app
        self.scales = scales
        self.max_comm_ns = max_comm_ns
        self.baseline = baseline
        #: ``(scaled-app key, "placement-routing") -> TimeSeriesMetrics``
        #: when the sweep ran with observability enabled, else ``None``.
        self.obs = obs

    def labels(self) -> list[str]:
        return list(self.max_comm_ns)

    def relative(self) -> dict[str, np.ndarray]:
        """Figure 7's y-axis: max comm time as % of the baseline config."""
        base = self.max_comm_ns[self.baseline]
        return {
            label: 100.0 * series / base
            for label, series in self.max_comm_ns.items()
        }

    def to_rows(self) -> list[tuple]:
        """(scale, {label: relative %}) rows for reports."""
        rel = self.relative()
        rows = []
        for i, s in enumerate(self.scales):
            rows.append((s, {label: float(rel[label][i]) for label in rel}))
        return rows


def sensitivity_sweep(
    config: SimulationConfig,
    trace: JobTrace,
    scales: Sequence[float],
    configs: Sequence[tuple[str, str]] = EXTREME_CONFIGS,
    baseline: tuple[str, str] = ("rand", "adp"),
    seed: int = 0,
    compute_scale: float = 0.0,
    max_workers: int = 1,
    cache_dir=None,
    progress=None,
    obs=None,
    scheduler: str = "heap",
    faults=None,
    backend: str = "packet",
    flow_batch: int = 0,
) -> SensitivityResult:
    """Run the message-size sweep for one application.

    ``max_workers``/``cache_dir``/``progress`` are forwarded to
    :func:`repro.exec.pool.execute_plan`; the serial default is
    unchanged from the historical loop. ``obs`` (an
    :class:`~repro.obs.recorder.ObsConfig`) enables per-cell
    time-resolved telemetry, exposed via ``SensitivityResult.obs``.
    """
    if not scales:
        raise ValueError("need at least one scale")
    if tuple(baseline) not in {tuple(c) for c in configs}:
        raise ValueError("baseline configuration must be in the swept set")

    plan = plan_sensitivity(
        config, trace, scales, configs, seed=seed, compute_scale=compute_scale,
        obs=obs, scheduler=scheduler, faults=faults, backend=backend,
    )
    report = execute_plan(
        plan,
        max_workers=max_workers,
        cache=cache_dir,
        progress=progress,
        strict=True,
        flow_batch=flow_batch,
    )
    # Plan order is scale-major then config, so per-label appends land
    # in scale order exactly as the serial loop produced them.
    series: dict[str, list[float]] = {f"{p}-{r}": [] for p, r in configs}
    obs_map: dict[tuple[str, str], object] = {}
    for spec, outcome in zip(plan.specs, report.outcomes):
        series[spec.label].append(outcome.result.metrics.max_comm_time_ns)
        if outcome.result.obs is not None:
            obs_map[(spec.app, spec.label)] = outcome.result.obs

    return SensitivityResult(
        trace.name,
        tuple(scales),
        {k: np.asarray(v) for k, v in series.items()},
        baseline=f"{baseline[0]}-{baseline[1]}",
        obs=obs_map or None,
    )
