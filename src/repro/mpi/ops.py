"""Trace operation vocabulary.

Operations are ``NamedTuple`` records: immutable, compact, fast to
construct in bulk, and structurally comparable (which makes round-trip
tests of the trace format trivial). The replay engine dispatches on the
concrete type.

``Recv``/``Irecv`` accept :data:`ANY_SOURCE` and :data:`ANY_TAG`
wildcards with MPI's matching semantics.
"""

from __future__ import annotations

from typing import NamedTuple, Union

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "Send",
    "Isend",
    "Recv",
    "Irecv",
    "Wait",
    "WaitAll",
    "Barrier",
    "Compute",
    "Op",
]

#: Wildcard source rank for receives.
ANY_SOURCE = -1
#: Wildcard message tag for receives.
ANY_TAG = -1


class Send(NamedTuple):
    """Blocking send: completes when the message has left the NIC."""

    dst: int
    size: int
    tag: int = 0


class Isend(NamedTuple):
    """Non-blocking send; ``req`` completes when the NIC is drained."""

    dst: int
    size: int
    tag: int = 0
    req: int = 0


class Recv(NamedTuple):
    """Blocking receive: completes when a matching message has fully
    arrived at this rank's node."""

    src: int
    size: int
    tag: int = 0


class Irecv(NamedTuple):
    """Non-blocking receive; ``req`` completes on matched full arrival."""

    src: int
    size: int
    tag: int = 0
    req: int = 0


class Wait(NamedTuple):
    """Block until request ``req`` (of this rank) has completed."""

    req: int


class WaitAll(NamedTuple):
    """Block until every outstanding request of this rank has completed."""


class Barrier(NamedTuple):
    """Block until every rank of the job has reached its barrier."""


class Compute(NamedTuple):
    """Computation for ``duration_ns``; scaled by the replay engine's
    ``compute_scale`` (0.0 by default — the paper ignores compute)."""

    duration_ns: float


Op = Union[Send, Isend, Recv, Irecv, Wait, WaitAll, Barrier, Compute]
