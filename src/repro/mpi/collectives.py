"""Point-to-point expansions of common collectives.

The DOE mini-apps the paper replays implement their communication with
point-to-point operations (crystal router is itself a hand-rolled
many-to-many), so the generators build on these expansions rather than on
opaque collective ops. Each function *appends* the per-rank operation
sequence for one collective to an existing :class:`RankTrace`, using a
caller-supplied tag space so adjacent collectives cannot cross-match.

All expansions are classic algorithms:

* ``alltoall`` — linear pairwise exchange with XOR partner ordering
  (congestion-friendly: every round is a perfect matching when the rank
  count is a power of two);
* ``allreduce`` — recursive doubling on the power-of-two subset, with
  fold-in/fold-out steps for stragglers;
* ``allgather_ring`` — ring algorithm, num_ranks-1 rounds;
* ``reduce_scatter_ring`` — ring reduce-scatter, num_ranks-1 rounds of
  one-chunk shifts (the first half of a ring all-reduce);
* ``allreduce_ring`` — the ML-standard bandwidth-optimal ring
  all-reduce: reduce-scatter followed by allgather, moving
  ``2 * (N-1)/N * size`` bytes per rank instead of recursive
  doubling's ``log2(N) * size``;
* ``bcast_binomial`` — binomial tree from the root.
"""

from __future__ import annotations

from repro.mpi.trace import RankTrace

__all__ = [
    "alltoall",
    "allreduce",
    "allreduce_ring",
    "allgather_ring",
    "reduce_scatter_ring",
    "bcast_binomial",
    "sendrecv",
]


def sendrecv(
    trace: RankTrace, peer: int, size: int, tag: int, req_base: int = 0
) -> None:
    """Symmetric non-blocking exchange with ``peer`` followed by waitall."""
    if peer == trace.rank:
        return
    trace.irecv(peer, size, tag, req=req_base)
    trace.isend(peer, size, tag, req=req_base + 1)
    trace.waitall()


def alltoall(trace: RankTrace, num_ranks: int, size: int, tag: int) -> None:
    """Pairwise-exchange all-to-all of ``size`` bytes per rank pair."""
    me = trace.rank
    rounds = _next_pow2(num_ranks)
    for r in range(1, rounds):
        peer = me ^ r
        if peer < num_ranks:
            trace.irecv(peer, size, tag + r, req=2 * r)
            trace.isend(peer, size, tag + r, req=2 * r + 1)
    trace.waitall()


def allreduce(trace: RankTrace, num_ranks: int, size: int, tag: int) -> None:
    """Recursive-doubling allreduce (message size constant per round)."""
    me = trace.rank
    pof2 = _prev_pow2(num_ranks)
    rem = num_ranks - pof2
    # Fold ranks beyond the power-of-two boundary into their partners.
    if me < 2 * rem:
        if me % 2 == 1:
            trace.send(me - 1, size, tag)
        else:
            trace.recv(me + 1, size, tag)
    if me < 2 * rem and me % 2 == 1:
        new_rank = -1  # folded out of the doubling phase
    else:
        new_rank = me // 2 if me < 2 * rem else me - rem
    if new_rank >= 0:
        mask = 1
        while mask < pof2:
            partner = new_rank ^ mask
            peer = partner * 2 if partner < rem else partner + rem
            trace.irecv(peer, size, tag + mask, req=0)
            trace.isend(peer, size, tag + mask, req=1)
            trace.waitall()
            mask <<= 1
    # Unfold: partners return the result.
    if me < 2 * rem:
        if me % 2 == 1:
            trace.recv(me - 1, size, tag + pof2)
        else:
            trace.send(me + 1, size, tag + pof2)


def allgather_ring(trace: RankTrace, num_ranks: int, size: int, tag: int) -> None:
    """Ring allgather: num_ranks-1 rounds of shift-by-one exchanges."""
    if num_ranks < 2:
        return
    me = trace.rank
    right = (me + 1) % num_ranks
    left = (me - 1) % num_ranks
    for r in range(num_ranks - 1):
        trace.irecv(left, size, tag + r, req=0)
        trace.isend(right, size, tag + r, req=1)
        trace.waitall()


def reduce_scatter_ring(
    trace: RankTrace, num_ranks: int, size: int, tag: int
) -> None:
    """Ring reduce-scatter of a ``size``-byte buffer.

    ``num_ranks - 1`` rounds; each round every rank sends one
    ``ceil(size / num_ranks)`` chunk to its right neighbour and receives
    one from its left (the chunk being reduced travels the whole ring).
    Uses tags ``tag .. tag + num_ranks - 2``.
    """
    if num_ranks < 2:
        return
    chunk = _ring_chunk(size, num_ranks)
    me = trace.rank
    right = (me + 1) % num_ranks
    left = (me - 1) % num_ranks
    for r in range(num_ranks - 1):
        trace.irecv(left, chunk, tag + r, req=0)
        trace.isend(right, chunk, tag + r, req=1)
        trace.waitall()


def allreduce_ring(
    trace: RankTrace, num_ranks: int, size: int, tag: int
) -> None:
    """Bandwidth-optimal ring all-reduce of a ``size``-byte buffer.

    Reduce-scatter then allgather, each in ``num_ranks - 1`` one-chunk
    ring rounds: every rank moves ``2 * (num_ranks-1)`` chunks of
    ``ceil(size / num_ranks)`` bytes — the NCCL/Horovod data-parallel
    gradient exchange, versus recursive doubling's ``log2(N)``
    full-buffer rounds. Uses tags ``tag .. tag + 2 * num_ranks - 3``.
    """
    if num_ranks < 2:
        return
    chunk = _ring_chunk(size, num_ranks)
    reduce_scatter_ring(trace, num_ranks, size, tag)
    allgather_ring(trace, num_ranks, chunk, tag + num_ranks - 1)


def _ring_chunk(size: int, num_ranks: int) -> int:
    """Per-round chunk of a ring collective (at least one byte)."""
    if size < 0:
        raise ValueError("collective size must be non-negative")
    return max(1, -(-size // num_ranks))


def bcast_binomial(
    trace: RankTrace, num_ranks: int, size: int, tag: int, root: int = 0
) -> None:
    """Binomial-tree broadcast from ``root``."""
    me = (trace.rank - root) % num_ranks
    mask = 1
    while mask < num_ranks:
        if me & mask:
            src = (me - mask + root) % num_ranks
            trace.recv(src, size, tag)
            break
        mask <<= 1
    mask >>= 1
    while mask > 0:
        if me + mask < num_ranks:
            dst = (me + mask + root) % num_ranks
            trace.send(dst, size, tag)
        mask >>= 1


def _next_pow2(n: int) -> int:
    p = 1
    while p < n:
        p <<= 1
    return p


def _prev_pow2(n: int) -> int:
    p = 1
    while p * 2 <= n:
        p <<= 1
    return p
