"""DUMPI-flavoured ASCII trace format.

The paper collects traces with the SST DUMPI toolkit. We cannot ship the
proprietary DOE trace files, but this module defines an equivalent
line-oriented text format with a writer and a parser so that externally
exported traces drop straight into the replay engine (DESIGN.md §4).

Format::

    # repro-dumpi 1
    job <name>
    ranks <N>
    meta <one-line JSON>          # optional
    rank <i>
    send <dst> <size> <tag>
    isend <dst> <size> <tag> <req>
    recv <src> <size> <tag>
    irecv <src> <size> <tag> <req>
    wait <req>
    waitall
    barrier
    compute <duration_ns>
    endrank
    ...

Blank lines and ``#`` comments are ignored. Every rank section must
appear exactly once, in order.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.mpi.ops import (
    Barrier,
    Compute,
    Irecv,
    Isend,
    Op,
    Recv,
    Send,
    Wait,
    WaitAll,
)
from repro.mpi.trace import JobTrace, RankTrace

__all__ = ["MAGIC", "format_trace", "parse_trace", "save_trace", "load_trace"]

MAGIC = "# repro-dumpi 1"


def format_trace(job: JobTrace) -> str:
    """Serialise a job trace to the ASCII format."""
    lines: list[str] = [MAGIC, f"job {job.name}", f"ranks {job.num_ranks}"]
    if job.meta:
        lines.append("meta " + json.dumps(job.meta, sort_keys=True))
    for rt in job.ranks:
        lines.append(f"rank {rt.rank}")
        for op in rt.ops:
            lines.append(_format_op(op))
        lines.append("endrank")
    return "\n".join(lines) + "\n"


def _format_op(op: Op) -> str:
    if isinstance(op, Send):
        return f"send {op.dst} {op.size} {op.tag}"
    if isinstance(op, Isend):
        return f"isend {op.dst} {op.size} {op.tag} {op.req}"
    if isinstance(op, Recv):
        return f"recv {op.src} {op.size} {op.tag}"
    if isinstance(op, Irecv):
        return f"irecv {op.src} {op.size} {op.tag} {op.req}"
    if isinstance(op, Wait):
        return f"wait {op.req}"
    if isinstance(op, WaitAll):
        return "waitall"
    if isinstance(op, Barrier):
        return "barrier"
    if isinstance(op, Compute):
        return f"compute {op.duration_ns!r}"  # repr round-trips floats
    raise TypeError(f"unknown op {op!r}")


class TraceParseError(ValueError):
    """Raised with a line number when the trace text is malformed."""

    def __init__(self, lineno: int, message: str) -> None:
        super().__init__(f"line {lineno}: {message}")
        self.lineno = lineno


def parse_trace(text: str) -> JobTrace:
    """Parse the ASCII format back into a :class:`JobTrace`."""
    name: str | None = None
    num_ranks: int | None = None
    meta: dict = {}
    ranks: list[RankTrace] = []
    current: RankTrace | None = None

    lines = text.splitlines()
    if not lines or lines[0].strip() != MAGIC:
        raise TraceParseError(1, f"missing magic header {MAGIC!r}")

    for lineno, raw in enumerate(lines[1:], start=2):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        fields = line.split()
        kw = fields[0]
        try:
            if kw == "job":
                name = line[len("job ") :].strip()
            elif kw == "ranks":
                num_ranks = int(fields[1])
            elif kw == "meta":
                meta = json.loads(line[len("meta ") :])
            elif kw == "rank":
                if current is not None:
                    raise TraceParseError(lineno, "nested rank section")
                rank = int(fields[1])
                if rank != len(ranks):
                    raise TraceParseError(
                        lineno, f"expected rank {len(ranks)}, got {rank}"
                    )
                current = RankTrace(rank)
            elif kw == "endrank":
                if current is None:
                    raise TraceParseError(lineno, "endrank outside rank section")
                ranks.append(current)
                current = None
            else:
                if current is None:
                    raise TraceParseError(
                        lineno, f"op {kw!r} outside a rank section"
                    )
                current.ops.append(_parse_op(kw, fields, lineno))
        except (IndexError, ValueError) as exc:
            if isinstance(exc, TraceParseError):
                raise
            raise TraceParseError(lineno, f"malformed line {line!r}") from exc

    if current is not None:
        raise TraceParseError(len(lines), "unterminated rank section")
    if name is None or num_ranks is None:
        raise TraceParseError(1, "missing job/ranks header")
    if len(ranks) != num_ranks:
        raise TraceParseError(
            len(lines), f"header declares {num_ranks} ranks, found {len(ranks)}"
        )
    return JobTrace(name, ranks, meta)


def _parse_op(kw: str, fields: list[str], lineno: int) -> Op:
    if kw == "send":
        return Send(int(fields[1]), int(fields[2]), int(fields[3]))
    if kw == "isend":
        return Isend(int(fields[1]), int(fields[2]), int(fields[3]), int(fields[4]))
    if kw == "recv":
        return Recv(int(fields[1]), int(fields[2]), int(fields[3]))
    if kw == "irecv":
        return Irecv(int(fields[1]), int(fields[2]), int(fields[3]), int(fields[4]))
    if kw == "wait":
        return Wait(int(fields[1]))
    if kw == "waitall":
        return WaitAll()
    if kw == "barrier":
        return Barrier()
    if kw == "compute":
        return Compute(float(fields[1]))
    raise TraceParseError(lineno, f"unknown operation {kw!r}")


def save_trace(job: JobTrace, path: str | Path) -> None:
    """Write a trace file (creating parent directories)."""
    p = Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    p.write_text(format_trace(job))


def load_trace(path: str | Path) -> JobTrace:
    """Read a trace file."""
    return parse_trace(Path(path).read_text())
