"""Trace containers and characterisation helpers.

A :class:`RankTrace` is the ordered operation list of one MPI rank; a
:class:`JobTrace` bundles the ranks of one job plus metadata. The
characterisation methods reproduce the paper's Figure 2 inputs: the
rank-to-rank communication matrix and the per-rank message-load profile.
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

from repro.mpi.ops import (
    ANY_SOURCE,
    Barrier,
    Compute,
    Irecv,
    Isend,
    Op,
    Recv,
    Send,
    Wait,
    WaitAll,
)

__all__ = ["RankTrace", "JobTrace"]


class RankTrace:
    """Ordered list of operations executed by one rank.

    Provides builder-style convenience methods so generators read like
    the communication code they model::

        t = RankTrace(rank)
        t.isend(dst, size, tag=1, req=0)
        t.irecv(src, size, tag=1, req=1)
        t.waitall()
    """

    __slots__ = ("rank", "ops")

    def __init__(self, rank: int, ops: Iterable[Op] | None = None) -> None:
        self.rank = rank
        self.ops: list[Op] = list(ops) if ops is not None else []

    # builder helpers -------------------------------------------------
    def send(self, dst: int, size: int, tag: int = 0) -> None:
        self.ops.append(Send(dst, size, tag))

    def isend(self, dst: int, size: int, tag: int = 0, req: int = 0) -> None:
        self.ops.append(Isend(dst, size, tag, req))

    def recv(self, src: int, size: int, tag: int = 0) -> None:
        self.ops.append(Recv(src, size, tag))

    def irecv(self, src: int, size: int, tag: int = 0, req: int = 0) -> None:
        self.ops.append(Irecv(src, size, tag, req))

    def wait(self, req: int) -> None:
        self.ops.append(Wait(req))

    def waitall(self) -> None:
        self.ops.append(WaitAll())

    def barrier(self) -> None:
        self.ops.append(Barrier())

    def compute(self, duration_ns: float) -> None:
        self.ops.append(Compute(duration_ns))

    # queries ----------------------------------------------------------
    def __len__(self) -> int:
        return len(self.ops)

    def __iter__(self) -> Iterator[Op]:
        return iter(self.ops)

    def sends(self) -> Iterator[Send | Isend]:
        for op in self.ops:
            if isinstance(op, (Send, Isend)):
                yield op

    def recvs(self) -> Iterator[Recv | Irecv]:
        for op in self.ops:
            if isinstance(op, (Recv, Irecv)):
                yield op

    def bytes_sent(self) -> int:
        return sum(op.size for op in self.sends())

    def num_sends(self) -> int:
        return sum(1 for _ in self.sends())

    def scaled(self, factor: float) -> "RankTrace":
        """Copy with every message size multiplied by ``factor``.

        Non-zero sizes are kept at least 1 byte so the operation count —
        and hence the communication *frequency* the paper distinguishes
        apps by — is preserved at any scale.
        """
        if factor <= 0:
            raise ValueError("scale factor must be positive")

        def _scale(size: int) -> int:
            return max(1, round(size * factor)) if size > 0 else 0

        out: list[Op] = []
        for op in self.ops:
            if isinstance(op, Send):
                out.append(Send(op.dst, _scale(op.size), op.tag))
            elif isinstance(op, Isend):
                out.append(Isend(op.dst, _scale(op.size), op.tag, op.req))
            elif isinstance(op, Recv):
                out.append(Recv(op.src, _scale(op.size), op.tag))
            elif isinstance(op, Irecv):
                out.append(Irecv(op.src, _scale(op.size), op.tag, op.req))
            else:
                out.append(op)
        return RankTrace(self.rank, out)


class JobTrace:
    """All ranks of one job, plus free-form metadata.

    ``meta`` commonly carries ``phase_profile`` — a list of
    ``(phase_label, mean_bytes_per_rank)`` pairs emitted by the
    application generators and used to reproduce Figure 2(d-f).
    """

    def __init__(
        self,
        name: str,
        ranks: list[RankTrace],
        meta: dict | None = None,
    ) -> None:
        if not ranks:
            raise ValueError("a job needs at least one rank")
        for i, rt in enumerate(ranks):
            if rt.rank != i:
                raise ValueError(f"rank {i} trace carries rank id {rt.rank}")
        self.name = name
        self.ranks = ranks
        self.meta: dict = dict(meta) if meta else {}

    @property
    def num_ranks(self) -> int:
        return len(self.ranks)

    def __iter__(self) -> Iterator[RankTrace]:
        return iter(self.ranks)

    def total_bytes(self) -> int:
        """Total payload bytes sent across all ranks."""
        return sum(rt.bytes_sent() for rt in self.ranks)

    def num_messages(self) -> int:
        return sum(rt.num_sends() for rt in self.ranks)

    def avg_message_load_per_rank(self) -> float:
        """The paper's communication-intensity measure (bytes/rank)."""
        return self.total_bytes() / self.num_ranks

    def communication_matrix(self) -> np.ndarray:
        """Bytes sent from rank i to rank j (Figure 2 top row)."""
        n = self.num_ranks
        mat = np.zeros((n, n), dtype=np.int64)
        for rt in self.ranks:
            for op in rt.sends():
                mat[rt.rank, op.dst] += op.size
        return mat

    def scaled(self, factor: float) -> "JobTrace":
        """Job with every message size scaled (paper Section IV-B)."""
        meta = dict(self.meta)
        meta["message_scale"] = meta.get("message_scale", 1.0) * factor
        if "phase_profile" in meta:
            meta["phase_profile"] = [
                (label, load * factor) for label, load in meta["phase_profile"]
            ]
        return JobTrace(
            self.name, [rt.scaled(factor) for rt in self.ranks], meta
        )

    def validate(self) -> None:
        """Check structural soundness of the trace.

        * destination/source ranks are in range;
        * per-destination expected receive bytes equal sent bytes
          (wildcard receives are exempt from byte accounting but counted
          against message counts);
        * message counts balance: messages sent to each rank equal the
          receives that rank posts.

        Raises ``ValueError`` on the first violation.
        """
        n = self.num_ranks
        sent_count = np.zeros(n, dtype=np.int64)
        recv_count = np.zeros(n, dtype=np.int64)
        sent_bytes = np.zeros(n, dtype=np.int64)
        recv_bytes = np.zeros(n, dtype=np.int64)
        wildcard = np.zeros(n, dtype=bool)
        for rt in self.ranks:
            for op in rt.ops:
                if isinstance(op, (Send, Isend)):
                    if not 0 <= op.dst < n:
                        raise ValueError(
                            f"rank {rt.rank} sends to out-of-range rank {op.dst}"
                        )
                    sent_count[op.dst] += 1
                    sent_bytes[op.dst] += op.size
                elif isinstance(op, (Recv, Irecv)):
                    if op.src != ANY_SOURCE and not 0 <= op.src < n:
                        raise ValueError(
                            f"rank {rt.rank} receives from out-of-range "
                            f"rank {op.src}"
                        )
                    recv_count[rt.rank] += 1
                    recv_bytes[rt.rank] += op.size
                    if op.src == ANY_SOURCE:
                        wildcard[rt.rank] = True
        mismatch = np.nonzero(sent_count != recv_count)[0]
        if mismatch.size:
            r = int(mismatch[0])
            raise ValueError(
                f"rank {r} posts {recv_count[r]} receives but is sent "
                f"{sent_count[r]} messages"
            )
        byte_mismatch = np.nonzero((sent_bytes != recv_bytes) & ~wildcard)[0]
        if byte_mismatch.size:
            r = int(byte_mismatch[0])
            raise ValueError(
                f"rank {r} expects {recv_bytes[r]} bytes but is sent "
                f"{sent_bytes[r]}"
            )
