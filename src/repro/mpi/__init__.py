"""MPI trace substrate (paper Section III-A).

The paper replays DUMPI traces of DOE Design Forward mini-apps through
CODES. This package provides the equivalent machinery built from scratch:

* :mod:`repro.mpi.ops` — the operation vocabulary (send/recv families,
  waits, barrier, compute);
* :mod:`repro.mpi.trace` — per-rank and per-job trace containers with
  characterisation helpers (communication matrix, load profiles);
* :mod:`repro.mpi.collectives` — point-to-point expansions of common
  collectives, used by the application generators;
* :mod:`repro.mpi.dumpi` — a DUMPI-flavoured ASCII trace format with
  writer and parser, so externally exported traces can be replayed;
* :mod:`repro.mpi.replay` — the replay engine: drives rank state
  machines over the packet fabric with eager-protocol matching.
"""

from repro.mpi.ops import (
    ANY_SOURCE,
    ANY_TAG,
    Barrier,
    Compute,
    Irecv,
    Isend,
    Recv,
    Send,
    Wait,
    WaitAll,
    Op,
)
from repro.mpi.trace import JobTrace, RankTrace
from repro.mpi.dumpi import load_trace, save_trace, parse_trace, format_trace
from repro.mpi.replay import ReplayEngine, RankResult

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "Barrier",
    "Compute",
    "Irecv",
    "Isend",
    "Recv",
    "Send",
    "Wait",
    "WaitAll",
    "Op",
    "JobTrace",
    "RankTrace",
    "load_trace",
    "save_trace",
    "parse_trace",
    "format_trace",
    "ReplayEngine",
    "RankResult",
]
