"""Trace replay: drives rank state machines over the packet fabric.

Protocol model (eager by default, matching CODES' MPI layer at the
granularity the paper measures):

* a (blocking) ``Send`` completes when the message has fully left the
  source NIC — it never waits for the receiver;
* optionally, messages larger than ``eager_threshold`` use a rendezvous
  handshake (RTS control message -> matched receive -> CTS -> payload),
  so large sends block until the receiver has posted, as real MPI
  implementations do — useful for protocol-sensitivity ablations;
* a ``Recv`` completes when a matching message has fully arrived at the
  destination node; early arrivals park in an unexpected-message queue;
* matching follows MPI envelope semantics: (source, tag) with
  ``ANY_SOURCE``/``ANY_TAG`` wildcards, in posting order;
* ``Barrier`` is coordinated centrally (no wire traffic) with a small
  exit latency;
* messages between ranks on the same node bypass the fabric and cost a
  local memcpy;
* ``Compute`` durations are multiplied by ``compute_scale`` — 0.0 by
  default, matching the paper ("the simulation currently disregards
  compute time").

The *communication time* of a rank (the paper's headline metric) is the
time spent completing its message exchanging operations: finish time
minus scaled compute time minus time parked at barriers waiting for
peers (barriers are synchronisation, not message exchange — excluding
them keeps the per-rank distribution informative, as in Figure 3).
"""

from __future__ import annotations

from collections import deque
from functools import partial
from typing import NamedTuple

import numpy as np

from repro.config import GIB_PER_SEC
from repro.engine.simulator import Simulator
from repro.mpi.ops import (
    ANY_SOURCE,
    ANY_TAG,
    Barrier,
    Compute,
    Irecv,
    Isend,
    Recv,
    Send,
    Wait,
    WaitAll,
)
from repro.mpi.trace import JobTrace
from repro.network.fabric import Fabric
from repro.network.packet import Message

__all__ = ["ReplayEngine", "JobResult", "RankResult", "ReplayStalled"]


class _PostedRecv(NamedTuple):
    src: int
    tag: int
    req: int | None  # None for a blocking Recv


class _LocalDelivery:
    """Same-node message that bypassed the fabric (matching shim)."""

    __slots__ = ("src_rank", "dst_rank", "tag", "size", "job", "protocol")

    def __init__(self, src_rank: int, dst_rank: int, tag: int, size: int, job: int):
        self.src_rank = src_rank
        self.dst_rank = dst_rank
        self.tag = tag
        self.size = size
        self.job = job
        self.protocol = "eager"


class _Rendezvous:
    """State of one in-flight rendezvous transfer."""

    __slots__ = ("sender", "dst_rank", "size", "tag", "req", "posted_req", "receiver")

    def __init__(
        self, sender: "_RankState", dst_rank: int, size: int, tag: int, req: int | None
    ) -> None:
        self.sender = sender
        self.dst_rank = dst_rank
        self.size = size
        self.tag = tag
        self.req = req  # sender-side request (None = blocking Send)
        self.posted_req: int | None = None  # receiver-side request
        self.receiver: "_RankState | None" = None


class _RankState:
    __slots__ = (
        "job",
        "rank",
        "node",
        "ops",
        "pc",
        "blocked",
        "wait_req",
        "outstanding",
        "posted",
        "unexpected",
        "blocked_since",
        "blocked_total",
        "barrier_total",
        "compute_total",
        "finish_time",
        "bytes_sent",
        "bytes_recv",
        "msgs_sent",
        "msgs_recv",
    )

    def __init__(self, job: "_JobState", rank: int, node: int, ops: list) -> None:
        self.job = job
        self.rank = rank
        self.node = node
        self.ops = ops
        self.pc = 0
        self.blocked: str | None = None
        self.wait_req: int = -1
        self.outstanding: dict[int, int] = {}
        self.posted: deque[_PostedRecv] = deque()
        self.unexpected: deque = deque()
        self.blocked_since = 0.0
        self.blocked_total = 0.0
        self.barrier_total = 0.0
        self.compute_total = 0.0
        self.finish_time = -1.0
        self.bytes_sent = 0
        self.bytes_recv = 0
        self.msgs_sent = 0
        self.msgs_recv = 0


class _JobState:
    __slots__ = (
        "job_id",
        "trace",
        "nodes",
        "start_ns",
        "ranks",
        "barrier_waiting",
        "finished_ranks",
        "done",
        "finish_time",
        "hop_sum",
        "pkt_count",
        "send_events",
    )

    def __init__(
        self, job_id: int, trace: JobTrace, nodes: list[int], start_ns: float = 0.0
    ) -> None:
        self.job_id = job_id
        self.trace = trace
        self.nodes = list(nodes)
        self.start_ns = start_ns
        self.ranks: list[_RankState] = []
        self.barrier_waiting: list[_RankState] = []
        self.finished_ranks = 0
        # Plain-attribute completion flag: the run loop's stop()
        # polls this after *every* event, so it must stay a single
        # attribute load (no property call, no len()).
        self.done = False
        self.finish_time = -1.0
        n = trace.num_ranks
        self.hop_sum = np.zeros(n, dtype=np.float64)
        self.pkt_count = np.zeros(n, dtype=np.int64)
        self.send_events: list[tuple[float, int, int]] | None = None

    @property
    def finished(self) -> bool:
        return self.done


class RankResult(NamedTuple):
    """Per-rank replay outcome."""

    rank: int
    comm_time_ns: float
    finish_time_ns: float
    blocked_time_ns: float
    avg_hops: float
    bytes_sent: int
    bytes_recv: int


class JobResult:
    """Aggregated per-job replay outcome (NumPy arrays over ranks)."""

    def __init__(
        self,
        name: str,
        comm_time_ns: np.ndarray,
        finish_time_ns: np.ndarray,
        blocked_time_ns: np.ndarray,
        avg_hops: np.ndarray,
        bytes_sent: np.ndarray,
        bytes_recv: np.ndarray,
        send_events: list[tuple[float, int, int]] | None = None,
    ) -> None:
        self.name = name
        self.comm_time_ns = comm_time_ns
        self.finish_time_ns = finish_time_ns
        self.blocked_time_ns = blocked_time_ns
        self.avg_hops = avg_hops
        self.bytes_sent = bytes_sent
        self.bytes_recv = bytes_recv
        self.send_events = send_events

    @property
    def num_ranks(self) -> int:
        return len(self.comm_time_ns)

    @property
    def max_comm_time_ns(self) -> float:
        """The sensitivity study's metric (paper Section IV-B)."""
        return float(self.comm_time_ns.max())

    def rank(self, i: int) -> RankResult:
        return RankResult(
            i,
            float(self.comm_time_ns[i]),
            float(self.finish_time_ns[i]),
            float(self.blocked_time_ns[i]),
            float(self.avg_hops[i]),
            int(self.bytes_sent[i]),
            int(self.bytes_recv[i]),
        )


class ReplayStalled(RuntimeError):
    """The event queue drained while ranks were still blocked."""


class ReplayEngine:
    """Replays one or more job traces over a shared fabric."""

    def __init__(
        self,
        sim: Simulator,
        fabric: Fabric,
        compute_scale: float = 0.0,
        barrier_latency_ns: float = 1000.0,
        local_copy_bw: float = 50.0 * GIB_PER_SEC,
        local_latency_ns: float = 500.0,
        record_sends: bool = False,
        eager_threshold: int | None = None,
    ) -> None:
        if compute_scale < 0:
            raise ValueError("compute_scale must be non-negative")
        if eager_threshold is not None and eager_threshold < 0:
            raise ValueError("eager_threshold must be non-negative")
        self.sim = sim
        self.fabric = fabric
        self.compute_scale = compute_scale
        self.barrier_latency_ns = barrier_latency_ns
        self.local_copy_bw = local_copy_bw
        self.local_latency_ns = local_latency_ns
        self.record_sends = record_sends
        self.eager_threshold = eager_threshold
        self._jobs: dict[int, _JobState] = {}
        self._injectors: list = []
        self._msg_id = 0
        self._started = False

    # ------------------------------------------------------------------
    # setup
    # ------------------------------------------------------------------
    def add_job(
        self,
        job_id: int,
        trace: JobTrace,
        nodes: list[int],
        start_ns: float = 0.0,
    ) -> None:
        """Register a job with its rank->node placement.

        ``start_ns`` delays the job's first operation — multi-job
        workloads (cluster studies) submit jobs at different times.
        """
        if self._started:
            raise RuntimeError("cannot add jobs after the replay has started")
        if job_id in self._jobs:
            raise ValueError(f"job {job_id} already registered")
        if len(nodes) != trace.num_ranks:
            raise ValueError(
                f"placement has {len(nodes)} nodes for {trace.num_ranks} ranks"
            )
        if start_ns < 0:
            raise ValueError("start_ns must be non-negative")
        # Note: several ranks may legitimately share a node (the paper
        # maps one rank per node, but the engine supports co-location;
        # same-node messages bypass the fabric as local copies).
        js = _JobState(job_id, trace, nodes, start_ns)
        if self.record_sends:
            js.send_events = []
        for rt in trace.ranks:
            js.ranks.append(_RankState(js, rt.rank, nodes[rt.rank], rt.ops))
        js.done = not js.ranks  # a rank-less trace is trivially finished
        self._jobs[job_id] = js

    def add_injector(self, injector) -> None:
        """Register a background-traffic injector (see repro.apps.synthetic).

        Injectors get ``start(sim, fabric)`` called when the replay
        starts; they are not part of any stop condition.
        """
        if self._started:
            raise RuntimeError("cannot add injectors after start")
        self._injectors.append(injector)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._started:
            return
        self._started = True
        for js in self._jobs.values():
            for rs in js.ranks:
                self.sim.at(js.start_ns, self._advance, rs)
        for injector in self._injectors:
            injector.start(self.sim, self.fabric)

    def run(
        self,
        target_job: int | None = None,
        until: float | None = None,
        max_events: int | None = None,
    ) -> float:
        """Run until the target job (or every job) finishes.

        Returns the simulated stop time. Raises :class:`ReplayStalled` if
        the calendar drains with ranks still blocked (an unmatched
        receive or a partial barrier — i.e. a malformed trace).
        """
        self.start()
        if target_job is not None and target_job not in self._jobs:
            raise ValueError(f"unknown job {target_job}")

        if target_job is not None:
            # partial(getattr, ...) stays in C — the engine polls stop()
            # after every event, so a Python lambda frame here is ~10% of
            # the whole event dispatch cost.
            js = self._jobs[target_job]
            stop = partial(getattr, js, "done")
        else:
            jobs = list(self._jobs.values())
            stop = lambda: all(j.done for j in jobs)  # noqa: E731

        end = self.sim.run(until=until, stop=stop, max_events=max_events)
        self.fabric.drain_saturation()
        if not stop() and until is None and self.sim.pending == 0:
            raise ReplayStalled(self._stall_report())
        return end

    def job_finished(self, job_id: int) -> bool:
        return self._jobs[job_id].finished

    def job_result(self, job_id: int) -> JobResult:
        """Collect per-rank results for a finished (or stopped) job."""
        js = self._jobs[job_id]
        n = len(js.ranks)
        comm = np.empty(n)
        finish = np.empty(n)
        blocked = np.empty(n)
        sent = np.empty(n, dtype=np.int64)
        recv = np.empty(n, dtype=np.int64)
        for i, rs in enumerate(js.ranks):
            ft = rs.finish_time if rs.finish_time >= 0 else self.sim.now
            finish[i] = ft
            comm[i] = ft - js.start_ns - rs.compute_total - rs.barrier_total
            blocked[i] = rs.blocked_total
            sent[i] = rs.bytes_sent
            recv[i] = rs.bytes_recv
        with np.errstate(invalid="ignore", divide="ignore"):
            hops = np.where(
                js.pkt_count > 0, js.hop_sum / np.maximum(js.pkt_count, 1), 0.0
            )
        return JobResult(
            js.trace.name, comm, finish, blocked, hops, sent, recv, js.send_events
        )

    def _stall_report(self) -> str:
        stuck: list[str] = []
        for js in self._jobs.values():
            for rs in js.ranks:
                if rs.finish_time < 0:
                    op = rs.ops[rs.pc] if rs.pc < len(rs.ops) else "<end>"
                    stuck.append(
                        f"job {js.job_id} rank {rs.rank} blocked={rs.blocked} "
                        f"pc={rs.pc} op={op}"
                    )
                if len(stuck) >= 8:
                    break
        return "replay stalled; stuck ranks:\n  " + "\n  ".join(stuck)

    # ------------------------------------------------------------------
    # rank state machine
    # ------------------------------------------------------------------
    def _block(self, rs: _RankState, why: str) -> None:
        rs.blocked = why
        rs.blocked_since = self.sim.now

    def _unblock(self, rs: _RankState) -> None:
        elapsed = self.sim.now - rs.blocked_since
        if rs.blocked == "barrier":
            rs.barrier_total += elapsed
        else:
            rs.blocked_total += elapsed
        rs.blocked = None

    def _advance(self, rs: _RankState) -> None:
        ops = rs.ops
        n = len(ops)
        while rs.pc < n:
            op = ops[rs.pc]
            t = type(op)
            if t is Isend:
                self._start_send(rs, op.dst, op.size, op.tag, req=op.req)
                rs.pc += 1
            elif t is Irecv:
                self._post_recv(rs, op.src, op.tag, req=op.req)
                rs.pc += 1
            elif t is Send:
                if self._start_send(rs, op.dst, op.size, op.tag, req=None):
                    rs.pc += 1
                else:
                    self._block(rs, "send")
                    return
            elif t is Recv:
                if self._post_recv(rs, op.src, op.tag, req=None):
                    rs.pc += 1
                else:
                    self._block(rs, "recv")
                    return
            elif t is Wait:
                if rs.outstanding.get(op.req, 0) > 0:
                    rs.wait_req = op.req
                    self._block(rs, "wait")
                    return
                rs.pc += 1
            elif t is WaitAll:
                if rs.outstanding:
                    self._block(rs, "waitall")
                    return
                rs.pc += 1
            elif t is Barrier:
                rs.pc += 1  # resume past the barrier once released
                self._enter_barrier(rs)
                return
            elif t is Compute:
                dur = op.duration_ns * self.compute_scale
                rs.pc += 1
                if dur > 0:
                    rs.compute_total += dur
                    self.sim.schedule(dur, self._advance, rs)
                    return
            else:  # pragma: no cover - trace type error
                raise TypeError(f"unknown op {op!r}")
        # Rank done.
        rs.finish_time = self.sim.now
        js = rs.job
        js.finished_ranks += 1
        if js.finished_ranks == len(js.ranks):
            js.done = True
            js.finish_time = self.sim.now

    # ------------------------------------------------------------------
    # sends
    # ------------------------------------------------------------------
    def _start_send(
        self, rs: _RankState, dst: int, size: int, tag: int, req: int | None
    ) -> bool:
        """Issue a send; returns True if it completed synchronously."""
        js = rs.job
        now = self.sim.now
        rs.bytes_sent += size
        rs.msgs_sent += 1
        if js.send_events is not None:
            js.send_events.append((now, rs.rank, size))
        dst_node = js.nodes[dst]
        if req is not None:
            rs.outstanding[req] = rs.outstanding.get(req, 0) + 1

        if dst_node == rs.node:
            # Same-node: local memcpy, off the fabric.
            delay = self.local_latency_ns + size / self.local_copy_bw
            shim = _LocalDelivery(rs.rank, dst, tag, size, js.job_id)
            self.sim.schedule(delay, self._deliver, shim)
            if req is not None:
                self._complete_request(rs, req)
            return True

        if self.eager_threshold is not None and size > self.eager_threshold:
            # Rendezvous: ship an RTS control message; the payload only
            # moves once the receiver has matched it and returned a CTS.
            rdv = _Rendezvous(rs, dst, size, tag, req)
            rts = self._control_message(rs.node, dst_node, rs.rank, dst, tag, js)
            rts.protocol = "rts"
            rts.ref = rdv
            rts.on_delivered = self._on_rts_delivered
            self.fabric.inject(rts)
            return req is not None  # blocking Send waits for the payload

        self._msg_id += 1
        msg = Message(
            self._msg_id,
            rs.node,
            dst_node,
            size,
            tag,
            src_rank=rs.rank,
            dst_rank=dst,
            job=js.job_id,
        )
        msg.on_delivered = self._on_fabric_delivered
        if req is not None:
            msg.on_injected = self._make_isend_complete(rs, req)
            self.fabric.inject(msg)
            return True
        msg.on_injected = self._make_send_complete(rs)
        self.fabric.inject(msg)
        return False

    def _control_message(
        self, src_node: int, dst_node: int, src_rank: int, dst_rank: int,
        tag: int, js: _JobState,
    ) -> Message:
        self._msg_id += 1
        return Message(
            self._msg_id,
            src_node,
            dst_node,
            0,
            tag,
            src_rank=src_rank,
            dst_rank=dst_rank,
            job=js.job_id,
        )

    def _make_send_complete(self, rs: _RankState):
        def _complete(msg: Message, time: float) -> None:
            self._unblock(rs)
            rs.pc += 1
            self._advance(rs)

        return _complete

    def _make_isend_complete(self, rs: _RankState, req: int):
        def _complete(msg: Message, time: float) -> None:
            self._complete_request(rs, req)

        return _complete

    # ------------------------------------------------------------------
    # receives and matching
    # ------------------------------------------------------------------
    @staticmethod
    def _matches(posted_src: int, posted_tag: int, msg) -> bool:
        return (posted_src == ANY_SOURCE or posted_src == msg.src_rank) and (
            posted_tag == ANY_TAG or posted_tag == msg.tag
        )

    def _post_recv(
        self, rs: _RankState, src: int, tag: int, req: int | None
    ) -> bool:
        """Post a receive; returns True if it completed synchronously."""
        if req is not None:
            rs.outstanding[req] = rs.outstanding.get(req, 0) + 1
        # Check the unexpected queue first (eager early arrivals, or
        # parked rendezvous RTS messages).
        for i, msg in enumerate(rs.unexpected):
            if self._matches(src, tag, msg):
                del rs.unexpected[i]
                if msg.protocol == "rts":
                    # Matched a rendezvous request: answer with CTS; the
                    # receive completes when the payload lands.
                    rdv = msg.ref
                    rdv.receiver = rs
                    rdv.posted_req = req
                    self._send_cts(rdv)
                    return req is not None
                rs.bytes_recv += msg.size
                rs.msgs_recv += 1
                if req is not None:
                    self._complete_request(rs, req)
                return True
        rs.posted.append(_PostedRecv(src, tag, req))
        return req is not None

    def _deliver(self, msg) -> None:
        """Deliver a message (fabric or local) to its destination rank."""
        js = self._jobs[msg.job]
        rs = js.ranks[msg.dst_rank]
        for i, posted in enumerate(rs.posted):
            if self._matches(posted.src, posted.tag, msg):
                del rs.posted[i]
                rs.bytes_recv += msg.size
                rs.msgs_recv += 1
                if posted.req is None:
                    # The rank is blocked in this Recv.
                    self._unblock(rs)
                    rs.pc += 1
                    self._advance(rs)
                else:
                    self._complete_request(rs, posted.req)
                return
        rs.unexpected.append(msg)

    def _on_fabric_delivered(self, msg: Message, time: float) -> None:
        js = self._jobs[msg.job]
        js.hop_sum[msg.src_rank] += msg.hop_sum
        js.pkt_count[msg.src_rank] += msg.num_packets
        self._deliver(msg)

    # ------------------------------------------------------------------
    # rendezvous protocol
    # ------------------------------------------------------------------
    def _on_rts_delivered(self, msg: Message, time: float) -> None:
        """Receiver side: match the RTS envelope against posted recvs."""
        js = self._jobs[msg.job]
        rs = js.ranks[msg.dst_rank]
        rdv: _Rendezvous = msg.ref
        rdv.receiver = rs
        for i, posted in enumerate(rs.posted):
            if self._matches(posted.src, posted.tag, msg):
                del rs.posted[i]
                rdv.posted_req = posted.req
                self._send_cts(rdv)
                return
        rs.unexpected.append(msg)  # park until a matching recv posts

    def _send_cts(self, rdv: _Rendezvous) -> None:
        assert rdv.receiver is not None
        js = rdv.sender.job
        cts = self._control_message(
            rdv.receiver.node,
            rdv.sender.node,
            rdv.receiver.rank,
            rdv.sender.rank,
            rdv.tag,
            js,
        )
        cts.protocol = "cts"
        cts.ref = rdv
        cts.on_delivered = self._on_cts_delivered
        self.fabric.inject(cts)

    def _on_cts_delivered(self, msg: Message, time: float) -> None:
        """Sender side: the receiver is ready — ship the payload."""
        rdv: _Rendezvous = msg.ref
        sender = rdv.sender
        assert rdv.receiver is not None
        self._msg_id += 1
        data = Message(
            self._msg_id,
            sender.node,
            rdv.receiver.node,
            rdv.size,
            rdv.tag,
            src_rank=sender.rank,
            dst_rank=rdv.dst_rank,
            job=sender.job.job_id,
        )
        data.protocol = "data"
        data.ref = rdv
        if rdv.req is None:
            data.on_injected = self._make_send_complete(sender)
        else:
            data.on_injected = self._make_isend_complete(sender, rdv.req)
        data.on_delivered = self._on_rdv_data_delivered
        self.fabric.inject(data)

    def _on_rdv_data_delivered(self, msg: Message, time: float) -> None:
        """Receiver side: payload landed — complete the matched recv."""
        js = self._jobs[msg.job]
        js.hop_sum[msg.src_rank] += msg.hop_sum
        js.pkt_count[msg.src_rank] += msg.num_packets
        rdv: _Rendezvous = msg.ref
        rs = rdv.receiver
        assert rs is not None
        rs.bytes_recv += msg.size
        rs.msgs_recv += 1
        if rdv.posted_req is None:
            self._unblock(rs)
            rs.pc += 1
            self._advance(rs)
        else:
            self._complete_request(rs, rdv.posted_req)

    # ------------------------------------------------------------------
    # requests and barriers
    # ------------------------------------------------------------------
    def _complete_request(self, rs: _RankState, req: int) -> None:
        count = rs.outstanding.get(req, 0)
        if count <= 1:
            rs.outstanding.pop(req, None)
        else:
            rs.outstanding[req] = count - 1
        if rs.blocked == "wait" and rs.wait_req == req and req not in rs.outstanding:
            self._unblock(rs)
            rs.pc += 1
            self._advance(rs)
        elif rs.blocked == "waitall" and not rs.outstanding:
            self._unblock(rs)
            rs.pc += 1
            self._advance(rs)

    def _enter_barrier(self, rs: _RankState) -> None:
        js = rs.job
        self._block(rs, "barrier")
        js.barrier_waiting.append(rs)
        if len(js.barrier_waiting) == len(js.ranks):
            waiting, js.barrier_waiting = js.barrier_waiting, []
            for peer in waiting:
                self._unblock(peer)
                self.sim.schedule(self.barrier_latency_ns, self._advance, peer)
