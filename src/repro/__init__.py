"""dragonfly-tradeoff: reproduction of the IPDPS 2018 trade-off study of
localizing communication vs. balancing network traffic on dragonfly systems.

Quickstart::

    import repro

    cfg = repro.small()
    trace = repro.crystal_router_trace(num_ranks=32, seed=1)
    result = repro.run_single(
        cfg, trace, placement="rand", routing="adp", seed=1
    )
    print(result.job.comm_time_ns.max() / 1e6, "ms")

Higher-level drivers live in :mod:`repro.core`:
:class:`~repro.core.study.TradeoffStudy` (paper Section IV-A),
:func:`~repro.core.sensitivity.sensitivity_sweep` (IV-B), and
:func:`~repro.core.interference.interference_study` (IV-C).
"""

from repro.config import (
    DragonflyParams,
    NetworkParams,
    SimulationConfig,
    theta,
    medium,
    small,
    tiny,
)
from repro.topology import Dragonfly, LinkKind
from repro.engine import Simulator, rng_stream
from repro.network import Fabric, Message
from repro.routing import AdaptiveRouting, MinimalRouting, make_routing
from repro.mpi import (
    JobTrace,
    RankTrace,
    ReplayEngine,
    load_trace,
    save_trace,
)
from repro.placement import make_placement, PLACEMENT_NAMES
from repro.apps import (
    amg_trace,
    crystal_router_trace,
    fill_boundary_trace,
    BurstyTraffic,
    UniformRandomTraffic,
)
from repro.metrics import RunMetrics, TimeSeriesMetrics, cdf, box_stats
from repro.obs import CongestionEvent, ObsConfig, ObsRecorder
from repro.core import (
    JobSpec,
    Recommendation,
    RunResult,
    TradeoffStudy,
    interference_study,
    recommend,
    resilience_study,
    run_cluster,
    run_single,
    sensitivity_sweep,
    variability_study,
)
from repro.faults import (
    FaultPlan,
    LinkFault,
    RouterFault,
    load_fault_plan,
    random_fault_plan,
    save_fault_plan,
)
from repro.exec import (
    ExperimentPlan,
    ResultCache,
    RunSpec,
    TextReporter,
    execute_plan,
    plan_grid,
    plan_sensitivity,
)
from repro.flow import (
    BACKEND_NAMES,
    FidelityReport,
    FlowFabric,
    FlowParams,
    fidelity_report,
)
from repro.cluster import (
    ClusterScheduler,
    EpochSpec,
    StreamJob,
    StreamResult,
    WorkloadMix,
    generate_stream,
    run_stream,
)
from repro.advisor import (
    FeatureExtractor,
    FunnelResult,
    RidgeSurrogate,
    suggest_placement,
    train_surrogate,
)
from repro.mlcomms import (
    TraceImportError,
    TrainingReport,
    dp_allreduce_trace,
    load_comms_trace,
    moe_alltoall_trace,
    parse_comms_trace,
    pp_1f1b_trace,
    tp_layer_trace,
    training_tradeoff,
)

__version__ = "1.0.0"

__all__ = [
    "DragonflyParams",
    "NetworkParams",
    "SimulationConfig",
    "theta",
    "medium",
    "small",
    "tiny",
    "Dragonfly",
    "LinkKind",
    "Simulator",
    "rng_stream",
    "Fabric",
    "Message",
    "AdaptiveRouting",
    "MinimalRouting",
    "make_routing",
    "JobTrace",
    "RankTrace",
    "ReplayEngine",
    "load_trace",
    "save_trace",
    "make_placement",
    "PLACEMENT_NAMES",
    "amg_trace",
    "crystal_router_trace",
    "fill_boundary_trace",
    "BurstyTraffic",
    "UniformRandomTraffic",
    "RunMetrics",
    "TimeSeriesMetrics",
    "CongestionEvent",
    "ObsConfig",
    "ObsRecorder",
    "cdf",
    "box_stats",
    "RunResult",
    "TradeoffStudy",
    "interference_study",
    "run_single",
    "sensitivity_sweep",
    "JobSpec",
    "run_cluster",
    "Recommendation",
    "recommend",
    "resilience_study",
    "variability_study",
    "FaultPlan",
    "LinkFault",
    "RouterFault",
    "load_fault_plan",
    "random_fault_plan",
    "save_fault_plan",
    "ExperimentPlan",
    "ResultCache",
    "RunSpec",
    "TextReporter",
    "execute_plan",
    "plan_grid",
    "plan_sensitivity",
    "BACKEND_NAMES",
    "FidelityReport",
    "FlowFabric",
    "FlowParams",
    "fidelity_report",
    "ClusterScheduler",
    "EpochSpec",
    "StreamJob",
    "StreamResult",
    "WorkloadMix",
    "generate_stream",
    "run_stream",
    "FeatureExtractor",
    "FunnelResult",
    "RidgeSurrogate",
    "suggest_placement",
    "train_surrogate",
    "TraceImportError",
    "TrainingReport",
    "dp_allreduce_trace",
    "load_comms_trace",
    "moe_alltoall_trace",
    "parse_comms_trace",
    "pp_1f1b_trace",
    "tp_layer_trace",
    "training_tradeoff",
    "__version__",
]
