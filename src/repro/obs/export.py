"""Serialise :class:`TimeSeriesMetrics` to JSONL / CSV and back.

JSONL layout (one object per line, ``type`` discriminated):

* ``header`` — schema version, window width, link kinds/sources;
* ``window`` — one per window: end time plus full per-link arrays;
* ``event``  — one per retained congestion event;
* ``footer`` — totals for cheap integrity checks on partial reads.

CSV is the long-format per-(window, link) table most plotting tools
want directly; congestion events are not representable in it (use
JSONL when the trace matters).
"""

from __future__ import annotations

import csv
import json
import os
from pathlib import Path

import numpy as np

from repro.metrics.timeseries import (
    SCHEMA_VERSION,
    CongestionEvent,
    TimeSeriesMetrics,
)

__all__ = ["write_jsonl", "read_jsonl", "write_csv", "export"]


def write_jsonl(ts: TimeSeriesMetrics, path: str | os.PathLike) -> Path:
    """Write the full series (windows + events) as JSON lines."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w") as fh:
        fh.write(
            json.dumps(
                {
                    "type": "header",
                    "schema_version": ts.schema_version,
                    "window_ns": ts.window_ns,
                    "num_links": ts.num_links,
                    "num_windows": ts.num_windows,
                    "link_kind": ts.link_kind.tolist(),
                    "link_src": ts.link_src.tolist(),
                }
            )
            + "\n"
        )
        for i in range(ts.num_windows):
            fh.write(
                json.dumps(
                    {
                        "type": "window",
                        "t_ns": float(ts.edges[i]),
                        "bytes_fwd": ts.bytes_fwd[i].tolist(),
                        "busy_ns": ts.busy_ns[i].tolist(),
                        "stall_ns": ts.stall_ns[i].tolist(),
                        "queue_bytes": ts.queue_bytes[i].tolist(),
                        "injected_packets": int(ts.injected_packets[i]),
                        "delivered_packets": int(ts.delivered_packets[i]),
                    }
                )
                + "\n"
            )
        for ev in ts.events:
            fh.write(
                json.dumps(
                    {
                        "type": "event",
                        "t_ns": ev.t_ns,
                        "kind": ev.kind,
                        "link": ev.link,
                        "vc": ev.vc,
                        "value": ev.value,
                    }
                )
                + "\n"
            )
        fh.write(
            json.dumps(
                {
                    "type": "footer",
                    "total_bytes": int(ts.bytes_fwd.sum()),
                    "total_stall_ns": float(ts.stall_ns.sum()),
                    "events": len(ts.events),
                    "events_dropped": ts.events_dropped,
                }
            )
            + "\n"
        )
    return path


def read_jsonl(path: str | os.PathLike) -> TimeSeriesMetrics:
    """Rebuild a :class:`TimeSeriesMetrics` from :func:`write_jsonl` output."""
    header = None
    windows: list[dict] = []
    events: list[CongestionEvent] = []
    footer: dict = {}
    with open(path) as fh:
        for line in fh:
            rec = json.loads(line)
            kind = rec.pop("type")
            if kind == "header":
                header = rec
            elif kind == "window":
                windows.append(rec)
            elif kind == "event":
                events.append(
                    CongestionEvent(
                        rec["t_ns"], rec["kind"], rec["link"], rec["vc"],
                        rec["value"],
                    )
                )
            elif kind == "footer":
                footer = rec
    if header is None:
        raise ValueError(f"{path}: missing JSONL header record")
    if header["schema_version"] != SCHEMA_VERSION:
        raise ValueError(
            f"{path}: schema version {header['schema_version']} "
            f"(this code reads {SCHEMA_VERSION})"
        )
    n = header["num_links"]

    def stack(field: str, dtype) -> np.ndarray:
        if not windows:
            return np.zeros((0, n), dtype=dtype)
        return np.asarray([w[field] for w in windows], dtype=dtype)

    return TimeSeriesMetrics(
        window_ns=header["window_ns"],
        edges=np.asarray([w["t_ns"] for w in windows]),
        bytes_fwd=stack("bytes_fwd", np.int64),
        busy_ns=stack("busy_ns", np.float64),
        stall_ns=stack("stall_ns", np.float64),
        queue_bytes=stack("queue_bytes", np.int64),
        link_kind=np.asarray(header["link_kind"], dtype=np.int8),
        link_src=np.asarray(header["link_src"], dtype=np.int32),
        injected_packets=np.asarray(
            [w["injected_packets"] for w in windows], dtype=np.int64
        ),
        delivered_packets=np.asarray(
            [w["delivered_packets"] for w in windows], dtype=np.int64
        ),
        injected_bytes=np.zeros(len(windows), dtype=np.int64),
        delivered_bytes=np.zeros(len(windows), dtype=np.int64),
        events=events,
        events_dropped=int(footer.get("events_dropped", 0)),
    )


def write_csv(ts: TimeSeriesMetrics, path: str | os.PathLike) -> Path:
    """Write the long-format per-(window, link) table."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(
            [
                "window_end_ns",
                "link",
                "link_kind",
                "bytes_fwd",
                "busy_ns",
                "stall_ns",
                "queue_bytes",
            ]
        )
        for i in range(ts.num_windows):
            t = float(ts.edges[i])
            for lid in range(ts.num_links):
                writer.writerow(
                    [
                        t,
                        lid,
                        int(ts.link_kind[lid]),
                        int(ts.bytes_fwd[i, lid]),
                        float(ts.busy_ns[i, lid]),
                        float(ts.stall_ns[i, lid]),
                        int(ts.queue_bytes[i, lid]),
                    ]
                )
    return path


def export(ts: TimeSeriesMetrics, path: str | os.PathLike) -> Path:
    """Write ``ts`` in the format implied by ``path``'s extension."""
    path = Path(path)
    if path.suffix == ".csv":
        return write_csv(ts, path)
    return write_jsonl(ts, path)
