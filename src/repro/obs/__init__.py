"""repro.obs — low-overhead, time-resolved network observability.

The paper's core evidence is *time-resolved* network state: per-channel
traffic, hops, and link-saturation onset over the run (Figs. 4-6). This
package samples a live :class:`~repro.network.fabric.Fabric` into
fixed-width windows and records a structured congestion-event trace,
producing a :class:`~repro.metrics.timeseries.TimeSeriesMetrics` that
travels on :class:`~repro.core.runner.RunResult` (and therefore through
the :mod:`repro.exec` pool and disk cache).

Enable it per run with ``run_single(..., obs=ObsConfig(...))``, per
study with ``TradeoffStudy(..., obs=...)``, or from the CLI with
``--obs [--obs-window-ns N --obs-out PATH]``.

Disabled (the default), the simulation is bit-identical to an
unobserved run — see the overhead contract in
:mod:`repro.obs.recorder`.
"""

from repro.metrics.timeseries import (
    SCHEMA_VERSION,
    CongestionEvent,
    TimeSeriesMetrics,
)
from repro.obs.export import export, read_jsonl, write_csv, write_jsonl
from repro.obs.recorder import ObsConfig, ObsRecorder

__all__ = [
    "SCHEMA_VERSION",
    "CongestionEvent",
    "ObsConfig",
    "ObsRecorder",
    "TimeSeriesMetrics",
    "export",
    "read_jsonl",
    "write_csv",
    "write_jsonl",
]
