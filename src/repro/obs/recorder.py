"""Windowed sampling of live fabric state (the repro.obs core).

:class:`ObsRecorder` registers a :meth:`Simulator.add_heartbeat
<repro.engine.simulator.Simulator.add_heartbeat>` at the configured
window width and, at each beat, snapshots the fabric's cumulative
per-link counters. Windows are the *differences* between consecutive
snapshots, with two corrections that make the accounting exact at
arbitrary sample instants:

* busy time credited at transmission start is reduced by the still-
  running tail ``max(0, busy_until - T)``;
* saturation time is extended by the currently *open* stall interval
  ``T - blocked_since``.

Because every window is a delta of a corrected cumulative counter, the
per-window values telescope back to the run aggregates (exactly for
int64 byte counters, to float precision for times) and each time-based
window value is bounded by the window span.

Overhead contract: with no recorder attached the simulation is
bit-identical to an unobserved run — the engine pays one falsy branch
per event and the fabric one ``is None`` test on already-cold
congestion paths. With a recorder attached the cost is O(num_links)
per window plus O(1) per congestion event, and the *physics* is still
bit-identical: the recorder only reads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.metrics.timeseries import CongestionEvent, TimeSeriesMetrics

__all__ = ["ObsConfig", "ObsRecorder"]


@dataclass(frozen=True)
class ObsConfig:
    """Observability knobs for one run.

    Frozen (hashable, JSON-serialisable via ``dataclasses.asdict``) so
    it can ride inside a content-addressed
    :class:`~repro.exec.plan.RunSpec`.
    """

    #: Sampling window width in simulated ns.
    window_ns: float = 50_000.0
    #: Record the structured congestion-event trace.
    events: bool = True
    #: Cap on retained congestion events; the excess is counted, not kept.
    max_trace_events: int = 100_000
    #: Minimum gap between retained ``buffer_full`` events of the same
    #: (link, vc), to keep a hot buffer from flooding the trace.
    buffer_full_interval_ns: float = 10_000.0

    def __post_init__(self) -> None:
        if self.window_ns <= 0:
            raise ValueError("window_ns must be positive")
        if self.max_trace_events < 0:
            raise ValueError("max_trace_events must be non-negative")
        if self.buffer_full_interval_ns < 0:
            raise ValueError("buffer_full_interval_ns must be non-negative")


class ObsRecorder:
    """Samples one fabric into fixed-width windows; builds the series.

    ``probe`` is an optional ``(t_ns, fabric)`` callback invoked at
    every window edge — the invariant test suite uses it to assert live
    state (e.g. credit non-negativity) mid-run.
    """

    def __init__(
        self,
        sim,
        fabric,
        config: ObsConfig | None = None,
        probe: Callable[[float, object], None] | None = None,
    ) -> None:
        self.sim = sim
        self.fabric = fabric
        self.config = config or ObsConfig()
        self.probe = probe
        self._installed = False
        self._finalized: TimeSeriesMetrics | None = None

        n = fabric.topo.num_links
        self._n_links = n
        self._edges: list[float] = []
        self._bytes_rows: list[np.ndarray] = []
        self._busy_rows: list[np.ndarray] = []
        self._stall_rows: list[np.ndarray] = []
        self._queue_rows: list[np.ndarray] = []
        self._inj_pkts: list[int] = []
        self._del_pkts: list[int] = []
        self._inj_bytes: list[int] = []
        self._del_bytes: list[int] = []
        # Previous corrected cumulative snapshots (window deltas).
        self._prev_bytes = np.zeros(n, dtype=np.int64)
        self._prev_busy = np.zeros(n, dtype=np.float64)
        self._prev_stall = np.zeros(n, dtype=np.float64)
        self._last_edge = 0.0

        self.events: list[CongestionEvent] = []
        self.events_dropped = 0
        self._last_buffer_full: dict[int, float] = {}

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def install(self) -> "ObsRecorder":
        """Attach to the fabric and register the sampling heartbeat."""
        if self._installed:
            return self
        if self.fabric.obs is not None:
            raise RuntimeError("fabric already has an observer attached")
        self.fabric.obs = self
        # The fabric's hot-path closures capture ``obs`` by value;
        # rebinding it requires recompiling them.
        self.fabric._bind_hot_path()
        self.sim.add_heartbeat(self.config.window_ns, self._sample)
        self._installed = True
        return self

    def _sample(self, t: float) -> None:
        """Heartbeat callback: close the window ending at ``t``.

        Runs once per window on the hot heartbeat path: corrected
        cumulatives are computed inline (no tuple-returning helper call)
        and the window deltas reuse those arrays in place — the previous
        snapshot becomes the delta buffer, so each window allocates only
        the three arrays it must retain.
        """
        fab = self.fabric
        bytes_cum = np.asarray(fab.bytes_tx, dtype=np.int64)
        busy_cum = np.asarray(fab.busy_ns, dtype=np.float64)
        tail = np.asarray(fab.busy_until, dtype=np.float64)
        tail -= t
        np.clip(tail, 0.0, None, out=tail)
        busy_cum -= tail
        stall_cum = np.asarray(fab.sat_ns, dtype=np.float64)
        blocked = np.asarray(fab._blocked_since, dtype=np.float64)
        open_mask = blocked >= 0.0
        if open_mask.any():
            stall_cum = stall_cum + np.where(open_mask, t - blocked, 0.0)
        # Turn the previous snapshots into this window's deltas in place.
        prev_bytes, prev_busy, prev_stall = (
            self._prev_bytes, self._prev_busy, self._prev_stall
        )
        np.subtract(bytes_cum, prev_bytes, out=prev_bytes)
        np.subtract(busy_cum, prev_busy, out=prev_busy)
        np.subtract(stall_cum, prev_stall, out=prev_stall)
        self._edges.append(t)
        self._bytes_rows.append(prev_bytes)
        self._busy_rows.append(prev_busy)
        self._stall_rows.append(prev_stall)
        self._queue_rows.append(np.asarray(fab.queued_bytes, dtype=np.int64))
        self._inj_pkts.append(fab.packets_injected)
        self._del_pkts.append(fab.packets_delivered)
        self._inj_bytes.append(fab.bytes_injected)
        self._del_bytes.append(fab.bytes_delivered)
        self._prev_bytes = bytes_cum
        self._prev_busy = busy_cum
        self._prev_stall = stall_cum
        self._last_edge = t
        if self.probe is not None:
            self.probe(t, fab)

    def finalize(self, end_ns: float | None = None) -> TimeSeriesMetrics:
        """Close the trailing partial window and freeze the series.

        Call after the simulation has stopped (and after
        ``fabric.drain_saturation()``), with ``end_ns`` defaulting to
        the simulator's current time. Idempotent.
        """
        if self._finalized is not None:
            return self._finalized
        if end_ns is None:
            end_ns = self.sim.now
        if end_ns > self._last_edge:
            self._sample(end_ns)
        links = self.fabric.topo.links
        n_windows = len(self._edges)
        shape = (n_windows, self._n_links)
        self._finalized = TimeSeriesMetrics(
            window_ns=self.config.window_ns,
            edges=np.asarray(self._edges, dtype=np.float64),
            bytes_fwd=(
                np.vstack(self._bytes_rows)
                if n_windows
                else np.zeros(shape, dtype=np.int64)
            ),
            busy_ns=(
                np.vstack(self._busy_rows) if n_windows else np.zeros(shape)
            ),
            stall_ns=(
                np.vstack(self._stall_rows) if n_windows else np.zeros(shape)
            ),
            queue_bytes=(
                np.vstack(self._queue_rows)
                if n_windows
                else np.zeros(shape, dtype=np.int64)
            ),
            link_kind=np.asarray(links.kind, dtype=np.int8),
            link_src=np.asarray(links.src, dtype=np.int32),
            injected_packets=np.asarray(self._inj_pkts, dtype=np.int64),
            delivered_packets=np.asarray(self._del_pkts, dtype=np.int64),
            injected_bytes=np.asarray(self._inj_bytes, dtype=np.int64),
            delivered_bytes=np.asarray(self._del_bytes, dtype=np.int64),
            events=self.events,
            events_dropped=self.events_dropped,
        )
        return self._finalized

    # ------------------------------------------------------------------
    # congestion-event hooks (called by the fabric / routing, gated on
    # ``fabric.obs is not None``)
    # ------------------------------------------------------------------
    def _record(self, event: CongestionEvent) -> None:
        if len(self.events) >= self.config.max_trace_events:
            self.events_dropped += 1
            return
        self.events.append(event)

    def on_stall_onset(self, t: float, link: int) -> None:
        if self.config.events:
            self._record(CongestionEvent(t, "stall_onset", link, -1, 0.0))

    def on_stall_clear(self, t: float, link: int, duration_ns: float) -> None:
        if self.config.events:
            self._record(
                CongestionEvent(t, "stall_clear", link, -1, duration_ns)
            )

    def on_buffer_full(
        self, t: float, link: int, vc: int, occupancy: int, capacity: int
    ) -> None:
        if not self.config.events:
            return
        key = link * 64 + vc
        last = self._last_buffer_full.get(key)
        if last is not None and t - last < self.config.buffer_full_interval_ns:
            return
        self._last_buffer_full[key] = t
        self._record(
            CongestionEvent(t, "buffer_full", link, vc, float(occupancy))
        )

    def on_adaptive_divert(self, t: float, src_router: int, hops: int) -> None:
        if self.config.events:
            self._record(
                CongestionEvent(t, "adaptive_divert", src_router, -1, float(hops))
            )

    def on_fault(self, t: float, link: int, bw_scale: float) -> None:
        """A link fault landed: dead (``bw_scale == 0``) or degraded."""
        if self.config.events:
            self._record(CongestionEvent(t, "fault", link, -1, bw_scale))

    def on_reroute(self, t: float, link: int, remaining_hops: int) -> None:
        """A packet was re-routed around a dead channel onto ``link``."""
        if self.config.events:
            self._record(
                CongestionEvent(t, "reroute", link, -1, float(remaining_hops))
            )
