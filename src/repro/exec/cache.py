"""Disk result cache for experiment cells.

Results are pickled under their :attr:`RunSpec.key <repro.exec.plan.RunSpec.key>`
content hash, so the cache invalidates itself: any change to the
machine config, trace content, placement, routing, seed, replay
options, or the code-version salt produces a different key and the old
entry is simply never looked up again. Re-running a study against a
warm cache therefore only simulates changed cells.

Writes are atomic (temp file + ``os.replace``) so a crashed or killed
worker can never leave a truncated entry behind; unreadable entries are
treated as misses (with a warning) and deleted on lookup, and skipped
by the bulk scans the surrogate trainer uses.
"""

from __future__ import annotations

import contextlib
import os
import pickle
import tempfile
import warnings
from pathlib import Path
from typing import Any, Iterator

__all__ = ["ResultCache"]


class ResultCache:
    """Content-addressed pickle store: one file per experiment cell.

    Entries live at ``<root>/<key[:2]>/<key>.pkl`` (fanned out so huge
    sweeps do not pile thousands of files into one directory).
    """

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = Path(root)
        try:
            self.root.mkdir(parents=True, exist_ok=True)
        except FileExistsError:
            raise NotADirectoryError(
                f"cache root {self.root} exists and is not a directory"
            ) from None
        self.hits = 0
        self.misses = 0
        self.stores = 0

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl"

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).exists()

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*/*.pkl"))

    def get(self, key: str):
        """Return the cached result for ``key``, or ``None`` on a miss.

        A corrupt or unreadable entry counts as a miss and is removed.
        """
        path = self.path_for(key)
        try:
            with open(path, "rb") as fh:
                result = pickle.load(fh)
        except FileNotFoundError:
            self.misses += 1
            return None
        except Exception as exc:
            warnings.warn(
                f"dropping corrupt cache entry {path.name}: {exc!r}",
                RuntimeWarning,
                stacklevel=2,
            )
            self.misses += 1
            path.unlink(missing_ok=True)
            return None
        self.hits += 1
        return result

    def iter_items(self) -> Iterator[tuple[str, Any]]:
        """Yield ``(key, result)`` for every readable entry, sorted by key.

        Corrupt or truncated entries (a crashed writer on a pre-atomic
        cache, disk rot, a partial rsync) are **skipped with a
        warning**, never raised — a training-set scan over an
        accumulated cache must survive any file it finds. Unreadable
        entries are left in place; the next keyed :meth:`get` removes
        them.
        """
        for path in sorted(self.root.glob("*/*.pkl")):
            try:
                with open(path, "rb") as fh:
                    result = pickle.load(fh)
            except Exception as exc:
                warnings.warn(
                    f"skipping corrupt cache entry {path.name}: {exc!r}",
                    RuntimeWarning,
                    stacklevel=2,
                )
                continue
            yield path.stem, result

    def iter_results(self) -> Iterator[Any]:
        """Yield every readable cached result (see :meth:`iter_items`)."""
        for _key, result in self.iter_items():
            yield result

    def put(self, key: str, result) -> None:
        """Store ``result`` under ``key`` atomically."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(result, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except BaseException:
            with contextlib.suppress(OSError):
                os.unlink(tmp)
            raise
        self.stores += 1

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        for path in self.root.glob("*/*.pkl"):
            path.unlink(missing_ok=True)
            removed += 1
        return removed

    @property
    def stats(self) -> dict[str, int]:
        return {"hits": self.hits, "misses": self.misses, "stores": self.stores}
