"""Parallel experiment executor: planning, caching, pooling, telemetry.

The study drivers in :mod:`repro.core` all reduce to "run N independent,
fully-seeded simulation cells and reassemble". This package makes that
workload first-class:

* :mod:`repro.exec.plan` — enumerate a grid/sweep into content-addressed
  :class:`RunSpec` cells;
* :mod:`repro.exec.pool` — execute a plan serially or across a process
  pool, with per-cell timeout and bounded crash retry;
* :mod:`repro.exec.cache` — a disk result cache keyed by cell content
  hash, so re-running a study only simulates changed cells;
* :mod:`repro.exec.progress` — structured progress events with a
  plain-text reporter.

Typical use goes through the drivers (``TradeoffStudy(...).run(
max_workers=4, cache_dir=".repro-cache")``), but plans compose directly::

    from repro.exec import plan_grid, execute_plan, TextReporter

    plan = plan_grid(config, {"CR": trace}, ("cont", "rand"), ("min", "adp"))
    report = execute_plan(plan, max_workers=4, cache=".repro-cache",
                          progress=TextReporter())
    results = report.results()          # plan order, serial-identical
"""

from repro.exec.cache import ResultCache
from repro.exec.plan import (
    CODE_SALT,
    ExperimentPlan,
    RunSpec,
    config_digest,
    plan_grid,
    plan_sensitivity,
    trace_fingerprint,
)
from repro.exec.pool import (
    CellOutcome,
    CellTimeout,
    ExecutionError,
    ExecutionReport,
    execute_plan,
    simulate_spec,
)
from repro.exec.progress import ProgressEvent, ProgressTracker, TextReporter

__all__ = [
    "CODE_SALT",
    "CellOutcome",
    "CellTimeout",
    "ExecutionError",
    "ExecutionReport",
    "ExperimentPlan",
    "ProgressEvent",
    "ProgressTracker",
    "ResultCache",
    "RunSpec",
    "TextReporter",
    "config_digest",
    "execute_plan",
    "plan_grid",
    "plan_sensitivity",
    "simulate_spec",
    "trace_fingerprint",
]
