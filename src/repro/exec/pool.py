"""Parallel experiment execution over a process pool.

:func:`execute_plan` runs every cell of an
:class:`~repro.exec.plan.ExperimentPlan` and returns an
:class:`ExecutionReport` whose outcomes are in **plan order** — never
completion order — so callers reassemble results without any
iteration-order dependence on scheduling. Each cell is an independent,
fully-seeded simulation, which is what makes the parallel and serial
paths bit-identical: a worker computes exactly what the serial loop
would have.

Scheduling model:

* ``max_workers=1`` (the default) runs in-process with no pool, no
  pickling, and no behavioural change from the historical serial loop;
* ``max_workers>1`` shards cells across a ``ProcessPoolExecutor``;
  submission order is the deterministic plan order, and if the pool
  cannot be created at all (restricted platforms) execution falls back
  to the serial path;
* cells already present in the result cache are never submitted;
* a cell whose worker raises — or whose worker *process* dies, which
  surfaces as ``BrokenProcessPool`` — is retried up to ``retries``
  times on a fresh pool before being reported failed;
* a per-cell ``timeout_s`` is enforced inside the worker via
  ``SIGALRM`` (so a hung cell cannot wedge the pool) and also applies
  on the serial path.

Results crossing a process boundary are slimmed for IPC: the optional
``record_sends`` payload (``job.send_events``, one tuple per message)
is dropped unless ``ipc_send_events=True``, since it can dwarf every
other field combined.

``flow_batch > 1`` enables the batched execution mode for flow-backend
cells: uncached cells whose spec says ``backend="flow"`` are grouped
into chunks of that size and each chunk runs as **one** task through
:func:`repro.flow.batch.run_flow_batch` (shared route-model prewarm,
one submission per chunk instead of per cell). Batching is scheduling
only — cells keep their individual cache keys, retries, and outcomes,
results are bit-identical to the unbatched path, and the batch size is
deliberately NOT part of the cache identity. Non-flow cells in the same
plan take the ordinary path.
"""

from __future__ import annotations

import os
import signal
import threading
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from pathlib import Path

from repro.core.runner import RunResult, run_single
from repro.exec.cache import ResultCache
from repro.exec.plan import ExperimentPlan, RunSpec
from repro.exec.progress import ProgressTracker
from repro.mpi.trace import JobTrace

__all__ = [
    "CellOutcome",
    "CellTimeout",
    "ExecutionError",
    "ExecutionReport",
    "execute_plan",
    "simulate_spec",
]


class ExecutionError(RuntimeError):
    """One or more cells failed after exhausting their retries."""


class CellTimeout(TimeoutError):
    """A cell exceeded its per-cell wall-time budget."""


def simulate_spec(
    config, spec: RunSpec, trace: JobTrace
) -> RunResult:
    """Default cell runner: one ``run_single`` with the spec's inputs."""
    result = run_single(
        config,
        trace,
        spec.placement,
        spec.routing,
        seed=spec.seed,
        compute_scale=spec.compute_scale,
        background=spec.background,
        record_sends=spec.record_sends,
        max_events=spec.max_events,
        obs=spec.obs,
        scheduler=getattr(spec, "scheduler", "heap"),
        faults=getattr(spec, "faults", None),
        backend=getattr(spec, "backend", "packet"),
        flow_params=getattr(spec, "flow_params", None),
    )
    if (
        getattr(spec, "backend", "packet") == "flow"
        and os.environ.get("REPRO_FLOW_MODEL_CACHE")
    ):
        # Persist this cell's (now warm) route model so sibling
        # processes skip the derivation. Cheap when the digest already
        # exists on disk; loading happened inside flow_route_model.
        from repro.core.runner import build_topology
        from repro.flow import modelcache
        from repro.flow.routes import flow_route_model

        model = flow_route_model(
            build_topology(config.topology),
            config.network,
            spec.routing,
            getattr(spec, "flow_params", None),
        )
        modelcache.save_from(model)
    return result


def _call_with_timeout(fn, args, timeout_s: float | None):
    """Run ``fn(*args)``, raising :class:`CellTimeout` after ``timeout_s``.

    Uses ``SIGALRM``, which only works on the main thread of a process;
    elsewhere (or with no budget) the call runs unguarded. Pool workers
    always run tasks on their main thread, so parallel cells are always
    guarded.
    """
    if (
        timeout_s is None
        or timeout_s <= 0
        or not hasattr(signal, "SIGALRM")
        or threading.current_thread() is not threading.main_thread()
    ):
        return fn(*args)

    def _alarm(signum, frame):
        raise CellTimeout(f"cell exceeded {timeout_s:g}s budget")

    old_handler = signal.signal(signal.SIGALRM, _alarm)
    signal.setitimer(signal.ITIMER_REAL, timeout_s)
    try:
        return fn(*args)
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, old_handler)


def _pool_entry(runner, config, spec, trace, timeout_s, keep_sends):
    """Worker-side task: simulate one cell and slim the result for IPC."""
    start = time.perf_counter()
    result = _call_with_timeout(runner, (config, spec, trace), timeout_s)
    if not keep_sends and getattr(result, "job", None) is not None:
        result.job.send_events = None
    return result, time.perf_counter() - start


def _pool_batch_entry(runner, config, items, timeout_s, keep_sends):
    """Worker-side task: one batch of flow cells, per-cell payloads.

    Imported lazily because ``repro.flow`` transitively imports this
    module (fidelity -> core.study -> exec.pool).
    """
    from repro.flow.batch import run_flow_batch

    return run_flow_batch(
        runner, config, items, timeout_s=timeout_s, keep_sends=keep_sends
    )


@dataclass
class CellOutcome:
    """Terminal state of one planned cell."""

    spec: RunSpec
    status: str  # "done" | "cached" | "failed"
    result: RunResult | None = None
    error: str | None = None
    attempts: int = 0
    wall_s: float = 0.0


class ExecutionReport:
    """Outcomes of one :func:`execute_plan` call, in plan order."""

    def __init__(self, outcomes: list[CellOutcome], wall_s: float = 0.0) -> None:
        self.outcomes = outcomes
        self.wall_s = wall_s

    def __len__(self) -> int:
        return len(self.outcomes)

    def __iter__(self):
        return iter(self.outcomes)

    @property
    def planned(self) -> int:
        return len(self.outcomes)

    @property
    def done(self) -> int:
        return sum(1 for o in self.outcomes if o.status == "done")

    @property
    def cached(self) -> int:
        return sum(1 for o in self.outcomes if o.status == "cached")

    @property
    def failed(self) -> int:
        return sum(1 for o in self.outcomes if o.status == "failed")

    def results(self) -> list[RunResult]:
        """Results in plan order; raises if any cell failed."""
        self.raise_if_failed()
        return [o.result for o in self.outcomes]

    def failures(self) -> list[CellOutcome]:
        return [o for o in self.outcomes if o.status == "failed"]

    def raise_if_failed(self) -> None:
        bad = self.failures()
        if bad:
            detail = "; ".join(
                f"{o.spec.app} {o.spec.label}: {o.error}" for o in bad[:5]
            )
            more = f" (+{len(bad) - 5} more)" if len(bad) > 5 else ""
            raise ExecutionError(
                f"{len(bad)}/{self.planned} cells failed: {detail}{more}"
            )


def execute_plan(
    plan: ExperimentPlan,
    max_workers: int = 1,
    cache: ResultCache | str | Path | None = None,
    progress=None,
    timeout_s: float | None = None,
    retries: int = 1,
    runner=None,
    ipc_send_events: bool = False,
    strict: bool = False,
    flow_batch: int = 0,
) -> ExecutionReport:
    """Execute every cell of ``plan`` and report outcomes in plan order.

    ``cache`` may be a :class:`ResultCache` or a directory path; cached
    cells are served without simulating and fresh results are stored
    back. ``progress`` is a ``ProgressEvent`` callback (e.g.
    :class:`~repro.exec.progress.TextReporter`). ``runner`` overrides
    the cell function (module-level callable ``(config, spec, trace) ->
    RunResult``; must be picklable for the parallel path). With
    ``strict=True`` an :class:`ExecutionError` is raised if any cell
    remains failed. ``flow_batch > 1`` groups uncached flow-backend
    cells into chunks of that size, each chunk running as one batched
    task (see module docstring); results and cache keys are unchanged.
    """
    if isinstance(cache, (str, Path)):
        cache = ResultCache(cache)
    if runner is None:
        runner = simulate_spec
    tracker = ProgressTracker(
        len(plan.specs), callback=progress, workers=max(1, max_workers)
    )
    started = time.monotonic()
    tracker.planned()

    outcomes: dict[int, CellOutcome] = {}
    pending: list[int] = []
    for i, spec in enumerate(plan.specs):
        hit = cache.get(spec.key) if cache is not None else None
        if hit is not None:
            outcomes[i] = CellOutcome(spec, "cached", result=hit)
            tracker.cell_cached(spec)
        else:
            pending.append(i)

    if pending and flow_batch > 1:
        batchable = [
            i for i in pending
            if getattr(plan.specs[i], "backend", "packet") == "flow"
        ]
        if len(batchable) > 1:
            outcomes.update(
                _run_batched(
                    plan, batchable, runner, max_workers, cache, tracker,
                    timeout_s, retries, ipc_send_events, flow_batch,
                )
            )
            taken = set(batchable)
            pending = [i for i in pending if i not in taken]

    if pending:
        use_serial = max_workers <= 1
        if not use_serial:
            done = _run_parallel(
                plan, pending, runner, max_workers, cache, tracker,
                timeout_s, retries, ipc_send_events,
            )
            if done is None:  # pool unavailable on this platform
                use_serial = True
            else:
                outcomes.update(done)
        if use_serial:
            outcomes.update(
                _run_serial(
                    plan, pending, runner, cache, tracker, timeout_s, retries
                )
            )

    tracker.finished()
    report = ExecutionReport(
        [outcomes[i] for i in range(len(plan.specs))],
        wall_s=time.monotonic() - started,
    )
    if strict:
        report.raise_if_failed()
    return report


def _run_serial(
    plan, pending, runner, cache, tracker, timeout_s, retries
) -> dict[int, CellOutcome]:
    """In-process execution: the historical serial loop, cell by cell."""
    outcomes: dict[int, CellOutcome] = {}
    for i in pending:
        spec = plan.specs[i]
        trace = plan.trace_for(spec)
        attempt = 0
        while True:
            attempt += 1
            tracker.cell_start(spec, attempt=attempt)
            start = time.perf_counter()
            try:
                result = _call_with_timeout(
                    runner, (plan.config, spec, trace), timeout_s
                )
            except Exception as exc:  # noqa: BLE001 — cell isolation
                wall = time.perf_counter() - start
                if attempt <= retries:
                    tracker.cell_retry(spec, repr(exc), attempt)
                    continue
                outcomes[i] = CellOutcome(
                    spec, "failed", error=repr(exc),
                    attempts=attempt, wall_s=wall,
                )
                tracker.cell_failed(spec, repr(exc), wall, attempt)
                break
            wall = time.perf_counter() - start
            if cache is not None:
                cache.put(spec.key, result)
            outcomes[i] = CellOutcome(
                spec, "done", result=result, attempts=attempt, wall_s=wall
            )
            tracker.cell_done(
                spec, wall, attempt,
                sim_wall_s=getattr(result, "wall_s", None),
            )
            break
    return outcomes


def _run_parallel(
    plan, pending, runner, max_workers, cache, tracker,
    timeout_s, retries, ipc_send_events,
) -> dict[int, CellOutcome] | None:
    """Pool execution with bounded retry across pool generations.

    Returns ``None`` if a process pool cannot be created at all, in
    which case the caller falls back to the serial path. A worker
    *crash* (``BrokenProcessPool``) poisons every in-flight future of
    that pool generation, so each affected cell — crasher and innocent
    bystanders alike, they are indistinguishable — has its attempt
    counted and the survivors are resubmitted on a fresh pool; the
    attempt bound guarantees termination.
    """
    outcomes: dict[int, CellOutcome] = {}
    attempts = {i: 0 for i in pending}
    queue = list(pending)

    while queue:
        try:
            pool = ProcessPoolExecutor(max_workers=max_workers)
        except (OSError, NotImplementedError):
            return None if not outcomes else _fail_remaining(
                plan, queue, attempts, outcomes, tracker, "pool unavailable"
            )
        resubmit: list[int] = []
        try:
            futures = {}
            for i in queue:
                spec = plan.specs[i]
                attempts[i] += 1
                tracker.cell_start(spec, attempt=attempts[i])
                fut = pool.submit(
                    _pool_entry, runner, plan.config, spec,
                    plan.trace_for(spec), timeout_s, ipc_send_events,
                )
                futures[fut] = i
            not_done = set(futures)
            while not_done:
                finished, not_done = wait(not_done, return_when=FIRST_COMPLETED)
                for fut in finished:
                    i = futures[fut]
                    spec = plan.specs[i]
                    try:
                        result, wall = fut.result()
                    except Exception as exc:  # noqa: BLE001 — cell isolation
                        if attempts[i] <= retries:
                            tracker.cell_retry(spec, repr(exc), attempts[i])
                            resubmit.append(i)
                        else:
                            outcomes[i] = CellOutcome(
                                spec, "failed", error=repr(exc),
                                attempts=attempts[i],
                            )
                            tracker.cell_failed(
                                spec, repr(exc), attempt=attempts[i]
                            )
                        continue
                    if cache is not None:
                        cache.put(spec.key, result)
                    outcomes[i] = CellOutcome(
                        spec, "done", result=result,
                        attempts=attempts[i], wall_s=wall,
                    )
                    tracker.cell_done(
                        spec, wall, attempts[i],
                        sim_wall_s=getattr(result, "wall_s", None),
                    )
        finally:
            pool.shutdown(wait=False, cancel_futures=True)
        queue = sorted(resubmit)

    return outcomes


def _run_batched(
    plan, pending, runner, max_workers, cache, tracker,
    timeout_s, retries, ipc_send_events, flow_batch,
) -> dict[int, CellOutcome]:
    """Batched execution of flow cells, chunked ``flow_batch`` at a time.

    Each chunk is one task (in-process when ``max_workers<=1``, one
    pool submission otherwise) returning per-cell payloads, so a cell
    that fails inside a chunk is retried individually — re-chunked with
    the other survivors on the next generation — while its batch-mates'
    results land normally. A worker crash (``BrokenProcessPool``)
    poisons every in-flight chunk of that pool generation; as in
    :func:`_run_parallel`, every affected cell has its attempt counted
    and survivors are resubmitted on a fresh pool. If a pool cannot be
    created at all, chunks run in-process instead — batching never
    *requires* a pool.
    """
    outcomes: dict[int, CellOutcome] = {}
    attempts = {i: 0 for i in pending}
    queue = list(pending)
    serial = max_workers <= 1

    def _absorb(chunk, payloads, resubmit):
        for i, (status, value, wall) in zip(chunk, payloads):
            spec = plan.specs[i]
            if status == "ok":
                if cache is not None:
                    cache.put(spec.key, value)
                outcomes[i] = CellOutcome(
                    spec, "done", result=value,
                    attempts=attempts[i], wall_s=wall,
                )
                tracker.cell_done(
                    spec, wall, attempts[i],
                    sim_wall_s=getattr(value, "wall_s", None),
                )
            elif attempts[i] <= retries:
                tracker.cell_retry(spec, value, attempts[i])
                resubmit.append(i)
            else:
                outcomes[i] = CellOutcome(
                    spec, "failed", error=value,
                    attempts=attempts[i], wall_s=wall,
                )
                tracker.cell_failed(spec, value, wall, attempts[i])

    while queue:
        chunks = [
            queue[k:k + flow_batch] for k in range(0, len(queue), flow_batch)
        ]
        resubmit: list[int] = []
        if serial:
            from repro.flow.batch import run_flow_batch

            for chunk in chunks:
                items = []
                for i in chunk:
                    spec = plan.specs[i]
                    attempts[i] += 1
                    tracker.cell_start(spec, attempt=attempts[i])
                    items.append((spec, plan.trace_for(spec)))
                payloads = run_flow_batch(
                    runner, plan.config, items,
                    timeout_s=timeout_s, keep_sends=True,
                )
                _absorb(chunk, payloads, resubmit)
        else:
            try:
                pool = ProcessPoolExecutor(max_workers=max_workers)
            except (OSError, NotImplementedError):
                serial = True  # in-process chunks; attempts untouched
                continue
            try:
                futures = {}
                for chunk in chunks:
                    items = []
                    for i in chunk:
                        spec = plan.specs[i]
                        attempts[i] += 1
                        tracker.cell_start(spec, attempt=attempts[i])
                        items.append((spec, plan.trace_for(spec)))
                    fut = pool.submit(
                        _pool_batch_entry, runner, plan.config, items,
                        timeout_s, ipc_send_events,
                    )
                    futures[fut] = chunk
                not_done = set(futures)
                while not_done:
                    finished, not_done = wait(
                        not_done, return_when=FIRST_COMPLETED
                    )
                    for fut in finished:
                        chunk = futures[fut]
                        try:
                            payloads = fut.result()
                        except Exception as exc:  # noqa: BLE001
                            # Whole-chunk failure (crash/poisoned pool):
                            # synthesize per-cell error payloads so the
                            # shared retry accounting applies.
                            payloads = [
                                ("err", repr(exc), 0.0) for _ in chunk
                            ]
                        _absorb(chunk, payloads, resubmit)
            finally:
                pool.shutdown(wait=False, cancel_futures=True)
        queue = sorted(resubmit)

    return outcomes


def _fail_remaining(plan, queue, attempts, outcomes, tracker, reason):
    """Mark every still-queued cell failed (pool died mid-run)."""
    for i in queue:
        spec = plan.specs[i]
        outcomes[i] = CellOutcome(
            spec, "failed", error=reason, attempts=attempts[i]
        )
        tracker.cell_failed(spec, reason, attempt=attempts[i])
    return outcomes
